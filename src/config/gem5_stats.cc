/**
 * @file
 * gem5 stats parsing and mapping.
 */

#include "config/gem5_stats.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strict_parse.hh"

namespace mcpat {
namespace config {

std::map<std::string, double>
parseGem5Stats(const std::string &text)
{
    std::map<std::string, double> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("---------- Begin", 0) == 0) {
            out.clear();  // a new dump supersedes the previous one
            continue;
        }
        if (line.empty() || line[0] == '-')
            continue;  // separators / End banners
        std::istringstream ls(line);
        std::string name, value;
        if (!(ls >> name >> value))
            continue;
        if (name.empty() || name[0] == '#')
            continue;
        // Non-numeric value columns (histogram bucket labels, "nan"
        // ratios) are simply skipped; full-token parsing also drops
        // values with trailing junk rather than truncating them.
        double v = 0.0;
        if (common::parseDoubleStrict(value, v))
            out[name] = v;
    }
    return out;
}

std::map<std::string, double>
parseGem5StatsFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open gem5 stats file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseGem5Stats(ss.str());
}

namespace {

/**
 * Sum every stat whose name is `system.<unit prefix><anything>.<leaf>`
 * — aggregating cpu0/cpu1/... or l2/l2bank0/... instances.
 */
double
sumMatching(const std::map<std::string, double> &stats,
            const std::string &unit_prefix, const std::string &leaf)
{
    const std::string prefix = "system." + unit_prefix;
    double sum = 0.0;
    bool found = false;
    for (const auto &[name, value] : stats) {
        if (name.rfind(prefix, 0) != 0)
            continue;
        if (name.size() <= leaf.size() + 1)
            continue;
        if (name.compare(name.size() - leaf.size() - 1, 1, ".") != 0)
            continue;
        if (name.compare(name.size() - leaf.size(), leaf.size(),
                         leaf) != 0)
            continue;
        sum += value;
        found = true;
    }
    return found ? sum : -1.0;
}

/** First matching value (for per-chip stats like cycle counts). */
double
maxMatching(const std::map<std::string, double> &stats,
            const std::string &unit_prefix, const std::string &leaf)
{
    const std::string prefix = "system." + unit_prefix;
    double best = -1.0;
    for (const auto &[name, value] : stats) {
        if (name.rfind(prefix, 0) != 0)
            continue;
        if (name.size() <= leaf.size() + 1)
            continue;
        if (name.compare(name.size() - leaf.size(), leaf.size(),
                         leaf) != 0)
            continue;
        best = std::max(best, value);
    }
    return best;
}

/** value / divisor when value was found, else the fallback. */
double
rateOr(double value, double divisor, double fallback)
{
    return value >= 0.0 ? value / divisor : fallback;
}

} // namespace

stats::ChipStats
gem5ToChipStats(const std::map<std::string, double> &stats,
                const chip::SystemParams &params)
{
    stats::ChipStats s = stats::ChipStats::tdp(params);

    const double cycles = maxMatching(stats, "cpu", "numCycles");
    if (cycles <= 0.0)
        return s;  // no CPU section: keep TDP defaults

    const int cores = params.totalCores();
    // Per-core average rates: aggregate counters / cycles / cores.
    const double per_core = cycles * cores;

    core::CoreStats &c = s.perCore;
    const double insts =
        std::max(sumMatching(stats, "cpu", "committedInsts"),
                 sumMatching(stats, "cpu", "committedOps"));
    c.commits = rateOr(insts, per_core, c.commits);
    c.fetches = rateOr(sumMatching(stats, "cpu", "fetchedInsts"),
                       per_core, c.commits * 1.1);
    c.decodes = c.fetches;
    if (params.core.outOfOrder) {
        c.renames = c.decodes;
        c.dispatches = c.decodes;
    }
    c.intOps = rateOr(sumMatching(stats, "cpu", "num_int_insts"),
                      per_core, c.intOps);
    c.fpOps = rateOr(sumMatching(stats, "cpu", "num_fp_insts"),
                     per_core, c.fpOps);
    c.branches =
        rateOr(sumMatching(stats, "cpu", "committedBranches"),
               per_core, c.branches);
    c.loads = rateOr(sumMatching(stats, "cpu", "num_loads"), per_core,
                     c.loads);
    c.stores = rateOr(sumMatching(stats, "cpu", "num_stores"),
                      per_core, c.stores);
    c.intRegReads = 1.6 * (c.intOps + c.loads + c.stores);
    c.intRegWrites = 0.8 * (c.intOps + c.loads);
    c.fpRegReads = 1.6 * c.fpOps;
    c.fpRegWrites = 0.8 * c.fpOps;
    if (params.core.outOfOrder) {
        c.intIssues = c.intOps + c.loads + c.stores + c.branches;
        c.fpIssues = c.fpOps;
    }
    c.bypasses = c.commits * 0.5;

    const double ic_acc =
        sumMatching(stats, "cpu", "icache.overall_accesses");
    const double ic_miss =
        sumMatching(stats, "cpu", "icache.overall_misses");
    if (ic_acc >= 0.0) {
        const double acc = ic_acc / per_core;
        const double miss = std::max(0.0, ic_miss) / per_core;
        c.icacheRates.readHits = std::max(0.0, acc - miss);
        c.icacheRates.readMisses = miss;
        c.icacheRates.writeHits = 0.0;
        c.icacheRates.writeMisses = 0.0;
    }
    const double dc_acc =
        sumMatching(stats, "cpu", "dcache.overall_accesses");
    const double dc_miss =
        sumMatching(stats, "cpu", "dcache.overall_misses");
    if (dc_acc >= 0.0) {
        const double acc = dc_acc / per_core;
        const double miss = std::max(0.0, dc_miss) / per_core;
        const double load_frac =
            c.loads / std::max(1e-12, c.loads + c.stores);
        c.dcacheRates.readHits =
            std::max(0.0, (acc - miss) * load_frac);
        c.dcacheRates.writeHits =
            std::max(0.0, (acc - miss) * (1.0 - load_frac));
        c.dcacheRates.readMisses = miss * load_frac;
        c.dcacheRates.writeMisses = miss * (1.0 - load_frac);
    }
    c.itlbAccesses = c.icacheRates.accesses();
    c.dtlbAccesses = c.loads + c.stores;

    const double busy = std::min(
        1.0, c.commits / std::max(1.0, 0.8 * params.core.issueWidth));
    c.pipelineActivity = 0.1 + 0.25 * busy;
    c.clockGating = 0.35 + 0.65 * busy;

    // --- Shared cache. ----------------------------------------------------
    const double l2_acc =
        sumMatching(stats, "l2", "overall_accesses");
    const double l2_miss =
        sumMatching(stats, "l2", "overall_misses");
    if (l2_acc >= 0.0 && params.numL2 > 0) {
        const double per_l2 = cycles * params.numL2;
        const double acc = l2_acc / per_l2;
        const double miss = std::max(0.0, l2_miss) / per_l2;
        s.l2Rates.readHits = std::max(0.0, 0.75 * (acc - miss));
        s.l2Rates.writeHits = std::max(0.0, 0.25 * (acc - miss));
        s.l2Rates.readMisses = 0.75 * miss;
        s.l2Rates.writeMisses = 0.25 * miss;
        s.nocFlitsPerCycle = 2.0 * acc * params.numL2;
        s.directoryRates.lookups =
            miss * params.numL2 + 0.2 * acc * params.numL2;
        s.directoryRates.updates = 0.5 * s.directoryRates.lookups;
    }

    // --- Memory controller. -----------------------------------------------
    const double bytes_rd =
        sumMatching(stats, "mem_ctrls", "bytes_read");
    const double bytes_wr =
        sumMatching(stats, "mem_ctrls", "bytes_written");
    if (bytes_rd >= 0.0 || bytes_wr >= 0.0) {
        const double bytes =
            std::max(0.0, bytes_rd) + std::max(0.0, bytes_wr);
        const auto &m = params.memCtrl;
        const double peak = (m.peakBandwidth > 0.0
            ? m.peakBandwidth
            : m.busClock * 2.0 * (m.dataBusBits / 8.0)) * m.channels;
        const double seconds = cycles / params.core.clockRate;
        s.mcUtilization =
            std::min(1.0, bytes / std::max(seconds, 1e-12) / peak);
    }

    s.perGroup.clear();  // counters describe the average core
    return s;
}

} // namespace config
} // namespace mcpat
