/**
 * @file
 * gem5/M5 statistics import.
 *
 * The paper's workflow pairs McPAT with the M5 simulator: M5 produces
 * a stats dump, McPAT turns it into runtime power.  This reader parses
 * the standard gem5 `stats.txt` format —
 *
 *     ---------- Begin Simulation Statistics ----------
 *     system.cpu.numCycles      12345678   # number of cpu cycles
 *     system.cpu.committedInsts  9876543   # committed instructions
 *     ...
 *
 * — aggregates per-CPU counters (system.cpu0.*, system.cpu1.*, ...),
 * and maps the well-known counter names onto the same ChipStats vector
 * the XML `<stat>` interface produces.  Counters that do not appear
 * keep their TDP-vector defaults.
 */

#ifndef MCPAT_CONFIG_GEM5_STATS_HH
#define MCPAT_CONFIG_GEM5_STATS_HH

#include <map>
#include <string>

#include "chip/system_params.hh"
#include "stats/activity_stats.hh"

namespace mcpat {
namespace config {

/**
 * Parse a gem5 stats dump into name -> value.  When the file holds
 * several `Begin/End Simulation Statistics` blocks, the last block
 * wins.  Lines without a numeric value (histogram headers, nan/inf)
 * are skipped.
 */
std::map<std::string, double> parseGem5Stats(const std::string &text);

/** Parse a stats file from disk. */
std::map<std::string, double>
parseGem5StatsFile(const std::string &path);

/**
 * Build the runtime activity vector for @p params from gem5 counters.
 *
 * Recognized names (with `system.` prefixes and per-CPU indices
 * aggregated): numCycles, committedInsts/committedOps,
 * num_int_insts, num_fp_insts, BranchPred lookups / committedBranches,
 * num_loads/num_stores (or MemRead/MemWrite op class counts),
 * icache.overall_accesses/overall_misses, dcache likewise,
 * l2.overall_accesses/overall_misses, mem_ctrls.bytes_read +
 * bytes_written.
 */
stats::ChipStats gem5ToChipStats(
    const std::map<std::string, double> &stats,
    const chip::SystemParams &params);

} // namespace config
} // namespace mcpat

#endif // MCPAT_CONFIG_GEM5_STATS_HH
