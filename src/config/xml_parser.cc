/**
 * @file
 * Recursive-descent XML subset parser.
 */

#include "config/xml_parser.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mcpat {
namespace config {

const std::string &
XmlNode::attr(const std::string &name) const
{
    static const std::string empty;
    auto it = attrs.find(name);
    return it == attrs.end() ? empty : it->second;
}

bool
XmlNode::hasAttr(const std::string &name) const
{
    return attrs.count(name) > 0;
}

const XmlNode *
XmlNode::firstChild(const std::string &tag_name) const
{
    for (const auto &c : children)
        if (c.tag == tag_name)
            return &c;
    return nullptr;
}

std::vector<const XmlNode *>
XmlNode::childrenNamed(const std::string &tag_name) const
{
    std::vector<const XmlNode *> out;
    for (const auto &c : children)
        if (c.tag == tag_name)
            out.push_back(&c);
    return out;
}

namespace {

/** Cursor over the document text with error context. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : _text(text) {}

    bool atEnd() const { return _pos >= _text.size(); }
    char peek() const { return atEnd() ? '\0' : _text[_pos]; }

    char
    get()
    {
        if (atEnd())
            return '\0';
        const char c = _text[_pos++];
        if (c == '\n')
            ++_line;
        return c;
    }

    bool
    startsWith(const std::string &s) const
    {
        return _text.compare(_pos, s.size(), s) == 0;
    }

    void
    advance(std::size_t n)
    {
        for (std::size_t i = 0; i < n && _pos < _text.size(); ++i) {
            if (_text[_pos++] == '\n')
                ++_line;
        }
    }

    /** 1-based line number of the cursor position. */
    int line() const { return _line; }

    void
    skipWhitespace()
    {
        while (!atEnd() &&
               std::isspace(static_cast<unsigned char>(peek())))
            get();
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw ConfigError("XML parse error at line " +
                          std::to_string(_line) + ": " + what);
    }

  private:
    const std::string &_text;
    std::size_t _pos = 0;
    int _line = 1;
};

void
skipMisc(Cursor &c)
{
    for (;;) {
        c.skipWhitespace();
        if (c.startsWith("<?")) {
            while (!c.atEnd() && !c.startsWith("?>"))
                c.get();
            c.advance(2);
        } else if (c.startsWith("<!--")) {
            while (!c.atEnd() && !c.startsWith("-->"))
                c.get();
            c.advance(3);
        } else {
            return;
        }
    }
}

std::string
parseName(Cursor &c)
{
    std::string name;
    while (!c.atEnd()) {
        const char ch = c.peek();
        if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
            ch == '-' || ch == ':' || ch == '.') {
            name.push_back(c.get());
        } else {
            break;
        }
    }
    if (name.empty())
        c.fail("expected a name");
    return name;
}

void
parseAttributes(Cursor &c, XmlNode &node)
{
    for (;;) {
        c.skipWhitespace();
        const char ch = c.peek();
        if (ch == '>' || ch == '/' || ch == '\0')
            return;
        const std::string name = parseName(c);
        c.skipWhitespace();
        if (c.get() != '=')
            c.fail("expected '=' after attribute '" + name + "'");
        c.skipWhitespace();
        const char quote = c.get();
        if (quote != '"' && quote != '\'')
            c.fail("expected quoted value for attribute '" + name + "'");
        std::string value;
        while (!c.atEnd() && c.peek() != quote)
            value.push_back(c.get());
        if (c.get() != quote)
            c.fail("unterminated attribute value");
        node.attrs[name] = value;
    }
}

XmlNode
parseElement(Cursor &c)
{
    const int open_line = c.line();
    if (c.get() != '<')
        c.fail("expected '<'");
    XmlNode node;
    node.line = open_line;
    node.tag = parseName(c);
    parseAttributes(c, node);
    c.skipWhitespace();

    if (c.startsWith("/>")) {
        c.advance(2);
        return node;
    }
    if (c.get() != '>')
        c.fail("expected '>' closing <" + node.tag + ">");

    for (;;) {
        skipMisc(c);
        if (c.atEnd())
            c.fail("unterminated element <" + node.tag + ">");
        if (c.startsWith("</")) {
            c.advance(2);
            const std::string closing = parseName(c);
            if (closing != node.tag) {
                c.fail("mismatched close tag </" + closing +
                       "> for <" + node.tag + ">");
            }
            c.skipWhitespace();
            if (c.get() != '>')
                c.fail("expected '>' in close tag");
            return node;
        }
        if (c.peek() == '<') {
            node.children.push_back(parseElement(c));
        } else {
            // Ignore text content.
            while (!c.atEnd() && c.peek() != '<')
                c.get();
        }
    }
}

} // namespace

XmlNode
parseXmlString(const std::string &text)
{
    Cursor c(text);
    skipMisc(c);
    if (c.atEnd())
        c.fail("empty document");
    XmlNode root = parseElement(c);
    skipMisc(c);
    return root;
}

XmlNode
parseXmlFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open XML file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseXmlString(ss.str());
}

} // namespace config
} // namespace mcpat
