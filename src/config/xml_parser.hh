/**
 * @file
 * Minimal from-scratch XML parser for McPAT configuration files.
 *
 * Supports the subset the original tool's files use: nested elements,
 * double-quoted attributes, self-closing tags, comments, and the XML
 * declaration.  Text content is ignored (configs carry everything in
 * attributes).
 */

#ifndef MCPAT_CONFIG_XML_PARSER_HH
#define MCPAT_CONFIG_XML_PARSER_HH

#include <map>
#include <string>
#include <vector>

namespace mcpat {
namespace config {

/** One parsed XML element. */
struct XmlNode
{
    std::string tag;
    std::map<std::string, std::string> attrs;
    std::vector<XmlNode> children;

    /** 1-based source line of the opening '<'; 0 = synthesized node. */
    int line = 0;

    /** Attribute value; empty string when absent. */
    const std::string &attr(const std::string &name) const;

    /** True when the attribute exists. */
    bool hasAttr(const std::string &name) const;

    /** First child with a given tag; nullptr when absent. */
    const XmlNode *firstChild(const std::string &tag_name) const;

    /** All children with a given tag. */
    std::vector<const XmlNode *>
    childrenNamed(const std::string &tag_name) const;
};

/** Parse an XML document from a string.  Throws ConfigError on
 *  malformed input. */
XmlNode parseXmlString(const std::string &text);

/** Parse an XML document from a file. */
XmlNode parseXmlFile(const std::string &path);

} // namespace config
} // namespace mcpat

#endif // MCPAT_CONFIG_XML_PARSER_HH
