/**
 * @file
 * Mapping from the McPAT-style XML schema to typed system parameters.
 *
 * Schema (see the files under configs/ for full examples):
 *
 *   <component id="system" type="System">
 *     <param name="technology_node" value="90"/>
 *     <param name="core_count" value="8"/>
 *     <component id="system.core" type="Core">
 *       <param name="clock_rate_mhz" value="1200"/>
 *       ...
 *     </component>
 *     <component id="system.l2" type="L2"> ... </component>
 *     <component id="system.noc" type="Noc"> ... </component>
 *     <component id="system.mc" type="MemoryController"> ... </component>
 *     <component id="system.io" type="ChipIo"> ... </component>
 *   </component>
 *
 * Runtime statistics ride on <stat name="..." value="..."/> entries
 * (see loadChipStats).
 */

#ifndef MCPAT_CONFIG_XML_LOADER_HH
#define MCPAT_CONFIG_XML_LOADER_HH

#include <string>
#include <vector>

#include "chip/system_params.hh"
#include "common/diagnostics.hh"
#include "config/xml_parser.hh"
#include "stats/activity_stats.hh"

namespace mcpat {
namespace config {

/**
 * Result of loading a config: parameters plus every diagnostic the
 * load produced.  `warnings` is the legacy string form of the
 * Warning-severity diagnostics (unknown keys / component types);
 * `diagnostics` carries the full structured list including component,
 * key, and source-line context.
 */
struct LoadResult
{
    chip::SystemParams system;
    std::vector<std::string> warnings;
    DiagnosticList diagnostics;
};

/**
 * Build SystemParams from a parsed XML tree (root <component
 * type="System">).
 *
 * Every <param> is parsed strictly (full-token numbers, closed enum
 * sets, per-key ranges).  All violations in the tree are collected;
 * if any are Error severity, a ValidationError summarizing the whole
 * list is thrown — the partially-filled SystemParams is never
 * returned, so a malformed value cannot silently become a default.
 */
LoadResult loadSystemParams(const XmlNode &root);

/** Convenience: parse a file and load it (ValidationError is re-keyed
 *  on the file path). */
LoadResult loadSystemParamsFromFile(const std::string &path);

/**
 * Extract runtime statistics from <stat> entries in the tree.
 *
 * Two forms are supported, composing in this order:
 *
 * 1. Simulator counters (the original tool's interface): the core
 *    component carries <stat name="total_cycles" .../> plus event
 *    counters (committed_instructions, int_instructions,
 *    fp_instructions, branch_instructions, branch_mispredictions,
 *    loads, stores, icache_accesses/icache_misses,
 *    dcache_accesses/dcache_misses, itlb_accesses, dtlb_accesses);
 *    shared caches carry read_accesses/read_misses/write_accesses/
 *    write_misses; the NoC carries total_flits; the memory controller
 *    carries bytes_transferred.  Rates are counters / total_cycles.
 *    Any counter left out falls back to the TDP vector's value.
 *
 * 2. A system-level <stat name="activity_scale" value="0.7"/> scales
 *    whatever the previous step produced (default 1.0).
 *
 * Stat values are parsed strictly (full token, finite); malformed
 * entries raise a ValidationError naming the component, stat, and
 * source line rather than silently falling back to TDP defaults.
 */
stats::ChipStats loadChipStats(const XmlNode &root,
                               const chip::SystemParams &params);

} // namespace config
} // namespace mcpat

#endif // MCPAT_CONFIG_XML_LOADER_HH
