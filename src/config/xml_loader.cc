/**
 * @file
 * XML-to-parameters mapping.
 */

#include "config/xml_loader.hh"

#include <functional>
#include <map>
#include <set>

#include <algorithm>

#include "common/logging.hh"

namespace mcpat {
namespace config {

namespace {

/** Typed access to one component's <param> entries. */
class ParamReader
{
  public:
    ParamReader(const XmlNode &node, std::vector<std::string> &warnings)
        : _warnings(warnings)
    {
        for (const XmlNode *p : node.childrenNamed("param")) {
            fatalIf(!p->hasAttr("name") || !p->hasAttr("value"),
                    "<param> needs name and value attributes");
            _values[p->attr("name")] = p->attr("value");
        }
        _component = node.attr("id");
    }

    ~ParamReader()
    {
        for (const auto &[key, value] : _values) {
            if (!_consumed.count(key)) {
                _warnings.push_back("unknown param '" + key +
                                    "' in component '" + _component +
                                    "'");
            }
        }
    }

    bool
    has(const std::string &key) const
    {
        return _values.count(key) > 0;
    }

    void
    getInt(const std::string &key, int &out)
    {
        if (auto v = fetch(key))
            out = std::stoi(*v);
    }

    void
    getDouble(const std::string &key, double &out)
    {
        if (auto v = fetch(key))
            out = std::stod(*v);
    }

    void
    getBool(const std::string &key, bool &out)
    {
        if (auto v = fetch(key))
            out = (*v == "1" || *v == "true" || *v == "yes");
    }

    void
    getString(const std::string &key, std::string &out)
    {
        if (auto v = fetch(key))
            out = *v;
    }

  private:
    const std::string *
    fetch(const std::string &key)
    {
        _consumed.insert(key);
        auto it = _values.find(key);
        return it == _values.end() ? nullptr : &it->second;
    }

    std::map<std::string, std::string> _values;
    std::set<std::string> _consumed;
    std::string _component;
    std::vector<std::string> &_warnings;
};

tech::DeviceFlavor
parseFlavor(const std::string &s)
{
    if (s == "HP" || s == "hp")
        return tech::DeviceFlavor::HP;
    if (s == "LSTP" || s == "lstp")
        return tech::DeviceFlavor::LSTP;
    if (s == "LOP" || s == "lop")
        return tech::DeviceFlavor::LOP;
    throw ConfigError("unknown device flavor '" + s + "'");
}

void
loadCore(const XmlNode &node, core::CoreParams &c,
         std::vector<std::string> &warnings)
{
    ParamReader p(node, warnings);
    double mhz = c.clockRate / MHz;
    p.getDouble("clock_rate_mhz", mhz);
    c.clockRate = mhz * MHz;

    p.getBool("out_of_order", c.outOfOrder);
    p.getBool("x86", c.x86);
    p.getInt("threads", c.threads);
    p.getInt("fetch_width", c.fetchWidth);
    p.getInt("decode_width", c.decodeWidth);
    p.getInt("issue_width", c.issueWidth);
    p.getInt("commit_width", c.commitWidth);
    p.getInt("pipeline_depth", c.pipelineStages);
    p.getDouble("dynamic_margin", c.dynamicMargin);
    p.getBool("power_gating", c.powerGating);

    p.getInt("rob_size", c.robEntries);
    p.getInt("instruction_window_size", c.intWindowEntries);
    p.getInt("fp_instruction_window_size", c.fpWindowEntries);
    p.getInt("phy_int_regs", c.physIntRegs);
    p.getInt("phy_fp_regs", c.physFpRegs);
    p.getInt("arch_int_regs", c.archIntRegs);
    p.getInt("arch_fp_regs", c.archFpRegs);

    std::string rat = "ram";
    p.getString("rat_style", rat);
    c.ratStyle = (rat == "cam") ? logic::RatStyle::Cam
                                : logic::RatStyle::Ram;

    p.getInt("alu_count", c.intAlus);
    p.getInt("fpu_count", c.fpus);
    p.getInt("mul_count", c.muls);
    p.getBool("has_fpu", c.hasFpu);
    p.getBool("has_branch_predictor", c.hasBranchPredictor);

    p.getInt("load_queue_size", c.loadQueueEntries);
    p.getInt("store_queue_size", c.storeQueueEntries);
    p.getInt("itlb_entries", c.itlbEntries);
    p.getInt("dtlb_entries", c.dtlbEntries);

    p.getInt("btb_entries", c.predictor.btbEntries);
    p.getInt("local_predictor_entries", c.predictor.localEntries);
    p.getInt("global_predictor_entries", c.predictor.globalEntries);
    p.getInt("chooser_predictor_entries", c.predictor.chooserEntries);
    p.getInt("ras_size", c.predictor.rasEntries);

    double icache_kb = c.icache.capacityBytes / 1024.0;
    p.getDouble("icache_kb", icache_kb);
    c.icache.capacityBytes = icache_kb * 1024.0;
    p.getInt("icache_block", c.icache.blockBytes);
    p.getInt("icache_assoc", c.icache.assoc);
    p.getInt("icache_banks", c.icache.banks);

    double dcache_kb = c.dcache.capacityBytes / 1024.0;
    p.getDouble("dcache_kb", dcache_kb);
    c.dcache.capacityBytes = dcache_kb * 1024.0;
    p.getInt("dcache_block", c.dcache.blockBytes);
    p.getInt("dcache_assoc", c.dcache.assoc);
    p.getInt("dcache_banks", c.dcache.banks);
}

void
loadSharedCache(const XmlNode &node, uncore::SharedCacheParams &l,
                int &count, std::vector<std::string> &warnings)
{
    ParamReader p(node, warnings);
    p.getInt("count", count);
    double kb = l.capacityBytes / 1024.0;
    p.getDouble("size_kb", kb);
    l.capacityBytes = kb * 1024.0;
    p.getInt("block", l.blockBytes);
    p.getInt("assoc", l.assoc);
    p.getInt("banks", l.banks);
    p.getInt("ports", l.ports);
    p.getInt("directory_sharers", l.directorySharers);
    double mhz = l.clockRate / MHz;
    p.getDouble("clock_rate_mhz", mhz);
    l.clockRate = mhz * MHz;
    std::string flavor = "LSTP";
    p.getString("device_type", flavor);
    l.flavor = parseFlavor(flavor);
    std::string cell = "SRAM";
    p.getString("cell_type", cell);
    if (cell == "EDRAM" || cell == "edram")
        l.dataCell = array::CellType::EDRAM;
    else if (cell != "SRAM" && cell != "sram")
        throw ConfigError("unknown cache cell type '" + cell + "'");
    l.name = node.attr("id").empty() ? l.name : node.attr("id");
}

void
loadNoc(const XmlNode &node, uncore::NocParams &n,
        std::vector<std::string> &warnings)
{
    ParamReader p(node, warnings);
    std::string topo = "mesh";
    p.getString("topology", topo);
    if (topo == "mesh")
        n.topology = uncore::NocTopology::Mesh2D;
    else if (topo == "torus")
        n.topology = uncore::NocTopology::Torus2D;
    else if (topo == "ring")
        n.topology = uncore::NocTopology::Ring;
    else if (topo == "bus")
        n.topology = uncore::NocTopology::Bus;
    else if (topo == "crossbar")
        n.topology = uncore::NocTopology::Crossbar;
    else
        throw ConfigError("unknown NoC topology '" + topo + "'");

    p.getInt("nodes_x", n.nodesX);
    p.getInt("nodes_y", n.nodesY);
    p.getInt("flit_bits", n.flitBits);
    double link_mm = n.linkLength / mm;
    p.getDouble("link_length_mm", link_mm);
    n.linkLength = link_mm * mm;
    double mhz = n.clockRate / MHz;
    p.getDouble("clock_rate_mhz", mhz);
    n.clockRate = mhz * MHz;
    p.getInt("virtual_channels", n.router.virtualChannels);
    p.getInt("buffer_depth", n.router.bufferDepth);
    p.getBool("low_swing_links", n.lowSwingLinks);
}

void
loadMemCtrl(const XmlNode &node, uncore::MemCtrlParams &m,
            std::vector<std::string> &warnings)
{
    ParamReader p(node, warnings);
    p.getInt("channels", m.channels);
    p.getInt("bus_width", m.dataBusBits);
    double mhz = m.busClock / MHz;
    p.getDouble("bus_clock_mhz", mhz);
    m.busClock = mhz * MHz;
    std::string type = "DDR2";
    p.getString("dram_type", type);
    if (type == "DDR2")
        m.dramType = uncore::DramType::DDR2;
    else if (type == "DDR3")
        m.dramType = uncore::DramType::DDR3;
    else if (type == "FBDIMM" || type == "FbDimm")
        m.dramType = uncore::DramType::FbDimm;
    else if (type == "RDRAM" || type == "Rdram")
        m.dramType = uncore::DramType::Rdram;
    else
        throw ConfigError("unknown DRAM type '" + type + "'");
    p.getInt("request_queue", m.requestQueueEntries);
}

void
loadChipIo(const XmlNode &node, uncore::ChipIoParams &io,
           std::vector<std::string> &warnings)
{
    ParamReader p(node, warnings);
    p.getInt("pins", io.signalPins);
    p.getDouble("io_voltage", io.ioVoltage);
    double pin_cap_pf = io.pinCap / pF;
    p.getDouble("pin_cap_pf", pin_cap_pf);
    io.pinCap = pin_cap_pf * pF;
    p.getDouble("toggle_rate", io.toggleRate);
    double mhz = io.busClock / MHz;
    p.getDouble("bus_clock_mhz", mhz);
    io.busClock = mhz * MHz;
    p.getDouble("static_power", io.staticPower);
}

} // namespace

LoadResult
loadSystemParams(const XmlNode &root)
{
    fatalIf(root.tag != "component" || root.attr("type") != "System",
            "root element must be <component type=\"System\">");

    LoadResult out;
    chip::SystemParams &s = out.system;
    s.name = root.hasAttr("id") ? root.attr("id") : s.name;

    {
        ParamReader p(root, out.warnings);
        p.getInt("technology_node", s.nodeNm);
        p.getDouble("temperature", s.temperature);
        std::string flavor = "HP";
        p.getString("device_type", flavor);
        s.coreFlavor = parseFlavor(flavor);
        std::string proj = "aggressive";
        p.getString("interconnect_projection", proj);
        s.projection = (proj == "conservative")
            ? tech::WireProjection::Conservative
            : tech::WireProjection::Aggressive;
        p.getInt("core_count", s.numCores);
        p.getDouble("vdd", s.vdd);
        p.getDouble("white_space", s.whiteSpaceFraction);
    }

    bool saw_core = false;
    for (const XmlNode *comp : root.childrenNamed("component")) {
        const std::string &type = comp->attr("type");
        if (type == "Core") {
            loadCore(*comp, s.core, out.warnings);
            saw_core = true;
        } else if (type == "L2") {
            s.numL2 = 1;
            loadSharedCache(*comp, s.l2, s.numL2, out.warnings);
        } else if (type == "L3") {
            s.numL3 = 1;
            loadSharedCache(*comp, s.l3, s.numL3, out.warnings);
        } else if (type == "Directory") {
            s.hasDirectory = true;
            ParamReader p(*comp, out.warnings);
            std::string style = "sparse";
            p.getString("style", style);
            s.directory.style = (style == "duplicate_tags")
                ? uncore::DirectoryStyle::DuplicateTags
                : uncore::DirectoryStyle::SparseFullMap;
            p.getInt("tracked_lines", s.directory.trackedLines);
            p.getInt("sharers", s.directory.sharers);
            p.getInt("banks", s.directory.banks);
            double dir_mhz = s.directory.clockRate / MHz;
            p.getDouble("clock_rate_mhz", dir_mhz);
            s.directory.clockRate = dir_mhz * MHz;
        } else if (type == "Noc") {
            s.hasNoc = true;
            loadNoc(*comp, s.noc, out.warnings);
        } else if (type == "MemoryController") {
            s.hasMemCtrl = true;
            loadMemCtrl(*comp, s.memCtrl, out.warnings);
        } else if (type == "ChipIo") {
            s.hasIo = true;
            loadChipIo(*comp, s.io, out.warnings);
        } else {
            out.warnings.push_back("unknown component type '" + type +
                                   "'");
        }
    }
    fatalIf(!saw_core, "configuration has no <component type=\"Core\">");
    return out;
}

LoadResult
loadSystemParamsFromFile(const std::string &path)
{
    return loadSystemParams(parseXmlFile(path));
}

namespace {

/** Read the <stat> entries of one component into a name->value map. */
std::map<std::string, double>
readStats(const XmlNode &node)
{
    std::map<std::string, double> out;
    for (const XmlNode *st : node.childrenNamed("stat")) {
        fatalIf(!st->hasAttr("name") || !st->hasAttr("value"),
                "<stat> needs name and value attributes");
        out[st->attr("name")] = std::stod(st->attr("value"));
    }
    return out;
}

/** counters[name] / cycles, or the fallback when the stat is absent. */
double
rate(const std::map<std::string, double> &counters,
     const std::string &name, double cycles, double fallback)
{
    auto it = counters.find(name);
    if (it == counters.end())
        return fallback;
    fatalIf(it->second < 0.0, "negative stat '" + name + "'");
    return it->second / cycles;
}

/** Apply a core component's simulator counters over the TDP defaults. */
void
applyCoreCounters(const XmlNode &node, const chip::SystemParams &sys,
                  core::CoreStats &c)
{
    const auto counters = readStats(node);
    auto cyc = counters.find("total_cycles");
    if (cyc == counters.end())
        return;  // no counters: keep the defaults
    fatalIf(cyc->second <= 0.0, "total_cycles must be positive");
    const double cycles = cyc->second;

    const double ipc =
        rate(counters, "committed_instructions", cycles, c.commits);
    c.commits = ipc;
    c.fetches = rate(counters, "fetched_instructions", cycles,
                     ipc * 1.1);
    c.decodes = c.fetches;
    if (sys.core.outOfOrder) {
        c.renames = c.decodes;
        c.dispatches = c.decodes;
    }
    c.intOps = rate(counters, "int_instructions", cycles, c.intOps);
    c.fpOps = rate(counters, "fp_instructions", cycles, c.fpOps);
    c.mulOps = rate(counters, "mul_instructions", cycles, c.mulOps);
    c.branches =
        rate(counters, "branch_instructions", cycles, c.branches);
    const double mispred =
        rate(counters, "branch_mispredictions", cycles, 0.0);
    (void)mispred;  // flush energy rides in the fetch over-rate
    c.loads = rate(counters, "loads", cycles, c.loads);
    c.stores = rate(counters, "stores", cycles, c.stores);

    c.intRegReads = 1.6 * (c.intOps + c.mulOps + c.loads + c.stores);
    c.intRegWrites = 0.8 * (c.intOps + c.mulOps + c.loads);
    c.fpRegReads = 1.6 * c.fpOps;
    c.fpRegWrites = 0.8 * c.fpOps;
    if (sys.core.outOfOrder) {
        c.intIssues = c.intOps + c.mulOps + c.loads + c.stores +
                      c.branches;
        c.fpIssues = c.fpOps;
    }
    c.bypasses = ipc * 0.5;

    const double ic_acc =
        rate(counters, "icache_accesses", cycles,
             c.icacheRates.accesses());
    const double ic_miss =
        rate(counters, "icache_misses", cycles,
             c.icacheRates.readMisses);
    c.icacheRates.readHits = std::max(0.0, ic_acc - ic_miss);
    c.icacheRates.readMisses = ic_miss;
    c.icacheRates.writeHits = 0.0;
    c.icacheRates.writeMisses = 0.0;

    const double dc_acc =
        rate(counters, "dcache_accesses", cycles,
             c.dcacheRates.accesses());
    const double dc_miss =
        rate(counters, "dcache_misses", cycles,
             c.dcacheRates.misses());
    const double load_frac =
        c.loads / std::max(1e-12, c.loads + c.stores);
    c.dcacheRates.readHits =
        std::max(0.0, (dc_acc - dc_miss) * load_frac);
    c.dcacheRates.writeHits =
        std::max(0.0, (dc_acc - dc_miss) * (1.0 - load_frac));
    c.dcacheRates.readMisses = dc_miss * load_frac;
    c.dcacheRates.writeMisses = dc_miss * (1.0 - load_frac);

    c.itlbAccesses =
        rate(counters, "itlb_accesses", cycles, ic_acc);
    c.dtlbAccesses =
        rate(counters, "dtlb_accesses", cycles, dc_acc);
    c.itlbMisses = c.itlbAccesses * 0.001;
    c.dtlbMisses = c.dtlbAccesses * 0.001;

    // Utilization-derived secondary knobs.
    const double busy =
        std::min(1.0, ipc / std::max(1.0, 0.8 * sys.core.issueWidth));
    c.pipelineActivity = 0.1 + 0.25 * busy;
    c.clockGating = 0.35 + 0.65 * busy;
    if (sys.core.powerGating)
        c.sleepFraction = rate(counters, "gated_cycles", cycles, 0.0);
}

/** Apply a shared-cache component's counters. */
void
applyCacheCounters(const XmlNode &node, double cycles,
                   array::CacheRates &r)
{
    const auto counters = readStats(node);
    if (counters.empty() || cycles <= 0.0)
        return;
    const double ra =
        rate(counters, "read_accesses", cycles, r.readHits +
                                                    r.readMisses);
    const double rm =
        rate(counters, "read_misses", cycles, r.readMisses);
    const double wa =
        rate(counters, "write_accesses", cycles, r.writeHits +
                                                     r.writeMisses);
    const double wm =
        rate(counters, "write_misses", cycles, r.writeMisses);
    r.readHits = std::max(0.0, ra - rm);
    r.readMisses = rm;
    r.writeHits = std::max(0.0, wa - wm);
    r.writeMisses = wm;
}

} // namespace

stats::ChipStats
loadChipStats(const XmlNode &root, const chip::SystemParams &params)
{
    stats::ChipStats s = stats::ChipStats::tdp(params);

    // --- Pass 1: per-component simulator counters. -----------------------
    double core_cycles = 0.0;
    for (const XmlNode *comp : root.childrenNamed("component")) {
        const std::string &type = comp->attr("type");
        if (type == "Core") {
            applyCoreCounters(*comp, params, s.perCore);
            const auto counters = readStats(*comp);
            auto it = counters.find("total_cycles");
            if (it != counters.end())
                core_cycles = it->second;
            s.perGroup.clear();  // counters describe the average core
        } else if (type == "L2") {
            applyCacheCounters(*comp, core_cycles, s.l2Rates);
        } else if (type == "L3") {
            applyCacheCounters(*comp, core_cycles, s.l3Rates);
        } else if (type == "Noc" && core_cycles > 0.0) {
            const auto counters = readStats(*comp);
            auto it = counters.find("total_flits");
            if (it != counters.end())
                s.nocFlitsPerCycle = it->second / core_cycles;
        } else if (type == "MemoryController" && core_cycles > 0.0) {
            const auto counters = readStats(*comp);
            auto it = counters.find("bytes_transferred");
            if (it != counters.end()) {
                uncore::MemCtrlParams mc = params.memCtrl;
                const double peak = (mc.peakBandwidth > 0.0
                    ? mc.peakBandwidth
                    : mc.busClock * 2.0 * (mc.dataBusBits / 8.0)) *
                    mc.channels;
                const double seconds =
                    core_cycles / params.core.clockRate;
                s.mcUtilization = std::min(
                    1.0, it->second / seconds / peak);
            }
        }
    }

    // --- Pass 2: global activity scaling. --------------------------------
    double activity_scale = 1.0;
    for (const XmlNode *st : root.childrenNamed("stat")) {
        if (st->attr("name") == "activity_scale")
            activity_scale = std::stod(st->attr("value"));
    }
    s.perCore = s.perCore.scaled(activity_scale);
    s.nocFlitsPerCycle *= activity_scale;
    s.mcUtilization *= activity_scale;
    s.ioActivityScale *= activity_scale;

    auto scale_cache = [&](array::CacheRates &r) {
        r.readHits *= activity_scale;
        r.readMisses *= activity_scale;
        r.writeHits *= activity_scale;
        r.writeMisses *= activity_scale;
    };
    scale_cache(s.l2Rates);
    scale_cache(s.l3Rates);
    return s;
}

} // namespace config
} // namespace mcpat
