/**
 * @file
 * XML-to-parameters mapping with strict, located validation.
 *
 * Every <param> value is parsed as a full token (no "64kb"-style
 * truncation), checked against a per-key range or enum constraint, and
 * every violation is recorded as a Diagnostic carrying the component
 * id, key, and XML source line.  All problems in a file are collected
 * before loadSystemParams throws one ValidationError summarizing them.
 */

#include "config/xml_loader.hh"

#include <functional>
#include <initializer_list>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include <algorithm>

#include "common/logging.hh"
#include "common/strict_parse.hh"

namespace mcpat {
namespace config {

namespace {

/**
 * Typed access to one component's <param> entries.
 *
 * Parse or constraint failures are recorded in the shared
 * DiagnosticList (with component/key/line context); the output
 * variable keeps its previous value, so the caller's defaults are never
 * clobbered by garbage.
 */
class ParamReader
{
  public:
    ParamReader(const XmlNode &node, DiagnosticList &diags)
        : _diags(diags), _line(node.line)
    {
        _component = node.attr("id").empty() ? node.attr("type")
                                             : node.attr("id");
        for (const XmlNode *p : node.childrenNamed("param")) {
            if (!p->hasAttr("name") || !p->hasAttr("value")) {
                _diags.add(Severity::Error, _component, "",
                           "<param> needs name and value attributes",
                           p->line);
                continue;
            }
            _values[p->attr("name")] = {p->attr("value"), p->line};
        }
    }

    ~ParamReader()
    {
        for (const auto &[key, entry] : _values) {
            if (!_consumed.count(key)) {
                _diags.add(Severity::Warning, _component, key,
                           "unknown param '" + key + "'", entry.line);
            }
        }
    }

    bool
    has(const std::string &key) const
    {
        return _values.count(key) > 0;
    }

    /** Record an error when a required key is absent. */
    void
    require(const std::string &key)
    {
        if (!has(key)) {
            _diags.add(Severity::Error, _component, key,
                       "required param '" + key + "' is missing",
                       _line);
        }
    }

    void
    getInt(const std::string &key, int &out, long long min,
           long long max)
    {
        const Entry *e = fetch(key);
        if (!e)
            return;
        long long v = 0;
        if (!common::parseLongStrict(e->value, v)) {
            error(key, *e,
                  "invalid integer '" + e->value +
                      "' (the whole value must be a decimal number)");
            return;
        }
        if (v < min || v > max) {
            error(key, *e,
                  "value " + e->value + " out of range [" +
                      std::to_string(min) + ", " + std::to_string(max) +
                      "]");
            return;
        }
        out = static_cast<int>(v);
    }

    void
    getDouble(const std::string &key, double &out, double min,
              double max)
    {
        const Entry *e = fetch(key);
        if (!e)
            return;
        double v = 0.0;
        if (!common::parseDoubleStrict(e->value, v)) {
            error(key, *e,
                  "invalid number '" + e->value +
                      "' (the whole value must be a finite number)");
            return;
        }
        if (v < min || v > max) {
            error(key, *e,
                  "value " + e->value + " out of range [" +
                      std::to_string(min) + ", " + std::to_string(max) +
                      "]");
            return;
        }
        out = v;
    }

    void
    getBool(const std::string &key, bool &out)
    {
        const Entry *e = fetch(key);
        if (!e)
            return;
        bool v = false;
        if (!common::parseBoolStrict(e->value, v)) {
            error(key, *e,
                  "invalid boolean '" + e->value +
                      "' (use 1/0, true/false, or yes/no)");
            return;
        }
        out = v;
    }

    /**
     * Match the value against an allowed-spellings table.  Unknown
     * tokens are rejected (they used to fall through to a silent
     * default for several keys).
     */
    template <typename T>
    void
    getEnum(const std::string &key, T &out,
            std::initializer_list<std::pair<const char *, T>> allowed)
    {
        const Entry *e = fetch(key);
        if (!e)
            return;
        for (const auto &[name, v] : allowed) {
            if (e->value == name) {
                out = v;
                return;
            }
        }
        std::string expect;
        for (const auto &[name, v] : allowed) {
            (void)v;
            expect += expect.empty() ? name : std::string(", ") + name;
        }
        error(key, *e,
              "invalid value '" + e->value + "' (allowed: " + expect +
                  ")");
    }

    const std::string &component() const { return _component; }

  private:
    struct Entry
    {
        std::string value;
        int line = 0;
    };

    const Entry *
    fetch(const std::string &key)
    {
        _consumed.insert(key);
        auto it = _values.find(key);
        return it == _values.end() ? nullptr : &it->second;
    }

    void
    error(const std::string &key, const Entry &e,
          const std::string &message)
    {
        (void)e;
        _diags.add(Severity::Error, _component, key, message,
                   _values.at(key).line);
    }

    std::map<std::string, Entry> _values;
    std::set<std::string> _consumed;
    std::string _component;
    DiagnosticList &_diags;
    int _line = 0;
};

constexpr long long kMaxCount = 1 << 20;  ///< generic structure bound

/** Allowed device-flavor spellings. */
constexpr std::initializer_list<std::pair<const char *,
                                          tech::DeviceFlavor>>
    kFlavors = {{"HP", tech::DeviceFlavor::HP},
                {"hp", tech::DeviceFlavor::HP},
                {"LSTP", tech::DeviceFlavor::LSTP},
                {"lstp", tech::DeviceFlavor::LSTP},
                {"LOP", tech::DeviceFlavor::LOP},
                {"lop", tech::DeviceFlavor::LOP}};

void
loadCore(const XmlNode &node, core::CoreParams &c,
         DiagnosticList &diags)
{
    ParamReader p(node, diags);
    p.require("clock_rate_mhz");
    double mhz = c.clockRate / MHz;
    p.getDouble("clock_rate_mhz", mhz, 1.0, 100000.0);
    c.clockRate = mhz * MHz;

    p.getBool("out_of_order", c.outOfOrder);
    p.getBool("x86", c.x86);
    p.getInt("threads", c.threads, 1, 128);
    p.getInt("fetch_width", c.fetchWidth, 1, 32);
    p.getInt("decode_width", c.decodeWidth, 1, 32);
    p.getInt("issue_width", c.issueWidth, 1, 32);
    p.getInt("commit_width", c.commitWidth, 1, 32);
    p.getInt("pipeline_depth", c.pipelineStages, 3, 64);
    p.getDouble("dynamic_margin", c.dynamicMargin, 1.0, 5.0);
    p.getBool("power_gating", c.powerGating);

    p.getInt("rob_size", c.robEntries, 8, kMaxCount);
    p.getInt("instruction_window_size", c.intWindowEntries, 2,
             kMaxCount);
    p.getInt("fp_instruction_window_size", c.fpWindowEntries, 1,
             kMaxCount);
    p.getInt("phy_int_regs", c.physIntRegs, 1, kMaxCount);
    p.getInt("phy_fp_regs", c.physFpRegs, 1, kMaxCount);
    p.getInt("arch_int_regs", c.archIntRegs, 1, kMaxCount);
    p.getInt("arch_fp_regs", c.archFpRegs, 1, kMaxCount);

    p.getEnum("rat_style", c.ratStyle,
              {{"ram", logic::RatStyle::Ram},
               {"cam", logic::RatStyle::Cam}});

    p.getInt("alu_count", c.intAlus, 1, 64);
    p.getInt("fpu_count", c.fpus, 0, 64);
    p.getInt("mul_count", c.muls, 0, 64);
    p.getBool("has_fpu", c.hasFpu);
    p.getBool("has_branch_predictor", c.hasBranchPredictor);

    p.getInt("load_queue_size", c.loadQueueEntries, 1, kMaxCount);
    p.getInt("store_queue_size", c.storeQueueEntries, 1, kMaxCount);
    p.getInt("itlb_entries", c.itlbEntries, 1, kMaxCount);
    p.getInt("dtlb_entries", c.dtlbEntries, 1, kMaxCount);

    p.getInt("btb_entries", c.predictor.btbEntries, 1, kMaxCount);
    p.getInt("local_predictor_entries", c.predictor.localEntries, 1,
             kMaxCount);
    p.getInt("global_predictor_entries", c.predictor.globalEntries, 1,
             kMaxCount);
    p.getInt("chooser_predictor_entries", c.predictor.chooserEntries,
             1, kMaxCount);
    p.getInt("ras_size", c.predictor.rasEntries, 1, kMaxCount);

    double icache_kb = c.icache.capacityBytes / 1024.0;
    p.getDouble("icache_kb", icache_kb, 0.125, 65536.0);
    c.icache.capacityBytes = icache_kb * 1024.0;
    p.getInt("icache_block", c.icache.blockBytes, 4, 4096);
    p.getInt("icache_assoc", c.icache.assoc, 0, 128);
    p.getInt("icache_banks", c.icache.banks, 1, 1024);

    double dcache_kb = c.dcache.capacityBytes / 1024.0;
    p.getDouble("dcache_kb", dcache_kb, 0.125, 65536.0);
    c.dcache.capacityBytes = dcache_kb * 1024.0;
    p.getInt("dcache_block", c.dcache.blockBytes, 4, 4096);
    p.getInt("dcache_assoc", c.dcache.assoc, 0, 128);
    p.getInt("dcache_banks", c.dcache.banks, 1, 1024);
}

void
loadSharedCache(const XmlNode &node, uncore::SharedCacheParams &l,
                int &count, DiagnosticList &diags)
{
    ParamReader p(node, diags);
    p.getInt("count", count, 1, 1024);
    double kb = l.capacityBytes / 1024.0;
    p.getDouble("size_kb", kb, 1.0, 1048576.0);
    l.capacityBytes = kb * 1024.0;
    p.getInt("block", l.blockBytes, 4, 4096);
    p.getInt("assoc", l.assoc, 0, 128);
    p.getInt("banks", l.banks, 1, 1024);
    p.getInt("ports", l.ports, 1, 16);
    p.getInt("directory_sharers", l.directorySharers, 0, 4096);
    double mhz = l.clockRate / MHz;
    p.getDouble("clock_rate_mhz", mhz, 1.0, 100000.0);
    l.clockRate = mhz * MHz;
    p.getEnum("device_type", l.flavor, kFlavors);
    p.getEnum("cell_type", l.dataCell,
              {{"SRAM", array::CellType::SRAM},
               {"sram", array::CellType::SRAM},
               {"EDRAM", array::CellType::EDRAM},
               {"edram", array::CellType::EDRAM}});
    l.name = node.attr("id").empty() ? l.name : node.attr("id");
}

void
loadNoc(const XmlNode &node, uncore::NocParams &n,
        DiagnosticList &diags)
{
    ParamReader p(node, diags);
    p.getEnum("topology", n.topology,
              {{"mesh", uncore::NocTopology::Mesh2D},
               {"torus", uncore::NocTopology::Torus2D},
               {"ring", uncore::NocTopology::Ring},
               {"bus", uncore::NocTopology::Bus},
               {"crossbar", uncore::NocTopology::Crossbar}});

    p.getInt("nodes_x", n.nodesX, 1, 1024);
    p.getInt("nodes_y", n.nodesY, 1, 1024);
    p.getInt("flit_bits", n.flitBits, 1, 4096);
    double link_mm = n.linkLength / mm;
    // 0 keeps the "derive from tile pitch" behavior.
    p.getDouble("link_length_mm", link_mm, 0.0, 100.0);
    n.linkLength = link_mm * mm;
    double mhz = n.clockRate / MHz;
    p.getDouble("clock_rate_mhz", mhz, 1.0, 100000.0);
    n.clockRate = mhz * MHz;
    p.getInt("virtual_channels", n.router.virtualChannels, 1, 64);
    p.getInt("buffer_depth", n.router.bufferDepth, 1, 1024);
    p.getBool("low_swing_links", n.lowSwingLinks);
}

void
loadMemCtrl(const XmlNode &node, uncore::MemCtrlParams &m,
            DiagnosticList &diags)
{
    ParamReader p(node, diags);
    p.getInt("channels", m.channels, 1, 64);
    p.getInt("bus_width", m.dataBusBits, 1, 1024);
    double mhz = m.busClock / MHz;
    p.getDouble("bus_clock_mhz", mhz, 1.0, 100000.0);
    m.busClock = mhz * MHz;
    p.getEnum("dram_type", m.dramType,
              {{"DDR2", uncore::DramType::DDR2},
               {"DDR3", uncore::DramType::DDR3},
               {"FBDIMM", uncore::DramType::FbDimm},
               {"FbDimm", uncore::DramType::FbDimm},
               {"RDRAM", uncore::DramType::Rdram},
               {"Rdram", uncore::DramType::Rdram}});
    p.getInt("request_queue", m.requestQueueEntries, 1, kMaxCount);
}

void
loadChipIo(const XmlNode &node, uncore::ChipIoParams &io,
           DiagnosticList &diags)
{
    ParamReader p(node, diags);
    p.getInt("pins", io.signalPins, 1, 100000);
    p.getDouble("io_voltage", io.ioVoltage, 0.1, 5.0);
    double pin_cap_pf = io.pinCap / pF;
    p.getDouble("pin_cap_pf", pin_cap_pf, 0.01, 100.0);
    io.pinCap = pin_cap_pf * pF;
    p.getDouble("toggle_rate", io.toggleRate, 0.0, 1.0);
    double mhz = io.busClock / MHz;
    p.getDouble("bus_clock_mhz", mhz, 1.0, 100000.0);
    io.busClock = mhz * MHz;
    p.getDouble("static_power", io.staticPower, 0.0, 1000.0);
}

void
loadDirectory(const XmlNode &node, uncore::DirectoryParams &d,
              DiagnosticList &diags)
{
    ParamReader p(node, diags);
    p.getEnum("style", d.style,
              {{"sparse", uncore::DirectoryStyle::SparseFullMap},
               {"duplicate_tags",
                uncore::DirectoryStyle::DuplicateTags}});
    p.getInt("tracked_lines", d.trackedLines, 1, 1 << 28);
    p.getInt("sharers", d.sharers, 1, 4096);
    p.getInt("banks", d.banks, 1, 1024);
    double dir_mhz = d.clockRate / MHz;
    p.getDouble("clock_rate_mhz", dir_mhz, 1.0, 100000.0);
    d.clockRate = dir_mhz * MHz;
}

} // namespace

LoadResult
loadSystemParams(const XmlNode &root)
{
    fatalIf(root.tag != "component" || root.attr("type") != "System",
            "root element must be <component type=\"System\">");

    LoadResult out;
    chip::SystemParams &s = out.system;
    s.name = root.hasAttr("id") ? root.attr("id") : s.name;

    {
        ParamReader p(root, out.diagnostics);
        p.require("technology_node");
        p.require("core_count");
        p.getInt("technology_node", s.nodeNm, 22, 180);
        p.getDouble("temperature", s.temperature, 233.0, 420.0);
        p.getEnum("device_type", s.coreFlavor, kFlavors);
        p.getEnum("interconnect_projection", s.projection,
                  {{"aggressive", tech::WireProjection::Aggressive},
                   {"conservative",
                    tech::WireProjection::Conservative}});
        p.getInt("core_count", s.numCores, 1, 65536);
        p.getDouble("vdd", s.vdd, 0.2, 2.5);
        p.getDouble("white_space", s.whiteSpaceFraction, 0.0, 0.6);
    }

    bool saw_core = false;
    for (const XmlNode *comp : root.childrenNamed("component")) {
        const std::string &type = comp->attr("type");
        if (type == "Core") {
            loadCore(*comp, s.core, out.diagnostics);
            saw_core = true;
        } else if (type == "L2") {
            s.numL2 = 1;
            loadSharedCache(*comp, s.l2, s.numL2, out.diagnostics);
        } else if (type == "L3") {
            s.numL3 = 1;
            loadSharedCache(*comp, s.l3, s.numL3, out.diagnostics);
        } else if (type == "Directory") {
            s.hasDirectory = true;
            loadDirectory(*comp, s.directory, out.diagnostics);
        } else if (type == "Noc") {
            s.hasNoc = true;
            loadNoc(*comp, s.noc, out.diagnostics);
        } else if (type == "MemoryController") {
            s.hasMemCtrl = true;
            loadMemCtrl(*comp, s.memCtrl, out.diagnostics);
        } else if (type == "ChipIo") {
            s.hasIo = true;
            loadChipIo(*comp, s.io, out.diagnostics);
        } else {
            out.diagnostics.add(
                Severity::Warning, s.name, "",
                "unknown component type '" + type + "'", comp->line);
        }
    }
    if (!saw_core) {
        out.diagnostics.add(
            Severity::Error, s.name, "",
            "configuration has no <component type=\"Core\">",
            root.line);
    }

    // Legacy string mirror of the Warning-severity diagnostics.
    for (const auto &d : out.diagnostics) {
        if (d.severity != Severity::Warning)
            continue;
        if (!d.key.empty()) {
            out.warnings.push_back("unknown param '" + d.key +
                                   "' in component '" + d.component +
                                   "'");
        } else {
            out.warnings.push_back(d.message);
        }
    }

    out.diagnostics.throwIfErrors("configuration '" + s.name + "'");
    return out;
}

LoadResult
loadSystemParamsFromFile(const std::string &path)
{
    try {
        return loadSystemParams(parseXmlFile(path));
    } catch (const ValidationError &e) {
        // Re-key the summary on the file path (more useful than the
        // config's self-declared name when batching many files).
        throw ValidationError(path, e.diagnostics());
    }
}

namespace {

/**
 * Read the <stat> entries of one component into a name->value map.
 * Malformed or non-finite values are located errors — a runtime
 * counter that does not parse must not silently fall back to TDP
 * defaults.
 */
std::map<std::string, double>
readStats(const XmlNode &node, DiagnosticList &diags)
{
    const std::string component = node.attr("id").empty()
        ? node.attr("type")
        : node.attr("id");
    std::map<std::string, double> out;
    for (const XmlNode *st : node.childrenNamed("stat")) {
        if (!st->hasAttr("name") || !st->hasAttr("value")) {
            diags.add(Severity::Error, component, "",
                      "<stat> needs name and value attributes",
                      st->line);
            continue;
        }
        double v = 0.0;
        if (!common::parseDoubleStrict(st->attr("value"), v)) {
            diags.add(Severity::Error, component, st->attr("name"),
                      "invalid stat value '" + st->attr("value") +
                          "' (the whole value must be a finite number)",
                      st->line);
            continue;
        }
        if (v < 0.0) {
            diags.add(Severity::Error, component, st->attr("name"),
                      "negative stat value '" + st->attr("value") +
                          "' (counters cannot run backwards)",
                      st->line);
            continue;
        }
        out[st->attr("name")] = v;
    }
    return out;
}

/** counters[name] / cycles, or the fallback when the stat is absent. */
double
rate(const std::map<std::string, double> &counters,
     const std::string &name, double cycles, double fallback)
{
    auto it = counters.find(name);
    if (it == counters.end())
        return fallback;
    fatalIf(it->second < 0.0, "negative stat '" + name + "'");
    return it->second / cycles;
}

/** Apply a core component's simulator counters over the TDP defaults. */
void
applyCoreCounters(const XmlNode &node, const chip::SystemParams &sys,
                  core::CoreStats &c, DiagnosticList &diags)
{
    const auto counters = readStats(node, diags);
    auto cyc = counters.find("total_cycles");
    if (cyc == counters.end())
        return;  // no counters: keep the defaults
    fatalIf(cyc->second <= 0.0, "total_cycles must be positive");
    const double cycles = cyc->second;

    const double ipc =
        rate(counters, "committed_instructions", cycles, c.commits);
    c.commits = ipc;
    c.fetches = rate(counters, "fetched_instructions", cycles,
                     ipc * 1.1);
    c.decodes = c.fetches;
    if (sys.core.outOfOrder) {
        c.renames = c.decodes;
        c.dispatches = c.decodes;
    }
    c.intOps = rate(counters, "int_instructions", cycles, c.intOps);
    c.fpOps = rate(counters, "fp_instructions", cycles, c.fpOps);
    c.mulOps = rate(counters, "mul_instructions", cycles, c.mulOps);
    c.branches =
        rate(counters, "branch_instructions", cycles, c.branches);
    const double mispred =
        rate(counters, "branch_mispredictions", cycles, 0.0);
    (void)mispred;  // flush energy rides in the fetch over-rate
    c.loads = rate(counters, "loads", cycles, c.loads);
    c.stores = rate(counters, "stores", cycles, c.stores);

    c.intRegReads = 1.6 * (c.intOps + c.mulOps + c.loads + c.stores);
    c.intRegWrites = 0.8 * (c.intOps + c.mulOps + c.loads);
    c.fpRegReads = 1.6 * c.fpOps;
    c.fpRegWrites = 0.8 * c.fpOps;
    if (sys.core.outOfOrder) {
        c.intIssues = c.intOps + c.mulOps + c.loads + c.stores +
                      c.branches;
        c.fpIssues = c.fpOps;
    }
    c.bypasses = ipc * 0.5;

    const double ic_acc =
        rate(counters, "icache_accesses", cycles,
             c.icacheRates.accesses());
    const double ic_miss =
        rate(counters, "icache_misses", cycles,
             c.icacheRates.readMisses);
    c.icacheRates.readHits = std::max(0.0, ic_acc - ic_miss);
    c.icacheRates.readMisses = ic_miss;
    c.icacheRates.writeHits = 0.0;
    c.icacheRates.writeMisses = 0.0;

    const double dc_acc =
        rate(counters, "dcache_accesses", cycles,
             c.dcacheRates.accesses());
    const double dc_miss =
        rate(counters, "dcache_misses", cycles,
             c.dcacheRates.misses());
    const double load_frac =
        c.loads / std::max(1e-12, c.loads + c.stores);
    c.dcacheRates.readHits =
        std::max(0.0, (dc_acc - dc_miss) * load_frac);
    c.dcacheRates.writeHits =
        std::max(0.0, (dc_acc - dc_miss) * (1.0 - load_frac));
    c.dcacheRates.readMisses = dc_miss * load_frac;
    c.dcacheRates.writeMisses = dc_miss * (1.0 - load_frac);

    c.itlbAccesses =
        rate(counters, "itlb_accesses", cycles, ic_acc);
    c.dtlbAccesses =
        rate(counters, "dtlb_accesses", cycles, dc_acc);
    c.itlbMisses = c.itlbAccesses * 0.001;
    c.dtlbMisses = c.dtlbAccesses * 0.001;

    // Utilization-derived secondary knobs.
    const double busy =
        std::min(1.0, ipc / std::max(1.0, 0.8 * sys.core.issueWidth));
    c.pipelineActivity = 0.1 + 0.25 * busy;
    c.clockGating = 0.35 + 0.65 * busy;
    if (sys.core.powerGating)
        c.sleepFraction = rate(counters, "gated_cycles", cycles, 0.0);
}

/** Apply a shared-cache component's counters. */
void
applyCacheCounters(const XmlNode &node, double cycles,
                   array::CacheRates &r, DiagnosticList &diags)
{
    const auto counters = readStats(node, diags);
    if (counters.empty() || cycles <= 0.0)
        return;
    const double ra =
        rate(counters, "read_accesses", cycles, r.readHits +
                                                    r.readMisses);
    const double rm =
        rate(counters, "read_misses", cycles, r.readMisses);
    const double wa =
        rate(counters, "write_accesses", cycles, r.writeHits +
                                                     r.writeMisses);
    const double wm =
        rate(counters, "write_misses", cycles, r.writeMisses);
    r.readHits = std::max(0.0, ra - rm);
    r.readMisses = rm;
    r.writeHits = std::max(0.0, wa - wm);
    r.writeMisses = wm;
}

} // namespace

stats::ChipStats
loadChipStats(const XmlNode &root, const chip::SystemParams &params)
{
    stats::ChipStats s = stats::ChipStats::tdp(params);
    DiagnosticList diags;

    // --- Pass 1: per-component simulator counters. -----------------------
    double core_cycles = 0.0;
    for (const XmlNode *comp : root.childrenNamed("component")) {
        const std::string &type = comp->attr("type");
        if (type == "Core") {
            applyCoreCounters(*comp, params, s.perCore, diags);
            const auto counters = readStats(*comp, diags);
            auto it = counters.find("total_cycles");
            if (it != counters.end())
                core_cycles = it->second;
            s.perGroup.clear();  // counters describe the average core
        } else if (type == "L2") {
            applyCacheCounters(*comp, core_cycles, s.l2Rates, diags);
        } else if (type == "L3") {
            applyCacheCounters(*comp, core_cycles, s.l3Rates, diags);
        } else if (type == "Noc" && core_cycles > 0.0) {
            const auto counters = readStats(*comp, diags);
            auto it = counters.find("total_flits");
            if (it != counters.end())
                s.nocFlitsPerCycle = it->second / core_cycles;
        } else if (type == "MemoryController" && core_cycles > 0.0) {
            const auto counters = readStats(*comp, diags);
            auto it = counters.find("bytes_transferred");
            if (it != counters.end()) {
                uncore::MemCtrlParams mc = params.memCtrl;
                const double peak = (mc.peakBandwidth > 0.0
                    ? mc.peakBandwidth
                    : mc.busClock * 2.0 * (mc.dataBusBits / 8.0)) *
                    mc.channels;
                const double seconds =
                    core_cycles / params.core.clockRate;
                s.mcUtilization = std::min(
                    1.0, it->second / seconds / peak);
            }
        }
    }

    // --- Pass 2: global activity scaling. --------------------------------
    double activity_scale = 1.0;
    for (const XmlNode *st : root.childrenNamed("stat")) {
        if (st->attr("name") != "activity_scale")
            continue;
        double v = 1.0;
        if (!common::parseDoubleStrict(st->attr("value"), v) ||
            v < 0.0) {
            diags.add(Severity::Error, params.name, "activity_scale",
                      "invalid stat value '" + st->attr("value") +
                          "' (must be a finite number >= 0)",
                      st->line);
            continue;
        }
        activity_scale = v;
    }
    diags.throwIfErrors("runtime statistics for '" + params.name +
                        "'");

    s.perCore = s.perCore.scaled(activity_scale);
    s.nocFlitsPerCycle *= activity_scale;
    s.mcUtilization *= activity_scale;
    s.ioActivityScale *= activity_scale;

    auto scale_cache = [&](array::CacheRates &r) {
        r.readHits *= activity_scale;
        r.readMisses *= activity_scale;
        r.writeHits *= activity_scale;
        r.writeMisses *= activity_scale;
    };
    scale_cache(s.l2Rates);
    scale_cache(s.l3Rates);
    return s;
}

} // namespace config
} // namespace mcpat
