/**
 * @file
 * Chip-level activity statistics: the per-component rates that a
 * performance simulator feeds back into McPAT for runtime power.
 */

#ifndef MCPAT_STATS_ACTIVITY_STATS_HH
#define MCPAT_STATS_ACTIVITY_STATS_HH

#include <vector>

#include "array/cache_model.hh"
#include "uncore/directory.hh"
#include "core/activity.hh"

namespace mcpat {
namespace chip {
struct SystemParams;
} // namespace chip

namespace stats {

/**
 * Activity rates for the whole chip.  Core rates are per core clock
 * cycle (average across cores); cache rates per cache clock cycle per
 * instance; NoC injection in flits per fabric cycle aggregate.
 */
struct ChipStats
{
    core::CoreStats perCore;

    /**
     * Heterogeneous chips: one activity vector per core group (same
     * order as SystemParams::coreGroups).  When empty or mismatched,
     * @c perCore applies to every group.
     */
    std::vector<core::CoreStats> perGroup;

    array::CacheRates l2Rates;   ///< per L2 instance
    array::CacheRates l3Rates;   ///< per L3 instance

    uncore::DirectoryRates directoryRates;  ///< coherence traffic

    double nocFlitsPerCycle = 0.0;   ///< aggregate injection
    double mcUtilization = 0.0;      ///< fraction of peak bandwidth
    double ioActivityScale = 0.0;    ///< relative to ChipIoParams toggle

    /** TDP (near-peak sustained) vector for a system configuration. */
    static ChipStats tdp(const chip::SystemParams &p);
};

} // namespace stats
} // namespace mcpat

#endif // MCPAT_STATS_ACTIVITY_STATS_HH
