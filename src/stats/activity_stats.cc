/**
 * @file
 * Chip-level TDP activity vector.
 */

#include "stats/activity_stats.hh"

#include <algorithm>

#include "chip/system_params.hh"

namespace mcpat {
namespace stats {

ChipStats
ChipStats::tdp(const chip::SystemParams &p)
{
    ChipStats s;
    const auto groups = p.resolvedCoreGroups();
    s.perCore = core::CoreStats::tdp(groups.front().core);
    double core_l2_traffic = 0.0;
    for (const auto &g : groups) {
        const core::CoreStats gs = core::CoreStats::tdp(g.core);
        core_l2_traffic += (gs.dcacheRates.misses() +
                            gs.icacheRates.misses()) *
                           g.count;
        s.perGroup.push_back(gs);
    }
    if (groups.size() == 1)
        s.perGroup.clear();  // homogeneous: perCore suffices
    if (p.numL2 > 0) {
        // TDP assumes sustained high load on the shared caches: at
        // least a 0.25 accesses/cycle duty per instance even when the
        // modeled L1 miss traffic is lower.
        const double per_l2 =
            std::max(core_l2_traffic / p.numL2, 0.7);
        s.l2Rates.readHits = per_l2 * 0.6;
        s.l2Rates.readMisses = per_l2 * 0.15;
        s.l2Rates.writeHits = per_l2 * 0.2;
        s.l2Rates.writeMisses = per_l2 * 0.05;
    }
    if (p.numL3 > 0) {
        const double per_l3 =
            (s.l2Rates.misses() * p.numL2) / p.numL3;
        s.l3Rates.readHits = per_l3 * 0.55;
        s.l3Rates.readMisses = per_l3 * 0.2;
        s.l3Rates.writeHits = per_l3 * 0.2;
        s.l3Rates.writeMisses = per_l3 * 0.05;
    }

    // Fabric traffic: every shared-cache access crosses the fabric
    // (request + response), with a sustained TDP floor.
    s.nocFlitsPerCycle =
        std::max(core_l2_traffic * 2.0, 0.25 * p.totalCores());

    // Directory: every shared-cache miss and a share of hits (write
    // upgrades, remote reads) consult the directory.
    s.directoryRates.lookups =
        s.l2Rates.misses() * p.numL2 + 0.2 * s.l2Rates.accesses();
    s.directoryRates.updates = 0.5 * s.directoryRates.lookups;

    s.mcUtilization = 0.7;
    s.ioActivityScale = 1.0;
    return s;
}

} // namespace stats
} // namespace mcpat
