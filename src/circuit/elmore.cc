/**
 * @file
 * Elmore delay implementations.
 */

#include "circuit/elmore.hh"

#include "common/logging.hh"
#include "circuit/logical_effort.hh"

namespace mcpat {
namespace circuit {

double
elmoreLadderDelay(double drive_res, const std::vector<RcSegment> &segments,
                  double c_load)
{
    // Downstream capacitance seen through each resistance.
    double total_c = c_load;
    for (const auto &s : segments)
        total_c += s.c;

    double delay = drive_res * total_c;
    double remaining = total_c;
    for (const auto &s : segments) {
        // The segment resistance charges everything at or beyond its far
        // node (its own node cap is at the far side).
        delay += s.r * remaining;
        remaining -= s.c;
    }
    return rcDelayFactor * delay;
}

double
distributedLineDelay(double drive_res, double wire_res, double wire_cap,
                     double c_load)
{
    return rcDelayFactor * (drive_res * (wire_cap + c_load) +
                            wire_res * c_load) +
           0.38 * wire_res * wire_cap;
}

RcTree::RcTree(double c_root)
{
    _parent.push_back(0);
    _res.push_back(0.0);
    _cap.push_back(c_root);
}

std::size_t
RcTree::addNode(std::size_t parent, double r, double c)
{
    panicIf(parent >= _parent.size(), "RC-tree parent out of range");
    _parent.push_back(parent);
    _res.push_back(r);
    _cap.push_back(c);
    return _parent.size() - 1;
}

void
RcTree::addCap(std::size_t node, double c)
{
    panicIf(node >= _cap.size(), "RC-tree node out of range");
    _cap[node] += c;
}

std::vector<double>
RcTree::downstreamCap() const
{
    // Nodes are appended parent-first, so a reverse sweep accumulates
    // subtree capacitance in one pass.
    std::vector<double> down = _cap;
    for (std::size_t i = _parent.size() - 1; i > 0; --i)
        down[_parent[i]] += down[i];
    return down;
}

double
RcTree::delayTo(std::size_t sink, double drive_res) const
{
    panicIf(sink >= _parent.size(), "RC-tree sink out of range");
    const auto down = downstreamCap();

    // Elmore: sum over resistances on the driver->sink path of
    // (resistance x capacitance downstream of that resistance).
    double delay = drive_res * down[0];
    for (std::size_t n = sink; n != 0; n = _parent[n])
        delay += _res[n] * down[n];
    return rcDelayFactor * delay;
}

double
RcTree::totalCap() const
{
    double c = 0.0;
    for (double x : _cap)
        c += x;
    return c;
}

} // namespace circuit
} // namespace mcpat
