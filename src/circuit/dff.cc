/**
 * @file
 * Flip-flop model implementation.
 *
 * A transmission-gate master/slave DFF is ~20 transistors; we express its
 * electrical figures as multiples of minimum-size device quantities.
 */

#include "circuit/dff.hh"

namespace mcpat {
namespace circuit {

Dff::Dff(const Technology &t)
{
    const double wmin = minWidth(t);
    const double c_unit = gateC(wmin, t) + drainC(wmin, t);
    const double vdd = t.vdd();

    // Multipliers for a transmission-gate master/slave flop.
    _inputC = 3.0 * gateC(wmin, t);
    _clockC = 4.0 * gateC(wmin, t);
    _dataEnergy = 10.0 * c_unit * vdd * vdd;
    _clockEnergy = _clockC * vdd * vdd +
                   2.0 * c_unit * vdd * vdd;  // local clock inverters

    // ~20 devices, roughly half NMOS / half PMOS, with stacking.
    _subLeak = circuit::subthresholdLeakage(7.0 * wmin, 10.0 * wmin, t, 0.8);
    _gateLeak = circuit::gateLeakage(17.0 * wmin, t);
    _area = t.dffArea();
}

DffBank::DffBank(int num_bits, const Technology &t)
    : bits(num_bits), cell(t)
{
    panicIf(num_bits < 0, "negative flip-flop bank width");
}

double
DffBank::energyPerCycle(double alpha) const
{
    return bits * (cell.clockEnergyPerCycle() + alpha * cell.dataEnergy());
}

double
DffBank::subthresholdLeakage() const
{
    return bits * cell.subthresholdLeakage();
}

double
DffBank::gateLeakage() const
{
    return bits * cell.gateLeakage();
}

double
DffBank::area() const
{
    return bits * cell.area();
}

double
DffBank::clockLoad() const
{
    return bits * cell.clockC();
}

} // namespace circuit
} // namespace mcpat
