/**
 * @file
 * Buffer-chain sizing via logical effort.
 */

#include "circuit/logical_effort.hh"

#include <algorithm>
#include <cmath>

namespace mcpat {
namespace circuit {

double
inverterArea(double wn, const Technology &t)
{
    // Express the inverter as a fraction of a routed NAND2-equivalent:
    // a minimum inverter is ~0.45 of a NAND2 footprint (drivers are
    // diffusion-dominated, not routing-dominated), growing linearly
    // with drive strength.
    const double strength = wn / minWidth(t);
    return 0.45 * t.logicGateArea() * std::max(1.0, strength);
}

BufferChain::BufferChain(double c_load, const Technology &t,
                         double c_in_budget, int min_stages)
{
    panicIf(c_load < 0.0, "negative load capacitance");

    const double wmin = minWidth(t);
    const Inverter unit(wmin, t);
    const double c_unit = unit.inputC(t);

    if (c_in_budget <= 0.0)
        c_in_budget = c_unit;
    _inputC = c_in_budget;

    const double path_effort = std::max(1.0, c_load / c_in_budget);
    int n = static_cast<int>(
        std::lround(std::log(path_effort) / std::log(optimalStageEffort)));
    n = std::max({n, 1, min_stages});

    const double stage_effort = std::pow(path_effort, 1.0 / n);

    // First-stage NMOS width realizing the input-capacitance budget.
    const double w0 = wmin * (c_in_budget / c_unit);

    _sizes.resize(n);
    for (int i = 0; i < n; ++i)
        _sizes[i] = w0 * std::pow(stage_effort, i);

    for (int i = 0; i < n; ++i) {
        const Inverter inv(_sizes[i], t);
        const double next_c = (i + 1 < n)
            ? Inverter(_sizes[i + 1], t).inputC(t)
            : c_load;
        _delay += stageDelay(inv.outputRes(t), inv.selfC(t), next_c);
        // Energy: every stage charges its own junctions plus its load.
        _energy += (inv.selfC(t) + next_c) * t.vdd() * t.vdd();
        _subLeak += inv.subthresholdLeakage(t);
        _gateLeak += inv.gateLeakage(t);
        _area += inverterArea(_sizes[i], t);
    }
}

} // namespace circuit
} // namespace mcpat
