/**
 * @file
 * Wire model implementations.
 */

#include "circuit/wire.hh"

#include <algorithm>
#include <cmath>

#include "circuit/elmore.hh"
#include "circuit/logical_effort.hh"

namespace mcpat {
namespace circuit {

Wire::Wire(double length, WireLayer layer, const Technology &t)
    : _tech(t), _length(length)
{
    panicIf(length < 0.0, "negative wire length");
    const auto &w = t.wire(layer);
    _res = w.resPerM * length;
    _cap = w.capPerM * length;
}

double
Wire::unrepeatedDelay(double drive_res, double c_load) const
{
    return distributedLineDelay(drive_res, _res, _cap, c_load);
}

RepeatedWire::RepeatedWire(double length, WireLayer layer,
                           const Technology &t, double size_derate)
{
    panicIf(length < 0.0, "negative wire length");
    panicIf(size_derate <= 0.0 || size_derate > 1.0,
            "repeater derating must be in (0, 1]");

    const auto &wp = t.wire(layer);
    const double r_per_m = wp.resPerM;
    const double c_per_m = wp.capPerM;

    const double wmin = minWidth(t);
    const Inverter unit(wmin, t);
    const double r0 = unit.outputRes(t);
    const double c0 = unit.inputC(t);
    const double cp = unit.selfC(t);

    // Bakoglu's closed-form optimum.
    const double l_opt =
        std::sqrt(2.0 * r0 * (c0 + cp) / (r_per_m * c_per_m));
    const double h_opt =
        std::sqrt(r0 * c_per_m / (r_per_m * c0)) * size_derate;

    int n_seg = std::max(1, static_cast<int>(std::ceil(length / l_opt)));
    const double l_seg = length / n_seg;

    _numRepeaters = n_seg;
    _repWidth = std::max(wmin, wmin * h_opt);

    const Inverter rep(_repWidth, t);
    const double seg_r = r_per_m * l_seg;
    const double seg_c = c_per_m * l_seg;

    // Per-segment delay: repeater drives its junctions, the distributed
    // segment, and the next repeater's input.
    const double seg_delay =
        rcDelayFactor * rep.outputRes(t) * (rep.selfC(t) + seg_c +
                                            rep.inputC(t)) +
        seg_r * (0.38 * seg_c + rcDelayFactor * rep.inputC(t));

    _delay = seg_delay * n_seg;
    _energy = (c_per_m * length +
               n_seg * (rep.selfC(t) + rep.inputC(t))) * t.vdd() * t.vdd();
    _subLeak = n_seg * rep.subthresholdLeakage(t);
    _gateLeak = n_seg * rep.gateLeakage(t);
    _area = n_seg * inverterArea(_repWidth, t);
}

double
repeatedWireDelayFloor(double length, WireLayer layer, const Technology &t)
{
    panicIf(length < 0.0, "negative wire length");
    const auto &wp = t.wire(layer);
    const double r_per_m = wp.resPerM;
    const double c_per_m = wp.capPerM;

    // Same repeater sizing as RepeatedWire (delay-optimal, no derate).
    const double wmin = minWidth(t);
    const Inverter unit(wmin, t);
    const double r0 = unit.outputRes(t);
    const double c0 = unit.inputC(t);
    const double h_opt = std::sqrt(r0 * c_per_m / (r_per_m * c0));
    const Inverter rep(std::max(wmin, wmin * h_opt), t);

    // RepeatedWire's total delay with n segments over length L is
    //   T(L, n) = n*A + B*L + C*L^2/n,
    //     A = rcDelayFactor * repR * (repSelf + repIn)
    //     B = rcDelayFactor * (repR * c_per_m + r_per_m * repIn)
    //     C = 0.38 * r_per_m * c_per_m.
    // Minimizing over real n > 0 (n* = L*sqrt(C/A)) floors the
    // discretized delay at every length:  T >= B*L + 2*L*sqrt(A*C).
    const double rep_r = rep.outputRes(t);
    const double rep_in = rep.inputC(t);
    const double a = rcDelayFactor * rep_r * (rep.selfC(t) + rep_in);
    const double b = rcDelayFactor * (rep_r * c_per_m + r_per_m * rep_in);
    const double c = 0.38 * r_per_m * c_per_m;
    return b * length + 2.0 * length * std::sqrt(a * c);
}

LowSwingWire::LowSwingWire(double length, WireLayer layer,
                           const Technology &t)
{
    panicIf(length < 0.0, "negative wire length");
    const auto &wp = t.wire(layer);
    const double wire_res = wp.resPerM * length;
    const double wire_cap = wp.capPerM * length;

    // Driver sized for roughly 3x the RC time constant of the line; the
    // differential pair doubles wire capacitance.
    const double wmin = minWidth(t);
    const double drv_w = std::max(wmin, 12.0 * wmin);
    const Inverter drv(drv_w, t);

    const double sense_delay = 3.0 * t.fo4();  // sense-amp resolution
    _delay = distributedLineDelay(drv.outputRes(t), wire_res,
                                  2.0 * wire_cap, 0.0) + sense_delay;

    // Energy: differential pair swings vSwing, driver internals swing Vdd.
    const double sense_energy = 8.0 * gateC(wmin, t) * t.vdd() * t.vdd();
    _energy = 2.0 * wire_cap * vSwing * t.vdd() +
              (drv.selfC(t) + drv.inputC(t)) * t.vdd() * t.vdd() +
              sense_energy;

    _subLeak = drv.subthresholdLeakage(t) +
               2.0 * Inverter(wmin, t).subthresholdLeakage(t);
    _gateLeak = drv.gateLeakage(t) +
                2.0 * Inverter(wmin, t).gateLeakage(t);
    _area = inverterArea(drv_w, t) + 6.0 * t.logicGateArea();
}

} // namespace circuit
} // namespace mcpat
