/**
 * @file
 * Clock-distribution model: a buffered global H-tree plus a local grid
 * factor, loaded by the clocked elements it reaches.
 *
 * Clock distribution is a first-class power consumer in the validation
 * targets (it dominates in high-frequency designs like Xeon Tulsa), so
 * McPAT models it explicitly rather than amortizing it into components.
 */

#ifndef MCPAT_CIRCUIT_CLOCK_NETWORK_HH
#define MCPAT_CIRCUIT_CLOCK_NETWORK_HH

#include "circuit/wire.hh"
#include "common/report.hh"

namespace mcpat {
namespace circuit {

/**
 * H-tree clock network covering a square region.
 */
class ClockNetwork
{
  public:
    /**
     * @param covered_area  silicon area the tree must span, m^2
     * @param sink_cap      total clock-pin capacitance of all clocked
     *                      elements in the region, F
     * @param t             technology operating point
     * @param grid_pitch    local clock-grid pitch, m; dense logic uses
     *                      ~20 um, latch-sparse macros (caches) ~80 um
     */
    ClockNetwork(double covered_area, double sink_cap, const Technology &t,
                 double grid_pitch = 20.0e-6);

    /** Total H-tree wire length, m. */
    double wireLength() const { return _wireLength; }

    /** Switched capacitance per cycle (wire + buffers + sinks), F. */
    double switchedCap() const { return _switchedCap; }

    /** Energy per clock cycle (activity 1 by definition), J. */
    double energyPerCycle() const { return _energy; }

    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }

    /** Buffer device area, m^2. */
    double area() const { return _area; }

    /** Insertion delay from the root to a leaf, s. */
    double insertionDelay() const { return _delay; }

    /**
     * Summarize as a report at a given clock frequency.
     * @param clock_gating_factor fraction of the tree left running on
     *        average (1.0 = no gating) for the runtime-dynamic figure.
     */
    Report makeReport(double frequency,
                      double clock_gating_factor = 1.0) const;

  private:
    double _wireLength = 0.0;
    double _switchedCap = 0.0;
    double _energy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _area = 0.0;
    double _delay = 0.0;
};

} // namespace circuit
} // namespace mcpat

#endif // MCPAT_CIRCUIT_CLOCK_NETWORK_HH
