/**
 * @file
 * On-chip wire models: plain RC wires, optimally repeated wires, and
 * low-swing differential links.
 *
 * These are the workhorses for everything long on the chip: cache
 * H-trees, NoC links, the crossbar in Niagara-class chips, result buses,
 * and the clock spine.
 */

#ifndef MCPAT_CIRCUIT_WIRE_HH
#define MCPAT_CIRCUIT_WIRE_HH

#include "circuit/transistor.hh"

namespace mcpat {
namespace circuit {

using tech::WireLayer;

/**
 * A single wire of a given length on a given metal layer.
 */
class Wire
{
  public:
    Wire(double length, WireLayer layer, const Technology &t);

    double length() const { return _length; }
    double resistance() const { return _res; }
    double capacitance() const { return _cap; }

    /**
     * Delay without repeaters: distributed line driven by drive_res into
     * c_load, s.
     */
    double unrepeatedDelay(double drive_res, double c_load) const;

  private:
    const Technology &_tech;
    double _length;
    double _res;
    double _cap;
};

/**
 * A long wire broken into optimally repeated segments (Bakoglu sizing).
 *
 * Repeater size and spacing minimize delay; energy and leakage include
 * both the wire and the inserted inverters.  A repeated wire's delay is
 * linear in length, so per-length figures are also exposed.
 */
class RepeatedWire
{
  public:
    /**
     * @param length wire length, m
     * @param layer  metal layer class
     * @param t      technology operating point
     * @param size_derate scale repeaters below the delay-optimal size
     *        (1.0 = delay-optimal; smaller saves energy at some delay cost)
     */
    RepeatedWire(double length, WireLayer layer, const Technology &t,
                 double size_derate = 1.0);

    int numRepeaters() const { return _numRepeaters; }
    double repeaterWidth() const { return _repWidth; }

    /** End-to-end delay, s. */
    double delay() const { return _delay; }

    /** Dynamic energy per transmitted event (wire + repeaters), J. */
    double energyPerEvent() const { return _energy; }

    /** Subthreshold leakage of all repeaters, W. */
    double subthresholdLeakage() const { return _subLeak; }

    /** Gate leakage of all repeaters, W. */
    double gateLeakage() const { return _gateLeak; }

    /** Repeater device area, m^2 (wire itself lives on metal). */
    double area() const { return _area; }

  private:
    int _numRepeaters = 0;
    double _repWidth = 0.0;
    double _delay = 0.0;
    double _energy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _area = 0.0;
};

/**
 * Analytic floor on repeated-wire delay: a provable lower bound on
 * RepeatedWire(len, layer, t).delay() for every len >= @p length.
 *
 * The repeater count is discretized (ceil), which makes the exact
 * delay very slightly non-monotone at segment boundaries; relaxing the
 * count to a positive real and minimizing gives a closed-form bound
 * that is linear and monotone in length.  The array-organization
 * pruner (array_model.cc) uses this to bound H-tree delay from cheap
 * geometry floors without constructing the wire.
 */
double repeatedWireDelayFloor(double length, WireLayer layer,
                              const Technology &t);

/**
 * Low-swing differential wire: a full-swing driver launches a reduced
 * voltage (vSwing) onto two wires sensed by a differential amplifier.
 * Used for long, energy-critical broadcast paths.
 */
class LowSwingWire
{
  public:
    LowSwingWire(double length, WireLayer layer, const Technology &t);

    double delay() const { return _delay; }
    double energyPerEvent() const { return _energy; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double area() const { return _area; }

    static constexpr double vSwing = 0.1;  ///< signal swing, V

  private:
    double _delay = 0.0;
    double _energy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _area = 0.0;
};

} // namespace circuit
} // namespace mcpat

#endif // MCPAT_CIRCUIT_WIRE_HH
