/**
 * @file
 * Elmore delay evaluation for RC ladders and trees.
 *
 * Wordlines, bitlines, and on-chip wires are modeled as distributed RC
 * lines; match lines and H-trees as RC trees.  The Elmore metric (first
 * moment of the impulse response) is the timing model the McPAT paper
 * uses throughout.
 */

#ifndef MCPAT_CIRCUIT_ELMORE_HH
#define MCPAT_CIRCUIT_ELMORE_HH

#include <cstddef>
#include <vector>

namespace mcpat {
namespace circuit {

/** One series segment of an RC ladder. */
struct RcSegment
{
    double r;  ///< series resistance of the segment, ohm
    double c;  ///< capacitance at the segment's far node, F
};

/**
 * 50% delay of a driver + RC ladder + lumped load.
 *
 * @param drive_res  driver output resistance, ohm
 * @param segments   ladder segments in order from driver to end
 * @param c_load     extra lumped load at the far end, F
 */
double elmoreLadderDelay(double drive_res,
                         const std::vector<RcSegment> &segments,
                         double c_load);

/**
 * 50% delay of a uniformly distributed RC line with lumped driver and
 * load: 0.693 Rdrv (Cw + Cl) + 0.693 Rw Cl + 0.38 Rw Cw.
 */
double distributedLineDelay(double drive_res, double wire_res,
                            double wire_cap, double c_load);

/**
 * General RC tree for Elmore analysis.  Nodes are added with a parent
 * index; node 0 is the driver output (r = resistance from the parent).
 */
class RcTree
{
  public:
    /** Create the tree with a root node of capacitance c_root. */
    explicit RcTree(double c_root = 0.0);

    /**
     * Add a node connected to @p parent through resistance r, carrying
     * capacitance c.  Returns the node's index.
     */
    std::size_t addNode(std::size_t parent, double r, double c);

    /** Add extra lumped capacitance at an existing node. */
    void addCap(std::size_t node, double c);

    /**
     * Elmore delay from the driver (with output resistance drive_res)
     * to @p sink: sum over path resistances times downstream caps.
     */
    double delayTo(std::size_t sink, double drive_res) const;

    /** Total capacitance of the tree, F. */
    double totalCap() const;

    std::size_t numNodes() const { return _parent.size(); }

  private:
    std::vector<std::size_t> _parent;
    std::vector<double> _res;
    std::vector<double> _cap;

    /** Capacitance of the subtree rooted at each node. */
    std::vector<double> downstreamCap() const;
};

} // namespace circuit
} // namespace mcpat

#endif // MCPAT_CIRCUIT_ELMORE_HH
