/**
 * @file
 * Transistor-level R/C helpers (CACTI-style).
 *
 * Every higher-level circuit model reduces to these few functions: gate
 * and drain capacitance per device width, effective switching resistance
 * from the drive-current density, and the leakage of basic gates.
 *
 * Convention used across the whole framework: a dynamic "energy per event"
 * is C * Vdd^2 (one full charge/discharge pair); activity factors count
 * events per cycle.
 */

#ifndef MCPAT_CIRCUIT_TRANSISTOR_HH
#define MCPAT_CIRCUIT_TRANSISTOR_HH

#include "tech/technology.hh"

namespace mcpat {
namespace circuit {

using tech::Technology;

/** Minimum-size device width (in m) for this technology: 3 F. */
double minWidth(const Technology &t);

/** Gate capacitance of a device of width w, F. */
double gateC(double w, const Technology &t);

/** Source/drain junction capacitance of a device of width w, F. */
double drainC(double w, const Technology &t);

/**
 * Effective switching resistance of an NMOS of width w, ohm.
 *
 * Includes an empirical factor (2.5) covering saturation-region averaging
 * and input-slope effects, calibrated so a computed FO4 delay matches the
 * technology table's FO4 entry.
 */
double onResistanceN(double w, const Technology &t);

/** Effective switching resistance of a PMOS of width w, ohm. */
double onResistanceP(double w, const Technology &t);

/**
 * A static CMOS inverter with NMOS width wn and PMOS width 2*wn.
 * The building block for buffer chains, drivers, and leakage estimates.
 */
struct Inverter
{
    double wn;   ///< NMOS width, m
    double wp;   ///< PMOS width, m

    Inverter(double nmos_width, const Technology &t);

    /** Input (gate) capacitance, F. */
    double inputC(const Technology &t) const;

    /** Output self-capacitance (junctions), F. */
    double selfC(const Technology &t) const;

    /** Worst-case pull resistance, ohm. */
    double outputRes(const Technology &t) const;

    /**
     * Average subthreshold leakage power, W, at the technology's
     * operating temperature (one of the two devices leaks at a time).
     */
    double subthresholdLeakage(const Technology &t) const;

    /** Gate-leakage power, W. */
    double gateLeakage(const Technology &t) const;
};

/**
 * Average capacitance of one logic net: the local wire between a gate
 * and its fanout (~700 F of routed length) plus 2.5 gate loads and the
 * driver's junctions.  Gate-counting power models must charge this, not
 * just the bare gate capacitance — local wires dominate switched
 * capacitance in synthesized logic.
 */
double averageNetCap(const Technology &t);

/** Energy of one average logic-gate output transition, J (C_net Vdd^2). */
double logicGateEnergy(const Technology &t);

/**
 * Average subthreshold leakage power of a generic gate given its total
 * NMOS and PMOS width, W.  A stacking factor (default 0.6 for 2-high
 * stacks in NAND/NOR pull networks) derates series devices.
 */
double subthresholdLeakage(double total_wn, double total_wp,
                           const Technology &t, double stack_factor = 1.0);

/** Gate-leakage power of total device width (NMOS + PMOS), W. */
double gateLeakage(double total_w, const Technology &t);

} // namespace circuit
} // namespace mcpat

#endif // MCPAT_CIRCUIT_TRANSISTOR_HH
