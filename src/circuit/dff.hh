/**
 * @file
 * Edge-triggered flip-flop model: the unit behind pipeline registers,
 * FIFOs, and small register arrays.
 */

#ifndef MCPAT_CIRCUIT_DFF_HH
#define MCPAT_CIRCUIT_DFF_HH

#include "circuit/transistor.hh"

namespace mcpat {
namespace circuit {

/**
 * One D flip-flop bit.  The clock pin switches every cycle regardless of
 * data, so clock energy is reported separately from data energy.
 */
class Dff
{
  public:
    explicit Dff(const Technology &t);

    /** Data input capacitance, F. */
    double inputC() const { return _inputC; }

    /** Clock pin capacitance (for clock-network loading), F. */
    double clockC() const { return _clockC; }

    /** Energy when the stored value toggles, J. */
    double dataEnergy() const { return _dataEnergy; }

    /** Internal clock energy per cycle (even when data holds), J. */
    double clockEnergyPerCycle() const { return _clockEnergy; }

    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double area() const { return _area; }

  private:
    double _inputC;
    double _clockC;
    double _dataEnergy;
    double _clockEnergy;
    double _subLeak;
    double _gateLeak;
    double _area;
};

/**
 * A bank of flip-flops (pipeline register, FIFO stage).
 */
struct DffBank
{
    DffBank(int bits, const Technology &t);

    int bits;
    Dff cell;

    /** Energy to clock the whole bank for one cycle with data activity
     *  alpha (fraction of bits toggling). */
    double energyPerCycle(double alpha) const;

    double subthresholdLeakage() const;
    double gateLeakage() const;
    double area() const;
    double clockLoad() const;  ///< total clock-pin cap, F
};

} // namespace circuit
} // namespace mcpat

#endif // MCPAT_CIRCUIT_DFF_HH
