/**
 * @file
 * Transistor R/C helper implementations.
 */

#include "circuit/transistor.hh"

namespace mcpat {
namespace circuit {

namespace {

/**
 * Effective-resistance factor: converts Vdd/Ion into an average switching
 * resistance, absorbing saturation-region averaging and input slope.
 * Calibrated against the per-node FO4 table entries.
 */
constexpr double resEffFactor = 2.5;

} // namespace

double
minWidth(const Technology &t)
{
    return 3.0 * t.feature();
}

double
gateC(double w, const Technology &t)
{
    return t.device().cGate * w;
}

double
drainC(double w, const Technology &t)
{
    return t.device().cJunction * w;
}

double
onResistanceN(double w, const Technology &t)
{
    return resEffFactor * t.vdd() / (t.device().ionN * w);
}

double
onResistanceP(double w, const Technology &t)
{
    return resEffFactor * t.vdd() / (t.device().ionP * w);
}

Inverter::Inverter(double nmos_width, const Technology &t)
    : wn(nmos_width), wp(2.0 * nmos_width)
{
    panicIf(nmos_width <= 0.0, "inverter with non-positive width");
    (void)t;
}

double
Inverter::inputC(const Technology &t) const
{
    return gateC(wn + wp, t);
}

double
Inverter::selfC(const Technology &t) const
{
    return drainC(wn + wp, t);
}

double
Inverter::outputRes(const Technology &t) const
{
    // With wp = 2 wn and IonP = 0.5 IonN the pull-up and pull-down
    // resistances match; report the common value.
    return onResistanceN(wn, t);
}

double
Inverter::subthresholdLeakage(const Technology &t) const
{
    return circuit::subthresholdLeakage(wn, wp, t);
}

double
Inverter::gateLeakage(const Technology &t) const
{
    return circuit::gateLeakage(wn + wp, t);
}

double
averageNetCap(const Technology &t)
{
    const double wire_len = 700.0 * t.feature();
    const double wire_c =
        wire_len * t.wire(tech::WireLayer::Local).capPerM;
    const double wmin = minWidth(t);
    return wire_c + 2.5 * gateC(2.0 * wmin, t) + drainC(4.0 * wmin, t);
}

double
logicGateEnergy(const Technology &t)
{
    return averageNetCap(t) * t.vdd() * t.vdd();
}

double
subthresholdLeakage(double total_wn, double total_wp, const Technology &t,
                    double stack_factor)
{
    const auto &d = t.device();
    // Half the time the NMOS network leaks, half the time the PMOS one.
    const double i_avg =
        0.5 * (d.ioffN * total_wn + d.ioffP * total_wp) * stack_factor;
    return i_avg * t.leakageScale() * t.vdd();
}

double
gateLeakage(double total_w, const Technology &t)
{
    return t.device().igate * total_w * t.gateLeakageScale() * t.vdd();
}

} // namespace circuit
} // namespace mcpat
