/**
 * @file
 * Logical-effort gate sizing: buffer chains and sized drivers.
 *
 * McPAT sizes all decoder, driver, and output stages with the method of
 * logical effort; this module provides the shared machinery: given an
 * input-capacitance budget and a load, build a geometrically tapered
 * inverter chain and report its delay, energy per event, leakage, and
 * device area.
 */

#ifndef MCPAT_CIRCUIT_LOGICAL_EFFORT_HH
#define MCPAT_CIRCUIT_LOGICAL_EFFORT_HH

#include <vector>

#include "circuit/transistor.hh"

namespace mcpat {
namespace circuit {

/** Delay coefficient for a single-pole RC stage (ln 2). */
constexpr double rcDelayFactor = 0.693;

/** Target per-stage effort (fanout) for buffer chains. */
constexpr double optimalStageEffort = 4.0;

/**
 * A geometrically tapered inverter chain driving a capacitive load.
 */
class BufferChain
{
  public:
    /**
     * @param c_load  load capacitance to drive, F
     * @param t       technology operating point
     * @param c_in_budget input-capacitance budget of the first stage;
     *        defaults to a minimum-size inverter
     * @param min_stages lower bound on the number of stages (e.g. to
     *        enforce signal polarity or pipelining granularity)
     */
    BufferChain(double c_load, const Technology &t,
                double c_in_budget = 0.0, int min_stages = 1);

    int numStages() const { return static_cast<int>(_sizes.size()); }

    /** Propagation delay through the chain, s. */
    double delay() const { return _delay; }

    /** Dynamic energy per switching event (all stages), J. */
    double energyPerEvent() const { return _energy; }

    /** Subthreshold leakage power, W. */
    double subthresholdLeakage() const { return _subLeak; }

    /** Gate-leakage power, W. */
    double gateLeakage() const { return _gateLeak; }

    /** Total device area (diffusion + gate footprint), m^2. */
    double area() const { return _area; }

    /** Input capacitance of the first stage, F. */
    double inputC() const { return _inputC; }

    /** NMOS width of each stage, m (exposed for tests). */
    const std::vector<double> &stageWidths() const { return _sizes; }

  private:
    std::vector<double> _sizes;
    double _delay = 0.0;
    double _energy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _area = 0.0;
    double _inputC = 0.0;
};

/**
 * Delay of one static gate stage driving a lumped load.
 *
 * @param out_res   driver output resistance, ohm
 * @param self_c    driver self (junction) capacitance, F
 * @param load_c    external load, F
 */
inline double
stageDelay(double out_res, double self_c, double load_c)
{
    return rcDelayFactor * out_res * (self_c + load_c);
}

/**
 * Device area of an inverter of NMOS width wn (PMOS 2 wn): gate footprint
 * scaled by the technology's routed-logic density.
 */
double inverterArea(double wn, const Technology &t);

} // namespace circuit
} // namespace mcpat

#endif // MCPAT_CIRCUIT_LOGICAL_EFFORT_HH
