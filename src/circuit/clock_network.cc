/**
 * @file
 * H-tree clock network implementation.
 *
 * An H-tree with k recursion levels over a D x D region uses
 * 1.5 D (2^k - 1) of wire and reaches 4^k leaf quadrants.  Recursion
 * stops when the leaf quadrant is small enough for a local grid
 * (<= ~0.3 mm edge).  Buffers along the tree are modeled with the same
 * repeater machinery as signal wires.
 */

#include "circuit/clock_network.hh"

#include <algorithm>
#include <cmath>

namespace mcpat {
namespace circuit {

namespace {

/** Leaf-quadrant edge below which a local grid takes over, m. */
constexpr double leafEdge = 0.3 * mm;

/** Local-grid wiring overhead applied to sink capacitance. */
constexpr double localGridFactor = 1.25;

} // namespace

ClockNetwork::ClockNetwork(double covered_area, double sink_cap,
                           const Technology &t, double grid_pitch)
{
    panicIf(covered_area < 0.0 || sink_cap < 0.0,
            "negative clock network inputs");
    panicIf(grid_pitch <= 0.0, "non-positive clock grid pitch");

    // Below the H-tree leaves, clock is distributed on a two-direction
    // grid — the dominant clock capacitance in real designs (e.g. the
    // Alpha gridded clocks).  Dense logic uses a ~20 um pitch, latch-
    // sparse macros (caches) a coarser one.
    const double clockGridPitch = grid_pitch;

    const double edge = std::sqrt(covered_area);
    int levels = 0;
    while (edge / std::pow(2.0, levels) > leafEdge && levels < 10)
        ++levels;

    const double htree_len = 1.5 * edge * (std::pow(2.0, levels) - 1.0);

    // Local grid below the tree leaves: wires in both directions at the
    // grid pitch, on intermediate metal, with ~30% buffer cap overhead.
    const double grid_len = 2.0 * covered_area / clockGridPitch;
    const double grid_cap =
        grid_len * t.wire(tech::WireLayer::Intermediate).capPerM * 1.3;

    _wireLength = htree_len + grid_len;

    // Model the buffered tree as repeated global wire of the total
    // H-tree length (buffer spacing/power matches a repeated wire of
    // equal length); insertion delay is one root-to-leaf path.
    const double vdd2 = t.vdd() * t.vdd();
    if (htree_len > 0.0) {
        const RepeatedWire tree(htree_len, WireLayer::Global, t);
        const double root_to_leaf = 0.75 * edge;  // ~half-perimeter path
        const RepeatedWire path(std::max(root_to_leaf, 1.0 * um),
                                WireLayer::Global, t);

        _switchedCap = tree.energyPerEvent() / vdd2 + grid_cap +
                       localGridFactor * sink_cap;
        _energy = _switchedCap * vdd2;
        // Grid drivers leak in proportion to the tree's repeaters.
        const double grid_buffer_scale =
            1.0 + grid_len / std::max(htree_len, 1.0 * um) * 0.3;
        _subLeak = tree.subthresholdLeakage() * grid_buffer_scale;
        _gateLeak = tree.gateLeakage() * grid_buffer_scale;
        _area = tree.area() * grid_buffer_scale;
        _delay = path.delay();
    } else {
        _switchedCap = grid_cap + localGridFactor * sink_cap;
        _energy = _switchedCap * vdd2;
    }
}

Report
ClockNetwork::makeReport(double frequency, double clock_gating_factor) const
{
    Report r;
    r.name = "Clock Network";
    r.area = _area;
    r.peakDynamic = _energy * frequency;
    r.runtimeDynamic = _energy * frequency * clock_gating_factor;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    r.criticalPath = _delay;
    return r;
}

} // namespace circuit
} // namespace mcpat
