/**
 * @file
 * Human-readable report printing in the original McPAT output style.
 */

#ifndef MCPAT_CHIP_REPORT_PRINTER_HH
#define MCPAT_CHIP_REPORT_PRINTER_HH

#include <ostream>

#include "common/report.hh"

namespace mcpat {
namespace chip {

/**
 * Print a report tree.
 *
 * @param os     output stream
 * @param report tree to print
 * @param max_depth levels of children to descend into (0 = root only)
 */
void printReport(std::ostream &os, const Report &report,
                 int max_depth = 3);

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_REPORT_PRINTER_HH
