/**
 * @file
 * Whole-processor model: the internal chip representation the paper
 * describes.  Assembles cores, shared caches, interconnect, memory
 * controllers, and I/O into one hierarchical power/area/timing report.
 */

#ifndef MCPAT_CHIP_PROCESSOR_HH
#define MCPAT_CHIP_PROCESSOR_HH

#include <memory>
#include <vector>

#include "chip/system_params.hh"
#include "core/core.hh"
#include "stats/activity_stats.hh"

namespace mcpat {
namespace chip {

/**
 * The modeled processor.
 */
class Processor
{
  public:
    explicit Processor(SystemParams params);

    const SystemParams &params() const { return _params; }
    const tech::Technology &tech() const { return *_tech; }

    /** Representative core of the first (or only) core group. */
    const core::Core &core() const { return *_cores.front(); }

    /** One representative core per group. */
    const std::vector<std::unique_ptr<core::Core>> &cores() const
    {
        return _cores;
    }

    /** Total die area (components + white space), m^2. */
    double area() const { return _area; }

    /** Thermal design power: peak dynamic at TDP activity + hot
     *  leakage, W. */
    double tdp() const { return _tdpReport.peakPower(); }

    /** Core timing check: every core type must meet its clock. */
    bool meetsTiming() const;

    /** Hierarchical TDP report (runtime columns = TDP activity). */
    const Report &tdpReport() const { return _tdpReport; }

    /**
     * Hierarchical report for a concrete runtime activity vector
     * (runtime dynamic uses @p rt; peak columns use the TDP vector).
     */
    Report makeReport(const stats::ChipStats &rt) const;

  private:
    SystemParams _params;
    std::unique_ptr<tech::Technology> _tech;

    std::vector<std::unique_ptr<core::Core>> _cores;  ///< one per group
    std::unique_ptr<uncore::SharedCache> _l2; ///< representative L2
    std::unique_ptr<uncore::SharedCache> _l3;
    std::unique_ptr<uncore::Directory> _directory;
    std::unique_ptr<uncore::Noc> _noc;
    std::unique_ptr<uncore::MemoryController> _memCtrl;
    std::unique_ptr<uncore::ChipIo> _io;

    double _area = 0.0;
    /** TDP activity vector, derived once at construction and reused by
     *  every makeReport call (it depends only on _params). */
    stats::ChipStats _tdpStats;
    Report _tdpReport;
};

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_PROCESSOR_HH
