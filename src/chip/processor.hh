/**
 * @file
 * Whole-processor model: the internal chip representation the paper
 * describes.  Assembles cores, shared caches, interconnect, memory
 * controllers, and I/O into one hierarchical power/area/timing report.
 */

#ifndef MCPAT_CHIP_PROCESSOR_HH
#define MCPAT_CHIP_PROCESSOR_HH

#include <memory>
#include <vector>

#include "chip/system_params.hh"
#include "core/core.hh"
#include "stats/activity_stats.hh"

namespace mcpat {
namespace chip {

/**
 * The modeled processor.
 */
class Processor
{
  public:
    explicit Processor(SystemParams params);

    const SystemParams &params() const { return _params; }
    const tech::Technology &tech() const { return *_tech; }

    /** Representative core of the first (or only) core group. */
    const core::Core &core() const { return *_cores.front(); }

    /** One representative core per group. */
    const std::vector<std::shared_ptr<const core::Core>> &cores() const
    {
        return _cores;
    }

    /** Total die area (components + white space), m^2. */
    double area() const { return _area; }

    /** Thermal design power: peak dynamic at TDP activity + hot
     *  leakage, W. */
    double tdp() const { return _tdpReport.peakPower(); }

    /** Core timing check: every core type must meet its clock. */
    bool meetsTiming() const;

    /** Hierarchical TDP report (runtime columns = TDP activity). */
    const Report &tdpReport() const { return _tdpReport; }

    /**
     * Hierarchical report for a concrete runtime activity vector
     * (runtime dynamic uses @p rt; peak columns use the TDP vector).
     */
    Report makeReport(const stats::ChipStats &rt) const;

  private:
    SystemParams _params;
    std::unique_ptr<tech::Technology> _tech;

    // Components are memoized process-wide (chip/component_memo.hh)
    // and therefore shared, immutable, and self-contained: a sweep
    // point that changes one sub-parameter bundle reuses every other
    // component verbatim (delta evaluation).
    std::vector<std::shared_ptr<const core::Core>> _cores; ///< per group
    std::shared_ptr<const uncore::SharedCache> _l2; ///< representative L2
    std::shared_ptr<const uncore::SharedCache> _l3;
    std::shared_ptr<const uncore::Directory> _directory;
    std::shared_ptr<const uncore::Noc> _noc;
    std::shared_ptr<const uncore::MemoryController> _memCtrl;
    std::shared_ptr<const uncore::ChipIo> _io;

    double _area = 0.0;
    /** TDP activity vector, derived once at construction and reused by
     *  every makeReport call (it depends only on _params). */
    stats::ChipStats _tdpStats;
    Report _tdpReport;
};

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_PROCESSOR_HH
