/**
 * @file
 * Chip-wide physical-invariant audit over an assembled report tree.
 *
 * Analytic power models drift into nonsense silently: one mis-scaled
 * term and a "successful" evaluation reports negative leakage or a
 * child consuming more power than its parent.  This audit walks the
 * fully-assembled Report hierarchy after every evaluation and checks,
 * for every component:
 *
 *  - **finiteness**: no NaN/Inf in any power/area/timing figure;
 *  - **non-negativity**: area, dynamic power (peak and runtime),
 *    leakage (subthreshold and gate, TDP and runtime), and critical
 *    path are all >= 0;
 *  - **leakage <= total power**: static power cannot exceed total
 *    power (peak and runtime scenarios);
 *  - **hierarchy consistency**: the children of a node can never sum
 *    to *more* than the parent records (parents aggregate children
 *    plus their own direct and replicated contributions, so the child
 *    sum is a lower bound), within a relative tolerance.
 *
 * Critical path is deliberately *not* compared across the hierarchy:
 * a parent's critical path is its cycle-time-limiting logic path, and
 * children whose accesses are pipelined over multiple cycles (a cache
 * inside a core) legitimately report a longer delay than the parent.
 *
 * Violations are reported as located warning diagnostics naming the
 * component path and the broken invariant, so they land in batch
 * sidecars and server responses; `-strict` escalates them to failures
 * like every other warning.
 */

#ifndef MCPAT_CHIP_INVARIANT_AUDIT_HH
#define MCPAT_CHIP_INVARIANT_AUDIT_HH

#include "common/diagnostics.hh"
#include "common/report.hh"

namespace mcpat {
namespace chip {

/** Controls for one auditReport() pass. */
struct AuditOptions
{
    /**
     * Relative tolerance for hierarchy-consistency comparisons.
     * Parent totals are accumulated in a different order than a
     * reader's child sum, so allow a few ulps' worth of drift
     * (relative to the larger magnitude) plus a tiny absolute floor
     * for values near zero.
     */
    double relTolerance = 1e-9;

    /** Absolute comparison floor (W, m^2, s as appropriate). */
    double absTolerance = 1e-15;
};

/**
 * Audit @p root and its whole subtree.  Returns one Warning diagnostic
 * per violated (component, invariant) pair: component is the
 * slash-joined path from the root ("chip/Core/IFU"), key is the
 * invariant name ("invariant.nonnegative", "invariant.finite",
 * "invariant.leakage_le_power", "invariant.child_sum").  An empty
 * list means the tree is physically plausible.
 */
DiagnosticList auditReport(const Report &root,
                           const AuditOptions &opts = AuditOptions());

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_INVARIANT_AUDIT_HH
