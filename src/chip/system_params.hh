/**
 * @file
 * Top-level system description: technology point, core population,
 * cache hierarchy, interconnect, memory controllers, and I/O.
 */

#ifndef MCPAT_CHIP_SYSTEM_PARAMS_HH
#define MCPAT_CHIP_SYSTEM_PARAMS_HH

#include <string>
#include <vector>

#include "common/diagnostics.hh"
#include "core/core_params.hh"
#include "uncore/chip_io.hh"
#include "uncore/directory.hh"
#include "uncore/memctrl.hh"
#include "uncore/noc.hh"
#include "uncore/shared_cache.hh"

namespace mcpat {
namespace chip {

/** One population of identical cores on a heterogeneous chip. */
struct CoreGroup
{
    core::CoreParams core;
    int count = 1;
};

/**
 * Whole-chip architectural description.
 *
 * Homogeneous chips use @c numCores + @c core; heterogeneous chips
 * populate @c coreGroups instead (when non-empty it takes precedence).
 */
struct SystemParams
{
    std::string name = "System";

    // --- Technology operating point. -------------------------------------
    int nodeNm = 65;
    tech::DeviceFlavor coreFlavor = tech::DeviceFlavor::HP;
    tech::WireProjection projection = tech::WireProjection::Aggressive;
    double temperature = 360.0;  ///< K, hot junction for TDP leakage
    /** Override the core logic supply (0 keeps the flavor nominal), V. */
    double vdd = 0.0;

    // --- Components. ---------------------------------------------------------
    int numCores = 1;
    core::CoreParams core;

    /** Heterogeneous core populations (overrides numCores/core). */
    std::vector<CoreGroup> coreGroups;

    /** The effective core populations (groups or the homogeneous pair). */
    std::vector<CoreGroup> resolvedCoreGroups() const;

    /** Total core count across all groups. */
    int totalCores() const;

    int numL2 = 0;
    uncore::SharedCacheParams l2;

    int numL3 = 0;
    uncore::SharedCacheParams l3;

    bool hasDirectory = false;
    uncore::DirectoryParams directory;

    bool hasNoc = false;
    uncore::NocParams noc;

    bool hasMemCtrl = true;
    uncore::MemCtrlParams memCtrl;

    bool hasIo = true;
    uncore::ChipIoParams io;

    /** Chip-level white space on top of component areas. */
    double whiteSpaceFraction = 0.10;

    /**
     * Cross-field consistency pass.  Returns every problem found —
     * range violations, cache geometry that does not divide evenly,
     * per-component invariant failures (Error severity), plus advisory
     * mismatches such as a commit width above the issue width or mesh
     * dimensions unrelated to the core count (Warning severity).
     * Never throws.
     */
    DiagnosticList check() const;

    /** Throw a ValidationError when check() finds any errors. */
    void validate() const;
};

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_SYSTEM_PARAMS_HH
