/**
 * @file
 * JSON/CSV report serialization.
 */

#include "chip/report_writer.hh"

#include <iomanip>

#include "common/units.hh"

namespace mcpat {
namespace chip {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
writeJsonNode(std::ostream &os, const Report &r, int indent)
{
    const std::string pad(indent, ' ');
    os << pad << "{\n";
    os << pad << "  \"name\": \"" << jsonEscape(r.name) << "\",\n";
    os << pad << "  \"area_mm2\": " << r.area / mm2 << ",\n";
    os << pad << "  \"peak_dynamic_w\": " << r.peakDynamic << ",\n";
    os << pad << "  \"runtime_dynamic_w\": " << r.runtimeDynamic
       << ",\n";
    os << pad << "  \"subthreshold_leakage_w\": "
       << r.subthresholdLeakage << ",\n";
    os << pad << "  \"runtime_subthreshold_leakage_w\": "
       << r.runtimeSubLeak() << ",\n";
    os << pad << "  \"gate_leakage_w\": " << r.gateLeakage << ",\n";
    os << pad << "  \"critical_path_ns\": " << r.criticalPath / ns
       << ",\n";
    os << pad << "  \"children\": [";
    if (r.children.empty()) {
        os << "]\n";
    } else {
        os << "\n";
        for (std::size_t i = 0; i < r.children.size(); ++i) {
            writeJsonNode(os, r.children[i], indent + 4);
            os << (i + 1 < r.children.size() ? ",\n" : "\n");
        }
        os << pad << "  ]\n";
    }
    os << pad << "}";
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    return out + "\"";
}

void
writeCsvNode(std::ostream &os, const Report &r, const std::string &path)
{
    const std::string full =
        path.empty() ? r.name : path + "/" + r.name;
    os << csvEscape(full) << ',' << r.area / mm2 << ','
       << r.peakDynamic << ',' << r.runtimeDynamic << ','
       << r.subthresholdLeakage << ',' << r.runtimeSubLeak() << ','
       << r.gateLeakage << ',' << r.criticalPath / ns << '\n';
    for (const auto &c : r.children)
        writeCsvNode(os, c, full);
}

} // namespace

void
writeReportJson(std::ostream &os, const Report &report)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << std::setprecision(10);
    writeJsonNode(os, report, 0);
    os << "\n";
    os.flags(flags);
    os.precision(precision);
}

void
writeReportCsv(std::ostream &os, const Report &report)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << std::setprecision(10);
    os << "path,area_mm2,peak_dynamic_w,runtime_dynamic_w,"
          "subthreshold_leakage_w,runtime_subthreshold_leakage_w,"
          "gate_leakage_w,critical_path_ns\n";
    writeCsvNode(os, report, "");
    os.flags(flags);
    os.precision(precision);
}

} // namespace chip
} // namespace mcpat
