/**
 * @file
 * JSON/CSV report serialization.
 */

#include "chip/report_writer.hh"

#include <cmath>
#include <iomanip>

#include "common/units.hh"

namespace mcpat {
namespace chip {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/**
 * Emit one numeric field.  JSON has no NaN/Infinity literals; emitting
 * them raw (what operator<< does) produces a document every parser
 * rejects.  Non-finite values become `null` and flip @p valid so the
 * document itself records that it is incomplete.
 */
void
writeJsonNumber(std::ostream &os, double v, bool &valid)
{
    if (std::isfinite(v)) {
        os << v;
    } else {
        os << "null";
        valid = false;
    }
}

bool
reportAllFinite(const Report &r)
{
    if (!std::isfinite(r.area) || !std::isfinite(r.peakDynamic) ||
        !std::isfinite(r.runtimeDynamic) ||
        !std::isfinite(r.subthresholdLeakage) ||
        !std::isfinite(r.runtimeSubLeak()) ||
        !std::isfinite(r.gateLeakage) || !std::isfinite(r.criticalPath))
        return false;
    for (const auto &c : r.children)
        if (!reportAllFinite(c))
            return false;
    return true;
}

void
writeJsonNode(std::ostream &os, const Report &r, int indent, bool &valid,
              const bool *root_valid = nullptr,
              const std::string *instrumentation = nullptr)
{
    const std::string pad(indent, ' ');
    os << pad << "{\n";
    if (root_valid) {
        os << pad << "  \"valid\": " << (*root_valid ? "true" : "false")
           << ",\n";
    }
    if (instrumentation && !instrumentation->empty()) {
        os << pad << "  \"instrumentation\":\n" << *instrumentation
           << ",\n";
    }
    os << pad << "  \"name\": \"" << jsonEscape(r.name) << "\",\n";
    os << pad << "  \"area_mm2\": ";
    writeJsonNumber(os, r.area / mm2, valid);
    os << ",\n" << pad << "  \"peak_dynamic_w\": ";
    writeJsonNumber(os, r.peakDynamic, valid);
    os << ",\n" << pad << "  \"runtime_dynamic_w\": ";
    writeJsonNumber(os, r.runtimeDynamic, valid);
    os << ",\n" << pad << "  \"subthreshold_leakage_w\": ";
    writeJsonNumber(os, r.subthresholdLeakage, valid);
    os << ",\n" << pad << "  \"runtime_subthreshold_leakage_w\": ";
    writeJsonNumber(os, r.runtimeSubLeak(), valid);
    os << ",\n" << pad << "  \"gate_leakage_w\": ";
    writeJsonNumber(os, r.gateLeakage, valid);
    os << ",\n" << pad << "  \"critical_path_ns\": ";
    writeJsonNumber(os, r.criticalPath / ns, valid);
    os << ",\n" << pad << "  \"children\": [";
    if (r.children.empty()) {
        os << "]\n";
    } else {
        os << "\n";
        for (std::size_t i = 0; i < r.children.size(); ++i) {
            writeJsonNode(os, r.children[i], indent + 4, valid);
            os << (i + 1 < r.children.size() ? ",\n" : "\n");
        }
        os << pad << "  ]\n";
    }
    os << pad << "}";
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    return out + "\"";
}

void
writeCsvNode(std::ostream &os, const Report &r, const std::string &path)
{
    const std::string full =
        path.empty() ? r.name : path + "/" + r.name;
    os << csvEscape(full) << ',';
    writeCsvNumber(os, r.area / mm2);
    os << ',';
    writeCsvNumber(os, r.peakDynamic);
    os << ',';
    writeCsvNumber(os, r.runtimeDynamic);
    os << ',';
    writeCsvNumber(os, r.subthresholdLeakage);
    os << ',';
    writeCsvNumber(os, r.runtimeSubLeak());
    os << ',';
    writeCsvNumber(os, r.gateLeakage);
    os << ',';
    writeCsvNumber(os, r.criticalPath / ns);
    os << '\n';
    for (const auto &c : r.children)
        writeCsvNode(os, c, full);
}

} // namespace

void
writeCsvNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    // Non-finite: leave the field empty.  operator<< would print
    // "nan"/"inf", which CSV consumers (pandas, spreadsheet imports)
    // either reject or silently coerce to strings; an empty field is
    // the conventional "missing value" both handle.
}

void
writeReportJson(std::ostream &os, const Report &report,
                const std::string *instrumentation)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    // max_digits10: doubles survive a write/parse round trip exactly,
    // so cached and freshly computed reports diff bit-identically.
    os << std::setprecision(17);
    bool valid = true;
    const bool all_finite = reportAllFinite(report);
    writeJsonNode(os, report, 0, valid, &all_finite, instrumentation);
    os << "\n";
    os.flags(flags);
    os.precision(precision);
}

void
writeReportCsv(std::ostream &os, const Report &report)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << std::setprecision(17);
    os << "path,area_mm2,peak_dynamic_w,runtime_dynamic_w,"
          "subthreshold_leakage_w,runtime_subthreshold_leakage_w,"
          "gate_leakage_w,critical_path_ns\n";
    writeCsvNode(os, report, "");
    os.flags(flags);
    os.precision(precision);
}

} // namespace chip
} // namespace mcpat
