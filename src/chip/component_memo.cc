/**
 * @file
 * Component memo implementation: canonical key composition per
 * component kind, plus the synchronized table.
 */

#include "chip/component_memo.hh"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/instrument.hh"

namespace mcpat {
namespace chip {

namespace {

/**
 * Canonical key writer: appends "field=value;" tokens.  Doubles render
 * at max_digits10 so two bundles collide exactly when their fields are
 * bit-equal (modulo -0.0/0.0, which build identical components anyway).
 */
class KeyWriter
{
  public:
    explicit KeyWriter(const char *kind)
    {
        _os.precision(std::numeric_limits<double>::max_digits10);
        _os << kind << '|';
    }

    KeyWriter &operator()(const char *name, double v)
    {
        _os << name << '=' << v << ';';
        return *this;
    }
    KeyWriter &operator()(const char *name, int v)
    {
        _os << name << '=' << v << ';';
        return *this;
    }
    KeyWriter &operator()(const char *name, bool v)
    {
        _os << name << '=' << (v ? 1 : 0) << ';';
        return *this;
    }
    KeyWriter &operator()(const char *name, const std::string &v)
    {
        // Length-prefixed so names containing ';' or '=' cannot alias
        // a neighboring token.
        _os << name << '=' << v.size() << ':' << v << ';';
        return *this;
    }

    std::string str() const { return _os.str(); }

  private:
    std::ostringstream _os;
};

/** Resolved technology operating point (what array_cache keys on). */
void
techKey(KeyWriter &k, const tech::Technology &t)
{
    k("node", t.nodeNm())("flavor", static_cast<int>(t.flavor()))
        ("vdd", t.vdd())("temp", t.temperature())
        ("proj", static_cast<int>(t.projection()));
}

void
cacheParamsKey(KeyWriter &k, const char *prefix,
               const array::CacheParams &c)
{
    std::string p(prefix);
    k((p + ".name").c_str(), c.name);
    k((p + ".cap").c_str(), c.capacityBytes);
    k((p + ".block").c_str(), c.blockBytes);
    k((p + ".assoc").c_str(), c.assoc);
    k((p + ".banks").c_str(), c.banks);
    k((p + ".rw").c_str(), c.readWritePorts);
    k((p + ".r").c_str(), c.readPorts);
    k((p + ".w").c_str(), c.writePorts);
    k((p + ".seq").c_str(), c.sequentialAccess);
    k((p + ".mshrs").c_str(), c.mshrs);
    k((p + ".wb").c_str(), c.writeBackEntries);
    k((p + ".fill").c_str(), c.fillBufferEntries);
    k((p + ".pa").c_str(), c.physicalAddressBits);
    k((p + ".xtag").c_str(), c.extraTagBits);
    k((p + ".ecc").c_str(), c.ecc);
    k((p + ".cycle").c_str(), c.targetCycleTime);
    k((p + ".flavor").c_str(),
      c.flavor ? static_cast<int>(*c.flavor) : -1);
    k((p + ".cell").c_str(), static_cast<int>(c.dataCell));
}

std::string
coreKey(const core::CoreParams &p, const tech::Technology &t)
{
    KeyWriter k("core");
    techKey(k, t);
    k("name", p.name)("ooo", p.outOfOrder)("x86", p.x86)
        ("threads", p.threads)("clock", p.clockRate)
        ("stages", p.pipelineStages)("datapath", p.datapathWidth)
        ("va", p.virtualAddressBits)("pa", p.physicalAddressBits)
        ("fetch", p.fetchWidth)("decode", p.decodeWidth)
        ("issue", p.issueWidth)("commit", p.commitWidth)
        ("rob", p.robEntries)("iwin", p.intWindowEntries)
        ("fwin", p.fpWindowEntries)("pireg", p.physIntRegs)
        ("pfreg", p.physFpRegs)("rat", static_cast<int>(p.ratStyle))
        ("aireg", p.archIntRegs)("afreg", p.archFpRegs)
        ("alus", p.intAlus)("fpus", p.fpus)("muls", p.muls)
        ("lq", p.loadQueueEntries)("sq", p.storeQueueEntries)
        ("itlb", p.itlbEntries)("dtlb", p.dtlbEntries)
        ("btb", p.predictor.btbEntries)
        ("btbt", p.predictor.btbTargetBits)
        ("bpl", p.predictor.localEntries)
        ("bplb", p.predictor.localBits)
        ("bpg", p.predictor.globalEntries)
        ("bpc", p.predictor.chooserEntries)
        ("ras", p.predictor.rasEntries)
        ("haspred", p.hasBranchPredictor)("hasfpu", p.hasFpu)
        ("ovh", p.areaOverhead)("margin", p.dynamicMargin)
        ("gating", p.powerGating);
    cacheParamsKey(k, "ic", p.icache);
    cacheParamsKey(k, "dc", p.dcache);
    return k.str();
}

std::string
sharedCacheKey(const uncore::SharedCacheParams &p,
               const tech::Technology &t)
{
    KeyWriter k("l2");
    techKey(k, t);
    k("name", p.name)("cap", p.capacityBytes)("block", p.blockBytes)
        ("assoc", p.assoc)("banks", p.banks)("ports", p.ports)
        ("dir", p.directorySharers)("ecc", p.ecc)
        ("cell", static_cast<int>(p.dataCell))("clock", p.clockRate)
        ("flavor", static_cast<int>(p.flavor))("mshrs", p.mshrs)
        ("wb", p.writeBackEntries)("pa", p.physicalAddressBits);
    return k.str();
}

std::string
directoryKey(const uncore::DirectoryParams &p, const tech::Technology &t)
{
    KeyWriter k("dir");
    techKey(k, t);
    k("name", p.name)("style", static_cast<int>(p.style))
        ("lines", p.trackedLines)("sharers", p.sharers)
        ("pa", p.physicalAddressBits)("block", p.blockBytes)
        ("banks", p.banks)("clock", p.clockRate)
        ("flavor", static_cast<int>(p.flavor));
    return k.str();
}

std::string
nocKey(const uncore::NocParams &p, const tech::Technology &t)
{
    KeyWriter k("noc");
    techKey(k, t);
    k("name", p.name)("topo", static_cast<int>(p.topology))
        ("nx", p.nodesX)("ny", p.nodesY)("flit", p.flitBits)
        ("link", p.linkLength)("clock", p.clockRate)
        ("lowswing", p.lowSwingLinks)
        ("rports", p.router.ports)("rvc", p.router.virtualChannels)
        ("rdepth", p.router.bufferDepth)("rflit", p.router.flitBits)
        ("rclock", p.router.clockRate);
    return k.str();
}

std::string
memCtrlKey(const uncore::MemCtrlParams &p, const tech::Technology &t)
{
    KeyWriter k("mc");
    techKey(k, t);
    k("name", p.name)("channels", p.channels)("bus", p.dataBusBits)
        ("clock", p.busClock)("dram", static_cast<int>(p.dramType))
        ("rq", p.requestQueueEntries)("pa", p.physicalAddressBits)
        ("bw", p.peakBandwidth);
    return k.str();
}

std::string
chipIoKey(const uncore::ChipIoParams &p, const tech::Technology &t)
{
    KeyWriter k("io");
    techKey(k, t);
    k("name", p.name)("pins", p.signalPins)("vio", p.ioVoltage)
        ("pincap", p.pinCap)("toggle", p.toggleRate)
        ("clock", p.busClock)("static", p.staticPower);
    return k.str();
}

[[maybe_unused]] const bool g_memo_collector_registered =
    instr::Registry::instance().addCollector([](instr::Registry &reg) {
        const ComponentMemoStats s = ComponentMemo::instance().stats();
        reg.gauge("component_memo.hits")
            .set(static_cast<double>(s.hits));
        reg.gauge("component_memo.misses")
            .set(static_cast<double>(s.misses));
        reg.gauge("component_memo.entries")
            .set(static_cast<double>(s.entries));
        reg.gauge("component_memo.evictions")
            .set(static_cast<double>(s.evictions));
        const std::uint64_t total = s.hits + s.misses;
        reg.gauge("component_memo.hit_rate")
            .set(total ? static_cast<double>(s.hits) / total : 0.0);
    });

} // namespace

ComponentMemo::ComponentMemo()
{
    const char *env = std::getenv("MCPAT_COMPONENT_MEMO");
    if (env && std::string(env) == "0")
        _enabled = false;
}

ComponentMemo &
ComponentMemo::instance()
{
    static ComponentMemo memo;
    return memo;
}

void
ComponentMemo::setCapacity(std::size_t cap)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _capacity = cap > 0 ? cap : 1;
}

template <typename T>
std::shared_ptr<const T>
ComponentMemo::getOrBuild(
    const std::string &key,
    const std::function<std::shared_ptr<const T>()> &build)
{
    if (!_enabled)
        return build();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        const auto it = _entries.find(key);
        if (it != _entries.end()) {
            ++_hits;
            return std::static_pointer_cast<const T>(it->second);
        }
        ++_misses;
    }
    // Build outside the lock: component construction is the expensive
    // part and may itself fan out onto the thread pool.
    std::shared_ptr<const T> built = build();
    std::lock_guard<std::mutex> lock(_mutex);
    if (_entries.size() >= _capacity) {
        _entries.clear();
        ++_evictions;
    }
    const auto [it, inserted] = _entries.emplace(
        key, std::static_pointer_cast<const void>(built));
    if (!inserted) {
        // A racing thread published the same key first; adopt its copy
        // so every holder shares one instance.
        return std::static_pointer_cast<const T>(it->second);
    }
    return built;
}

std::shared_ptr<const core::Core>
ComponentMemo::core(const core::CoreParams &params,
                    const tech::Technology &t)
{
    return getOrBuild<core::Core>(coreKey(params, t), [&] {
        return std::make_shared<const core::Core>(params, t);
    });
}

std::shared_ptr<const uncore::SharedCache>
ComponentMemo::sharedCache(const uncore::SharedCacheParams &params,
                           const tech::Technology &t)
{
    return getOrBuild<uncore::SharedCache>(
        sharedCacheKey(params, t), [&] {
            return std::make_shared<const uncore::SharedCache>(params, t);
        });
}

std::shared_ptr<const uncore::Directory>
ComponentMemo::directory(const uncore::DirectoryParams &params,
                         const tech::Technology &t)
{
    return getOrBuild<uncore::Directory>(directoryKey(params, t), [&] {
        return std::make_shared<const uncore::Directory>(params, t);
    });
}

std::shared_ptr<const uncore::Noc>
ComponentMemo::noc(const uncore::NocParams &params,
                   const tech::Technology &t)
{
    return getOrBuild<uncore::Noc>(nocKey(params, t), [&] {
        return std::make_shared<const uncore::Noc>(params, t);
    });
}

std::shared_ptr<const uncore::MemoryController>
ComponentMemo::memCtrl(const uncore::MemCtrlParams &params,
                       const tech::Technology &t)
{
    return getOrBuild<uncore::MemoryController>(
        memCtrlKey(params, t), [&] {
            return std::make_shared<const uncore::MemoryController>(
                params, t);
        });
}

std::shared_ptr<const uncore::ChipIo>
ComponentMemo::chipIo(const uncore::ChipIoParams &params,
                      const tech::Technology &t)
{
    return getOrBuild<uncore::ChipIo>(chipIoKey(params, t), [&] {
        return std::make_shared<const uncore::ChipIo>(params, t);
    });
}

ComponentMemoStats
ComponentMemo::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    ComponentMemoStats s;
    s.hits = _hits;
    s.misses = _misses;
    s.entries = _entries.size();
    s.evictions = _evictions;
    return s;
}

void
ComponentMemo::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _hits = _misses = _evictions = 0;
}

} // namespace chip
} // namespace mcpat
