/**
 * @file
 * Report printing, mirroring the original tool's hierarchy dump:
 *
 *   Processor:
 *     Area = 295.2 mm^2
 *     Peak Dynamic = 54.2 W
 *     ...
 *     Core:
 *       ...
 */

#include "chip/report_printer.hh"

#include <iomanip>

#include "common/units.hh"

namespace mcpat {
namespace chip {

namespace {

void
printNode(std::ostream &os, const Report &r, int depth, int max_depth)
{
    const std::string pad(2 * depth, ' ');
    os << pad << r.name << ":\n";
    os << pad << "  Area = " << r.area / mm2 << " mm^2\n";
    os << pad << "  Peak Dynamic = " << r.peakDynamic << " W\n";
    os << pad << "  Subthreshold Leakage = " << r.subthresholdLeakage
       << " W\n";
    os << pad << "  Gate Leakage = " << r.gateLeakage << " W\n";
    os << pad << "  Runtime Dynamic = " << r.runtimeDynamic << " W\n";
    if (r.criticalPath > 0.0) {
        os << pad << "  Critical Path = " << r.criticalPath / ns
           << " ns\n";
    }
    if (depth < max_depth) {
        for (const auto &c : r.children) {
            os << "\n";
            printNode(os, c, depth + 1, max_depth);
        }
    }
}

} // namespace

void
printReport(std::ostream &os, const Report &report, int max_depth)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << std::fixed << std::setprecision(4);
    printNode(os, report, 0, max_depth);
    os.flags(flags);
    os.precision(precision);
}

} // namespace chip
} // namespace mcpat
