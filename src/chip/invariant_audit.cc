/**
 * @file
 * Physical-invariant audit implementation.
 */

#include "chip/invariant_audit.hh"

#include <cmath>
#include <sstream>

namespace mcpat {
namespace chip {

namespace {

/** Render a figure for a diagnostic message (full double precision is
 *  noise here; six significant digits locate the problem). */
std::string
num(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

/** a <= b within the audit tolerance. */
bool
leqTol(double a, double b, const AuditOptions &opts)
{
    const double scale = std::max(std::abs(a), std::abs(b));
    return a <= b + opts.relTolerance * scale + opts.absTolerance;
}

struct Auditor
{
    const AuditOptions &opts;
    DiagnosticList diags;

    void
    violation(const std::string &path, const std::string &invariant,
              const std::string &message)
    {
        diags.add(Severity::Warning, path, invariant, message);
    }

    void
    checkFinite(const std::string &path, const char *what, double v)
    {
        if (!std::isfinite(v)) {
            violation(path, "invariant.finite",
                      std::string(what) + " is not finite");
        }
    }

    void
    checkNonNegative(const std::string &path, const char *what, double v)
    {
        // NaN is reported by the finiteness check; don't double-report.
        if (std::isfinite(v) && v < 0.0) {
            violation(path, "invariant.nonnegative",
                      std::string(what) + " is negative (" + num(v) +
                          ")");
        }
    }

    void
    audit(const Report &node, const std::string &parent_path)
    {
        const std::string path = parent_path.empty()
            ? (node.name.empty() ? std::string("<unnamed>") : node.name)
            : parent_path + "/" +
                  (node.name.empty() ? std::string("<unnamed>")
                                     : node.name);

        checkFinite(path, "area", node.area);
        checkFinite(path, "peak dynamic power", node.peakDynamic);
        checkFinite(path, "runtime dynamic power", node.runtimeDynamic);
        checkFinite(path, "subthreshold leakage",
                    node.subthresholdLeakage);
        checkFinite(path, "gate leakage", node.gateLeakage);
        checkFinite(path, "runtime subthreshold leakage",
                    node.runtimeSubLeak());
        checkFinite(path, "critical path", node.criticalPath);

        checkNonNegative(path, "area", node.area);
        checkNonNegative(path, "peak dynamic power", node.peakDynamic);
        checkNonNegative(path, "runtime dynamic power",
                         node.runtimeDynamic);
        checkNonNegative(path, "subthreshold leakage",
                         node.subthresholdLeakage);
        checkNonNegative(path, "gate leakage", node.gateLeakage);
        checkNonNegative(path, "runtime subthreshold leakage",
                         node.runtimeSubLeak());
        checkNonNegative(path, "critical path", node.criticalPath);

        // Leakage <= total power reduces to dynamic >= 0 given total =
        // dynamic + leakage, but check the stated form so a future
        // writer that decouples the fields stays covered.
        if (std::isfinite(node.leakage()) &&
            std::isfinite(node.peakPower()) &&
            !leqTol(node.leakage(), node.peakPower(), opts)) {
            violation(path, "invariant.leakage_le_power",
                      "leakage (" + num(node.leakage()) +
                          " W) exceeds peak total power (" +
                          num(node.peakPower()) + " W)");
        }
        const double rt_leak = node.runtimeSubLeak() + node.gateLeakage;
        if (std::isfinite(rt_leak) &&
            std::isfinite(node.runtimePower()) &&
            !leqTol(rt_leak, node.runtimePower(), opts)) {
            violation(path, "invariant.leakage_le_power",
                      "runtime leakage (" + num(rt_leak) +
                          " W) exceeds runtime total power (" +
                          num(node.runtimePower()) + " W)");
        }

        if (!node.children.empty()) {
            double sum_area = 0.0, sum_peak_dyn = 0.0, sum_rt_dyn = 0.0;
            double sum_sub = 0.0, sum_gate = 0.0;
            bool child_finite = true;
            for (const auto &c : node.children) {
                sum_area += c.area;
                sum_peak_dyn += c.peakDynamic;
                sum_rt_dyn += c.runtimeDynamic;
                sum_sub += c.subthresholdLeakage;
                sum_gate += c.gateLeakage;
                child_finite = child_finite &&
                    std::isfinite(c.area) &&
                    std::isfinite(c.peakDynamic) &&
                    std::isfinite(c.runtimeDynamic) &&
                    std::isfinite(c.subthresholdLeakage) &&
                    std::isfinite(c.gateLeakage) &&
                    std::isfinite(c.criticalPath);
            }
            // Children are a lower bound on the parent (the parent may
            // add direct terms and replicated instances); a child sum
            // *above* the parent means some contribution was counted
            // in a child but lost on the way up.  Skip when any child
            // figure is non-finite: the finiteness check on that child
            // already locates the real problem.
            if (child_finite) {
                struct SumCheck
                {
                    const char *what;
                    double children;
                    double parent;
                };
                const SumCheck checks[] = {
                    {"area", sum_area, node.area},
                    {"peak dynamic power", sum_peak_dyn,
                     node.peakDynamic},
                    {"runtime dynamic power", sum_rt_dyn,
                     node.runtimeDynamic},
                    {"subthreshold leakage", sum_sub,
                     node.subthresholdLeakage},
                    {"gate leakage", sum_gate, node.gateLeakage},
                };
                for (const auto &c : checks) {
                    if (std::isfinite(c.parent) &&
                        !leqTol(c.children, c.parent, opts)) {
                        violation(path, "invariant.child_sum",
                                  std::string(c.what) +
                                      ": children sum to " +
                                      num(c.children) +
                                      " but parent records " +
                                      num(c.parent));
                    }
                }
            }
            for (const auto &c : node.children)
                audit(c, path);
        }
    }
};

} // namespace

DiagnosticList
auditReport(const Report &root, const AuditOptions &opts)
{
    Auditor a{opts, {}};
    a.audit(root, "");
    return std::move(a.diags);
}

} // namespace chip
} // namespace mcpat
