/**
 * @file
 * Machine-readable report export: JSON and CSV serializations of the
 * hierarchical report tree, for downstream tooling (plotting, DSE
 * scripts, regression diffs).
 */

#ifndef MCPAT_CHIP_REPORT_WRITER_HH
#define MCPAT_CHIP_REPORT_WRITER_HH

#include <ostream>
#include <string>

#include "common/report.hh"

namespace mcpat {
namespace chip {

/**
 * Write the report tree as JSON.
 *
 * Schema: every node is an object with `name`, `area_mm2`,
 * `peak_dynamic_w`, `runtime_dynamic_w`, `subthreshold_leakage_w`,
 * `runtime_subthreshold_leakage_w`, `gate_leakage_w`,
 * `critical_path_ns`, and a `children` array.  The root object
 * additionally carries a `valid` flag.
 *
 * Numbers are written with max_digits10 (17) significant digits so a
 * parse round trip reproduces the doubles exactly.  JSON has no
 * NaN/Infinity literals: any non-finite metric is emitted as `null`
 * and the root `valid` flag becomes false, so downstream tooling can
 * both parse the document and detect that it is incomplete.
 *
 * @param instrumentation pre-rendered run-manifest JSON object (see
 *        instr::runManifestJson) to embed as an "instrumentation"
 *        section on the root node; null/empty (the default) leaves the
 *        document byte-identical to builds without instrumentation.
 */
void writeReportJson(std::ostream &os, const Report &report,
                     const std::string *instrumentation = nullptr);

/**
 * Write the report tree as CSV (one row per node, depth-first), with a
 * `path` column of slash-joined component names.
 */
void writeReportCsv(std::ostream &os, const Report &report);

/** Escape a string for inclusion in a JSON document. */
std::string jsonEscape(const std::string &s);

/**
 * Emit one numeric CSV field.  Finite values print through the
 * stream's current precision; non-finite values emit an *empty* field
 * (the CSV counterpart of the JSON writer's `null`) instead of the
 * "nan"/"inf" text operator<< would produce, which breaks downstream
 * CSV parsers.  Shared by the report CSV writer and the batch summary.
 */
void writeCsvNumber(std::ostream &os, double v);

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_REPORT_WRITER_HH
