/**
 * @file
 * Cross-field consistency checks over a fully-assembled SystemParams.
 *
 * The XML loader validates each value in isolation (type, range, enum
 * membership); this pass checks the relationships between fields that
 * only make sense together — cache geometry that divides evenly,
 * pipeline widths that are ordered sensibly, an interconnect whose
 * node count matches the population it connects, a technology node the
 * device tables can interpolate.  Everything found is reported; the
 * caller decides whether warnings are fatal (see Severity semantics in
 * common/diagnostics.hh).
 */

#include <cmath>
#include <string>

#include "chip/system_params.hh"
#include "common/logging.hh"
#include "tech/technology.hh"

namespace mcpat {
namespace chip {

namespace {

/**
 * A set must hold a whole number of (block x assoc) frames; a capacity
 * that does not divide evenly means the stated size and the modeled
 * size silently disagree.  @p assoc 0 means fully associative, where
 * only block alignment matters.
 */
void
checkCacheGeometry(DiagnosticList &diags, const std::string &component,
                   const std::string &size_key, double capacity_bytes,
                   int block_bytes, int assoc)
{
    if (block_bytes <= 0 || capacity_bytes <= 0)
        return;  // CacheParams::validate reports these.
    const double frame = static_cast<double>(block_bytes) *
                         (assoc > 0 ? assoc : 1);
    const double sets = capacity_bytes / frame;
    if (std::abs(sets - std::round(sets)) > 1e-9) {
        diags.add(Severity::Error, component, size_key,
                  "capacity is not a whole number of sets (capacity " +
                      std::to_string(static_cast<long long>(capacity_bytes)) +
                      " B / (block " + std::to_string(block_bytes) +
                      " B x assoc " + std::to_string(assoc > 0 ? assoc : 1) +
                      ") is fractional)");
    }
}

void
checkCoreGroup(DiagnosticList &diags, const CoreGroup &g)
{
    const std::string &comp = g.core.name;

    if (g.count < 1) {
        diags.add(Severity::Error, comp, "count",
                  "core group has a non-positive population (" +
                      std::to_string(g.count) + ")");
    }

    // Per-core invariants live with CoreParams; surface them as
    // located diagnostics instead of a bare exception.
    try {
        g.core.validate();
    } catch (const ConfigError &e) {
        diags.add(Severity::Error, comp, "", e.what());
    }

    checkCacheGeometry(diags, comp, "icache_kb", g.core.icache.capacityBytes,
                       g.core.icache.blockBytes, g.core.icache.assoc);
    checkCacheGeometry(diags, comp, "dcache_kb", g.core.dcache.capacityBytes,
                       g.core.dcache.blockBytes, g.core.dcache.assoc);

    // A commit stage wider than issue can be intentional (the 21364
    // retires 8 while issuing 6), but more often it is a transposed
    // pair of numbers — flag it, don't reject it.
    if (g.core.commitWidth > g.core.issueWidth) {
        diags.add(Severity::Warning, comp, "commit_width",
                  "commit width (" + std::to_string(g.core.commitWidth) +
                      ") exceeds issue width (" +
                      std::to_string(g.core.issueWidth) +
                      "); retire can never be the steady-state limiter");
    }
    if (g.core.fetchWidth < g.core.decodeWidth) {
        diags.add(Severity::Warning, comp, "fetch_width",
                  "fetch width (" + std::to_string(g.core.fetchWidth) +
                      ") below decode width (" +
                      std::to_string(g.core.decodeWidth) +
                      "); decode will starve");
    }
}

void
checkSharedCache(DiagnosticList &diags, const std::string &size_key,
                 const uncore::SharedCacheParams &c, int count)
{
    const std::string &comp = c.name;
    if (count < 0) {
        diags.add(Severity::Error, comp, "count",
                  "negative cache instance count (" +
                      std::to_string(count) + ")");
        return;
    }
    if (count == 0)
        return;
    if (c.blockBytes <= 0 || (c.blockBytes & (c.blockBytes - 1)) != 0) {
        diags.add(Severity::Error, comp, "block",
                  "block size must be a power of two (got " +
                      std::to_string(c.blockBytes) + ")");
    }
    if (c.assoc < 0) {
        diags.add(Severity::Error, comp, "assoc",
                  "negative associativity (" + std::to_string(c.assoc) +
                      ")");
    }
    if (c.capacityBytes <= 0) {
        diags.add(Severity::Error, comp, size_key, "empty capacity");
    }
    if (c.banks <= 0) {
        diags.add(Severity::Error, comp, "banks",
                  "bank count must be positive (got " +
                      std::to_string(c.banks) + ")");
    }
    if (c.clockRate <= 0.0) {
        diags.add(Severity::Error, comp, "clock_rate_mhz",
                  "clock rate must be positive");
    }
    checkCacheGeometry(diags, comp, size_key, c.capacityBytes,
                       c.blockBytes, c.assoc);
}

void
checkNoc(DiagnosticList &diags, const SystemParams &p)
{
    const uncore::NocParams &n = p.noc;
    const std::string &comp = n.name;

    if (n.nodesX < 1 || n.nodesY < 1) {
        diags.add(Severity::Error, comp, "nodes_x",
                  "interconnect needs at least a 1x1 node grid (got " +
                      std::to_string(n.nodesX) + "x" +
                      std::to_string(n.nodesY) + ")");
    }
    if (n.flitBits < 1) {
        diags.add(Severity::Error, comp, "flit_bits",
                  "flit width must be at least one bit");
    }
    if (n.clockRate <= 0.0) {
        diags.add(Severity::Error, comp, "clock_rate_mhz",
                  "clock rate must be positive");
    }
    if (n.linkLength < 0.0) {
        diags.add(Severity::Error, comp, "link_length_mm",
                  "negative link length");
    }

    // For grid topologies the node count should relate to the
    // population it connects: one node per core (or per core cluster),
    // or one per shared-cache bank.  Buses and crossbars routinely
    // span asymmetric mixes (Niagara's crossbar joins 8 cores to 4 L2
    // banks), so only grids are checked — and only advisorily, since
    // concentrated meshes are legitimate.
    const bool grid = n.topology == uncore::NocTopology::Mesh2D ||
                      n.topology == uncore::NocTopology::Torus2D;
    if (grid && n.nodesX >= 1 && n.nodesY >= 1) {
        const int nodes = n.nodes();
        const int cores = p.totalCores();
        const bool matches_cores =
            cores >= 1 && (cores % nodes == 0 || nodes % cores == 0);
        const bool matches_l2 = p.numL2 > 0 && nodes == p.numL2;
        if (!matches_cores && !matches_l2) {
            diags.add(Severity::Warning, comp, "nodes_x",
                      "mesh of " + std::to_string(nodes) +
                          " nodes is unrelated to the core count (" +
                          std::to_string(cores) +
                          ") or L2 instance count (" +
                          std::to_string(p.numL2) + ")");
        }
    }
}

} // namespace

DiagnosticList
SystemParams::check() const
{
    DiagnosticList diags;

    // --- Technology operating point. -----------------------------------
    if (nodeNm < tech::kMinTechNode || nodeNm > tech::kMaxTechNode) {
        diags.add(Severity::Error, name, "technology_node",
                  "technology node " + std::to_string(nodeNm) +
                      " nm outside the table range [" +
                      std::to_string(tech::kMinTechNode) + ", " +
                      std::to_string(tech::kMaxTechNode) + "]");
    }
    if (temperature < 233.0 || temperature > 420.0) {
        diags.add(Severity::Error, name, "temperature",
                  "temperature " + std::to_string(temperature) +
                      " K outside the modeled range [233, 420]");
    }
    if (vdd != 0.0 && (vdd < 0.2 || vdd > 2.5)) {
        diags.add(Severity::Error, name, "vdd",
                  "supply override " + std::to_string(vdd) +
                      " V outside the plausible range [0.2, 2.5]");
    }
    if (whiteSpaceFraction < 0.0 || whiteSpaceFraction > 0.6) {
        diags.add(Severity::Error, name, "white_space",
                  "white-space fraction outside [0, 0.6]");
    }

    // --- Core population. ----------------------------------------------
    if (totalCores() < 1) {
        diags.add(Severity::Error, name, "core_count",
                  "system needs at least one core");
    }
    for (const auto &g : resolvedCoreGroups())
        checkCoreGroup(diags, g);

    // --- Shared caches. ------------------------------------------------
    checkSharedCache(diags, "size_kb", l2, numL2);
    checkSharedCache(diags, "size_kb", l3, numL3);

    // --- Directory. ----------------------------------------------------
    if (hasDirectory) {
        if (directory.trackedLines < 1) {
            diags.add(Severity::Error, directory.name, "tracked_lines",
                      "directory must track at least one line");
        }
        if (directory.sharers < 1) {
            diags.add(Severity::Error, directory.name, "sharers",
                      "presence vector needs at least one sharer bit");
        }
    }

    // --- Interconnect. -------------------------------------------------
    if (hasNoc)
        checkNoc(diags, *this);

    // --- Memory controller and I/O. ------------------------------------
    if (hasMemCtrl) {
        if (memCtrl.channels < 1) {
            diags.add(Severity::Error, memCtrl.name, "channels",
                      "memory controller needs at least one channel");
        }
        if (memCtrl.dataBusBits < 1) {
            diags.add(Severity::Error, memCtrl.name, "bus_width",
                      "data bus must be at least one bit wide");
        }
        if (memCtrl.busClock <= 0.0) {
            diags.add(Severity::Error, memCtrl.name, "bus_clock_mhz",
                      "bus clock must be positive");
        }
    }
    if (hasIo) {
        if (io.signalPins < 0) {
            diags.add(Severity::Error, io.name, "pins",
                      "negative signal pin count");
        }
        if (io.ioVoltage <= 0.0) {
            diags.add(Severity::Error, io.name, "io_voltage",
                      "I/O signaling voltage must be positive");
        }
        if (io.toggleRate < 0.0 || io.toggleRate > 1.0) {
            diags.add(Severity::Error, io.name, "toggle_rate",
                      "toggle rate outside [0, 1]");
        }
    }

    return diags;
}

void
SystemParams::validate() const
{
    check().throwIfErrors("system '" + name + "'");
}

} // namespace chip
} // namespace mcpat
