/**
 * @file
 * Leakage/temperature feedback: subthreshold leakage grows
 * exponentially with junction temperature, and junction temperature
 * grows with dissipated power through the package's thermal
 * resistance.  This solver closes that loop — the self-consistent
 * operating point a fixed-temperature report cannot give you, and the
 * mechanism behind thermal runaway on leaky processes.
 */

#ifndef MCPAT_CHIP_THERMAL_HH
#define MCPAT_CHIP_THERMAL_HH

#include "chip/system_params.hh"

namespace mcpat {
namespace chip {

/** Package/environment description for the thermal loop. */
struct ThermalParams
{
    /** Local ambient (inside-chassis) temperature, K. */
    double ambient = 318.0;

    /** Junction-to-ambient thermal resistance (package + heatsink +
     *  airflow), K/W.  Server-class ~0.2-0.3; passive ~0.6+. */
    double junctionToAmbient = 0.25;

    int maxIterations = 20;
    double toleranceK = 0.5;
};

/** Converged thermal operating point. */
struct ThermalResult
{
    double temperature = 0.0;  ///< junction temperature, K
    double power = 0.0;        ///< TDP at that temperature, W
    double leakage = 0.0;      ///< leakage share of it, W
    int iterations = 0;
    /** False when the loop hit the model's 420 K ceiling (thermal
     *  runaway) or failed to settle. */
    bool converged = false;
};

/**
 * Solve the self-consistent junction temperature of a system at TDP
 * activity.  The system's own `temperature` field is used only as the
 * starting guess.
 */
ThermalResult solveThermal(SystemParams sys,
                           const ThermalParams &env = {});

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_THERMAL_HH
