/**
 * @file
 * Processor assembly.
 */

#include "chip/processor.hh"

#include <cmath>
#include <functional>
#include <vector>

#include "chip/component_memo.hh"
#include "common/instrument.hh"
#include "common/parallel.hh"

namespace mcpat {
namespace chip {

std::vector<CoreGroup>
SystemParams::resolvedCoreGroups() const
{
    if (!coreGroups.empty())
        return coreGroups;
    CoreGroup g;
    g.core = core;
    g.count = numCores;
    return {g};
}

int
SystemParams::totalCores() const
{
    int n = 0;
    for (const auto &g : resolvedCoreGroups())
        n += g.count;
    return n;
}

Processor::Processor(SystemParams params)
    : _params(std::move(params))
{
    _params.validate();

    _tech = std::make_unique<tech::Technology>(
        _params.nodeNm, _params.coreFlavor, _params.temperature);
    _tech->setProjection(_params.projection);
    if (_params.vdd > 0.0)
        _tech->setVdd(_params.vdd);

    // Components are mutually independent (each reads only _params and
    // the shared const Technology), so build them in parallel.  Every
    // task writes its own member; the NoC is deferred because its link
    // length derives from core and L2 areas.  Each build goes through
    // the component memo: a bundle already built for an earlier chip —
    // the previous sweep point, another batch item, the last server
    // request — is reused verbatim instead of re-assembled.
    MCPAT_SPAN("assemble", _params.name);
    ComponentMemo &memo = ComponentMemo::instance();
    const auto groups = _params.resolvedCoreGroups();
    _cores.resize(groups.size());
    std::vector<std::function<void()>> build;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        build.push_back([this, g, &groups, &memo] {
            MCPAT_SPAN("build.core", groups[g].core.name);
            _cores[g] = memo.core(groups[g].core, *_tech);
        });
    }
    if (_params.numL2 > 0) {
        build.push_back([this, &memo] {
            MCPAT_SPAN("build.l2");
            _l2 = memo.sharedCache(_params.l2, *_tech);
        });
    }
    if (_params.numL3 > 0) {
        build.push_back([this, &memo] {
            MCPAT_SPAN("build.l3");
            _l3 = memo.sharedCache(_params.l3, *_tech);
        });
    }
    if (_params.hasDirectory) {
        build.push_back([this, &memo] {
            MCPAT_SPAN("build.directory");
            _directory = memo.directory(_params.directory, *_tech);
        });
    }
    if (_params.hasMemCtrl) {
        build.push_back([this, &memo] {
            MCPAT_SPAN("build.memctrl");
            _memCtrl = memo.memCtrl(_params.memCtrl, *_tech);
        });
    }
    if (_params.hasIo) {
        build.push_back([this, &memo] {
            MCPAT_SPAN("build.io");
            _io = memo.chipIo(_params.io, *_tech);
        });
    }
    parallel::parallelFor(build.size(),
                          [&](std::size_t i) { build[i](); });
    if (_params.hasNoc) {
        MCPAT_SPAN("build.noc");
        uncore::NocParams noc = _params.noc;
        if (noc.linkLength <= 0.0) {
            // Derive the hop span from the tile pitch: each fabric
            // node carries its share of cores and shared cache.  The
            // memo keys on the *resolved* link length, so two chips
            // share a NoC exactly when their derived pitches agree.
            double tile_area = 0.0;
            for (std::size_t g = 0; g < groups.size(); ++g)
                tile_area += _cores[g]->area() * groups[g].count;
            if (_l2)
                tile_area += _l2->area() * _params.numL2;
            tile_area /= std::max(1, noc.nodes());
            noc.linkLength = std::sqrt(std::max(tile_area, 0.01 * mm2));
        }
        _noc = memo.noc(noc, *_tech);
    }

    MCPAT_SPAN("tdp");
    _tdpStats = stats::ChipStats::tdp(_params);
    _tdpReport = makeReport(_tdpStats);
    _area = _tdpReport.area;
}

Report
Processor::makeReport(const stats::ChipStats &rt) const
{
    // The TDP vector depends only on _params; reuse the one derived at
    // construction instead of recomputing it per report (callers like
    // evaluateDesignPoint request one report per workload).
    const stats::ChipStats &tdp_stats = _tdpStats;

    Report r;
    r.name = _params.name;

    // --- Cores: model one per group, replicate by count; keep one
    //     child per group for detail. ----------------------------------
    {
        const auto groups = _params.resolvedCoreGroups();
        Report cores;
        cores.name = "Total Cores (" +
                     std::to_string(_params.totalCores()) + " cores)";
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const core::CoreStats &g_tdp =
                (tdp_stats.perGroup.size() == groups.size())
                    ? tdp_stats.perGroup[g]
                    : tdp_stats.perCore;
            const core::CoreStats &g_rt =
                (rt.perGroup.size() == groups.size()) ? rt.perGroup[g]
                                                      : rt.perCore;
            Report one = _cores[g]->makeReport(g_tdp, g_rt);
            if (groups.size() > 1) {
                one.name = groups[g].core.name + " (x" +
                           std::to_string(groups[g].count) + ")";
            }
            cores.accumulate(one, groups[g].count);
            cores.children.push_back(std::move(one));
        }
        r.addChild(std::move(cores));
    }

    if (_l2) {
        Report one = _l2->makeReport(tdp_stats.l2Rates, rt.l2Rates);
        Report l2s;
        l2s.name = "Total L2s (" + std::to_string(_params.numL2) +
                   " instances)";
        l2s.accumulate(one, _params.numL2);
        l2s.children.push_back(std::move(one));
        r.addChild(std::move(l2s));
    }
    if (_l3) {
        Report one = _l3->makeReport(tdp_stats.l3Rates, rt.l3Rates);
        Report l3s;
        l3s.name = "Total L3s (" + std::to_string(_params.numL3) +
                   " instances)";
        l3s.accumulate(one, _params.numL3);
        l3s.children.push_back(std::move(one));
        r.addChild(std::move(l3s));
    }
    if (_directory) {
        r.addChild(_directory->makeReport(tdp_stats.directoryRates,
                                          rt.directoryRates));
    }
    if (_noc) {
        r.addChild(_noc->makeReport(tdp_stats.nocFlitsPerCycle,
                                    rt.nocFlitsPerCycle));
    }
    if (_memCtrl) {
        r.addChild(_memCtrl->makeReport(tdp_stats.mcUtilization,
                                        rt.mcUtilization));
    }
    if (_io) {
        r.addChild(_io->makeReport(tdp_stats.ioActivityScale,
                                   rt.ioActivityScale));
    }

    // Decoupling capacitance and power-grid cells: real floorplans
    // dedicate ~12% of placed area to decap.
    Report decap;
    decap.name = "Decap + Power Grid";
    decap.area = 0.12 * r.area;
    r.addChild(std::move(decap));

    // Pad ring: a ~0.4 mm I/O ring around the die perimeter.
    {
        const double ring_w = 0.4 * mm;
        const double edge = std::sqrt(r.area);
        Report ring;
        ring.name = "Pad Ring";
        ring.area = 4.0 * edge * ring_w;
        r.addChild(std::move(ring));
    }

    // Chip-level white space (routing channels, floorplan gaps,
    // unmodeled glue).
    r.area *= (1.0 + _params.whiteSpaceFraction);
    return r;
}

bool
Processor::meetsTiming() const
{
    for (const auto &c : _cores)
        if (!c->meetsTiming())
            return false;
    return true;
}

} // namespace chip
} // namespace mcpat
