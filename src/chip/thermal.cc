/**
 * @file
 * Thermal fixed-point implementation.
 */

#include "chip/thermal.hh"

#include <algorithm>
#include <cmath>

#include "chip/processor.hh"

namespace mcpat {
namespace chip {

namespace {

/** The technology tables are valid up to this junction temperature. */
constexpr double maxJunction = 419.0;

} // namespace

ThermalResult
solveThermal(SystemParams sys, const ThermalParams &env)
{
    fatalIf(env.junctionToAmbient <= 0.0,
            "thermal resistance must be positive");
    fatalIf(env.ambient < 233.0 || env.ambient > 400.0,
            "ambient temperature outside the modeled range");

    ThermalResult result;
    double t = std::clamp(sys.temperature, env.ambient + 1.0,
                          maxJunction);
    bool ceiling = false;

    for (int i = 0; i < env.maxIterations; ++i) {
        sys.temperature = t;
        const Processor proc(sys);
        const double power = proc.tdp();
        double t_new = env.ambient + env.junctionToAmbient * power;
        if (t_new > maxJunction) {
            t_new = maxJunction;
            ceiling = true;
        } else {
            ceiling = false;
        }
        // Damped update keeps the exponential-leakage loop stable.
        const double next = 0.5 * t + 0.5 * t_new;
        result.iterations = i + 1;
        result.temperature = next;
        result.power = power;
        result.leakage = proc.tdpReport().leakage();
        if (std::abs(next - t) < env.toleranceK) {
            result.converged = !ceiling;
            result.temperature = next;
            return result;
        }
        t = next;
    }
    result.converged = false;
    return result;
}

} // namespace chip
} // namespace mcpat
