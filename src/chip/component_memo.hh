/**
 * @file
 * Component-level memoization for chip assembly (delta evaluation).
 *
 * A design-space sweep rebuilds nearly identical chips at every grid
 * point: a point that only changes the L2 size still re-solves every
 * core-side array, re-sizes the clock tree, and re-runs the organization
 * search for structures whose parameters did not move.  The array memo
 * (array/array_cache.hh) already removes the per-array cost; this layer
 * sits one level up and removes the per-*component* cost.  Fully built
 * components — cores, shared caches, directories, NoCs, memory
 * controllers, chip I/O — are cached process-wide, keyed by the
 * canonical sub-parameter bundle that determines them:
 *
 *     component kind
 *   + every field of the component's params struct (display name
 *     included, so reports stay byte-identical)
 *   + the resolved technology operating point (node, flavor, Vdd,
 *     temperature, wire projection)
 *
 * Processor assembly (chip/processor.cc) consults the memo per
 * component, which is what makes evaluation *delta*: two sweep points
 * that differ only in L2 capacity share every core-side build verbatim,
 * and the second point pays only for the components whose key changed.
 * This is dirty tracking by construction — a component is "dirty"
 * exactly when its key differs from every cached entry, so invalidation
 * can never be forgotten; the price is that a params-struct field that
 * is not folded into the key here would alias.  **When adding a field
 * to any params struct below, extend the matching key function in
 * component_memo.cc** (MODELING.md section 6g records this rule).
 *
 * Cached components are immutable after construction (makeReport and
 * friends are const), self-contained (Core and ArrayModel copy their
 * Technology by value; the others keep only derived figures), and
 * deterministic to build, so sharing them across Processor instances —
 * and across threads — never changes reported numbers.  A memoized
 * assembly is bit-identical to a fresh one.
 *
 * The memo is enabled by default; disable with MCPAT_COMPONENT_MEMO=0
 * or setEnabled(false).  Hit/miss/entry counters are exported into the
 * instrumentation registry ("component_memo.*") via a collector.
 */

#ifndef MCPAT_CHIP_COMPONENT_MEMO_HH
#define MCPAT_CHIP_COMPONENT_MEMO_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/core.hh"
#include "uncore/chip_io.hh"
#include "uncore/directory.hh"
#include "uncore/memctrl.hh"
#include "uncore/noc.hh"
#include "uncore/shared_cache.hh"

namespace mcpat {
namespace chip {

/** Memo observability counters. */
struct ComponentMemoStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    /** Whole-table drops after exceeding the entry cap. */
    std::uint64_t evictions = 0;
};

/**
 * Process-global, thread-safe memo of built chip components.
 *
 * Lookups and insertions are synchronized; construction on a miss runs
 * outside the lock, so two threads racing on the same key may both
 * build — the first insert wins and the loser adopts it (builds are
 * deterministic, so the copies are interchangeable).
 */
class ComponentMemo
{
  public:
    static ComponentMemo &instance();

    bool enabled() const { return _enabled; }
    void setEnabled(bool on) { _enabled = on; }

    /** Entry cap; exceeding it drops the whole table (bounded memory
     *  beats LRU bookkeeping for sweep-shaped reuse). */
    void setCapacity(std::size_t cap);

    std::shared_ptr<const core::Core>
    core(const core::CoreParams &params, const tech::Technology &t);

    std::shared_ptr<const uncore::SharedCache>
    sharedCache(const uncore::SharedCacheParams &params,
                const tech::Technology &t);

    std::shared_ptr<const uncore::Directory>
    directory(const uncore::DirectoryParams &params,
              const tech::Technology &t);

    std::shared_ptr<const uncore::Noc>
    noc(const uncore::NocParams &params, const tech::Technology &t);

    std::shared_ptr<const uncore::MemoryController>
    memCtrl(const uncore::MemCtrlParams &params,
            const tech::Technology &t);

    std::shared_ptr<const uncore::ChipIo>
    chipIo(const uncore::ChipIoParams &params, const tech::Technology &t);

    ComponentMemoStats stats() const;

    /** Drop every entry and zero the counters. */
    void clear();

  private:
    ComponentMemo();

    /** Type-erased get-or-build; Build returns shared_ptr<const T>. */
    template <typename T>
    std::shared_ptr<const T>
    getOrBuild(const std::string &key,
               const std::function<std::shared_ptr<const T>()> &build);

    mutable std::mutex _mutex;
    std::unordered_map<std::string, std::shared_ptr<const void>> _entries;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
    std::size_t _capacity = 1024;
    bool _enabled = true;
};

} // namespace chip
} // namespace mcpat

#endif // MCPAT_CHIP_COMPONENT_MEMO_HH
