/**
 * @file
 * Row-decoder implementation.
 *
 * Structure (CACTI-style): address buffers feed 3-bit predecode groups
 * (8 lines each) routed vertically along the subarray; each row ANDs one
 * line per group and drives its wordline through a tapered buffer chain.
 */

#include "array/decoder.hh"

#include <algorithm>
#include <cmath>

#include "circuit/elmore.hh"
#include "circuit/wire.hh"

namespace mcpat {
namespace array {

using namespace circuit;

Decoder::Decoder(int rows, double wordline_cap, double array_height,
                 const Technology &t)
{
    panicIf(rows < 1, "decoder with no rows");
    _addressBits = std::max(1, static_cast<int>(std::ceil(std::log2(
        static_cast<double>(rows)))));

    const int groups = std::max(1, (_addressBits + 2) / 3);
    const double wmin = minWidth(t);
    const Inverter unit(wmin, t);

    // --- Per-row gate: a 'groups'-input NAND sized 2x minimum. ---------
    const double row_gate_w = 2.0 * wmin;
    const double row_gate_in_c = gateC(row_gate_w, t);
    const double row_gate_self_c = drainC(row_gate_w * (groups + 2), t);
    const double row_gate_res = onResistanceN(row_gate_w, t) * groups;

    // --- Wordline driver chain from the row gate to the wordline. ------
    const BufferChain wl_driver(wordline_cap, t, row_gate_in_c * 2.0, 2);

    // --- Predecode line: wire down the array + row-gate loads. ---------
    const Wire predec_wire(std::max(array_height, 1.0 * um),
                           tech::WireLayer::Local, t);
    // Each predecode line feeds rows/8-ish row gates on average.
    const double fanin_rows = std::max(1.0, rows / 8.0);
    const double predec_line_c =
        predec_wire.capacitance() + fanin_rows * row_gate_in_c;

    // Predecode gate: 3-input NAND driving the line through a buffer.
    const BufferChain predec_driver(predec_line_c, t,
                                    unit.inputC(t) * 2.0, 1);

    // --- Address buffers fan out each bit to the predecoders. ----------
    const double addr_fanout_c = 2.0 * groups * unit.inputC(t);
    const BufferChain addr_buf(addr_fanout_c, t);

    // --- Delay: buffers -> predecode driver + line RC -> row gate ->
    //     wordline driver chain. --------------------------------------
    const double line_delay = distributedLineDelay(
        0.0, predec_wire.resistance(), predec_line_c, row_gate_in_c);
    const double row_gate_delay = stageDelay(
        row_gate_res, row_gate_self_c, wl_driver.inputC());
    _delay = addr_buf.delay() + predec_driver.delay() + line_delay +
             row_gate_delay + wl_driver.delay();

    // --- Energy: address bits toggle (~half), two predecode lines per
    //     group swing, one row gate + one wordline driver fire. --------
    const double vdd2 = t.vdd() * t.vdd();
    _energy = 0.5 * _addressBits * addr_buf.energyPerEvent() +
              groups * (predec_driver.energyPerEvent() +
                        predec_line_c * vdd2) +
              (row_gate_self_c + row_gate_in_c * groups) * vdd2 +
              wl_driver.energyPerEvent() - wordline_cap * vdd2;
    _energy = std::max(_energy, 0.0);

    // --- Leakage: every row holds a gate + driver chain. ---------------
    const double row_sub =
        circuit::subthresholdLeakage(row_gate_w * groups, row_gate_w * 2.0, t, 0.6) +
        wl_driver.subthresholdLeakage();
    const double row_gate_leak =
        circuit::gateLeakage(row_gate_w * (groups + 2), t) + wl_driver.gateLeakage();
    const int predec_gates = groups * 8;
    _subLeak = rows * row_sub +
               predec_gates * circuit::subthresholdLeakage(3.0 * wmin, 3.0 * wmin,
                                                  t, 0.6) +
               _addressBits * addr_buf.subthresholdLeakage();
    _gateLeak = rows * row_gate_leak +
                predec_gates * circuit::gateLeakage(6.0 * wmin, t) +
                _addressBits * addr_buf.gateLeakage();

    // --- Area: row stack + predecode + buffers. ------------------------
    _area = rows * (t.logicGateArea() + wl_driver.area()) +
            predec_gates * 1.5 * t.logicGateArea() +
            _addressBits * addr_buf.area();
}

} // namespace array
} // namespace mcpat
