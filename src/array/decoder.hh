/**
 * @file
 * Row-decoder model: address buffers, predecoders, per-row gates, and the
 * wordline driver chain, sized with logical effort.
 */

#ifndef MCPAT_ARRAY_DECODER_HH
#define MCPAT_ARRAY_DECODER_HH

#include "circuit/logical_effort.hh"

namespace mcpat {
namespace array {

using circuit::Technology;

/**
 * A two-level decoder (predecode + final row gate) feeding wordline
 * drivers, for a subarray of @c rows rows.
 */
class Decoder
{
  public:
    /**
     * @param rows          number of rows to decode (>= 1)
     * @param wordline_cap  capacitive load of one wordline, F
     * @param array_height  vertical run of the predecode lines, m
     * @param t             technology operating point
     */
    Decoder(int rows, double wordline_cap, double array_height,
            const Technology &t);

    /** Address-valid to wordline-driver-output delay, s. */
    double delay() const { return _delay; }

    /** Dynamic energy per decode (one row fires), J. */
    double energyPerAccess() const { return _energy; }

    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }

    /** Layout area of the decode stack, m^2. */
    double area() const { return _area; }

    int addressBits() const { return _addressBits; }

  private:
    int _addressBits = 0;
    double _delay = 0.0;
    double _energy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _area = 0.0;
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_DECODER_HH
