/**
 * @file
 * Subarray implementation.
 */

#include "array/mat.hh"

#include <algorithm>
#include <cmath>

#include "circuit/elmore.hh"
#include "circuit/wire.hh"

namespace mcpat {
namespace array {

using namespace circuit;

namespace {

/** Relative bitline swing sensed by the amplifier. */
constexpr double senseSwing = 0.1;  // V

/** Extra cell pitch per port beyond the first (extra WL + BL pair). */
constexpr double portPitchGrowth = 0.3;

/** Access-device width inside a storage cell. */
double
cellAccessWidth(const Technology &t)
{
    return 1.5 * t.feature();
}

struct CellDims { double w, h, leakW; };

CellDims
cellDims(CellType cell, int ports, const Technology &t)
{
    double base_area;
    double leak_w;  // total leaking NMOS width per cell
    switch (cell) {
      case CellType::SRAM:
        base_area = t.sramCellArea();
        leak_w = 2.0 * cellAccessWidth(t);
        break;
      case CellType::CAM:
        base_area = t.camCellArea();
        leak_w = 3.5 * cellAccessWidth(t);
        break;
      case CellType::EDRAM:
        // 1T1C logic eDRAM: ~2.5x denser than SRAM; only the access
        // device leaks (and it is engineered for low off-current).
        base_area = t.sramCellArea() / 2.5;
        leak_w = 0.05 * cellAccessWidth(t);
        break;
      case CellType::DFF:
      default:
        base_area = t.dffArea();
        leak_w = 8.0 * cellAccessWidth(t);
        break;
    }
    const double aspect = t.node().sramCellAspect;
    const double port_factor = 1.0 + portPitchGrowth * (ports - 1);
    CellDims d;
    d.w = std::sqrt(base_area / aspect) * port_factor;
    d.h = std::sqrt(base_area * aspect) * port_factor;
    d.leakW = leak_w;
    return d;
}

/**
 * Decoder-independent electricals of a rows x cols grid: the wordline,
 * bitline, sense, precharge, and cell-leakage terms shared verbatim by
 * the Subarray constructor and the pruning floor (floorBounds), so the
 * floor can never drift from the real model.
 */
struct CoreElectricals
{
    double wordlineCap = 0.0;
    double wordlineDelay = 0.0;
    double wordlineEnergy = 0.0;
    double bitlineCap = 0.0;
    double bitlineDelay = 0.0;
    double bitlineReadEnergyPerCol = 0.0;
    double bitlineWriteEnergyPerCol = 0.0;
    double senseDelay = 0.0;
    double senseEnergyPerCol = 0.0;
    double prechargeDelay = 0.0;
    double subLeak = 0.0;   ///< cell + column periphery (no decoder)
    double gateLeak = 0.0;  ///< cell + column periphery (no decoder)
};

static CoreElectricals
coreElectricals(int rows, int cols, CellType cell, const CellDims &dims,
                const Technology &t)
{
    CoreElectricals e;
    const auto &wl_wire = t.wire(tech::WireLayer::Local);
    const double vdd = t.vdd();
    const double vdd2 = vdd * vdd;

    // --- Wordline: distributed RC across the columns. -------------------
    const double wl_len = cols * dims.w;
    const double wl_res = wl_wire.resPerM * wl_len;
    e.wordlineCap = cols * 2.0 * gateC(cellAccessWidth(t), t) +
                    wl_wire.capPerM * wl_len;
    e.wordlineDelay = distributedLineDelay(0.0, wl_res, e.wordlineCap, 0.0);
    e.wordlineEnergy = e.wordlineCap * vdd2;

    // --- Bitline: junction load per row plus wire. -----------------------
    const double bl_len = rows * dims.h;
    const double bl_res = wl_wire.resPerM * bl_len;
    e.bitlineCap = rows * drainC(cellAccessWidth(t), t) +
                   wl_wire.capPerM * bl_len;
    // Cell read current discharges the line through two series devices.
    const double i_cell = 0.5 * t.device().ionN * cellAccessWidth(t);
    const double swing = std::max(senseSwing, 0.08 * vdd);
    if (cell == CellType::EDRAM) {
        // Charge sharing between the cell capacitor and the bitline:
        // slower develop time and a destructive read that must restore
        // the full value (charged as a write by the array model).
        e.bitlineDelay = 2.0 * e.bitlineCap * swing / i_cell +
                         0.38 * bl_res * e.bitlineCap;
        e.bitlineReadEnergyPerCol = 0.5 * e.bitlineCap * vdd2;
    } else {
        e.bitlineDelay = e.bitlineCap * swing / i_cell +
                         0.38 * bl_res * e.bitlineCap;
        e.bitlineReadEnergyPerCol = e.bitlineCap * swing * vdd;  // restore
    }
    e.bitlineWriteEnergyPerCol = e.bitlineCap * vdd2;            // full swing

    // --- Sense amplifier: latch-type, resolves in a few FO4; eDRAM
    //     charge-sharing needs reference cells and a longer resolve.
    e.senseDelay = (cell == CellType::EDRAM ? 7.0 : 2.5) * t.fo4();
    const double wmin = minWidth(t);
    e.senseEnergyPerCol = 10.0 * gateC(wmin, t) * vdd2;

    // --- Precharge: restore the bitline swing between accesses. ---------
    e.prechargeDelay = 0.5 * e.bitlineDelay + t.fo4();

    // --- Leakage (cells + per-column periphery; decoder added by the
    //     constructor). ---------------------------------------------------
    const double ncells = static_cast<double>(rows) * cols;
    const auto &d = t.device();
    e.subLeak = ncells * d.ioffN * dims.leakW * t.leakageScale() * vdd +
                cols * circuit::subthresholdLeakage(4.0 * wmin, 4.0 * wmin,
                                                    t, 0.8);
    e.gateLeak = ncells * circuit::gateLeakage(2.0 * cellAccessWidth(t), t) +
                 cols * circuit::gateLeakage(6.0 * wmin, t);
    return e;
}

} // namespace

SubarrayFloor
Subarray::floorBounds(int rows, int cols, int ports, CellType cell,
                      const Technology &t)
{
    const CellDims dims = cellDims(cell, ports, t);
    const CoreElectricals e = coreElectricals(rows, cols, cell, dims, t);

    // Cheap decoder floors: the closed-form pieces of the Decoder model
    // (predecode line RC, row-gate grid, predecode gate stack) computed
    // without sizing any BufferChain.  Every omitted chain contributes
    // nonnegative delay/leakage/area, so these floor the real decoder.
    const int address_bits = std::max(
        1, static_cast<int>(std::ceil(std::log2(
               static_cast<double>(rows)))));
    const int groups = std::max(1, (address_bits + 2) / 3);
    const int predec_gates = groups * 8;
    const double wmin = circuit::minWidth(t);
    const double row_gate_w = 2.0 * wmin;
    const double row_gate_in_c = circuit::gateC(row_gate_w, t);
    const double bl_len = rows * dims.h;
    const circuit::Wire predec_wire(std::max(bl_len, 1.0 * um),
                                    tech::WireLayer::Local, t);
    const double predec_line_c = predec_wire.capacitance() +
                                 std::max(1.0, rows / 8.0) * row_gate_in_c;
    const double decode_delay_lb = circuit::distributedLineDelay(
        0.0, predec_wire.resistance(), predec_line_c, row_gate_in_c);
    const double decode_subleak_lb =
        rows * circuit::subthresholdLeakage(row_gate_w * groups,
                                            row_gate_w * 2.0, t, 0.6) +
        predec_gates * circuit::subthresholdLeakage(3.0 * wmin, 3.0 * wmin,
                                                    t, 0.6);
    const double decode_area_lb =
        rows * t.logicGateArea() + predec_gates * 1.5 * t.logicGateArea();

    SubarrayFloor f;
    f.cellWidth = dims.w;
    f.cellHeight = dims.h;
    // accessDelay() adds the decoder's buffer chains >= 0 to these.
    f.accessDelay = decode_delay_lb + e.wordlineDelay + e.bitlineDelay +
                    e.senseDelay;
    // cycleTime() is max(decodeDelay, wl+bl+sense+precharge).
    f.cycleTime = std::max(decode_delay_lb,
                           e.wordlineDelay + e.bitlineDelay + e.senseDelay +
                               e.prechargeDelay);
    // readEnergy(n) adds decodeEnergy >= 0 to these exact terms.
    f.readEnergyFixed = e.wordlineEnergy;
    f.readEnergyPerCol = e.bitlineReadEnergyPerCol + e.senseEnergyPerCol;
    // subthresholdLeakage() adds the decoder buffer chains >= 0.
    f.subthresholdLeakage = e.subLeak + decode_subleak_lb;
    // Layout: the sense-stack height is the constructor's exact term;
    // the decoder width keeps only the floored gate area.
    f.height = rows * dims.h + 50.0 * t.feature();
    f.width = cols * dims.w + decode_area_lb / std::max(bl_len, 1.0 * um);
    f.area = f.width * f.height;
    return f;
}

Subarray::Subarray(int rows, int cols, int ports, CellType cell,
                   const Technology &t)
    : _tech(t), _rows(rows), _cols(cols), _ports(ports), _cell(cell),
      _decoder(rows,
               // Wordline load: pass-gate pairs on every column plus the
               // wire across the row of cells.
               cols * 2.0 * gateC(cellAccessWidth(t), t) +
                   t.wire(tech::WireLayer::Local).capPerM *
                   cols * cellDims(cell, ports, t).w,
               rows * cellDims(cell, ports, t).h, t)
{
    panicIf(rows < 1 || cols < 1, "empty subarray");
    panicIf(ports < 1, "subarray without ports");

    const CellDims dims = cellDims(cell, ports, t);
    _cellW = dims.w;
    _cellH = dims.h;

    // Wordline/bitline/sense/precharge/cell-leakage terms are shared
    // with the pruning floor (floorBounds) so the two cannot diverge.
    const CoreElectricals e = coreElectricals(rows, cols, cell, dims, t);
    _wordlineCap = e.wordlineCap;
    _wordlineDelay = e.wordlineDelay;
    _wordlineEnergy = e.wordlineEnergy;
    _bitlineCap = e.bitlineCap;
    _bitlineDelay = e.bitlineDelay;
    _bitlineReadEnergyPerCol = e.bitlineReadEnergyPerCol;
    _bitlineWriteEnergyPerCol = e.bitlineWriteEnergyPerCol;
    _senseDelay = e.senseDelay;
    _senseEnergyPerCol = e.senseEnergyPerCol;
    _prechargeDelay = e.prechargeDelay;

    _decodeEnergy = _decoder.energyPerAccess();

    // --- Leakage: shared cell/column terms plus the decoder stack. ------
    _subLeak = e.subLeak + _decoder.subthresholdLeakage();
    _gateLeak = e.gateLeak + _decoder.gateLeakage();

    // --- Layout. ----------------------------------------------------------
    const double bl_len = rows * _cellH;
    const double sense_stack_h = 50.0 * t.feature();  // SA+precharge
    const double decoder_w = _decoder.area() / std::max(bl_len, 1.0 * um);
    _width = cols * _cellW + decoder_w;
    _height = rows * _cellH + sense_stack_h;
}

double
Subarray::accessDelay() const
{
    return decodeDelay() + _wordlineDelay + _bitlineDelay + _senseDelay;
}

double
Subarray::cycleTime() const
{
    // The decode of the next access overlaps the precharge of this one.
    return std::max(decodeDelay(),
                    _wordlineDelay + _bitlineDelay + _senseDelay +
                        _prechargeDelay);
}

double
Subarray::readEnergy(int active_cols) const
{
    const int n = std::min(active_cols, _cols);
    return _decodeEnergy + _wordlineEnergy +
           n * (_bitlineReadEnergyPerCol + _senseEnergyPerCol);
}

double
Subarray::writeEnergy(int active_cols) const
{
    const int n = std::min(active_cols, _cols);
    return _decodeEnergy + _wordlineEnergy + n * _bitlineWriteEnergyPerCol;
}

} // namespace array
} // namespace mcpat
