/**
 * @file
 * Subarray implementation.
 */

#include "array/mat.hh"

#include <algorithm>
#include <cmath>

#include "circuit/elmore.hh"
#include "circuit/wire.hh"

namespace mcpat {
namespace array {

using namespace circuit;

namespace {

/** Relative bitline swing sensed by the amplifier. */
constexpr double senseSwing = 0.1;  // V

/** Extra cell pitch per port beyond the first (extra WL + BL pair). */
constexpr double portPitchGrowth = 0.3;

/** Access-device width inside a storage cell. */
double
cellAccessWidth(const Technology &t)
{
    return 1.5 * t.feature();
}

struct CellDims { double w, h, leakW; };

CellDims
cellDims(CellType cell, int ports, const Technology &t)
{
    double base_area;
    double leak_w;  // total leaking NMOS width per cell
    switch (cell) {
      case CellType::SRAM:
        base_area = t.sramCellArea();
        leak_w = 2.0 * cellAccessWidth(t);
        break;
      case CellType::CAM:
        base_area = t.camCellArea();
        leak_w = 3.5 * cellAccessWidth(t);
        break;
      case CellType::EDRAM:
        // 1T1C logic eDRAM: ~2.5x denser than SRAM; only the access
        // device leaks (and it is engineered for low off-current).
        base_area = t.sramCellArea() / 2.5;
        leak_w = 0.05 * cellAccessWidth(t);
        break;
      case CellType::DFF:
      default:
        base_area = t.dffArea();
        leak_w = 8.0 * cellAccessWidth(t);
        break;
    }
    const double aspect = t.node().sramCellAspect;
    const double port_factor = 1.0 + portPitchGrowth * (ports - 1);
    CellDims d;
    d.w = std::sqrt(base_area / aspect) * port_factor;
    d.h = std::sqrt(base_area * aspect) * port_factor;
    d.leakW = leak_w;
    return d;
}

} // namespace

Subarray::Subarray(int rows, int cols, int ports, CellType cell,
                   const Technology &t)
    : _tech(t), _rows(rows), _cols(cols), _ports(ports), _cell(cell),
      _decoder(rows,
               // Wordline load: pass-gate pairs on every column plus the
               // wire across the row of cells.
               cols * 2.0 * gateC(cellAccessWidth(t), t) +
                   t.wire(tech::WireLayer::Local).capPerM *
                   cols * cellDims(cell, ports, t).w,
               rows * cellDims(cell, ports, t).h, t)
{
    panicIf(rows < 1 || cols < 1, "empty subarray");
    panicIf(ports < 1, "subarray without ports");

    const CellDims dims = cellDims(cell, ports, t);
    _cellW = dims.w;
    _cellH = dims.h;

    const auto &wl_wire = t.wire(tech::WireLayer::Local);
    const double vdd = t.vdd();
    const double vdd2 = vdd * vdd;

    // --- Wordline: distributed RC across the columns. -------------------
    const double wl_len = cols * _cellW;
    const double wl_res = wl_wire.resPerM * wl_len;
    _wordlineCap = cols * 2.0 * gateC(cellAccessWidth(t), t) +
                   wl_wire.capPerM * wl_len;
    _wordlineDelay = distributedLineDelay(0.0, wl_res, _wordlineCap, 0.0);
    _wordlineEnergy = _wordlineCap * vdd2;

    // --- Bitline: junction load per row plus wire. -----------------------
    const double bl_len = rows * _cellH;
    const double bl_res = wl_wire.resPerM * bl_len;
    _bitlineCap = rows * drainC(cellAccessWidth(t), t) +
                  wl_wire.capPerM * bl_len;
    // Cell read current discharges the line through two series devices.
    const double i_cell = 0.5 * t.device().ionN * cellAccessWidth(t);
    const double swing = std::max(senseSwing, 0.08 * vdd);
    if (cell == CellType::EDRAM) {
        // Charge sharing between the cell capacitor and the bitline:
        // slower develop time and a destructive read that must restore
        // the full value (charged as a write by the array model).
        _bitlineDelay = 2.0 * _bitlineCap * swing / i_cell +
                        0.38 * bl_res * _bitlineCap;
        _bitlineReadEnergyPerCol = 0.5 * _bitlineCap * vdd2;
    } else {
        _bitlineDelay = _bitlineCap * swing / i_cell +
                        0.38 * bl_res * _bitlineCap;
        _bitlineReadEnergyPerCol = _bitlineCap * swing * vdd;  // restore
    }
    _bitlineWriteEnergyPerCol = _bitlineCap * vdd2;            // full swing

    // --- Sense amplifier: latch-type, resolves in a few FO4; eDRAM
    //     charge-sharing needs reference cells and a longer resolve.
    _senseDelay = (cell == CellType::EDRAM ? 7.0 : 2.5) * t.fo4();
    const double wmin = minWidth(t);
    _senseEnergyPerCol = 10.0 * gateC(wmin, t) * vdd2;

    // --- Precharge: restore the bitline swing between accesses. ---------
    _prechargeDelay = 0.5 * _bitlineDelay + t.fo4();

    _decodeEnergy = _decoder.energyPerAccess();

    // --- Leakage. ---------------------------------------------------------
    const double ncells = static_cast<double>(rows) * cols;
    const auto &d = t.device();
    _subLeak = ncells * d.ioffN * dims.leakW * t.leakageScale() * vdd +
               _decoder.subthresholdLeakage() +
               cols * circuit::subthresholdLeakage(4.0 * wmin, 4.0 * wmin, t, 0.8);
    _gateLeak = ncells * circuit::gateLeakage(2.0 * cellAccessWidth(t), t) +
                _decoder.gateLeakage() +
                cols * circuit::gateLeakage(6.0 * wmin, t);

    // --- Layout. ----------------------------------------------------------
    const double sense_stack_h = 50.0 * t.feature();  // SA+precharge
    const double decoder_w = _decoder.area() / std::max(bl_len, 1.0 * um);
    _width = cols * _cellW + decoder_w;
    _height = rows * _cellH + sense_stack_h;
}

double
Subarray::accessDelay() const
{
    return decodeDelay() + _wordlineDelay + _bitlineDelay + _senseDelay;
}

double
Subarray::cycleTime() const
{
    // The decode of the next access overlaps the precharge of this one.
    return std::max(decodeDelay(),
                    _wordlineDelay + _bitlineDelay + _senseDelay +
                        _prechargeDelay);
}

double
Subarray::readEnergy(int active_cols) const
{
    const int n = std::min(active_cols, _cols);
    return _decodeEnergy + _wordlineEnergy +
           n * (_bitlineReadEnergyPerCol + _senseEnergyPerCol);
}

double
Subarray::writeEnergy(int active_cols) const
{
    const int n = std::min(active_cols, _cols);
    return _decodeEnergy + _wordlineEnergy + n * _bitlineWriteEnergyPerCol;
}

} // namespace array
} // namespace mcpat
