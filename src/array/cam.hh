/**
 * @file
 * CAM search-path model: search lines, match lines, match sensing, and
 * the priority encoder.  Layered on top of the Subarray geometry.
 */

#ifndef MCPAT_ARRAY_CAM_HH
#define MCPAT_ARRAY_CAM_HH

#include "array/mat.hh"

namespace mcpat {
namespace array {

/**
 * Search-port circuitry for one CAM subarray.
 */
class CamSearch
{
  public:
    CamSearch(const Subarray &sub, const Technology &t);

    /** Search-key-valid to match-result delay, s. */
    double delay() const { return _delay; }

    /** Energy per search of the whole subarray, J. */
    double energyPerSearch() const { return _energy; }

    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }

    /** Extra area for search drivers, match sensing, encoder, m^2. */
    double area() const { return _area; }

  private:
    double _delay = 0.0;
    double _energy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _area = 0.0;
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_CAM_HH
