/**
 * @file
 * The array model with its organization optimizer — McPAT's equivalent of
 * an embedded CACTI.
 *
 * Given an ArrayParams description, the constructor sweeps internal
 * organizations (wordline/bitline partitioning and folding), evaluates
 * each candidate's delay/energy/leakage/area with the Subarray and wire
 * models, and keeps the best candidate under a CACTI-style weighted
 * objective, honoring an optional cycle-time constraint.
 */

#ifndef MCPAT_ARRAY_ARRAY_MODEL_HH
#define MCPAT_ARRAY_ARRAY_MODEL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "array/array_params.hh"
#include "common/report.hh"

namespace mcpat {
namespace array {

using tech::Technology;

/**
 * Organization-search observability: full candidate evaluations
 * performed vs candidates skipped by the branch-and-bound pruner.
 * Process-global, thread-safe.
 */
struct OptimizerSearchStats
{
    std::uint64_t evaluated = 0;  ///< candidates fully evaluated
    std::uint64_t pruned = 0;     ///< candidates skipped by the bound
};

/**
 * Whether ArrayModel::optimize prunes candidates with the cheap
 * lower-bound test.  Defaults to on; MCPAT_PRUNE=0 (read once) or
 * setOptimizerPruning(false) selects the exhaustive search.  Pruning
 * is constructed to pick bit-identical winners to the exhaustive
 * search, so this switch exists for verification and benchmarking,
 * not correctness.
 */
bool optimizerPruning();
void setOptimizerPruning(bool on);

OptimizerSearchStats optimizerSearchStats();
void resetOptimizerSearchStats();

/** Relative weights for the organization objective (lower is better). */
struct OptimizationWeights
{
    double delay = 100.0;
    double dynamic = 20.0;
    double leakage = 10.0;
    double area = 20.0;
    double cycle = 20.0;

    /**
     * Area-deviation constraint (CACTI-style): candidates whose area
     * exceeds this multiple of the densest feasible organization are
     * rejected, preventing delay-driven periphery explosions.
     */
    double maxAreaRatio = 1.25;
};

/**
 * Per-cycle access rates used to turn per-access energies into power.
 */
struct AccessRates
{
    double reads = 0.0;     ///< read accesses per cycle
    double writes = 0.0;    ///< write accesses per cycle
    double searches = 0.0;  ///< CAM searches per cycle

    static AccessRates
    rw(double r, double w)
    {
        return {r, w, 0.0};
    }
};

/**
 * A fully solved array structure.
 */
class ArrayModel
{
  public:
    /**
     * Build and optimize the array.
     *
     * @param params architectural description
     * @param t      technology operating point of the surrounding logic;
     *               the array re-targets it to params.flavor internally
     * @param weights optimizer objective weights
     */
    ArrayModel(ArrayParams params, const Technology &t,
               OptimizationWeights weights = {});

    const ArrayParams &params() const { return _params; }
    const ArrayResult &result() const { return _result; }

    // Convenience accessors.
    double area() const { return _result.area; }
    double accessDelay() const { return _result.accessDelay; }
    double cycleTime() const { return _result.cycleTime; }
    double readEnergy() const { return _result.readEnergy; }
    double writeEnergy() const { return _result.writeEnergy; }
    double searchEnergy() const { return _result.searchEnergy; }
    double subthresholdLeakage() const
    {
        return _result.subthresholdLeakage;
    }
    double gateLeakage() const { return _result.gateLeakage; }

    /** True when a cycle-time target was given and met. */
    bool meetsTiming() const { return _meetsTiming; }

    /**
     * Summarize as a Report.
     *
     * @param frequency clock frequency, Hz
     * @param tdp       access rates defining peak (TDP) dynamic power
     * @param runtime   access rates from simulation statistics
     */
    Report makeReport(double frequency, const AccessRates &tdp,
                      const AccessRates &runtime) const;

  private:
    ArrayParams _params;
    Technology _tech;     ///< re-flavored for this array
    ArrayResult _result;
    bool _meetsTiming = true;

    struct Candidate;
    struct OrgGeometry;
    struct CandidateFloor;

    OrgGeometry orgGeometry(const ArrayOrg &org) const;
    CandidateFloor candidateFloor(const ArrayOrg &org,
                                  const OrgGeometry &geom) const;
    std::optional<Candidate> evaluate(const ArrayOrg &org) const;
    void searchExhaustive(std::vector<Candidate> &cands) const;
    void searchPruned(const OptimizationWeights &weights,
                      std::vector<Candidate> &cands) const;
    void selectBest(std::vector<Candidate> &cands,
                    const OptimizationWeights &weights);
    void optimize(const OptimizationWeights &weights);
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_ARRAY_MODEL_HH
