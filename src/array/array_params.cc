/**
 * @file
 * ArrayParams derived quantities and validation.
 */

#include "array/array_params.hh"

#include <cmath>

#include "common/logging.hh"

namespace mcpat {
namespace array {

double
ArrayParams::totalBits() const
{
    if (sizeBytes > 0.0)
        return sizeBytes * 8.0;
    return static_cast<double>(rows) * bits;
}

int
ArrayParams::totalRows() const
{
    if (sizeBytes > 0.0)
        return static_cast<int>(std::ceil(sizeBytes * 8.0 /
                                          blockWidthBits));
    return rows;
}

int
ArrayParams::rowBits() const
{
    if (sizeBytes > 0.0)
        return blockWidthBits;
    return bits;
}

int
ArrayParams::totalPorts() const
{
    return readWritePorts + readPorts + writePorts;
}

void
ArrayParams::validate() const
{
    const bool form1 = sizeBytes > 0.0;
    const bool form2 = rows > 0;
    fatalIf(form1 == form2,
            "array '" + name + "': specify exactly one of sizeBytes or "
            "rows x bits");
    fatalIf(form1 && blockWidthBits <= 0,
            "array '" + name + "': sizeBytes form requires blockWidthBits");
    fatalIf(form2 && bits <= 0,
            "array '" + name + "': rows form requires bits > 0");
    fatalIf(totalPorts() <= 0,
            "array '" + name + "': needs at least one port");
    fatalIf(banks <= 0, "array '" + name + "': banks must be positive");
    fatalIf(searchPorts > 0 && cellType != CellType::CAM,
            "array '" + name + "': search ports require CAM cells");
    fatalIf(cellType == CellType::CAM && searchPorts <= 0,
            "array '" + name + "': CAM arrays need at least 1 search port");
    fatalIf(targetCycleTime < 0.0,
            "array '" + name + "': negative cycle-time target");
}

} // namespace array
} // namespace mcpat
