/**
 * @file
 * Array-solution memo table.
 */

#include "array/array_cache.hh"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "array/array_model.hh"
#include "array/disk_cache.hh"
#include "common/instrument.hh"
#include "common/parallel.hh"

namespace mcpat {
namespace array {

namespace {

inline void
hashCombine(std::size_t &seed, std::size_t v)
{
    seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

inline std::size_t
hashDouble(double d)
{
    // Normalize -0.0 so it hashes like 0.0 (they compare equal).
    if (d == 0.0)
        d = 0.0;
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return std::hash<std::uint64_t>{}(bits);
}

double
ratioOrZero(std::uint64_t part, std::uint64_t total)
{
    return total ? static_cast<double>(part) / total : 0.0;
}

/**
 * Absorb both cache tiers' counters into the instrumentation registry.
 * The cache keeps its own cheap internal counters (they predate the
 * registry and are integral to find/insert); this collector mirrors
 * them into gauges at snapshot time so manifests, traces, and the
 * -cache_stats reporter all read one source of truth.
 */
[[maybe_unused]] const bool g_cache_collector_registered =
    instr::Registry::instance().addCollector([](instr::Registry &reg) {
        const ArrayCacheStats s = ArrayResultCache::instance().stats();
        reg.gauge("cache.memory.hits")
            .set(static_cast<double>(s.hits));
        reg.gauge("cache.memory.misses")
            .set(static_cast<double>(s.misses));
        reg.gauge("cache.memory.entries")
            .set(static_cast<double>(s.entries));
        reg.gauge("cache.memory.hit_rate")
            .set(ratioOrZero(s.hits, s.hits + s.misses));
        reg.gauge("cache.disk.hits")
            .set(static_cast<double>(s.diskHits));
        reg.gauge("cache.disk.misses")
            .set(static_cast<double>(s.diskMisses));
        reg.gauge("cache.disk.corrupt")
            .set(static_cast<double>(s.diskCorrupt));
        reg.gauge("cache.disk.write_failures")
            .set(static_cast<double>(s.diskWriteFailures));
        reg.gauge("cache.disk.hit_rate")
            .set(ratioOrZero(s.diskHits, s.diskHits + s.diskMisses));
    });

/** "82.4%" from a registry hit-rate gauge; "-" when nothing happened. */
std::string
percent(double rate, double total)
{
    if (total <= 0.0)
        return "-";
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << 100.0 * rate << "%";
    return os.str();
}

} // namespace

void
reportCacheStats(std::ostream &os)
{
    // Snapshot with collectors so the line below is rendered from the
    // registry, not from a second private read of the cache counters.
    const auto samples = instr::Registry::instance().snapshot(true);
    auto get = [&](const char *name) {
        for (const auto &s : samples)
            if (s.name == name)
                return s.value;
        return 0.0;
    };
    const double mem_hits = get("cache.memory.hits");
    const double mem_misses = get("cache.memory.misses");
    const double disk_hits = get("cache.disk.hits");
    const double disk_misses = get("cache.disk.misses");
    os << "array cache: memory " << std::uint64_t(mem_hits)
       << " hits, " << std::uint64_t(mem_misses) << " misses ("
       << percent(get("cache.memory.hit_rate"), mem_hits + mem_misses)
       << " hit rate, " << std::uint64_t(get("cache.memory.entries"))
       << " entries); disk " << std::uint64_t(disk_hits) << " hits, "
       << std::uint64_t(disk_misses) << " misses ("
       << percent(get("cache.disk.hit_rate"), disk_hits + disk_misses)
       << " hit rate, " << std::uint64_t(get("cache.disk.corrupt"))
       << " corrupt, "
       << std::uint64_t(get("cache.disk.write_failures"))
       << " write failures); " << std::uint64_t(get("parallel.threads"))
       << " evaluation threads\n";
}

std::size_t
ArrayCacheKeyHash::operator()(const ArrayCacheKey &k) const
{
    std::size_t seed = 0;
    hashCombine(seed, hashDouble(k.sizeBytes));
    hashCombine(seed, std::hash<int>{}(k.blockWidthBits));
    hashCombine(seed, std::hash<int>{}(k.rows));
    hashCombine(seed, std::hash<int>{}(k.bits));
    hashCombine(seed, std::hash<int>{}(k.cellType));
    hashCombine(seed, std::hash<int>{}(k.readWritePorts));
    hashCombine(seed, std::hash<int>{}(k.readPorts));
    hashCombine(seed, std::hash<int>{}(k.writePorts));
    hashCombine(seed, std::hash<int>{}(k.searchPorts));
    hashCombine(seed, std::hash<int>{}(k.banks));
    hashCombine(seed, hashDouble(k.targetCycleTime));
    hashCombine(seed, std::hash<int>{}(k.nodeNm));
    hashCombine(seed, std::hash<int>{}(k.flavor));
    hashCombine(seed, hashDouble(k.vdd));
    hashCombine(seed, hashDouble(k.temperature));
    hashCombine(seed, std::hash<int>{}(k.projection));
    hashCombine(seed, hashDouble(k.wDelay));
    hashCombine(seed, hashDouble(k.wDynamic));
    hashCombine(seed, hashDouble(k.wLeakage));
    hashCombine(seed, hashDouble(k.wArea));
    hashCombine(seed, hashDouble(k.wCycle));
    hashCombine(seed, hashDouble(k.wMaxAreaRatio));
    return seed;
}

ArrayResultCache::ArrayResultCache()
{
    if (const char *env = std::getenv("MCPAT_ARRAY_CACHE"))
        _enabled = std::strcmp(env, "0") != 0;
    if (const char *dir = std::getenv("MCPAT_CACHE_DIR")) {
        if (*dir != '\0')
            _disk = std::make_unique<ArrayDiskCache>(dir);
    }
}

ArrayResultCache::~ArrayResultCache() = default;

void
ArrayResultCache::setCacheDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _disk = dir.empty() ? nullptr : std::make_unique<ArrayDiskCache>(dir);
    _diskHits = 0;
    _diskMisses = 0;
    _diskCorrupt = 0;
    _diskWriteFailures = 0;
}

std::string
ArrayResultCache::cacheDir() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _disk ? _disk->directory() : std::string();
}

ArrayResultCache &
ArrayResultCache::instance()
{
    static ArrayResultCache cache;
    return cache;
}

ArrayCacheKey
ArrayResultCache::makeKey(const ArrayParams &params,
                          const tech::Technology &resolved_tech,
                          const OptimizationWeights &weights)
{
    ArrayCacheKey k;
    k.sizeBytes = params.sizeBytes;
    k.blockWidthBits = params.blockWidthBits;
    k.rows = params.rows;
    k.bits = params.bits;
    k.cellType = static_cast<int>(params.cellType);
    k.readWritePorts = params.readWritePorts;
    k.readPorts = params.readPorts;
    k.writePorts = params.writePorts;
    k.searchPorts = params.searchPorts;
    k.banks = params.banks;
    k.targetCycleTime = params.targetCycleTime;

    k.nodeNm = resolved_tech.nodeNm();
    k.flavor = static_cast<int>(resolved_tech.flavor());
    k.vdd = resolved_tech.vdd();
    k.temperature = resolved_tech.temperature();
    k.projection = static_cast<int>(resolved_tech.projection());

    k.wDelay = weights.delay;
    k.wDynamic = weights.dynamic;
    k.wLeakage = weights.leakage;
    k.wArea = weights.area;
    k.wCycle = weights.cycle;
    k.wMaxAreaRatio = weights.maxAreaRatio;
    return k;
}

std::optional<CachedArraySolution>
ArrayResultCache::find(const ArrayCacheKey &key)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_enabled)
        return std::nullopt;
    auto it = _entries.find(key);
    if (it != _entries.end()) {
        ++_hits;
        return it->second;
    }
    ++_misses;

    // Memory miss: fall through to the persistent tier.  A clean disk
    // hit is promoted into the memory tier so later lookups of the
    // same key never touch the filesystem again.
    if (_disk) {
        bool corrupt = false;
        if (auto sol = _disk->load(key, corrupt)) {
            ++_diskHits;
            _entries.emplace(key, *sol);
            return sol;
        }
        ++_diskMisses;
        if (corrupt)
            ++_diskCorrupt;
    }
    return std::nullopt;
}

void
ArrayResultCache::insert(const ArrayCacheKey &key,
                         const CachedArraySolution &sol)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_enabled)
        return;
    _entries.emplace(key, sol);
    if (_disk && !_disk->store(key, sol))
        ++_diskWriteFailures;
}

ArrayCacheStats
ArrayResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    ArrayCacheStats s;
    s.hits = _hits;
    s.misses = _misses;
    s.entries = _entries.size();
    s.diskHits = _diskHits;
    s.diskMisses = _diskMisses;
    s.diskCorrupt = _diskCorrupt;
    s.diskWriteFailures = _diskWriteFailures;
    return s;
}

void
ArrayResultCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _hits = 0;
    _misses = 0;
    _diskHits = 0;
    _diskMisses = 0;
    _diskCorrupt = 0;
    _diskWriteFailures = 0;
}

} // namespace array
} // namespace mcpat
