/**
 * @file
 * User-facing parameters for memory-array structures.
 *
 * Arrays are the dominant silicon in the chips McPAT targets: caches,
 * register files, branch predictors, TLBs, queues, directories.  A user
 * describes an array architecturally (capacity, word width, ports); the
 * organization optimizer (array_model.cc) finds the internal subarray
 * partitioning — that is the "circuit-level optimizer" of the paper.
 */

#ifndef MCPAT_ARRAY_ARRAY_PARAMS_HH
#define MCPAT_ARRAY_ARRAY_PARAMS_HH

#include <optional>
#include <string>

#include "tech/technology.hh"

namespace mcpat {
namespace array {

/** Storage-cell implementation for an array. */
enum class CellType
{
    SRAM,   ///< 6T cells: caches, large register files
    CAM,    ///< content-addressable: issue queues, fully-assoc TLBs, LSQs
    DFF,    ///< flip-flop grid: small queues and FIFOs
    EDRAM   ///< 1T1C logic eDRAM: dense LLCs (destructive read + refresh)
};

/**
 * Architectural description of one array structure.
 *
 * Specify either @c sizeBytes (+ @c blockWidthBits) for byte-addressed
 * memories or @c rows x @c bits for word-organized structures (register
 * files, predictor tables).  Exactly one of the two forms must be used.
 */
struct ArrayParams
{
    std::string name = "array";

    // --- Form 1: byte-addressed memory -------------------------------
    double sizeBytes = 0.0;     ///< total capacity, bytes
    int blockWidthBits = 0;     ///< bits delivered per access

    // --- Form 2: word-organized structure -----------------------------
    int rows = 0;               ///< number of entries
    int bits = 0;               ///< bits per entry

    CellType cellType = CellType::SRAM;

    // Ports.  A read/write port carries both directions (standard cache
    // port); dedicated read/write ports are extra wordlines/bitlines.
    int readWritePorts = 1;
    int readPorts = 0;
    int writePorts = 0;
    int searchPorts = 0;        ///< CAM search ports

    int banks = 1;              ///< independently addressable banks

    /** Optional cycle-time constraint; 0 disables the check, s. */
    double targetCycleTime = 0.0;

    /**
     * Transistor flavor for the cells and periphery of this array.
     * Unset (the default) inherits the surrounding logic's flavor;
     * large caches usually set LSTP explicitly while core logic is HP.
     */
    std::optional<tech::DeviceFlavor> flavor;

    /** Derived: total storage bits across all banks. */
    double totalBits() const;

    /** Derived: total rows (form 2) or sizeBytes*8/blockWidth (form 1). */
    int totalRows() const;

    /** Derived: bits per row as organized logically. */
    int rowBits() const;

    /** Total wordline-switching ports per cell. */
    int totalPorts() const;

    /** Throw ConfigError when the description is inconsistent. */
    void validate() const;
};

/**
 * Organization of the array chosen by the optimizer (CACTI's Ndwl / Ndbl
 * / Nspd parameters, per bank).
 */
struct ArrayOrg
{
    int ndwl = 1;     ///< wordline partitions (splits columns)
    int ndbl = 1;     ///< bitline partitions (splits rows)
    double nspd = 1;  ///< row/column folding factor

    int subarrays() const { return ndwl * ndbl; }
};

/**
 * Full electrical/physical result for one array instance.
 *
 * Energies are per access of one port; powers are totals for the array.
 */
struct ArrayResult
{
    ArrayOrg org;

    double area = 0.0;          ///< m^2
    double accessDelay = 0.0;   ///< address-to-data delay, s
    double cycleTime = 0.0;     ///< min time between accesses, s

    double readEnergy = 0.0;    ///< J per read access
    double writeEnergy = 0.0;   ///< J per write access
    double searchEnergy = 0.0;  ///< J per CAM search (CAM arrays only)

    double subthresholdLeakage = 0.0;  ///< W
    double gateLeakage = 0.0;          ///< W

    /** Always-on refresh power (eDRAM arrays only), W. */
    double refreshPower = 0.0;

    double height = 0.0;        ///< layout height, m
    double width = 0.0;         ///< layout width, m
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_ARRAY_PARAMS_HH
