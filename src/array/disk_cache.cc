/**
 * @file
 * Persistent array-solution record store.
 */

#include "array/disk_cache.hh"

#include <chrono>
#include <filesystem>
#include <iostream>

#include "common/event_log.hh"
#include "common/serialize.hh"

namespace mcpat {
namespace array {

using common::ByteReader;
using common::ByteWriter;

namespace {

/**
 * Remove stale `.tmp.*` droppings left by writers that crashed between
 * creating their temp file and renaming it into place.  Only files
 * older than a grace period are removed, so a concurrent writer's
 * in-flight temp file is never yanked out from under it.  All errors
 * are ignored: this is opportunistic hygiene, not correctness.
 */
void
sweepStaleTempFiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    constexpr auto kGrace = std::chrono::minutes(15);
    std::error_code ec;
    fs::directory_iterator it(dir, ec), end;
    if (ec)
        return;
    const auto now = fs::file_time_type::clock::now();
    for (; it != end; it.increment(ec)) {
        if (ec)
            return;
        const fs::path &p = it->path();
        if (p.filename().string().rfind(".tmp.", 0) != 0)
            continue;
        const auto mtime = fs::last_write_time(p, ec);
        if (ec) {
            ec.clear();
            continue;
        }
        if (now - mtime > kGrace)
            fs::remove(p, ec);
    }
}

} // namespace

ArrayDiskCache::ArrayDiskCache(std::string directory)
    : _dir(std::move(directory))
{
    // Opening an existing cache is the natural moment to clear debris
    // from crashed writers; a directory that does not exist yet has
    // nothing to sweep.
    std::error_code ec;
    if (std::filesystem::is_directory(_dir, ec))
        sweepStaleTempFiles(_dir);
}

std::vector<std::uint8_t>
ArrayDiskCache::serializeKey(const ArrayCacheKey &k)
{
    ByteWriter w;
    // Canonical ArrayParams.
    w.putF64(k.sizeBytes);
    w.putI32(k.blockWidthBits);
    w.putI32(k.rows);
    w.putI32(k.bits);
    w.putI32(k.cellType);
    w.putI32(k.readWritePorts);
    w.putI32(k.readPorts);
    w.putI32(k.writePorts);
    w.putI32(k.searchPorts);
    w.putI32(k.banks);
    w.putF64(k.targetCycleTime);
    // Technology operating point.
    w.putI32(k.nodeNm);
    w.putI32(k.flavor);
    w.putF64(k.vdd);
    w.putF64(k.temperature);
    w.putI32(k.projection);
    // Optimizer objective.
    w.putF64(k.wDelay);
    w.putF64(k.wDynamic);
    w.putF64(k.wLeakage);
    w.putF64(k.wArea);
    w.putF64(k.wCycle);
    w.putF64(k.wMaxAreaRatio);
    return w.bytes();
}

std::string
ArrayDiskCache::recordPath(const ArrayCacheKey &key) const
{
    return _dir + "/" + common::toHex64(common::fnv1a64(serializeKey(key))) +
           ".arr";
}

std::vector<std::uint8_t>
ArrayDiskCache::serializeRecord(const std::vector<std::uint8_t> &key_bytes,
                                const CachedArraySolution &sol)
{
    ByteWriter w;
    w.putU32(kMagic);
    w.putU32(kFormatVersion);
    w.putU32(static_cast<std::uint32_t>(key_bytes.size()));
    for (std::uint8_t b : key_bytes)
        w.putU8(b);

    const ArrayResult &r = sol.result;
    w.putI32(r.org.ndwl);
    w.putI32(r.org.ndbl);
    w.putF64(r.org.nspd);
    w.putF64(r.area);
    w.putF64(r.accessDelay);
    w.putF64(r.cycleTime);
    w.putF64(r.readEnergy);
    w.putF64(r.writeEnergy);
    w.putF64(r.searchEnergy);
    w.putF64(r.subthresholdLeakage);
    w.putF64(r.gateLeakage);
    w.putF64(r.refreshPower);
    w.putF64(r.height);
    w.putF64(r.width);
    w.putU8(sol.meetsTiming ? 1 : 0);

    // Trailing checksum over everything serialized so far.
    const std::uint64_t checksum = common::fnv1a64(w.bytes());
    w.putU64(checksum);
    return w.bytes();
}

std::optional<CachedArraySolution>
ArrayDiskCache::load(const ArrayCacheKey &key, bool &corrupt) const
{
    corrupt = false;
    std::vector<std::uint8_t> bytes;
    if (!common::readFileBytes(recordPath(key), bytes))
        return std::nullopt;  // plain miss: no record on disk

    // Everything from here on is validation: any failure marks the
    // record corrupt (or aliased by a hash collision) and reads as a
    // miss so the caller re-solves and overwrites it.
    if (bytes.size() < sizeof(std::uint64_t)) {
        corrupt = true;
        return std::nullopt;
    }
    const std::size_t body_size = bytes.size() - sizeof(std::uint64_t);
    ByteReader tail(bytes.data() + body_size, sizeof(std::uint64_t));
    if (tail.getU64() != common::fnv1a64(bytes.data(), body_size)) {
        corrupt = true;
        return std::nullopt;
    }

    ByteReader r(bytes.data(), body_size);
    if (r.getU32() != kMagic || r.getU32() != kFormatVersion) {
        corrupt = true;
        return std::nullopt;
    }

    const std::vector<std::uint8_t> key_bytes = serializeKey(key);
    const std::uint32_t stored_key_size = r.getU32();
    if (stored_key_size != key_bytes.size() ||
        r.remaining() < stored_key_size) {
        corrupt = true;
        return std::nullopt;
    }
    for (std::uint32_t i = 0; i < stored_key_size; ++i) {
        if (r.getU8() != key_bytes[i]) {
            // A different key hashed to this record name: treat the
            // collision as a miss rather than aliasing the entry.
            corrupt = true;
            return std::nullopt;
        }
    }

    CachedArraySolution sol;
    ArrayResult &res = sol.result;
    res.org.ndwl = r.getI32();
    res.org.ndbl = r.getI32();
    res.org.nspd = r.getF64();
    res.area = r.getF64();
    res.accessDelay = r.getF64();
    res.cycleTime = r.getF64();
    res.readEnergy = r.getF64();
    res.writeEnergy = r.getF64();
    res.searchEnergy = r.getF64();
    res.subthresholdLeakage = r.getF64();
    res.gateLeakage = r.getF64();
    res.refreshPower = r.getF64();
    res.height = r.getF64();
    res.width = r.getF64();
    sol.meetsTiming = r.getU8() != 0;
    if (!r.ok() || r.remaining() != 0) {
        corrupt = true;
        return std::nullopt;
    }
    return sol;
}

bool
ArrayDiskCache::store(const ArrayCacheKey &key,
                      const CachedArraySolution &sol)
{
    namespace fs = std::filesystem;
    if (!_dirReady) {
        std::error_code ec;
        fs::create_directories(_dir, ec);
        // create_directories reports failure for an existing *file* at
        // the path; double-check with is_directory so a pre-existing
        // directory (or a racing creator) counts as success.
        _dirReady = fs::is_directory(_dir, ec);
    }
    const bool ok =
        _dirReady &&
        common::writeFileAtomic(recordPath(key),
                                serializeRecord(serializeKey(key), sol));
    if (!ok && !_warnedWriteFailure) {
        _warnedWriteFailure = true;
        std::cerr << "mcpat: warning: cannot write array cache record "
                     "under '" << _dir
                  << "'; continuing without persistence\n";
        if (elog::enabled(elog::Level::Warn)) {
            elog::emit(elog::Level::Warn, "array.disk_cache",
                       "write_failed",
                       "cannot write array cache record; continuing "
                       "without persistence",
                       {elog::Field::str("dir", _dir),
                        elog::Field::str("path", recordPath(key))});
        }
    }
    return ok;
}

} // namespace array
} // namespace mcpat
