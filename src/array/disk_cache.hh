/**
 * @file
 * Persistent on-disk tier of the array-solution cache.
 *
 * The in-memory memo table (array_cache.hh) dies with the process, so
 * every fresh CLI invocation re-solves every array organization from
 * scratch.  This tier persists solved `ArrayResult`s as versioned
 * binary records — one file per key under a cache directory — so
 * repeated runs, batch sweeps, and separate processes share work.
 *
 * Record naming and layout:
 *  - the canonical `ArrayCacheKey` is serialized to a fixed
 *    little-endian byte layout (common/serialize.hh) and FNV-1a-hashed;
 *    the 16-hex-digit hash names the record file (`<hash>.arr`);
 *  - each record stores magic, format version, the full key bytes, the
 *    solution payload, and a trailing FNV-1a checksum of everything
 *    before it.
 *
 * Robustness contract: a record that is truncated, has the wrong magic
 * or version, fails its checksum, or stores a *different* key (hash
 * collision) is treated as a miss and counted as corrupt — never an
 * error.  Writes are atomic (temp file + rename) and a cache directory
 * that cannot be created or written degrades to a warning plus
 * write-failure counting; evaluation always proceeds.
 */

#ifndef MCPAT_ARRAY_DISK_CACHE_HH
#define MCPAT_ARRAY_DISK_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "array/array_cache.hh"

namespace mcpat {
namespace array {

/** Persistent record store for solved array organizations. */
class ArrayDiskCache
{
  public:
    /** Bumped whenever the key or payload byte layout changes. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /** 'MCPA' little-endian: identifies mcpat array-cache records. */
    static constexpr std::uint32_t kMagic = 0x4150434dU;

    /**
     * @param directory cache directory; created (with parents) on
     *        first use.  Creation/write failures are tolerated.
     */
    explicit ArrayDiskCache(std::string directory);

    const std::string &directory() const { return _dir; }

    /** Canonical byte serialization of a cache key. */
    static std::vector<std::uint8_t> serializeKey(const ArrayCacheKey &k);

    /** Record file path for @p key inside this cache's directory. */
    std::string recordPath(const ArrayCacheKey &key) const;

    /**
     * Load the record for @p key.  Returns the solution on a clean hit;
     * std::nullopt on absence or on any validation failure.  @p corrupt
     * is set when a file existed but failed validation (truncation, bad
     * magic/version/checksum, or key mismatch from a hash collision).
     */
    std::optional<CachedArraySolution> load(const ArrayCacheKey &key,
                                            bool &corrupt) const;

    /**
     * Persist a solution atomically.  Returns false on I/O failure
     * (unwritable directory, full disk); the first failure also prints
     * a one-line warning to stderr.
     */
    bool store(const ArrayCacheKey &key, const CachedArraySolution &sol);

  private:
    /** Serialize a full record (header + key + payload + checksum). */
    static std::vector<std::uint8_t>
    serializeRecord(const std::vector<std::uint8_t> &key_bytes,
                    const CachedArraySolution &sol);

    std::string _dir;
    bool _dirReady = false;
    bool _warnedWriteFailure = false;
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_DISK_CACHE_HH
