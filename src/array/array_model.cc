/**
 * @file
 * Array organization search and assembly.
 */

#include "array/array_model.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "array/array_cache.hh"
#include "array/cam.hh"
#include "array/mat.hh"
#include "circuit/wire.hh"
#include "common/cancel.hh"
#include "common/instrument.hh"
#include "common/parallel.hh"

namespace mcpat {
namespace array {

using namespace circuit;

namespace {

/** Periphery replication cost per port beyond the first (decoders,
 *  sense stacks) applied to subarray leakage and area. */
constexpr double extraPortPeriphery = 0.25;

/** Routing, redundancy (spare rows/columns), and BIST overhead on the
 *  raw subarray grid area. */
constexpr double bankRoutingOverhead = 1.65;

/**
 * Clocked periphery and control overhead per access (timing chains,
 * bank control, way-select latching) on top of the explicitly modeled
 * decode/wordline/bitline/sense energies.  Calibrated against published
 * SRAM access energies.
 */
constexpr double peripheryEnergyFactor = 1.8;

const int kPartitions[] = {1, 2, 4, 8, 16, 32};
const double kFoldings[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

/** Scored metrics, in the order the objective weights them. */
enum Metric { kDelay = 0, kDynamic, kLeakage, kArea, kCycle, kMetrics };

/** The organization at a given canonical grid index. */
ArrayOrg
orgFromIndex(std::size_t idx)
{
    const std::size_t n_part = std::size(kPartitions);
    const std::size_t n_fold = std::size(kFoldings);
    return ArrayOrg{kPartitions[idx / (n_part * n_fold)],
                    kPartitions[(idx / n_fold) % n_part],
                    kFoldings[idx % n_fold]};
}

std::atomic<std::uint64_t> g_evaluated{0};
std::atomic<std::uint64_t> g_pruned{0};
std::atomic<int> g_pruneOverride{-1};  ///< -1: follow MCPAT_PRUNE

bool
pruneDefaultFromEnv()
{
    static const bool enabled = [] {
        const char *env = std::getenv("MCPAT_PRUNE");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

/** Mirrors the organization-search counters into registry snapshots. */
[[maybe_unused]] const bool g_prune_collector_registered =
    instr::Registry::instance().addCollector([](instr::Registry &reg) {
        const std::uint64_t evaluated =
            g_evaluated.load(std::memory_order_relaxed);
        const std::uint64_t pruned =
            g_pruned.load(std::memory_order_relaxed);
        reg.gauge("prune.evaluated")
            .set(static_cast<double>(evaluated));
        reg.gauge("prune.pruned").set(static_cast<double>(pruned));
        reg.gauge("prune.prune_fraction")
            .set(evaluated + pruned
                     ? static_cast<double>(pruned) / (evaluated + pruned)
                     : 0.0);
    });

} // namespace

bool
optimizerPruning()
{
    const int o = g_pruneOverride.load(std::memory_order_relaxed);
    return o < 0 ? pruneDefaultFromEnv() : o != 0;
}

void
setOptimizerPruning(bool on)
{
    g_pruneOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

OptimizerSearchStats
optimizerSearchStats()
{
    return {g_evaluated.load(std::memory_order_relaxed),
            g_pruned.load(std::memory_order_relaxed)};
}

void
resetOptimizerSearchStats()
{
    g_evaluated.store(0, std::memory_order_relaxed);
    g_pruned.store(0, std::memory_order_relaxed);
}

/** One evaluated organization. */
struct ArrayModel::Candidate
{
    ArrayOrg org;
    ArrayResult res;
    double score = 0.0;
};

/** Subarray shape implied by an organization, with feasibility. */
struct ArrayModel::OrgGeometry
{
    int subRows = 0;
    int subCols = 0;
    bool feasible = false;
};

/**
 * Provable lower bounds on a candidate's scored metrics, computed
 * without constructing the Subarray (no decoder sizing) or the exact
 * H-tree wires.
 */
struct ArrayModel::CandidateFloor
{
    double lb[kMetrics] = {0.0, 0.0, 0.0, 0.0, 0.0};
};

ArrayModel::ArrayModel(ArrayParams params, const Technology &t,
                       OptimizationWeights weights)
    : _params(std::move(params)),
      _tech(t.nodeNm(), _params.flavor.value_or(t.flavor()),
            t.temperature())
{
    _params.validate();
    // Arrays follow the logic domain's DVFS ratio on their own nominal
    // supply (same voltage rail, flavor-specific nominal).
    const double ratio = t.vdd() / t.device(t.flavor()).vdd;
    if (ratio != 1.0)
        _tech.setVdd(_tech.device().vdd * ratio);
    _tech.setProjection(t.projection());

    // Identical structures (same canonical params, operating point, and
    // objective) are solved exactly once per process; the memoized
    // solution is bit-identical to a fresh solve.
    auto &cache = ArrayResultCache::instance();
    const ArrayCacheKey key =
        ArrayResultCache::makeKey(_params, _tech, weights);
    if (auto hit = cache.find(key)) {
        _result = hit->result;
        _meetsTiming = hit->meetsTiming;
        return;
    }
    optimize(weights);
    cache.insert(key, {_result, _meetsTiming});
}

ArrayModel::OrgGeometry
ArrayModel::orgGeometry(const ArrayOrg &org) const
{
    const int total_rows = _params.totalRows();
    const int row_bits = _params.rowBits();
    const int banks = _params.banks;

    const int rows_per_bank =
        static_cast<int>(std::ceil(static_cast<double>(total_rows) /
                                   banks));
    const double eff_rows = rows_per_bank / org.nspd;
    const double eff_cols = row_bits * org.nspd;

    OrgGeometry g;
    g.subRows = static_cast<int>(std::ceil(eff_rows / org.ndbl));
    g.subCols = static_cast<int>(std::ceil(eff_cols / org.ndwl));

    // Reject degenerate shapes: too small to be a real subarray or too
    // large for acceptable wordline/bitline RC.
    if (g.subRows < 4 || g.subCols < 4)
        return g;
    if (g.subRows > 1024 || g.subCols > 2048)
        return g;
    // Don't partition beyond the data: keep every subarray meaningful.
    if (org.ndbl > 1 && g.subRows * (org.ndbl - 1) >= eff_rows)
        return g;
    if (org.ndwl > 1 && g.subCols * (org.ndwl - 1) >= eff_cols)
        return g;
    g.feasible = true;
    return g;
}

std::optional<ArrayModel::Candidate>
ArrayModel::evaluate(const ArrayOrg &org) const
{
    const int total_rows = _params.totalRows();
    const int row_bits = _params.rowBits();
    const int banks = _params.banks;
    const int ports = _params.totalPorts();

    const OrgGeometry geom = orgGeometry(org);
    if (!geom.feasible)
        return std::nullopt;
    const int sub_rows = geom.subRows;
    const int sub_cols = geom.subCols;

    const Subarray sub(sub_rows, sub_cols, ports, _params.cellType, _tech);

    const int subarrays = org.subarrays();
    const double bank_w = org.ndwl * sub.width();
    const double bank_h = org.ndbl * sub.height();

    // --- Intra-bank H-tree: address/control in, data out. ---------------
    const double htree_len = std::max(0.5 * (bank_w + bank_h), 1.0 * um);
    const RepeatedWire htree_wire(htree_len, tech::WireLayer::Intermediate,
                                  _tech);
    const int addr_wires =
        std::max(1, static_cast<int>(std::ceil(std::log2(
            std::max(2, total_rows))))) + 8;

    // --- Inter-bank routing when banked. ---------------------------------
    double global_delay = 0.0, global_energy_rd = 0.0;
    double global_leak_sub = 0.0, global_leak_gate = 0.0;
    double global_area = 0.0;
    if (banks > 1) {
        const int grid = static_cast<int>(std::ceil(std::sqrt(banks)));
        const double glen =
            std::max(0.5 * grid * (bank_w + bank_h), 1.0 * um);
        const RepeatedWire gwire(glen, tech::WireLayer::Intermediate,
                                 _tech);
        const int gwires = addr_wires + row_bits;
        global_delay = gwire.delay();
        global_energy_rd = 0.5 * gwires * gwire.energyPerEvent();
        global_leak_sub = gwires * gwire.subthresholdLeakage();
        global_leak_gate = gwires * gwire.gateLeakage();
        global_area = gwires * gwire.area();
    }

    const double htree_in_energy =
        0.5 * addr_wires * htree_wire.energyPerEvent();
    const double htree_out_energy =
        0.5 * row_bits * htree_wire.energyPerEvent();
    const double htree_delay = 2.0 * htree_wire.delay();

    // --- Per-access energies.  A read activates one stripe of ndwl
    //     subarrays, each sensing its columns. -------------------------
    const int out_bits_per_sub =
        std::max(1, row_bits / std::max(1, org.ndwl));
    double read_e = peripheryEnergyFactor *
                        (org.ndwl * sub.readEnergy(sub_cols)) +
                    htree_in_energy + htree_out_energy + global_energy_rd;
    double write_e = peripheryEnergyFactor *
                         (org.ndwl * sub.writeEnergy(out_bits_per_sub)) +
                     htree_in_energy + global_energy_rd;
    if (_params.cellType == CellType::EDRAM) {
        // Destructive read: every activated column must be restored.
        // For small subarrays the fixed read periphery can exceed the
        // restore cost; the physical restore energy is never negative,
        // so clamp at zero instead of refunding energy.
        read_e += peripheryEnergyFactor * org.ndwl *
                  std::max(0.0, sub.writeEnergy(sub_cols) -
                                    sub.readEnergy(0));
    }

    // --- Timing. ----------------------------------------------------------
    const double access = htree_delay + global_delay + sub.accessDelay();
    const double cycle = std::max(sub.cycleTime(), access * 0.5);

    // --- Leakage and area across all banks/subarrays. --------------------
    const double port_factor = 1.0 + extraPortPeriphery * (ports - 1);
    const double n_sub_total = static_cast<double>(subarrays) * banks;
    double leak_sub = n_sub_total * sub.subthresholdLeakage() * port_factor;
    double leak_gate = n_sub_total * sub.gateLeakage() * port_factor;
    const int htree_wires = addr_wires + row_bits;
    leak_sub += banks * htree_wires * htree_wire.subthresholdLeakage() +
                global_leak_sub;
    leak_gate += banks * htree_wires * htree_wire.gateLeakage() +
                 global_leak_gate;

    double area = n_sub_total * sub.area() * port_factor *
                      bankRoutingOverhead +
                  banks * htree_wires * htree_wire.area() + global_area;

    // --- CAM search path. --------------------------------------------------
    double search_e = 0.0;
    double search_delay = 0.0;
    if (_params.cellType == CellType::CAM) {
        const CamSearch cam(sub, _tech);
        // A search interrogates every subarray of one bank.
        search_e = peripheryEnergyFactor * subarrays *
                       cam.energyPerSearch() +
                   htree_in_energy;
        search_delay = htree_delay + global_delay + cam.delay();
        const double sp = _params.searchPorts;
        leak_sub += n_sub_total * cam.subthresholdLeakage() * sp;
        leak_gate += n_sub_total * cam.gateLeakage() * sp;
        area += n_sub_total * cam.area() * sp;
    }

    // eDRAM refresh: every row is read+restored once per retention
    // period (retention halves every ~10 K above the 40 us @ 350 K
    // anchor of logic eDRAM).
    double refresh_power = 0.0;
    if (_params.cellType == CellType::EDRAM) {
        const double retention =
            40.0e-6 *
            std::pow(2.0, (350.0 - _tech.temperature()) / 10.0);
        // One refresh event restores one wordline position across the
        // whole ndwl-wide stripe; every (row, ndbl, bank) position
        // must be visited once per retention period.
        const double stripe_rows =
            static_cast<double>(sub_rows) * org.ndbl * banks;
        const double stripe_energy = peripheryEnergyFactor * org.ndwl *
            (sub.readEnergy(sub_cols) + sub.writeEnergy(sub_cols));
        refresh_power = stripe_rows * stripe_energy / retention;
    }

    Candidate c;
    c.org = org;
    c.res.org = org;
    c.res.refreshPower = refresh_power;
    c.res.area = area;
    c.res.accessDelay = std::max(access, search_delay);
    c.res.cycleTime = cycle;
    c.res.readEnergy = read_e;
    c.res.writeEnergy = write_e;
    c.res.searchEnergy = search_e;
    c.res.subthresholdLeakage = leak_sub;
    c.res.gateLeakage = leak_gate;
    c.res.height = bank_h * std::ceil(std::sqrt(double(banks)));
    c.res.width = bank_w * std::ceil(std::sqrt(double(banks)));
    return c;
}

ArrayModel::CandidateFloor
ArrayModel::candidateFloor(const ArrayOrg &org, const OrgGeometry &geom) const
{
    const int total_rows = _params.totalRows();
    const int row_bits = _params.rowBits();
    const int banks = _params.banks;
    const int ports = _params.totalPorts();

    const SubarrayFloor f = Subarray::floorBounds(
        geom.subRows, geom.subCols, ports, _params.cellType, _tech);

    // Bank footprint floor: the subarray floor dims (exact sense stack,
    // floored decoder width), so every wire length below floors the
    // real one.  Wire energy/leakage/area are monotone in length, so a
    // RepeatedWire built at the floor length bounds the real wire;
    // delay uses the analytic monotone floor instead (the discretized
    // repeater count makes exact delay non-monotone).
    const double bank_w = org.ndwl * f.width;
    const double bank_h = org.ndbl * f.height;

    const double htree_len = std::max(0.5 * (bank_w + bank_h), 1.0 * um);
    const RepeatedWire htree_wire(htree_len, tech::WireLayer::Intermediate,
                                  _tech);
    const double htree_delay = 2.0 * repeatedWireDelayFloor(
        htree_len, tech::WireLayer::Intermediate, _tech);
    const int addr_wires =
        std::max(1, static_cast<int>(std::ceil(std::log2(
            std::max(2, total_rows))))) + 8;

    double global_delay = 0.0, global_energy_rd = 0.0;
    double global_leak_sub = 0.0, global_area = 0.0;
    if (banks > 1) {
        const int grid = static_cast<int>(std::ceil(std::sqrt(banks)));
        const double glen =
            std::max(0.5 * grid * (bank_w + bank_h), 1.0 * um);
        const RepeatedWire gwire(glen, tech::WireLayer::Intermediate,
                                 _tech);
        const int gwires = addr_wires + row_bits;
        global_delay = repeatedWireDelayFloor(
            glen, tech::WireLayer::Intermediate, _tech);
        global_energy_rd = 0.5 * gwires * gwire.energyPerEvent();
        global_leak_sub = gwires * gwire.subthresholdLeakage();
        global_area = gwires * gwire.area();
    }

    const double htree_in_energy =
        0.5 * addr_wires * htree_wire.energyPerEvent();
    const double htree_out_energy =
        0.5 * row_bits * htree_wire.energyPerEvent();

    CandidateFloor c;
    // accessDelay = max(htree + global + subarray access, search path).
    const double access = htree_delay + global_delay + f.accessDelay;
    c.lb[kDelay] = access;
    // cycleTime = max(subarray cycle, 0.5 * access).
    c.lb[kCycle] = std::max(f.cycleTime, 0.5 * access);
    // readEnergy floor (searchEnergy >= 0, eDRAM restore clamped >= 0).
    c.lb[kDynamic] = peripheryEnergyFactor *
                         (org.ndwl * (f.readEnergyFixed +
                                      geom.subCols * f.readEnergyPerCol)) +
                     htree_in_energy + htree_out_energy + global_energy_rd;
    const double port_factor = 1.0 + extraPortPeriphery * (ports - 1);
    const double n_sub_total =
        static_cast<double>(org.subarrays()) * banks;
    const int htree_wires = addr_wires + row_bits;
    c.lb[kLeakage] = n_sub_total * f.subthresholdLeakage * port_factor +
                     banks * htree_wires *
                         htree_wire.subthresholdLeakage() +
                     global_leak_sub;
    c.lb[kArea] = n_sub_total * f.area * port_factor *
                      bankRoutingOverhead +
                  banks * htree_wires * htree_wire.area() + global_area;
    return c;
}

void
ArrayModel::searchExhaustive(std::vector<Candidate> &cands) const
{
    // Evaluate the full candidate grid in parallel: each organization
    // writes its own slot, then feasible candidates are collected in
    // the same (ndwl, ndbl, nspd) order the serial triple loop used,
    // keeping the selected optimum (including tie-breaks) identical.
    const std::size_t n_orgs = std::size(kPartitions) *
                               std::size(kPartitions) *
                               std::size(kFoldings);
    std::vector<std::optional<Candidate>> slots(n_orgs);
    parallel::parallelFor(n_orgs, [&](std::size_t idx) {
        cancel::checkpoint();
        slots[idx] = evaluate(orgFromIndex(idx));
    });
    for (auto &slot : slots)
        if (slot)
            cands.push_back(std::move(*slot));
    g_evaluated.fetch_add(cands.size(), std::memory_order_relaxed);
}

void
ArrayModel::searchPruned(const OptimizationWeights &weights,
                         std::vector<Candidate> &cands) const
{
    // Branch-and-bound over the organization grid, constructed to keep
    // the selected winner bit-identical to the exhaustive search:
    //
    //  - lb[m] are provable floors on each scored metric (candidateFloor);
    //    lbBest[m], their minima over every feasible organization, floor
    //    the normalizers the exhaustive selection divides by.
    //  - safeScore is the lowest sum_m w[m] * actual[m] / lbBest[m] over
    //    evaluated candidates that are pass-0 eligible under ANY final
    //    normalizers (timing target met, area <= maxAreaRatio * lbBest
    //    area) — an upper bound on the winner's final score.  While no
    //    such candidate exists, pass 0 may come up empty and nothing is
    //    pruned, so the fallback passes see the full candidate set.
    //  - a candidate may be skipped only when lb[m] >= runMin[m] for
    //    every metric (it cannot lower any normalizer below what the
    //    survivors already achieve; runMin[m] are the running minima of
    //    evaluated actuals) AND it provably cannot be selected, by
    //    either of two rules:
    //      (a) area-ineligible: lb[area] > maxAreaRatio * runMin[area].
    //          Selection keeps the area constraint in passes 0 and 1,
    //          and pass 2 is unreachable whenever any candidate exists
    //          (with maxAreaRatio >= 1 the minimum-area survivor always
    //          passes pass 1), so a candidate whose area floor exceeds
    //          the constraint under the running minimum — an upper
    //          bound on the final normalizer — can never be chosen.
    //      (b) outscored: sum_m w[m] * lb[m] / runMin[m] > safeScore.
    //    Both rules stay valid as runMin / safeScore shrink, so
    //    evaluation order and batch size cannot change the outcome.
    const std::size_t n_orgs = std::size(kPartitions) *
                               std::size(kPartitions) *
                               std::size(kFoldings);
    struct Entry
    {
        std::size_t idx;       ///< canonical grid index (tie-break order)
        ArrayOrg org;
        CandidateFloor floor;
        double key;            ///< bound-based visit priority
    };
    std::vector<Entry> entries;
    entries.reserve(n_orgs);
    for (std::size_t idx = 0; idx < n_orgs; ++idx) {
        Entry e;
        e.idx = idx;
        e.org = orgFromIndex(idx);
        const OrgGeometry geom = orgGeometry(e.org);
        if (!geom.feasible)
            continue;
        e.floor = candidateFloor(e.org, geom);
        entries.push_back(e);
    }
    if (entries.empty())
        return;

    const double inf = std::numeric_limits<double>::max();
    double lbBest[kMetrics];
    std::fill(std::begin(lbBest), std::end(lbBest), inf);
    for (const auto &e : entries)
        for (int m = 0; m < kMetrics; ++m)
            lbBest[m] = std::min(lbBest[m], e.floor.lb[m]);

    const double w[kMetrics] = {weights.delay, weights.dynamic,
                                weights.leakage, weights.area,
                                weights.cycle};

    // Visit likely winners first so the incumbent tightens early;
    // stable sort keeps ties in canonical order.
    for (auto &e : entries) {
        e.key = 0.0;
        for (int m = 0; m < kMetrics; ++m)
            e.key += w[m] * e.floor.lb[m] / lbBest[m];
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.key < b.key;
                     });

    const double target = _params.targetCycleTime;
    double runMin[kMetrics];
    std::fill(std::begin(runMin), std::end(runMin), inf);
    double safeScore = inf;

    std::vector<std::pair<std::size_t, Candidate>> out;
    out.reserve(entries.size());
    const std::size_t block = static_cast<std::size_t>(
        std::max(1, parallel::threadCount()));
    std::vector<const Entry *> batch;
    std::vector<std::optional<Candidate>> slots;
    std::uint64_t pruned = 0;
    std::size_t cursor = 0;
    while (cursor < entries.size()) {
        // One poll per batch bounds cancellation latency to a handful
        // of candidate evaluations without taxing the inner loop.
        cancel::checkpoint();
        batch.clear();
        while (cursor < entries.size() && batch.size() < block) {
            const Entry &e = entries[cursor++];
            bool preserves_norms = true;
            for (int m = 0; m < kMetrics; ++m) {
                if (e.floor.lb[m] < runMin[m]) {
                    preserves_norms = false;
                    break;
                }
            }
            bool prune = false;
            if (preserves_norms) {
                if (weights.maxAreaRatio >= 1.0 &&
                    e.floor.lb[kArea] >
                        weights.maxAreaRatio * runMin[kArea]) {
                    prune = true;  // rule (a): area-ineligible
                } else if (safeScore < inf) {
                    double lb_score = 0.0;
                    for (int m = 0; m < kMetrics; ++m)
                        lb_score += w[m] * e.floor.lb[m] / runMin[m];
                    prune = lb_score > safeScore;  // rule (b): outscored
                }
            }
            if (prune)
                ++pruned;
            else
                batch.push_back(&e);
        }
        if (batch.empty())
            continue;
        slots.assign(batch.size(), std::nullopt);
        parallel::parallelFor(batch.size(), [&](std::size_t i) {
            slots[i] = evaluate(batch[i]->org);
        });
        for (std::size_t i = 0; i < batch.size(); ++i) {
            // Geometry feasibility was pre-checked, so evaluation
            // cannot reject.
            panicIf(!slots[i], "array '" + _params.name +
                                   "': candidate evaluation diverged");
            Candidate c = std::move(*slots[i]);
            const double actual[kMetrics] = {
                c.res.accessDelay,
                c.res.readEnergy + c.res.searchEnergy,
                c.res.subthresholdLeakage,
                c.res.area,
                c.res.cycleTime};
            for (int m = 0; m < kMetrics; ++m)
                runMin[m] = std::min(runMin[m], actual[m]);
            if ((target <= 0.0 || c.res.cycleTime <= target) &&
                c.res.area <= weights.maxAreaRatio * lbBest[kArea]) {
                double upper = 0.0;
                for (int m = 0; m < kMetrics; ++m)
                    upper += w[m] * actual[m] / lbBest[m];
                safeScore = std::min(safeScore, upper);
            }
            out.emplace_back(batch[i]->idx, std::move(c));
        }
    }
    g_pruned.fetch_add(pruned, std::memory_order_relaxed);
    g_evaluated.fetch_add(out.size(), std::memory_order_relaxed);

    // Restore canonical order so selection tie-breaks are unchanged.
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    cands.reserve(out.size());
    for (auto &p : out)
        cands.push_back(std::move(p.second));
}

void
ArrayModel::selectBest(std::vector<Candidate> &cands,
                       const OptimizationWeights &weights)
{
    // Normalize each metric by the best achieved value, then pick the
    // lowest weighted sum, honoring the cycle-time constraint.
    double best_delay = std::numeric_limits<double>::max();
    double best_dyn = best_delay, best_leak = best_delay;
    double best_area = best_delay, best_cycle = best_delay;
    for (const auto &c : cands) {
        best_delay = std::min(best_delay, c.res.accessDelay);
        best_dyn = std::min(best_dyn,
                            c.res.readEnergy + c.res.searchEnergy);
        best_leak = std::min(best_leak, c.res.subthresholdLeakage);
        best_area = std::min(best_area, c.res.area);
        best_cycle = std::min(best_cycle, c.res.cycleTime);
    }

    const double target = _params.targetCycleTime;
    Candidate *best = nullptr;
    double best_score = std::numeric_limits<double>::max();
    bool constrained = false;
    for (int pass = 0; pass < 3 && !best; ++pass) {
        // Pass 0 honors the cycle-time target and the area-deviation
        // constraint; pass 1 drops the timing target (reported via
        // meetsTiming()); pass 2 drops the area constraint too.
        for (auto &c : cands) {
            if (pass == 0 && target > 0.0 && c.res.cycleTime > target)
                continue;
            if (pass < 2 &&
                c.res.area > weights.maxAreaRatio * best_area)
                continue;
            c.score =
                weights.delay * c.res.accessDelay / best_delay +
                weights.dynamic *
                    (c.res.readEnergy + c.res.searchEnergy) / best_dyn +
                weights.leakage * c.res.subthresholdLeakage / best_leak +
                weights.area * c.res.area / best_area +
                weights.cycle * c.res.cycleTime / best_cycle;
            if (c.score < best_score) {
                best_score = c.score;
                best = &c;
                constrained = (pass == 0);
            }
        }
    }

    _result = best->res;
    _meetsTiming = (target <= 0.0) || (constrained &&
                                       _result.cycleTime <= target);
}

void
ArrayModel::optimize(const OptimizationWeights &weights)
{
    MCPAT_SPAN("array.optimize", _params.name);
    cancel::checkpoint();
    std::vector<Candidate> cands;
    if (optimizerPruning())
        searchPruned(weights, cands);
    else
        searchExhaustive(cands);
    panicIf(cands.empty(),
            "array '" + _params.name + "': no feasible organization");
    if (instr::enabled())
        instr::Registry::instance()
            .histogram("array.optimize.candidates")
            .record(static_cast<double>(cands.size()));
    selectBest(cands, weights);
}

Report
ArrayModel::makeReport(double frequency, const AccessRates &tdp,
                       const AccessRates &runtime) const
{
    Report r;
    r.name = _params.name;
    r.area = _result.area;
    r.criticalPath = _result.accessDelay;
    r.peakDynamic = frequency *
        (tdp.reads * _result.readEnergy +
         tdp.writes * _result.writeEnergy +
         tdp.searches * _result.searchEnergy) +
        _result.refreshPower;
    r.runtimeDynamic = frequency *
        (runtime.reads * _result.readEnergy +
         runtime.writes * _result.writeEnergy +
         runtime.searches * _result.searchEnergy) +
        _result.refreshPower;
    r.subthresholdLeakage = _result.subthresholdLeakage;
    r.gateLeakage = _result.gateLeakage;
    return r;
}

} // namespace array
} // namespace mcpat
