/**
 * @file
 * Cache model implementation.
 */

#include "array/cache_model.hh"

#include <algorithm>
#include <cmath>

#include "circuit/transistor.hh"

namespace mcpat {
namespace array {

using namespace circuit;

int
CacheParams::sets() const
{
    const int ways = (assoc == 0)
        ? static_cast<int>(capacityBytes / blockBytes)
        : assoc;
    return static_cast<int>(capacityBytes / blockBytes / ways);
}

int
CacheParams::tagBits() const
{
    const int index_bits = (assoc == 0)
        ? 0
        : static_cast<int>(std::ceil(std::log2(std::max(1, sets()))));
    const int offset_bits =
        static_cast<int>(std::ceil(std::log2(blockBytes)));
    return physicalAddressBits - index_bits - offset_bits + extraTagBits;
}

void
CacheParams::validate() const
{
    fatalIf(capacityBytes <= 0, "cache '" + name + "': empty capacity");
    fatalIf(blockBytes <= 0 ||
                (blockBytes & (blockBytes - 1)) != 0,
            "cache '" + name + "': block size must be a power of two");
    fatalIf(assoc < 0, "cache '" + name + "': negative associativity");
    fatalIf(capacityBytes < static_cast<double>(blockBytes) *
                std::max(assoc, 1),
            "cache '" + name + "': capacity below one set");
    fatalIf(banks <= 0, "cache '" + name + "': banks must be positive");
}

CacheModel::CacheModel(CacheParams params, const Technology &t)
    : _params(std::move(params))
{
    _params.validate();
    const bool fully_assoc = (_params.assoc == 0);
    const int block_bits = static_cast<int>(
        _params.blockBytes * 8 * (_params.ecc ? 1.125 : 1.0));
    const int ways = fully_assoc
        ? static_cast<int>(_params.capacityBytes / _params.blockBytes)
        : _params.assoc;

    // --- Data array: one block per physical row (ways are separate
    //     rows/stripes); a parallel read activates all ways of the set,
    //     charged below as an energy multiplier. -----------------------
    ArrayParams dp;
    dp.name = "Data Array";
    dp.rows = fully_assoc ? ways : _params.sets() * ways;
    dp.bits = block_bits;
    dp.readWritePorts = _params.readWritePorts;
    dp.readPorts = _params.readPorts;
    dp.writePorts = _params.writePorts;
    dp.banks = _params.banks;
    dp.targetCycleTime = _params.targetCycleTime;
    dp.flavor = _params.flavor;
    dp.cellType = _params.dataCell;
    _data = std::make_unique<ArrayModel>(dp, t);

    // --- Tag array: RAM tags for set-associative, CAM for fully-assoc.
    ArrayParams tp;
    tp.name = "Tag Array";
    if (fully_assoc) {
        tp.rows = ways;
        tp.bits = _params.tagBits();
        tp.cellType = CellType::CAM;
        tp.searchPorts = std::max(1, _params.readWritePorts);
    } else {
        tp.rows = _params.sets();
        tp.bits = _params.tagBits() * ways;
    }
    tp.readWritePorts = _params.readWritePorts;
    tp.readPorts = _params.readPorts;
    tp.writePorts = _params.writePorts;
    tp.banks = _params.banks;
    tp.targetCycleTime = _params.targetCycleTime;
    tp.flavor = _params.flavor;
    _tag = std::make_unique<ArrayModel>(tp, t);

    // --- Miss-handling arrays (small, HP cells). -------------------------
    const Technology hp(t.nodeNm(), tech::DeviceFlavor::HP,
                        t.temperature());
    if (_params.mshrs > 0) {
        ArrayParams mp;
        mp.name = "MSHR";
        mp.rows = _params.mshrs;
        mp.bits = _params.physicalAddressBits + 16;  // addr + bookkeeping
        mp.cellType = CellType::CAM;
        mp.searchPorts = 1;
        _mshr = std::make_unique<ArrayModel>(mp, hp);
    }
    if (_params.writeBackEntries > 0) {
        ArrayParams wp;
        wp.name = "Write-Back Buffer";
        wp.rows = _params.writeBackEntries;
        wp.bits = _params.physicalAddressBits + block_bits;
        _wbb = std::make_unique<ArrayModel>(wp, hp);
    }
    if (_params.fillBufferEntries > 0) {
        ArrayParams fp;
        fp.name = "Fill Buffer";
        fp.rows = _params.fillBufferEntries;
        fp.bits = _params.physicalAddressBits + block_bits;
        _fill = std::make_unique<ArrayModel>(fp, hp);
    }

    // --- Way comparators: tagBits-wide XOR + AND tree per way. ----------
    const Technology &lt = t;
    const double wmin = minWidth(lt);
    const int tag_bits = _params.tagBits();
    const double cmp_delay = fully_assoc
        ? 0.0  // folded into the CAM search path
        : (std::ceil(std::log2(std::max(2, tag_bits))) + 1.0) * lt.fo4();
    _comparatorEnergy = fully_assoc
        ? 0.0
        : ways * tag_bits * 5.0 * gateC(wmin, lt) * lt.vdd() * lt.vdd();
    const double cmp_leak_sub = fully_assoc ? 0.0
        : ways * tag_bits *
          circuit::subthresholdLeakage(3.0 * wmin, 3.0 * wmin, lt, 0.6);
    const double cmp_leak_gate = fully_assoc ? 0.0
        : ways * tag_bits * circuit::gateLeakage(6.0 * wmin, lt);
    const double cmp_area = fully_assoc ? 0.0
        : ways * tag_bits * 1.5 * lt.logicGateArea();

    // --- Timing. ----------------------------------------------------------
    const double tag_path = fully_assoc
        ? _tag->accessDelay()
        : _tag->accessDelay() + cmp_delay;
    if (_params.sequentialAccess)
        _hitDelay = tag_path + _data->accessDelay();
    else
        _hitDelay = std::max(tag_path, _data->accessDelay()) + lt.fo4();
    _cycleTime = std::max(_data->cycleTime(), _tag->cycleTime());

    // --- Energies. ----------------------------------------------------------
    const double tag_read_e = fully_assoc
        ? _tag->searchEnergy()
        : _tag->readEnergy() + _comparatorEnergy;
    // A parallel read activates every way's stripe (decode and H-tree
    // are shared, hence the 0.6 weighting); sequential/way-selected
    // access reads only the hit way.
    const double way_factor = (_params.sequentialAccess || fully_assoc)
        ? 1.0
        : 1.0 + 0.6 * (ways - 1);
    const double data_read_e = _data->readEnergy() * way_factor;
    const double data_write_e = _data->writeEnergy();

    _readEnergy = tag_read_e + data_read_e;
    _writeEnergy = tag_read_e + data_write_e;
    // A miss pays the lookup (including the parallel data read when
    // tag and data are probed together), the MSHR allocation, the fill
    // buffering, and the line fill itself.
    const double lookup_e = _params.sequentialAccess
        ? tag_read_e
        : tag_read_e + data_read_e;
    _missEnergy = lookup_e +
                  (_mshr ? _mshr->searchEnergy() + _mshr->writeEnergy()
                         : 0.0) +
                  (_fill ? _fill->writeEnergy() : 0.0) +
                  _data->writeEnergy();  // line fill

    // --- Totals. ------------------------------------------------------------
    _area = _data->area() + _tag->area() + cmp_area +
            (_mshr ? _mshr->area() : 0.0) + (_wbb ? _wbb->area() : 0.0) +
            (_fill ? _fill->area() : 0.0);
    _subLeak = _data->subthresholdLeakage() + _tag->subthresholdLeakage() +
               cmp_leak_sub +
               (_mshr ? _mshr->subthresholdLeakage() : 0.0) +
               (_wbb ? _wbb->subthresholdLeakage() : 0.0) +
               (_fill ? _fill->subthresholdLeakage() : 0.0);
    _gateLeak = _data->gateLeakage() + _tag->gateLeakage() +
                cmp_leak_gate + (_mshr ? _mshr->gateLeakage() : 0.0) +
                (_wbb ? _wbb->gateLeakage() : 0.0) +
                (_fill ? _fill->gateLeakage() : 0.0);
}

Report
CacheModel::makeReport(double frequency, const CacheRates &tdp,
                       const CacheRates &runtime) const
{
    auto dynamic = [this](const CacheRates &r) {
        return r.readHits * _readEnergy + r.writeHits * _writeEnergy +
               r.misses() * _missEnergy;
    };

    Report rep;
    rep.name = _params.name;
    rep.area = area();
    rep.criticalPath = _hitDelay;
    rep.peakDynamic = dynamic(tdp) * frequency +
                      _data->result().refreshPower;
    rep.runtimeDynamic = dynamic(runtime) * frequency +
                         _data->result().refreshPower;
    rep.subthresholdLeakage = _subLeak;
    rep.gateLeakage = _gateLeak;

    // Children carry area/leakage breakdowns (dynamic kept at the top
    // since energies mix tag+data per event).
    auto child = [](const ArrayModel &m, const char *cname) {
        Report c;
        c.name = cname;
        c.area = m.area();
        c.subthresholdLeakage = m.subthresholdLeakage();
        c.gateLeakage = m.gateLeakage();
        c.criticalPath = m.accessDelay();
        return c;
    };
    rep.children.push_back(child(*_data, "Data Array"));
    rep.children.push_back(child(*_tag, "Tag Array"));
    if (_mshr)
        rep.children.push_back(child(*_mshr, "MSHR"));
    if (_wbb)
        rep.children.push_back(child(*_wbb, "Write-Back Buffer"));
    if (_fill)
        rep.children.push_back(child(*_fill, "Fill Buffer"));
    return rep;
}

} // namespace array
} // namespace mcpat
