/**
 * @file
 * Subarray ("mat") model: the cell grid with its wordlines, bitlines,
 * sense amplifiers, precharge, and column mux, plus its row decoder.
 *
 * An array (array_model.hh) instantiates ndwl x ndbl of these per bank.
 */

#ifndef MCPAT_ARRAY_MAT_HH
#define MCPAT_ARRAY_MAT_HH

#include "array/array_params.hh"
#include "array/decoder.hh"

namespace mcpat {
namespace array {

/**
 * Cheap, provable lower bounds on a Subarray's figures of merit,
 * computed without sizing the decoder (the expensive part of
 * construction).  Every field floors the corresponding quantity of a
 * fully constructed Subarray with the same shape: the wordline,
 * bitline, sense, and cell terms are the exact constructor values and
 * the omitted decoder/periphery contributions are all nonnegative.
 * The array-organization pruner uses these to discard candidates
 * before paying for a full evaluation.
 */
struct SubarrayFloor
{
    double cellWidth = 0.0;       ///< exact cell pitch, m
    double cellHeight = 0.0;      ///< exact cell pitch, m
    double width = 0.0;           ///< cells + decoder floor, <= width()
    double height = 0.0;          ///< cells + sense stack, == height()
    double accessDelay = 0.0;     ///< <= accessDelay()
    double cycleTime = 0.0;       ///< <= cycleTime()
    double readEnergyFixed = 0.0; ///< <= fixed part of readEnergy()
    double readEnergyPerCol = 0.0;///< <= per-active-column readEnergy()
    double subthresholdLeakage = 0.0;  ///< <= subthresholdLeakage()
    double area = 0.0;            ///< width * height, <= area()
};

/**
 * One subarray of rows x cols storage cells with @c ports identical
 * access ports (one of which is exercised per access).
 */
class Subarray
{
  public:
    Subarray(int rows, int cols, int ports, CellType cell,
             const Technology &t);

    /** Lower-bound figures for this shape, no decoder construction. */
    static SubarrayFloor floorBounds(int rows, int cols, int ports,
                                     CellType cell, const Technology &t);

    int rows() const { return _rows; }
    int cols() const { return _cols; }

    // --- Geometry (m). -------------------------------------------------
    double cellWidth() const { return _cellW; }
    double cellHeight() const { return _cellH; }
    /** Full layout width including the decoder stack. */
    double width() const { return _width; }
    /** Full layout height including sense amps / precharge. */
    double height() const { return _height; }
    double area() const { return _width * _height; }

    // --- Timing (s). ----------------------------------------------------
    double decodeDelay() const { return _decoder.delay(); }
    double wordlineDelay() const { return _wordlineDelay; }
    double bitlineDelay() const { return _bitlineDelay; }
    double senseDelay() const { return _senseDelay; }
    double prechargeDelay() const { return _prechargeDelay; }

    /** Address to sensed-data delay, s. */
    double accessDelay() const;

    /** Minimum cycle time of the subarray, s. */
    double cycleTime() const;

    // --- Energy per access of one port (J). -----------------------------
    /** Read with @p active_cols columns actually sensed. */
    double readEnergy(int active_cols) const;
    /** Write to @p active_cols columns. */
    double writeEnergy(int active_cols) const;

    // --- Leakage (W), whole subarray including all ports/periphery. ----
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }

    // --- Electricals exposed for CAM search modeling. -------------------
    double wordlineCap() const { return _wordlineCap; }
    double bitlineCap() const { return _bitlineCap; }
    const Technology &tech() const { return _tech; }

  private:
    const Technology &_tech;
    int _rows;
    int _cols;
    int _ports;
    CellType _cell;

    double _cellW = 0.0;
    double _cellH = 0.0;
    double _width = 0.0;
    double _height = 0.0;

    double _wordlineCap = 0.0;
    double _wordlineDelay = 0.0;
    double _bitlineCap = 0.0;
    double _bitlineDelay = 0.0;
    double _senseDelay = 0.0;
    double _prechargeDelay = 0.0;

    double _decodeEnergy = 0.0;
    double _wordlineEnergy = 0.0;
    double _bitlineReadEnergyPerCol = 0.0;
    double _bitlineWriteEnergyPerCol = 0.0;
    double _senseEnergyPerCol = 0.0;

    double _subLeak = 0.0;
    double _gateLeak = 0.0;

    Decoder _decoder;

    friend class CamSearch;
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_MAT_HH
