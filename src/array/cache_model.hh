/**
 * @file
 * Set-associative / fully-associative cache model: tag + data arrays,
 * way comparators, and the miss-handling machinery (MSHRs, write-back
 * and fill buffers).
 */

#ifndef MCPAT_ARRAY_CACHE_MODEL_HH
#define MCPAT_ARRAY_CACHE_MODEL_HH

#include <memory>
#include <optional>
#include <string>

#include "array/array_model.hh"

namespace mcpat {
namespace array {

/** Architectural description of one cache. */
struct CacheParams
{
    std::string name = "cache";

    double capacityBytes = 32 * 1024;
    int blockBytes = 64;
    /** Associativity; 0 selects a fully-associative (CAM-tag) cache. */
    int assoc = 4;
    int banks = 1;

    int readWritePorts = 1;
    int readPorts = 0;
    int writePorts = 0;

    /** Tag/data accessed in parallel (L1) or sequentially (L2/L3). */
    bool sequentialAccess = false;

    int mshrs = 8;               ///< miss-status holding registers
    int writeBackEntries = 8;    ///< write-back buffer entries
    int fillBufferEntries = 4;   ///< incoming line buffers

    int physicalAddressBits = 42;
    int extraTagBits = 6;        ///< coherence state, valid, etc.
    bool ecc = false;            ///< SECDED code bits with the data

    double targetCycleTime = 0.0;
    /** Cell flavor; unset inherits the surrounding logic's flavor. */
    std::optional<tech::DeviceFlavor> flavor;

    /** Data-array cell type (SRAM or EDRAM; tags stay SRAM/CAM). */
    CellType dataCell = CellType::SRAM;

    int sets() const;
    int tagBits() const;
    void validate() const;
};

/** Per-cycle cache traffic for power computation. */
struct CacheRates
{
    double readHits = 0.0;
    double readMisses = 0.0;
    double writeHits = 0.0;
    double writeMisses = 0.0;

    double accesses() const
    {
        return readHits + readMisses + writeHits + writeMisses;
    }
    double misses() const { return readMisses + writeMisses; }
};

/**
 * A solved cache: owns the tag/data/MSHR/buffer arrays.
 */
class CacheModel
{
  public:
    CacheModel(CacheParams params, const Technology &t);

    const CacheParams &params() const { return _params; }

    /** Address-to-data hit latency, s. */
    double hitDelay() const { return _hitDelay; }

    /** Minimum cycle time of the cache pipeline, s. */
    double cycleTime() const { return _cycleTime; }

    double area() const { return _area; }

    /** Energy of a read hit / write hit / miss handling event, J. */
    double readEnergy() const { return _readEnergy; }
    double writeEnergy() const { return _writeEnergy; }
    double missEnergy() const { return _missEnergy; }

    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }

    const ArrayModel &dataArray() const { return *_data; }
    const ArrayModel &tagArray() const { return *_tag; }

    /** Report with Data/Tag/MSHR/buffer children. */
    Report makeReport(double frequency, const CacheRates &tdp,
                      const CacheRates &runtime) const;

  private:
    CacheParams _params;
    std::unique_ptr<ArrayModel> _data;
    std::unique_ptr<ArrayModel> _tag;
    std::unique_ptr<ArrayModel> _mshr;
    std::unique_ptr<ArrayModel> _wbb;
    std::unique_ptr<ArrayModel> _fill;

    double _hitDelay = 0.0;
    double _cycleTime = 0.0;
    double _area = 0.0;
    double _readEnergy = 0.0;
    double _writeEnergy = 0.0;
    double _missEnergy = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _comparatorEnergy = 0.0;
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_CACHE_MODEL_HH
