/**
 * @file
 * Memoization cache for solved array organizations.
 *
 * The organization search in ArrayModel::optimize evaluates 216
 * candidate (ndwl, ndbl, nspd) organizations per array.  Chips repeat
 * identical structures constantly — 64 homogeneous cores share one
 * icache shape, a design-point sweep rebuilds the same L2 at every
 * clustering, validation targets re-solve the same register files — so
 * the solver memoizes results keyed by everything that influences the
 * outcome: the canonical ArrayParams (minus the display name), the
 * resolved technology operating point (node, flavor, Vdd, temperature,
 * wire projection), and the optimizer weights.
 *
 * The cache is process-global and thread-safe; hit/miss counters are
 * exported for observability.  A cached solution is bit-identical to a
 * fresh solve of the same key (the solver is deterministic), so caching
 * never changes reported numbers.  Disable with MCPAT_ARRAY_CACHE=0 or
 * ArrayResultCache::instance().setEnabled(false).
 *
 * A second, persistent tier (disk_cache.hh) layers underneath: on a
 * memory miss the solver probes a record store on disk, and fresh
 * solves are written through to it, so separate processes — repeated
 * CLI runs, -batch sweeps, CI jobs — share solved organizations.  The
 * disk tier activates when a cache directory is configured via
 * setCacheDir() (CLI -cache_dir) or the MCPAT_CACHE_DIR environment
 * variable; it is off otherwise.  Disk records that are truncated,
 * version-mismatched, or aliased by a hash collision count as corrupt
 * and read as misses — persistence failures never affect results.
 */

#ifndef MCPAT_ARRAY_ARRAY_CACHE_HH
#define MCPAT_ARRAY_ARRAY_CACHE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "array/array_params.hh"

namespace mcpat {
namespace array {

struct OptimizationWeights;

/** Everything that determines an array solution, display name excluded. */
struct ArrayCacheKey
{
    // Canonical ArrayParams.
    double sizeBytes = 0.0;
    int blockWidthBits = 0;
    int rows = 0;
    int bits = 0;
    int cellType = 0;
    int readWritePorts = 0;
    int readPorts = 0;
    int writePorts = 0;
    int searchPorts = 0;
    int banks = 0;
    double targetCycleTime = 0.0;

    // Resolved technology operating point.
    int nodeNm = 0;
    int flavor = 0;
    double vdd = 0.0;
    double temperature = 0.0;
    int projection = 0;

    // Optimizer objective.
    double wDelay = 0.0;
    double wDynamic = 0.0;
    double wLeakage = 0.0;
    double wArea = 0.0;
    double wCycle = 0.0;
    double wMaxAreaRatio = 0.0;

    bool operator==(const ArrayCacheKey &o) const = default;
};

/** Hash over every key field (equality still compared in full). */
struct ArrayCacheKeyHash
{
    std::size_t operator()(const ArrayCacheKey &k) const;
};

/** A memoized solver outcome. */
struct CachedArraySolution
{
    ArrayResult result;
    bool meetsTiming = true;
};

/** Cache observability counters, exported per tier. */
struct ArrayCacheStats
{
    // In-memory tier.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;     ///< memory-tier misses (pre disk probe)
    std::size_t entries = 0;

    // Persistent disk tier (all zero when no cache dir is configured).
    std::uint64_t diskHits = 0;
    std::uint64_t diskMisses = 0;        ///< probes with no usable record
    std::uint64_t diskCorrupt = 0;       ///< records skipped as invalid
    std::uint64_t diskWriteFailures = 0; ///< records that failed to persist
};

class ArrayDiskCache;

/**
 * Registry-backed cache reporter: publish both tiers' counters into
 * the instrumentation registry (via its collectors) and print the
 * canonical one-line summary — hits, misses, hit rates, entries,
 * corruption/write-failure counts, and the evaluation thread count.
 * The CLI's -cache_stats (single-run and batch) and the batch summary
 * all route through this one function, so the two modes cannot drift.
 */
void reportCacheStats(std::ostream &os);

/**
 * Process-global, thread-safe memo table for ArrayModel solutions,
 * backed by an optional persistent disk tier.
 */
class ArrayResultCache
{
  public:
    static ArrayResultCache &instance();

    /** Compose the canonical key for one solve. */
    static ArrayCacheKey makeKey(const ArrayParams &params,
                                 const tech::Technology &resolved_tech,
                                 const OptimizationWeights &weights);

    bool enabled() const { return _enabled; }
    void setEnabled(bool on) { _enabled = on; }

    /**
     * Configure (or reconfigure) the persistent tier.  An empty path
     * disables it.  Counters for the disk tier are zeroed; in-memory
     * entries are kept.
     */
    void setCacheDir(const std::string &dir);

    /** Active persistent-tier directory; empty when disabled. */
    std::string cacheDir() const;

    /**
     * Look up a solution; counts a hit or miss.  A memory miss falls
     * through to the disk tier (when configured); a disk hit is
     * promoted into the memory tier.  Returns nothing when the key is
     * absent from both tiers or the cache is disabled (disabled
     * lookups count neither).
     */
    std::optional<CachedArraySolution> find(const ArrayCacheKey &key);

    /**
     * Record a freshly solved solution in the memory tier and write it
     * through to the disk tier (no-op when disabled).
     */
    void insert(const ArrayCacheKey &key, const CachedArraySolution &sol);

    ArrayCacheStats stats() const;

    /**
     * Drop all in-memory entries and zero every counter.  Records
     * already persisted to the disk tier are left on disk.
     */
    void clear();

  private:
    ArrayResultCache();
    ~ArrayResultCache();  // out-of-line: ArrayDiskCache is incomplete here

    mutable std::mutex _mutex;
    std::unordered_map<ArrayCacheKey, CachedArraySolution,
                       ArrayCacheKeyHash>
        _entries;
    std::unique_ptr<ArrayDiskCache> _disk;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _diskHits = 0;
    std::uint64_t _diskMisses = 0;
    std::uint64_t _diskCorrupt = 0;
    std::uint64_t _diskWriteFailures = 0;
    bool _enabled = true;
};

} // namespace array
} // namespace mcpat

#endif // MCPAT_ARRAY_ARRAY_CACHE_HH
