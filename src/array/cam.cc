/**
 * @file
 * CAM search-path implementation.
 *
 * NOR-style match lines: every row precharges its match line each search
 * and all-but-one discharge (worst case), so search energy scales with
 * rows x match-line capacitance — the reason issue-queue/LSQ power grows
 * so quickly with entry count in the McPAT core models.
 */

#include "array/cam.hh"

#include <algorithm>
#include <cmath>

#include "circuit/elmore.hh"
#include "circuit/logical_effort.hh"
#include "circuit/wire.hh"

namespace mcpat {
namespace array {

using namespace circuit;

CamSearch::CamSearch(const Subarray &sub, const Technology &t)
{
    const int rows = sub.rows();
    const int cols = sub.cols();
    const double vdd = t.vdd();
    const double vdd2 = vdd * vdd;
    const double wmin = minWidth(t);
    const double w_cmp = 2.0 * t.feature();  // compare-stack device width

    const auto &wire = t.wire(tech::WireLayer::Local);

    // --- Search lines: one true/complement pair per tag bit, running
    //     the height of the subarray, loading one compare gate per row.
    const double sl_len = rows * sub.cellHeight();
    const double sl_cap = rows * gateC(w_cmp, t) + wire.capPerM * sl_len;
    const double sl_res = wire.resPerM * sl_len;
    const BufferChain sl_driver(sl_cap, t);
    const double sl_delay =
        sl_driver.delay() + distributedLineDelay(0.0, sl_res, sl_cap, 0.0);

    // --- Match lines: one per row, crossing all tag bits. ---------------
    const double ml_len = cols * sub.cellWidth();
    const double ml_cap = cols * drainC(w_cmp, t) + wire.capPerM * ml_len +
                          gateC(4.0 * wmin, t);  // match sense input
    const double i_discharge = t.device().ionN * w_cmp;
    const double ml_delay = ml_cap * (0.5 * vdd) / i_discharge +
                            0.38 * wire.resPerM * ml_len * ml_cap;

    // --- Priority encoder over the row matches. --------------------------
    const int enc_stages =
        std::max(1, static_cast<int>(std::ceil(std::log2(
            std::max(2, rows)))));
    const double enc_delay = enc_stages * 1.5 * t.fo4();
    const double enc_gates = 2.0 * rows;  // arbitration + encode cells

    _delay = sl_delay + ml_delay + 2.0 * t.fo4() + enc_delay;

    // --- Energy: both search-line phases (activity ~0.5 per bit), all
    //     match lines precharged and (worst case) discharged, the match
    //     sense amps, and a slice of the encoder.
    _energy = cols * (sl_driver.energyPerEvent() * 0.5) +
              rows * ml_cap * vdd2 +
              rows * 6.0 * gateC(wmin, t) * vdd2 +
              0.25 * enc_gates * 4.0 * gateC(wmin, t) * vdd2;

    // --- Leakage/area of the search periphery. ---------------------------
    _subLeak = cols * sl_driver.subthresholdLeakage() +
               rows * circuit::subthresholdLeakage(4.0 * wmin, 4.0 * wmin, t, 0.7) +
               enc_gates * circuit::subthresholdLeakage(2.0 * wmin, 2.0 * wmin, t,
                                               0.6);
    _gateLeak = cols * sl_driver.gateLeakage() +
                rows * circuit::gateLeakage(8.0 * wmin, t) +
                enc_gates * circuit::gateLeakage(4.0 * wmin, t);
    _area = cols * sl_driver.area() +
            rows * 2.0 * t.logicGateArea() +
            enc_gates * t.logicGateArea();
}

} // namespace array
} // namespace mcpat
