/**
 * @file
 * Instruction-window implementation.
 */

#include "logic/scheduler_logic.hh"

#include <algorithm>
#include <cmath>

#include "logic/arbiter.hh"

namespace mcpat {
namespace logic {

using array::ArrayModel;
using array::ArrayParams;
using array::CellType;

SelectionLogic::SelectionLogic(int entries, int grants, const Technology &t)
{
    fatalIf(entries < 1 || grants < 1, "empty selection logic");

    // A tree of radix-4 arbiter cells per grant port.
    const Arbiter cell(4, t);
    int level_nodes = (entries + 3) / 4;
    double total_nodes = 0.0;
    int levels = 1;
    while (true) {
        total_nodes += level_nodes;
        if (level_nodes == 1)
            break;
        level_nodes = (level_nodes + 3) / 4;
        ++levels;
    }

    _energy = grants * total_nodes * cell.energyPerArb() * 0.5;
    _area = grants * total_nodes * cell.area();
    _subLeak = grants * total_nodes * cell.subthresholdLeakage();
    _gateLeak = grants * total_nodes * cell.gateLeakage();
    // Request propagates up the tree and the grant back down.
    _delay = 2.0 * levels * cell.delay() / 2.0 + cell.delay();
}

InstructionWindow::InstructionWindow(int entries, int tag_bits,
                                     int payload_bits, int issue_width,
                                     const Technology &t)
    : _issueWidth(issue_width)
{
    fatalIf(entries < 1, "instruction window needs entries");

    // Wakeup CAM: each entry holds two source tags; every completing
    // instruction broadcasts its destination tag on a search port.
    ArrayParams cam;
    cam.name = "Wakeup CAM";
    cam.rows = entries;
    cam.bits = 2 * tag_bits;
    cam.cellType = CellType::CAM;
    cam.searchPorts = issue_width;
    cam.readPorts = issue_width;
    cam.writePorts = issue_width;
    cam.readWritePorts = 0;
    cam.flavor = t.flavor();
    _wakeupCam = std::make_unique<ArrayModel>(cam, t);

    ArrayParams pay;
    pay.name = "Payload RAM";
    pay.rows = entries;
    pay.bits = payload_bits;
    pay.readPorts = issue_width;
    pay.writePorts = issue_width;
    pay.readWritePorts = 0;
    pay.flavor = t.flavor();
    _payload = std::make_unique<ArrayModel>(pay, t);

    const SelectionLogic sel(entries, issue_width, t);
    _selectEnergy = sel.energyPerSelection();
    _selectDelay = sel.delay();
    _selectArea = sel.area();
    _selectSubLeak = sel.subthresholdLeakage();
    _selectGateLeak = sel.gateLeakage();
}

double
InstructionWindow::wakeupEnergy() const
{
    return _wakeupCam->searchEnergy();
}

double
InstructionWindow::issueEnergy() const
{
    return _selectEnergy / std::max(1, _issueWidth) +
           _payload->readEnergy();
}

double
InstructionWindow::dispatchEnergy() const
{
    return _wakeupCam->writeEnergy() + _payload->writeEnergy();
}

double
InstructionWindow::area() const
{
    return _wakeupCam->area() + _payload->area() + _selectArea;
}

double
InstructionWindow::subthresholdLeakage() const
{
    return _wakeupCam->subthresholdLeakage() +
           _payload->subthresholdLeakage() + _selectSubLeak;
}

double
InstructionWindow::gateLeakage() const
{
    return _wakeupCam->gateLeakage() + _payload->gateLeakage() +
           _selectGateLeak;
}

double
InstructionWindow::delay() const
{
    // Wakeup search followed by select: the single-cycle scheduling loop.
    return _wakeupCam->accessDelay() + _selectDelay;
}

Report
InstructionWindow::makeReport(const std::string &name, double frequency,
                              double tdp_issued_per_cycle,
                              double runtime_issued_per_cycle) const
{
    auto dynamic = [this](double issued) {
        // Each issued instruction was dispatched once, woken by ~1
        // broadcast, selected, and read out.
        return issued * (dispatchEnergy() + wakeupEnergy() +
                         issueEnergy());
    };
    Report r;
    r.name = name;
    r.area = area();
    r.peakDynamic = dynamic(tdp_issued_per_cycle) * frequency;
    r.runtimeDynamic = dynamic(runtime_issued_per_cycle) * frequency;
    r.subthresholdLeakage = subthresholdLeakage();
    r.gateLeakage = gateLeakage();
    r.criticalPath = delay();
    return r;
}

} // namespace logic
} // namespace mcpat
