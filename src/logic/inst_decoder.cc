/**
 * @file
 * Instruction-decoder implementation: gate-counted PLAs plus an optional
 * microcode ROM (modeled as an SRAM array) for x86.
 */

#include "logic/inst_decoder.hh"

#include "circuit/transistor.hh"
#include "logic/functional_unit.hh"

namespace mcpat {
namespace logic {

using namespace circuit;

InstDecoder::InstDecoder(int width, bool x86, int opcode_bits,
                         const Technology &t)
    : _width(width)
{
    fatalIf(width < 1, "decoder width must be >= 1");
    fatalIf(opcode_bits < 4 || opcode_bits > 32,
            "opcode field outside 4-32 bits");

    // Gate count per decode lane: two-level PLA over the opcode field
    // plus operand steering.  CISC lanes are ~5x larger (prefixes,
    // mod/rm, uop cracking).
    const double gates_per_lane =
        (x86 ? 5.0 : 1.0) * (opcode_bits * 90.0 + 600.0);
    const double lane_area = gates_per_lane * t.logicGateArea();
    _area = width * lane_area;

    const double gate_energy = logicGateEnergy(t);
    // ~20% of gates toggle per decoded instruction.
    _energyPerInst = 0.2 * gates_per_lane * gate_energy;

    const LogicLeakage l = logicBlockLeakage(_area, t);
    _subLeak = l.subthreshold;
    _gateLeak = l.gate;

    // Two PLA levels plus steering muxes.
    _delay = (x86 ? 12.0 : 6.0) * t.fo4();

    if (x86) {
        array::ArrayParams rom;
        rom.name = "Microcode ROM";
        rom.sizeBytes = 16 * 1024;
        rom.blockWidthBits = 64;
        rom.flavor = t.flavor();
        _ucodeRom = std::make_unique<array::ArrayModel>(rom, t);
        _area += _ucodeRom->area();
        _subLeak += _ucodeRom->subthresholdLeakage();
        _gateLeak += _ucodeRom->gateLeakage();
        // ~10% of x86 instructions hit the microcode sequencer.
        _energyPerInst += 0.1 * _ucodeRom->readEnergy();
    }
}

Report
InstDecoder::makeReport(double frequency, double tdp_insts,
                        double runtime_insts) const
{
    Report r;
    r.name = "Instruction Decoder";
    r.area = _area;
    r.peakDynamic = _energyPerInst * tdp_insts * frequency;
    r.runtimeDynamic = _energyPerInst * runtime_insts * frequency;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    r.criticalPath = _delay;
    return r;
}

} // namespace logic
} // namespace mcpat
