/**
 * @file
 * Arbitration logic: matrix arbiters (used in NoC routers and the
 * instruction-select tree) following the Orion-style gate model.
 */

#ifndef MCPAT_LOGIC_ARBITER_HH
#define MCPAT_LOGIC_ARBITER_HH

#include "common/report.hh"
#include "tech/technology.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/**
 * A matrix arbiter granting one of @c requestors per cycle.
 *
 * State: R(R-1)/2 priority flops; logic: R grant AND-OR trees of R-1
 * inputs each.
 */
class Arbiter
{
  public:
    Arbiter(int requestors, const Technology &t);

    int requestors() const { return _requestors; }

    /** Energy per arbitration, J. */
    double energyPerArb() const { return _energyPerArb; }

    double area() const { return _area; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double delay() const { return _delay; }

    Report makeReport(const std::string &name, double frequency,
                      double tdp_arbs, double runtime_arbs) const;

  private:
    int _requestors;
    double _energyPerArb = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _delay = 0.0;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_ARBITER_HH
