/**
 * @file
 * Register-renaming structures: the register alias table (RAM- or
 * CAM-based) and the free list, per the paper's renaming-unit models.
 */

#ifndef MCPAT_LOGIC_RENAMING_LOGIC_HH
#define MCPAT_LOGIC_RENAMING_LOGIC_HH

#include <memory>

#include "array/array_model.hh"
#include "common/report.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/** RAT implementation style. */
enum class RatStyle
{
    Ram,  ///< indexed by architectural register (MIPS R10k style)
    Cam   ///< searched by physical register (Alpha 21264 style)
};

/**
 * A register alias table for one register class (INT or FP).
 */
class Rat
{
  public:
    /**
     * @param arch_regs  architectural registers
     * @param phys_regs  physical registers
     * @param decode_width instructions renamed per cycle
     * @param threads    SMT thread count (replicates the table)
     * @param style      RAM or CAM organization
     */
    Rat(int arch_regs, int phys_regs, int decode_width, int threads,
        RatStyle style, const Technology &t);

    /** Energy to rename one instruction (2 lookups + 1 update), J. */
    double energyPerRename() const;

    double area() const;
    double subthresholdLeakage() const;
    double gateLeakage() const;
    double delay() const;

    Report makeReport(const std::string &name, double frequency,
                      double tdp_renames, double runtime_renames) const;

  private:
    RatStyle _style;
    int _threads;
    std::unique_ptr<array::ArrayModel> _table;
};

/**
 * Free list of physical registers (a circular RAM queue).
 */
class FreeList
{
  public:
    FreeList(int phys_regs, int decode_width, const Technology &t);

    double energyPerAlloc() const;
    double area() const;
    double subthresholdLeakage() const;
    double gateLeakage() const;

    Report makeReport(double frequency, double tdp_allocs,
                      double runtime_allocs) const;

  private:
    std::unique_ptr<array::ArrayModel> _fifo;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_RENAMING_LOGIC_HH
