/**
 * @file
 * Dependency-check logic (DCL): the comparator matrix that detects
 * producer/consumer relations among co-renamed instructions and the
 * operand-forwarding muxes it controls.
 */

#ifndef MCPAT_LOGIC_DEPENDENCY_CHECK_HH
#define MCPAT_LOGIC_DEPENDENCY_CHECK_HH

#include "common/report.hh"
#include "tech/technology.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/**
 * Intra-group dependency checking for a rename group of @c width
 * instructions over @c tag_bits register specifiers.
 *
 * Each younger instruction compares both of its sources against every
 * older destination in the group: width*(width-1) comparators per source
 * port pair, each tag_bits wide.
 */
class DependencyCheck
{
  public:
    DependencyCheck(int width, int tag_bits, const Technology &t);

    /** Energy per renamed group, J. */
    double energyPerGroup() const { return _energyPerGroup; }

    double area() const { return _area; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double delay() const { return _delay; }

    Report makeReport(double frequency, double tdp_groups,
                      double runtime_groups) const;

  private:
    double _energyPerGroup = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _delay = 0.0;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_DEPENDENCY_CHECK_HH
