/**
 * @file
 * Matrix-arbiter implementation.
 */

#include "logic/arbiter.hh"

#include <cmath>

#include "circuit/dff.hh"
#include "circuit/transistor.hh"
#include "logic/functional_unit.hh"

namespace mcpat {
namespace logic {

using namespace circuit;

Arbiter::Arbiter(int requestors, const Technology &t)
    : _requestors(requestors)
{
    fatalIf(requestors < 1, "arbiter needs at least one requestor");

    const double r = requestors;
    const double priority_flops = r * (r - 1.0) / 2.0;
    const double grant_gates = r * (r + 2.0);

    const Dff flop(t);
    _area = priority_flops * flop.area() +
            grant_gates * t.logicGateArea();

    const double gate_energy = logicGateEnergy(t);
    // One arbitration flips ~2 priority rows and evaluates every grant
    // tree.
    _energyPerArb = 2.0 * (r - 1.0) * flop.dataEnergy() +
                    0.5 * grant_gates * gate_energy;

    const LogicLeakage l =
        logicBlockLeakage(grant_gates * t.logicGateArea(), t);
    _subLeak = priority_flops * flop.subthresholdLeakage() +
               l.subthreshold;
    _gateLeak = priority_flops * flop.gateLeakage() + l.gate;

    _delay = (std::ceil(std::log2(std::max(2.0, r))) + 2.0) * t.fo4();
}

Report
Arbiter::makeReport(const std::string &name, double frequency,
                    double tdp_arbs, double runtime_arbs) const
{
    Report r;
    r.name = name;
    r.area = _area;
    r.peakDynamic = _energyPerArb * tdp_arbs * frequency;
    r.runtimeDynamic = _energyPerArb * runtime_arbs * frequency;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    r.criticalPath = _delay;
    return r;
}

} // namespace logic
} // namespace mcpat
