/**
 * @file
 * Bypass-network implementation: repeated wires with per-consumer mux
 * loads.
 */

#include "logic/bypass.hh"

#include "circuit/wire.hh"
#include "logic/functional_unit.hh"

namespace mcpat {
namespace logic {

using namespace circuit;

BypassNetwork::BypassNetwork(int producers, int consumers, int data_bits,
                             int tag_bits, double cluster_span,
                             const Technology &t)
{
    fatalIf(producers < 1 || consumers < 1, "empty bypass network");
    fatalIf(cluster_span <= 0.0, "bypass span must be positive");

    const int wires_per_bus = data_bits + tag_bits;
    const RepeatedWire bus(cluster_span, tech::WireLayer::Intermediate, t);

    // Consumer mux loads along each wire.
    const double wmin = minWidth(t);
    const double mux_load = consumers * gateC(2.0 * wmin, t);
    const double mux_energy = mux_load * t.vdd() * t.vdd();

    // A bypass event drives one bus: ~half the wires toggle.
    _energyPerBypass =
        0.5 * wires_per_bus * (bus.energyPerEvent() + mux_energy);

    const double total_wires =
        static_cast<double>(producers) * wires_per_bus;
    _subLeak = total_wires * bus.subthresholdLeakage();
    _gateLeak = total_wires * bus.gateLeakage();
    _area = total_wires * bus.area() +
            producers * consumers * (data_bits + tag_bits) * 0.5 *
                t.logicGateArea();

    _delay = bus.delay() + 2.0 * t.fo4();  // wire + receiving mux
}

Report
BypassNetwork::makeReport(double frequency, double tdp_bypasses,
                          double runtime_bypasses) const
{
    Report r;
    r.name = "Bypass Network";
    r.area = _area;
    r.peakDynamic = _energyPerBypass * tdp_bypasses * frequency;
    r.runtimeDynamic = _energyPerBypass * runtime_bypasses * frequency;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    r.criticalPath = _delay;
    return r;
}

} // namespace logic
} // namespace mcpat
