/**
 * @file
 * Pipeline-register implementation.
 */

#include "logic/pipeline_reg.hh"

namespace mcpat {
namespace logic {

PipelineRegisters::PipelineRegisters(int stages, int bits_per_stage,
                                     const Technology &t)
    : _totalBits(stages * bits_per_stage), _bank(_totalBits, t)
{
    fatalIf(stages < 1 || bits_per_stage < 1,
            "pipeline registers need stages >= 1 and width >= 1");
}

double
PipelineRegisters::energyPerCycle(double alpha) const
{
    // Data-toggle energy only; the clock pins belong to the clock tree.
    return _totalBits * alpha * _bank.cell.dataEnergy();
}

double
PipelineRegisters::clockLoad() const
{
    return _bank.clockLoad();
}

double
PipelineRegisters::area() const
{
    return _bank.area();
}

double
PipelineRegisters::subthresholdLeakage() const
{
    return _bank.subthresholdLeakage();
}

double
PipelineRegisters::gateLeakage() const
{
    return _bank.gateLeakage();
}

Report
PipelineRegisters::makeReport(double frequency, double tdp_alpha,
                              double runtime_alpha) const
{
    Report r;
    r.name = "Pipeline Registers";
    r.area = area();
    r.peakDynamic = energyPerCycle(tdp_alpha) * frequency;
    r.runtimeDynamic = energyPerCycle(runtime_alpha) * frequency;
    r.subthresholdLeakage = subthresholdLeakage();
    r.gateLeakage = gateLeakage();
    return r;
}

} // namespace logic
} // namespace mcpat
