/**
 * @file
 * Functional-unit empirical datapoints and scaling.
 *
 * CALIBRATION SURFACE.  Together with tech/tech_tables.cc these constants
 * are the only tuned values in the framework; they are anchored at 90 nm
 * and scaled per DESIGN.md section 5.  Reference points follow published
 * 64-bit datapath implementations of the mid-2000s.
 */

#include "logic/functional_unit.hh"

#include "circuit/transistor.hh"
#include "common/units.hh"

namespace mcpat {
namespace logic {

namespace {

/** Reference node for the empirical datapoints. */
constexpr double refFeature = 90.0 * nm;
constexpr double refVdd = 1.2;

struct FuDatapoint
{
    double area90;     ///< m^2 at 90 nm
    double energy90;   ///< J per op at 90 nm, 1.2 V
    double fo4Latency; ///< latency in FO4 units
};

FuDatapoint
datapoint(FuType type)
{
    switch (type) {
      case FuType::IntAlu:
        return {0.050 * mm2, 30.0 * pJ, 18.0};
      case FuType::Fpu:
        return {0.55 * mm2, 160.0 * pJ, 90.0};
      case FuType::Mul:
      default:
        return {0.130 * mm2, 60.0 * pJ, 55.0};
    }
}

} // namespace

LogicLeakage
logicBlockLeakage(double area, const Technology &t)
{
    using namespace circuit;
    // NAND2-equivalent gate count at ~70% placement utilization.
    const double gates = 0.7 * area / t.logicGateArea();
    const double wmin = minWidth(t);
    LogicLeakage l;
    l.subthreshold =
        gates * circuit::subthresholdLeakage(4.0 * wmin, 4.0 * wmin, t,
                                             0.7);
    l.gate = gates * circuit::gateLeakage(8.0 * wmin, t);
    return l;
}

FunctionalUnit::FunctionalUnit(FuType type, const Technology &t)
    : _type(type)
{
    const FuDatapoint d = datapoint(type);
    const double f_ratio = t.feature() / refFeature;
    const double v_ratio = t.vdd() / refVdd;

    _area = d.area90 * f_ratio * f_ratio;
    // Switched capacitance scales with linear dimension; energy with
    // C * Vdd^2.
    _energyPerOp = d.energy90 * f_ratio * v_ratio * v_ratio;
    _latency = d.fo4Latency * t.fo4();

    const LogicLeakage l = logicBlockLeakage(_area, t);
    _subLeak = l.subthreshold;
    _gateLeak = l.gate;
}

Report
FunctionalUnit::makeReport(const std::string &name, double frequency,
                           double tdp_ops, double runtime_ops) const
{
    Report r;
    r.name = name;
    r.area = _area;
    r.peakDynamic = _energyPerOp * tdp_ops * frequency;
    r.runtimeDynamic = _energyPerOp * runtime_ops * frequency;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    r.criticalPath = _latency;
    return r;
}

} // namespace logic
} // namespace mcpat
