/**
 * @file
 * RAT and free-list implementations on top of the array model.
 */

#include "logic/renaming_logic.hh"

#include <cmath>

namespace mcpat {
namespace logic {

using array::ArrayModel;
using array::ArrayParams;
using array::CellType;

Rat::Rat(int arch_regs, int phys_regs, int decode_width, int threads,
         RatStyle style, const Technology &t)
    : _style(style), _threads(std::max(1, threads))
{
    fatalIf(arch_regs < 1 || phys_regs < arch_regs,
            "RAT needs phys_regs >= arch_regs >= 1");
    const int tag_bits = std::max(1, static_cast<int>(std::ceil(
        std::log2(static_cast<double>(phys_regs)))));

    ArrayParams p;
    p.flavor = t.flavor();
    if (style == RatStyle::Ram) {
        // One mapping entry per architectural register per thread.
        p.name = "RAT (RAM)";
        p.rows = arch_regs * _threads;
        p.bits = tag_bits;
        p.readWritePorts = 0;
        p.readPorts = 2 * decode_width;   // two sources per instruction
        p.writePorts = decode_width;      // one destination
    } else {
        // One entry per physical register, searched on lookups.
        p.name = "RAT (CAM)";
        p.rows = phys_regs;
        p.bits = static_cast<int>(std::ceil(std::log2(
                     static_cast<double>(arch_regs)))) +
                 _threads;  // arch tag + per-thread valid bits
        p.cellType = CellType::CAM;
        p.searchPorts = 2 * decode_width;
        p.readWritePorts = 0;
        p.readPorts = 1;
        p.writePorts = decode_width;
    }
    _table = std::make_unique<ArrayModel>(p, t);
}

double
Rat::energyPerRename() const
{
    if (_style == RatStyle::Ram)
        return 2.0 * _table->readEnergy() + _table->writeEnergy();
    return 2.0 * _table->searchEnergy() + _table->writeEnergy();
}

double
Rat::area() const
{
    return _table->area();
}

double
Rat::subthresholdLeakage() const
{
    return _table->subthresholdLeakage();
}

double
Rat::gateLeakage() const
{
    return _table->gateLeakage();
}

double
Rat::delay() const
{
    return _table->accessDelay();
}

Report
Rat::makeReport(const std::string &name, double frequency,
                double tdp_renames, double runtime_renames) const
{
    Report r;
    r.name = name;
    r.area = area();
    r.peakDynamic = energyPerRename() * tdp_renames * frequency;
    r.runtimeDynamic = energyPerRename() * runtime_renames * frequency;
    r.subthresholdLeakage = subthresholdLeakage();
    r.gateLeakage = gateLeakage();
    r.criticalPath = delay();
    return r;
}

FreeList::FreeList(int phys_regs, int decode_width, const Technology &t)
{
    fatalIf(phys_regs < 2, "free list needs at least two registers");
    ArrayParams p;
    p.name = "Free List";
    p.rows = phys_regs;
    p.bits = std::max(1, static_cast<int>(std::ceil(std::log2(
        static_cast<double>(phys_regs)))));
    p.readPorts = decode_width;
    p.writePorts = decode_width;  // commit-time returns
    p.readWritePorts = 0;
    p.flavor = t.flavor();
    _fifo = std::make_unique<ArrayModel>(p, t);
}

double
FreeList::energyPerAlloc() const
{
    return _fifo->readEnergy() + _fifo->writeEnergy();
}

double
FreeList::area() const
{
    return _fifo->area();
}

double
FreeList::subthresholdLeakage() const
{
    return _fifo->subthresholdLeakage();
}

double
FreeList::gateLeakage() const
{
    return _fifo->gateLeakage();
}

Report
FreeList::makeReport(double frequency, double tdp_allocs,
                     double runtime_allocs) const
{
    Report r;
    r.name = "Free List";
    r.area = area();
    r.peakDynamic = energyPerAlloc() * tdp_allocs * frequency;
    r.runtimeDynamic = energyPerAlloc() * runtime_allocs * frequency;
    r.subthresholdLeakage = subthresholdLeakage();
    r.gateLeakage = gateLeakage();
    r.criticalPath = _fifo->accessDelay();
    return r;
}

} // namespace logic
} // namespace mcpat
