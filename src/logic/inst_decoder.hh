/**
 * @file
 * Instruction-decoder model: RISC decoders are modest random logic; x86
 * decoders add a microcode ROM and much larger translation PLAs.
 */

#ifndef MCPAT_LOGIC_INST_DECODER_HH
#define MCPAT_LOGIC_INST_DECODER_HH

#include <memory>

#include "array/array_model.hh"
#include "common/report.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/**
 * Decode stage for @c width instructions per cycle.
 */
class InstDecoder
{
  public:
    /**
     * @param width   decode width, instructions per cycle
     * @param x86     CISC decode (adds microcode ROM + bigger PLAs)
     * @param opcode_bits primary opcode field width
     */
    InstDecoder(int width, bool x86, int opcode_bits, const Technology &t);

    /** Energy per decoded instruction, J. */
    double energyPerInst() const { return _energyPerInst; }

    double area() const { return _area; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double delay() const { return _delay; }

    Report makeReport(double frequency, double tdp_insts,
                      double runtime_insts) const;

  private:
    int _width;
    double _energyPerInst = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _delay = 0.0;
    std::unique_ptr<array::ArrayModel> _ucodeRom;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_INST_DECODER_HH
