/**
 * @file
 * Out-of-order instruction scheduler: CAM-based wakeup, payload RAM, and
 * the selection tree — the classic Palacharla-style decomposition used
 * by the paper.
 */

#ifndef MCPAT_LOGIC_SCHEDULER_LOGIC_HH
#define MCPAT_LOGIC_SCHEDULER_LOGIC_HH

#include <memory>

#include "array/array_model.hh"
#include "common/report.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/**
 * An issue queue (instruction window) of @c entries instructions with
 * @c issue_width grants per cycle.
 */
class InstructionWindow
{
  public:
    /**
     * @param entries     window entries
     * @param tag_bits    physical-register tag width
     * @param payload_bits bits of payload per entry (opcode, operands)
     * @param issue_width grants (and result-tag broadcasts) per cycle
     */
    InstructionWindow(int entries, int tag_bits, int payload_bits,
                      int issue_width, const Technology &t);

    /** Energy of one wakeup broadcast (all entries compared), J. */
    double wakeupEnergy() const;

    /** Energy of one instruction issue (select + payload read), J. */
    double issueEnergy() const;

    /** Energy of inserting one instruction, J. */
    double dispatchEnergy() const;

    double area() const;
    double subthresholdLeakage() const;
    double gateLeakage() const;

    /** Wakeup + select loop delay (the scheduler critical path), s. */
    double delay() const;

    Report makeReport(const std::string &name, double frequency,
                      double tdp_issued_per_cycle,
                      double runtime_issued_per_cycle) const;

  private:
    int _issueWidth;
    std::unique_ptr<array::ArrayModel> _wakeupCam;
    std::unique_ptr<array::ArrayModel> _payload;
    double _selectEnergy = 0.0;
    double _selectDelay = 0.0;
    double _selectArea = 0.0;
    double _selectSubLeak = 0.0;
    double _selectGateLeak = 0.0;
};

/**
 * Selection tree choosing @c grants winners among @c entries requests
 * (a tree of arbiters).
 */
class SelectionLogic
{
  public:
    SelectionLogic(int entries, int grants, const Technology &t);

    double energyPerSelection() const { return _energy; }
    double area() const { return _area; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double delay() const { return _delay; }

  private:
    double _energy = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _delay = 0.0;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_SCHEDULER_LOGIC_HH
