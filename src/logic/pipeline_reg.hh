/**
 * @file
 * Pipeline registers: banks of flip-flops between pipeline stages.  They
 * contribute a large share of core clock load — the reason deep pipelines
 * burn clock power, clearly visible in the Xeon Tulsa validation.
 */

#ifndef MCPAT_LOGIC_PIPELINE_REG_HH
#define MCPAT_LOGIC_PIPELINE_REG_HH

#include "circuit/dff.hh"
#include "common/report.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/**
 * All pipeline latches of a core (or a unit): @c stages stage boundaries
 * each @c bits_per_stage wide.
 */
class PipelineRegisters
{
  public:
    PipelineRegisters(int stages, int bits_per_stage, const Technology &t);

    int totalBits() const { return _totalBits; }

    /** Energy per cycle at data activity alpha, J. */
    double energyPerCycle(double alpha) const;

    /** Total clock-pin capacitance (feeds the clock-network model), F. */
    double clockLoad() const;

    double area() const;
    double subthresholdLeakage() const;
    double gateLeakage() const;

    /**
     * Report; dynamic power excludes the clock-pin energy (owned by the
     * clock network model) and covers data toggling only.
     */
    Report makeReport(double frequency, double tdp_alpha,
                      double runtime_alpha) const;

  private:
    int _totalBits;
    circuit::DffBank _bank;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_PIPELINE_REG_HH
