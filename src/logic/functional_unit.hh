/**
 * @file
 * Empirical functional-unit models (ALU / FPU / multiplier).
 *
 * Custom datapath layouts defeat purely analytical modeling, so — exactly
 * as the paper does — functional units use empirical area/energy
 * datapoints from published implementations, scaled across technology
 * (area ~ F^2, energy ~ F * Vdd^2) and derated for voltage/frequency.
 */

#ifndef MCPAT_LOGIC_FUNCTIONAL_UNIT_HH
#define MCPAT_LOGIC_FUNCTIONAL_UNIT_HH

#include "common/report.hh"
#include "tech/technology.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/** Kind of execution unit. */
enum class FuType
{
    IntAlu,   ///< 64-bit integer ALU (add/sub/logic/shift)
    Fpu,      ///< double-precision FPU (add/mul/FMA pipeline)
    Mul       ///< integer multiply/divide unit
};

/**
 * One functional-unit instance.
 */
class FunctionalUnit
{
  public:
    FunctionalUnit(FuType type, const Technology &t);

    FuType type() const { return _type; }

    /** Dynamic energy per operation, J. */
    double energyPerOp() const { return _energyPerOp; }

    double area() const { return _area; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }

    /** Pipeline latency of the unit, s (for timing checks). */
    double latency() const { return _latency; }

    /**
     * Report at a clock frequency given TDP and runtime utilization
     * (operations per cycle through this unit).
     */
    Report makeReport(const std::string &name, double frequency,
                      double tdp_ops, double runtime_ops) const;

  private:
    FuType _type;
    double _energyPerOp = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _latency = 0.0;
};

/**
 * Leakage of a block of synthesized random logic occupying @p area,
 * derived from its NAND2-equivalent gate count.  Shared by all
 * gate-counting logic models.
 */
struct LogicLeakage
{
    double subthreshold;  ///< W
    double gate;          ///< W
};
LogicLeakage logicBlockLeakage(double area, const Technology &t);

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_FUNCTIONAL_UNIT_HH
