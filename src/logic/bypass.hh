/**
 * @file
 * Result-broadcast (bypass) network: the wires and drivers that forward
 * functional-unit results to dependent instructions and the register
 * files.
 */

#ifndef MCPAT_LOGIC_BYPASS_HH
#define MCPAT_LOGIC_BYPASS_HH

#include "common/report.hh"
#include "tech/technology.hh"

namespace mcpat {
namespace logic {

using tech::Technology;

/**
 * Bypass network for an execution cluster.
 *
 * Each producer (ALU/FPU port) drives data + tag wires spanning the
 * cluster; consumers hang muxes off the lines.
 */
class BypassNetwork
{
  public:
    /**
     * @param producers     result buses (FU output ports)
     * @param consumers     mux drop-offs per bus (FU inputs + RF ports)
     * @param data_bits     datapath width
     * @param tag_bits      destination-tag width
     * @param cluster_span  physical length each bus must cross, m
     */
    BypassNetwork(int producers, int consumers, int data_bits,
                  int tag_bits, double cluster_span, const Technology &t);

    /** Energy per forwarded result, J. */
    double energyPerBypass() const { return _energyPerBypass; }

    double area() const { return _area; }
    double subthresholdLeakage() const { return _subLeak; }
    double gateLeakage() const { return _gateLeak; }
    double delay() const { return _delay; }

    Report makeReport(double frequency, double tdp_bypasses,
                      double runtime_bypasses) const;

  private:
    double _energyPerBypass = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _delay = 0.0;
};

} // namespace logic
} // namespace mcpat

#endif // MCPAT_LOGIC_BYPASS_HH
