/**
 * @file
 * Dependency-check logic implementation.
 */

#include "logic/dependency_check.hh"

#include <cmath>

#include "circuit/transistor.hh"
#include "logic/functional_unit.hh"

namespace mcpat {
namespace logic {

using namespace circuit;

DependencyCheck::DependencyCheck(int width, int tag_bits,
                                 const Technology &t)
{
    fatalIf(width < 1, "dependency check width must be >= 1");
    fatalIf(tag_bits < 1, "dependency check needs tag bits");

    // Comparators: 2 sources x dest of every older instruction.
    const double comparators = 2.0 * width * (width - 1) / 2.0 *
                               2.0;  // plus dest-vs-dest WAW checks
    const double gates_per_cmp = tag_bits * 1.5 + 4.0;  // XNOR + AND tree
    const double mux_gates = 2.0 * width * tag_bits;    // select muxes
    const double gates = comparators * gates_per_cmp + mux_gates;

    _area = gates * t.logicGateArea();

    const double gate_energy = logicGateEnergy(t);
    _energyPerGroup = 0.3 * gates * gate_energy;

    const LogicLeakage l = logicBlockLeakage(_area, t);
    _subLeak = l.subthreshold;
    _gateLeak = l.gate;

    // Comparator + priority mux depth.
    _delay = (std::ceil(std::log2(std::max(2, tag_bits))) + 3.0) *
             t.fo4();
}

Report
DependencyCheck::makeReport(double frequency, double tdp_groups,
                            double runtime_groups) const
{
    Report r;
    r.name = "Dependency Check";
    r.area = _area;
    r.peakDynamic = _energyPerGroup * tdp_groups * frequency;
    r.runtimeDynamic = _energyPerGroup * runtime_groups * frequency;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    r.criticalPath = _delay;
    return r;
}

} // namespace logic
} // namespace mcpat
