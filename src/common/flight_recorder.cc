/**
 * @file
 * Flight-recorder implementation: sampler thread, CSV rows, Chrome
 * counter events.  See flight_recorder.hh for the design.
 */

#include "common/flight_recorder.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/instrument.hh"

namespace mcpat {
namespace instr {

namespace {

/** Resident set size in MiB from /proc/self/statm; 0 elsewhere. */
double
residentMiB()
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0.0;
    long pages_total = 0, pages_resident = 0;
    const int got =
        std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
    std::fclose(f);
    if (got != 2)
        return 0.0;
    const long page = sysconf(_SC_PAGESIZE);
    return pages_resident * static_cast<double>(page) /
           (1024.0 * 1024.0);
#else
    return 0.0;
#endif
}

} // namespace

struct FlightRecorder::Impl
{
    std::mutex mutex;
    std::condition_variable cv;
    std::thread sampler;
    std::ofstream out;
    bool run = false;
    int intervalMs = 500;
    std::atomic<std::uint64_t> sampleCount{0};
    // Previous totals for the delta columns.
    double prevEvictions = 0.0;
    double prevTasks = 0.0;
    bool havePrev = false;

    void sample();
    void loop();
};

FlightRecorder::Impl &
FlightRecorder::impl()
{
    static Impl *i = new Impl;  // leaked: joinable past static dtors
    return *i;
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder r;
    return r;
}

const char *
FlightRecorder::csvHeader()
{
    return "t_ms,mem_hit_rate,disk_hit_rate,memo_evictions,"
           "pool_tasks,queue_depth,inflight,rss_mb";
}

void
FlightRecorder::Impl::sample()
{
    // Collecting snapshot: the cache/memo/pool collectors publish
    // their current figures before we read them.
    const std::vector<MetricSample> samples =
        Registry::instance().snapshot(true);
    double memHit = 0.0, diskHit = 0.0, evictions = 0.0, tasks = 0.0;
    double queueDepth = 0.0, inflight = 0.0;
    for (const MetricSample &s : samples) {
        if (s.name == "cache.memory.hit_rate")
            memHit = s.value;
        else if (s.name == "cache.disk.hit_rate")
            diskHit = s.value;
        else if (s.name == "component_memo.evictions")
            evictions = s.value;
        else if (s.name == "parallel.tasks")
            tasks = s.value;
        else if (s.name == "server.queue_depth")
            queueDepth = s.value;
        else if (s.name == "server.inflight")
            inflight = s.value;
    }
    const double dEvictions =
        havePrev ? evictions - prevEvictions : evictions;
    const double dTasks = havePrev ? tasks - prevTasks : tasks;
    prevEvictions = evictions;
    prevTasks = tasks;
    havePrev = true;

    const std::uint64_t tNs = nowNanos();
    const double rss = residentMiB();
    std::ostringstream row;
    row.setf(std::ios::fixed);
    row.precision(3);
    row << tNs * 1e-6 << ',' << memHit << ',' << diskHit << ','
        << dEvictions << ',' << dTasks << ',' << queueDepth << ','
        << inflight << ',' << rss << '\n';
    out << row.str();
    out.flush();  // tail -f must see rows as they land

    // Mirror the series into the trace as counter tracks.
    recordTraceCounter("queue_depth", tNs, queueDepth);
    recordTraceCounter("inflight", tNs, inflight);
    recordTraceCounter("mem_hit_rate", tNs, memHit);
    recordTraceCounter("rss_mb", tNs, rss);
    sampleCount.fetch_add(1, std::memory_order_release);
}

void
FlightRecorder::Impl::loop()
{
    setThreadName("recorder");
    std::unique_lock<std::mutex> lock(mutex);
    while (run) {
        sample();
        cv.wait_for(lock, std::chrono::milliseconds(intervalMs),
                    [this] { return !run; });
    }
}

bool
FlightRecorder::start(const std::string &csvPath, int intervalMs)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.run)
        return true;
    im.out.open(csvPath, std::ios::out | std::ios::trunc);
    if (!im.out)
        return false;
    im.out << csvHeader() << '\n';
    im.intervalMs = intervalMs < 10 ? 10 : intervalMs;
    im.havePrev = false;
    im.prevEvictions = 0.0;
    im.prevTasks = 0.0;
    im.sampleCount.store(0, std::memory_order_relaxed);
    im.run = true;
    im.sampler = std::thread([&im] { im.loop(); });
    return true;
}

void
FlightRecorder::stop()
{
    Impl &im = impl();
    std::thread joinee;
    {
        std::lock_guard<std::mutex> lock(im.mutex);
        if (!im.run && !im.sampler.joinable())
            return;
        im.run = false;
        joinee = std::move(im.sampler);
    }
    im.cv.notify_all();
    if (joinee.joinable())
        joinee.join();
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.out.is_open()) {
        im.sample();  // final row: short runs still get data
        im.out.close();
    }
}

bool
FlightRecorder::running() const
{
    Impl &im = const_cast<FlightRecorder *>(this)->impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    return im.run;
}

std::uint64_t
FlightRecorder::samples() const
{
    Impl &im = const_cast<FlightRecorder *>(this)->impl();
    return im.sampleCount.load(std::memory_order_acquire);
}

} // namespace instr
} // namespace mcpat
