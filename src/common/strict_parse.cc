/**
 * @file
 * Strict scalar parsing implementation (std::from_chars based, so the
 * result is locale-independent and never throws).
 */

#include "common/strict_parse.hh"

#include <charconv>
#include <cmath>

namespace mcpat {
namespace common {

bool
parseLongStrict(const std::string &text, long long &out)
{
    const char *first = text.data();
    const char *last = first + text.size();
    long long v = 0;
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || ptr != last || first == last)
        return false;
    out = v;
    return true;
}

bool
parseDoubleStrict(const std::string &text, double &out)
{
    const char *first = text.data();
    const char *last = first + text.size();
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, v);
    // from_chars accepts "inf"/"nan" spellings, and leaves v untouched
    // on out-of-range input — reject both: a model input must be a
    // finite, representable number.
    if (ec != std::errc() || ptr != last || first == last ||
        !std::isfinite(v)) {
        return false;
    }
    out = v;
    return true;
}

bool
parseBoolStrict(const std::string &text, bool &out)
{
    if (text == "1" || text == "true" || text == "yes") {
        out = true;
        return true;
    }
    if (text == "0" || text == "false" || text == "no") {
        out = false;
        return true;
    }
    return false;
}

} // namespace common
} // namespace mcpat
