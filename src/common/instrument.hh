/**
 * @file
 * Unified instrumentation layer: metrics registry, hierarchical trace
 * spans, and run manifests.
 *
 * McPAT's modeling output is hierarchical attribution — power and area
 * broken down per component — and this module gives the *execution* the
 * same treatment.  Three coordinated facilities share one process-global
 * switch (instr::enabled(), default off, CLI -trace_out/-metrics_out or
 * MCPAT_INSTRUMENT=1):
 *
 *  - a **metrics registry** of named counters, gauges, and timers.
 *    Instruments register metrics lazily by name; subsystems that keep
 *    their own cheap internal counters (the array memo cache, the
 *    branch-and-bound pruner, the thread pool) export them through
 *    *collectors* — callbacks run at snapshot time — so the hot paths
 *    pay nothing for the registry until someone actually asks.
 *
 *  - **hierarchical trace spans** (RAII, via MCPAT_SPAN("phase"))
 *    recorded per thread and exported as Chrome trace_event JSON
 *    (chrome://tracing, Perfetto).  Collecting snapshots fold span
 *    durations into registry timers named "span.<name>", which is
 *    where the per-phase wall-clock in the run manifest comes from.
 *
 *  - a **run manifest**: one JSON object describing a run — wall clock
 *    per phase, every registry metric, cache hit rates per tier, prune
 *    efficacy, thread count, config checksum — written to a file
 *    (-metrics_out), embedded in the JSON report, or aggregated across
 *    a batch.
 *
 * Cost model: when disabled, every instrumentation site is one relaxed
 * atomic load and a branch — span names are never even constructed
 * (MCPAT_SPAN only evaluates its argument when enabled) and registry
 * metrics are untouched.  When enabled, spans cost two steady_clock
 * reads plus one short critical section on a per-thread buffer; sites
 * are placed at coarse boundaries (phases, component builds, array
 * solves), keeping the overhead under the 2% budget enforced by
 * bench_model_speed's instrumentation scoreboard.
 */

#ifndef MCPAT_COMMON_INSTRUMENT_HH
#define MCPAT_COMMON_INSTRUMENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"

namespace mcpat {
namespace instr {

// ---------------------------------------------------------------------
// Global switches.
// ---------------------------------------------------------------------

/**
 * Master instrumentation switch.  Defaults to the MCPAT_INSTRUMENT
 * environment variable (unset or "0" means off); setEnabled() overrides
 * it at any time.  Every hot-path instrumentation site gates on this.
 */
bool enabled();
void setEnabled(bool on);

/**
 * Progress-meter switch (CLI -progress), independent of enabled():
 * batch/sweep loops may report progress without paying for tracing.
 * Off by default so CI logs stay clean.
 */
bool progressEnabled();
void setProgressEnabled(bool on);

// ---------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------

/** Monotonic event count (relaxed atomic; thread-safe). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }
    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-written level (thread-safe set/max/value). */
class Gauge
{
  public:
    void set(double v) { _value.store(v, std::memory_order_relaxed); }
    /** Raise to @p v if larger (high-water mark). */
    void setMax(double v)
    {
        double cur = _value.load(std::memory_order_relaxed);
        while (v > cur &&
               !_value.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
        }
    }
    double value() const
    {
        return _value.load(std::memory_order_relaxed);
    }
    void reset() { _value.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{0.0};
};

/** Accumulated duration plus event count (thread-safe). */
class Timer
{
  public:
    void addNanos(std::uint64_t ns, std::uint64_t events = 1)
    {
        _nanos.fetch_add(ns, std::memory_order_relaxed);
        _count.fetch_add(events, std::memory_order_relaxed);
    }
    std::uint64_t totalNanos() const
    {
        return _nanos.load(std::memory_order_relaxed);
    }
    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }
    double totalSeconds() const { return totalNanos() * 1e-9; }
    void reset()
    {
        _nanos.store(0, std::memory_order_relaxed);
        _count.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _nanos{0};
    std::atomic<std::uint64_t> _count{0};
};

enum class MetricKind { Counter, Gauge, Timer };

/** One registry metric at snapshot time. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    double value = 0.0;       ///< count / level / total seconds
    std::uint64_t count = 0;  ///< events (counters and timers)
};

/**
 * Process-global, thread-safe registry of named metrics.
 *
 * Metrics are registered lazily on first access and live for the
 * process lifetime, so returned references stay valid and sites may
 * cache them.  Snapshots are deterministic: samples are sorted by name
 * and every numeric value derives from the same relaxed-atomic state
 * two identical snapshots would read.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Register a pull-model exporter, run (in registration order) at
     * the start of every collecting snapshot().  Subsystems with their
     * own internal counters publish through these so the registry
     * reflects them without adding cost to their hot paths.  Returns
     * true (convenient for static-init registration).
     */
    bool addCollector(std::function<void(Registry &)> fn);

    /**
     * All metrics, sorted by name.  @p collect runs the registered
     * collectors first; pass false to observe only what instrumented
     * code pushed directly (the zero-overhead tests rely on this).
     */
    std::vector<MetricSample> snapshot(bool collect = true);

    /**
     * Deterministic snapshots of every registered histogram, sorted by
     * name.  Kept apart from snapshot() because a distribution does not
     * flatten into one MetricSample value.
     */
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histogramSnapshots();

    /** Zero every metric (registrations and collectors are kept). */
    void reset();

  private:
    Registry() = default;
    struct Impl;
    Impl &impl();
};

// ---------------------------------------------------------------------
// Trace spans.
// ---------------------------------------------------------------------

/** One completed span, in trace-epoch-relative nanoseconds. */
struct TraceEvent
{
    std::string name;
    std::string arg;          ///< optional detail (e.g. array name)
    int tid = 0;              ///< stable per-thread ordinal
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
};

/**
 * RAII span.  Use through MCPAT_SPAN so the name expression is only
 * evaluated when instrumentation is enabled; a default-constructed Span
 * is inert.  On destruction an active span appends a TraceEvent to the
 * calling thread's buffer (collecting registry snapshots later fold
 * the durations into "span.<name>" timers) — nesting is captured by
 * the containment of the [start, start+dur) intervals, which is
 * exactly how the Chrome trace viewer stacks them.
 */
class Span
{
  public:
    Span() = default;
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span();

    /** Arm the span; records the start timestamp. */
    void begin(std::string name, std::string arg = std::string());

  private:
    std::string _name;
    std::string _arg;
    std::uint64_t _startNs = 0;
    bool _active = false;
};

#define MCPAT_INSTR_CONCAT2_(a, b) a##b
#define MCPAT_INSTR_CONCAT_(a, b) MCPAT_INSTR_CONCAT2_(a, b)

/**
 * Open a trace span covering the rest of the enclosing scope.  The
 * name (and optional arg) expressions are not evaluated when
 * instrumentation is disabled.
 */
#define MCPAT_SPAN(...)                                                   \
    mcpat::instr::Span MCPAT_INSTR_CONCAT_(mcpat_span_, __LINE__);        \
    if (mcpat::instr::enabled())                                          \
        MCPAT_INSTR_CONCAT_(mcpat_span_, __LINE__).begin(__VA_ARGS__)

/** Nanoseconds since the process trace epoch (steady clock). */
std::uint64_t nowNanos();

/** All completed spans, sorted by (tid, startNs). */
std::vector<TraceEvent> collectTrace();

/** Drop all recorded spans and counter samples (buffers stay). */
void clearTrace();

/**
 * Name the calling thread for trace output.  writeChromeTrace emits a
 * "thread_name" metadata event per named thread so Perfetto labels
 * lanes ("pool-0", "serve-1", "recorder") instead of bare tids.
 * Cheap enough to call unconditionally at thread start.
 */
void setThreadName(const std::string &name);

/**
 * Append one time-series sample ("queue depth was 4 at t") to the
 * trace.  writeChromeTrace emits these as Chrome counter events
 * ("ph":"C"), which Perfetto renders as a value track aligned under
 * the spans.  The flight recorder is the main producer.
 */
void recordTraceCounter(const std::string &name, std::uint64_t tsNs,
                        double value);

/**
 * Serialize every recorded span as Chrome trace_event JSON (the
 * {"traceEvents": [...]} object form with complete "X" events), loadable
 * in chrome://tracing and Perfetto.  Timestamps are microseconds.
 */
void writeChromeTrace(std::ostream &os);

// ---------------------------------------------------------------------
// Run manifest.
// ---------------------------------------------------------------------

/** Per-run context the registry cannot know by itself. */
struct RunInfo
{
    std::string configPath;      ///< input file, empty if none
    std::string configChecksum;  ///< hex FNV-1a of the config bytes
    double wallSeconds = 0.0;    ///< end-to-end run wall clock
    bool valid = true;           ///< run completed without errors
};

/**
 * Write the run manifest: one JSON object with schema
 * "mcpat-run-manifest-v1" containing the RunInfo fields, a "phases"
 * object (every "span.*" registry timer: total_ms + count), and
 * "counters" / "gauges" / "timers" objects with every other metric.
 * Runs the registry collectors, so cache/prune/pool figures are
 * current.  @p indent shifts the whole object right (for embedding).
 */
void writeRunManifest(std::ostream &os, const RunInfo &info,
                      int indent = 0);

/** The manifest as a string (for embedding in the JSON report). */
std::string runManifestJson(const RunInfo &info, int indent = 0);

/** FNV-1a checksum of a file's bytes as "0x<16 hex>"; "" if unreadable. */
std::string fileChecksumHex(const std::string &path);

// ---------------------------------------------------------------------
// Progress meter.
// ---------------------------------------------------------------------

/**
 * One-line stderr progress reporting for batch/sweep loops: each
 * tick() prints "label: N/M (p%), elapsed E, eta T" when
 * progressEnabled() is set and is a no-op otherwise.  Thread-safe —
 * ticks may come from pool workers.
 *
 * Ticks beyond the declared total are clamped: a resumed run replays
 * journaled items it never planned for, and the meter must not report
 * 103% done or a negative ETA because of them.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::string label, std::size_t total,
                  std::ostream *os = nullptr);

    /** Mark one unit done; prints when progress is enabled. */
    void tick();

    /** Units done, clamped to the declared total. */
    std::size_t completed() const
    {
        const std::size_t done = _done.load(std::memory_order_relaxed);
        return _total && done > _total ? _total : done;
    }

  private:
    std::string _label;
    std::size_t _total;
    std::ostream *_os;        ///< defaults to std::cerr
    std::uint64_t _startNs;
    std::atomic<std::size_t> _done{0};
};

} // namespace instr
} // namespace mcpat

#endif // MCPAT_COMMON_INSTRUMENT_HH
