/**
 * @file
 * Instrumentation layer implementation: registry storage, per-thread
 * span buffers, Chrome trace and run-manifest serialization.
 */

#include "common/instrument.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/parallel.hh"
#include "common/serialize.hh"

namespace mcpat {
namespace instr {

namespace {

/** -1: unset (consult MCPAT_INSTRUMENT once); 0/1: explicit. */
std::atomic<int> g_enabledOverride{-1};
std::atomic<bool> g_progress{false};

bool
enabledFromEnv()
{
    static const bool on = [] {
        const char *env = std::getenv("MCPAT_INSTRUMENT");
        return env && std::strcmp(env, "0") != 0;
    }();
    return on;
}

/** Minimal JSON string escaping (common/ cannot use chip::jsonEscape). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Format a double for JSON: finite values round-trip (max_digits10),
 * non-finite values become null (JSON has no NaN/Infinity literals).
 */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

// ---------------------------------------------------------------------
// Per-thread span buffers.
// ---------------------------------------------------------------------

/**
 * Spans complete on the thread that opened them, so each thread owns a
 * buffer guarded by its own mutex — contention only with the exporter.
 * Buffers are registered once per thread and never unregistered; the
 * shared_ptr keeps them alive past thread exit so collectTrace() after
 * a pool thread dies is safe.
 */
struct ThreadTraceBuffer
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::string name;  ///< Perfetto lane label; "" = default
    int tid = 0;
};

/** One "ph":"C" counter sample (flight recorder time series). */
struct CounterSample
{
    std::string name;
    std::uint64_t tsNs = 0;
    double value = 0.0;
};

struct TraceState
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
    std::vector<CounterSample> counters;
};

TraceState &
traceState()
{
    static TraceState *s = new TraceState;  // leaked: usable at exit
    return *s;
}

ThreadTraceBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadTraceBuffer> buf = [] {
        auto b = std::make_shared<ThreadTraceBuffer>();
        TraceState &s = traceState();
        std::lock_guard<std::mutex> lock(s.mutex);
        b->tid = static_cast<int>(s.buffers.size());
        s.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

} // namespace

// ---------------------------------------------------------------------
// Switches.
// ---------------------------------------------------------------------

bool
enabled()
{
    const int o = g_enabledOverride.load(std::memory_order_relaxed);
    if (o >= 0)
        return o != 0;
    return enabledFromEnv();
}

void
setEnabled(bool on)
{
    g_enabledOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool
progressEnabled()
{
    return g_progress.load(std::memory_order_relaxed);
}

void
setProgressEnabled(bool on)
{
    g_progress.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

struct Registry::Impl
{
    std::mutex mutex;
    // node-stable maps: references handed out stay valid forever.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Timer>> timers;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::vector<std::function<void(Registry &)>> collectors;
};

Registry::Impl &
Registry::impl()
{
    static Impl *i = new Impl;  // leaked: usable during static dtors
    return *i;
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
Registry::timer(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.timers[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::histogramSnapshots()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(im.histograms.size());
    for (const auto &[name, h] : im.histograms)
        out.emplace_back(name, h->snapshot());
    return out;  // std::map iteration order is already name-sorted
}

bool
Registry::addCollector(std::function<void(Registry &)> fn)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.collectors.push_back(std::move(fn));
    return true;
}

std::vector<MetricSample>
Registry::snapshot(bool collect)
{
    Impl &im = impl();
    if (collect) {
        // Copy the collector list so collectors may register metrics
        // (which takes the same mutex) without deadlocking.
        std::vector<std::function<void(Registry &)>> collectors;
        {
            std::lock_guard<std::mutex> lock(im.mutex);
            collectors = im.collectors;
        }
        for (const auto &fn : collectors)
            fn(*this);

        // Fold span durations from the trace buffers into
        // "span.<name>" timers.  Aggregating here — rather than in the
        // span destructor — keeps the per-span cost to one push on a
        // per-thread buffer; the timers are recomputed from the full
        // trace each time, so reset them first.
        std::map<std::string,
                 std::pair<std::uint64_t, std::uint64_t>> agg;
        for (const auto &ev : collectTrace()) {
            auto &a = agg["span." + ev.name];
            a.first += ev.durNs;
            a.second += 1;
        }
        {
            std::lock_guard<std::mutex> lock(im.mutex);
            for (auto &[name, t] : im.timers)
                if (name.rfind("span.", 0) == 0)
                    t->reset();
        }
        for (const auto &[name, a] : agg)
            timer(name).addNanos(a.first, a.second);
    }
    std::vector<MetricSample> out;
    std::lock_guard<std::mutex> lock(im.mutex);
    out.reserve(im.counters.size() + im.gauges.size() +
                im.timers.size());
    for (const auto &[name, c] : im.counters) {
        MetricSample s;
        s.name = name;
        s.kind = MetricKind::Counter;
        s.value = static_cast<double>(c->value());
        s.count = c->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, g] : im.gauges) {
        MetricSample s;
        s.name = name;
        s.kind = MetricKind::Gauge;
        s.value = g->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, t] : im.timers) {
        MetricSample s;
        s.name = name;
        s.kind = MetricKind::Timer;
        s.value = t->totalSeconds();
        s.count = t->count();
        out.push_back(std::move(s));
    }
    // std::map iteration is already name-sorted per kind; interleave
    // kinds into one global order for deterministic snapshots.
    std::stable_sort(out.begin(), out.end(),
                     [](const MetricSample &a, const MetricSample &b) {
                         return a.name < b.name;
                     });
    return out;
}

void
Registry::reset()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    for (auto &[name, c] : im.counters)
        c->reset();
    for (auto &[name, g] : im.gauges)
        g->reset();
    for (auto &[name, t] : im.timers)
        t->reset();
    for (auto &[name, h] : im.histograms)
        h->reset();
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
Span::begin(std::string name, std::string arg)
{
    _name = std::move(name);
    _arg = std::move(arg);
    _startNs = nowNanos();
    _active = true;
}

Span::~Span()
{
    if (!_active)
        return;
    const std::uint64_t end = nowNanos();
    const std::uint64_t dur = end > _startNs ? end - _startNs : 0;

    TraceEvent ev;
    ev.name = std::move(_name);
    ev.arg = std::move(_arg);
    ev.startNs = _startNs;
    ev.durNs = dur;
    ThreadTraceBuffer &buf = threadBuffer();
    ev.tid = buf.tid;
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent>
collectTrace()
{
    TraceState &s = traceState();
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        buffers = s.buffers;
    }
    std::vector<TraceEvent> out;
    for (const auto &b : buffers) {
        std::lock_guard<std::mutex> lock(b->mutex);
        out.insert(out.end(), b->events.begin(), b->events.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tid != b.tid ? a.tid < b.tid
                                        : a.startNs < b.startNs;
              });
    return out;
}

void
clearTrace()
{
    TraceState &s = traceState();
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        buffers = s.buffers;
        s.counters.clear();
    }
    for (const auto &b : buffers) {
        std::lock_guard<std::mutex> lock(b->mutex);
        b->events.clear();
    }
}

void
setThreadName(const std::string &name)
{
    ThreadTraceBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.name = name;
}

void
recordTraceCounter(const std::string &name, std::uint64_t tsNs,
                   double value)
{
    CounterSample sample;
    sample.name = name;
    sample.tsNs = tsNs;
    sample.value = value;
    TraceState &s = traceState();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.counters.push_back(std::move(sample));
}

void
writeChromeTrace(std::ostream &os)
{
    const std::vector<TraceEvent> events = collectTrace();

    // Thread labels and counter samples, copied under the state lock.
    std::vector<std::pair<int, std::string>> threadNames;
    std::vector<CounterSample> counters;
    {
        TraceState &s = traceState();
        std::lock_guard<std::mutex> lock(s.mutex);
        for (const auto &b : s.buffers) {
            std::lock_guard<std::mutex> buflock(b->mutex);
            std::string name = b->name;
            if (name.empty())
                name = b->tid == 0
                           ? "main"
                           : "thread-" + std::to_string(b->tid);
            threadNames.emplace_back(b->tid, std::move(name));
        }
        counters = s.counters;
    }
    std::sort(counters.begin(), counters.end(),
              [](const CounterSample &a, const CounterSample &b) {
                  return a.tsNs != b.tsNs ? a.tsNs < b.tsNs
                                          : a.name < b.name;
              });

    os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    const auto sep = [&]() -> const char * {
        const char *s = first ? "\n" : ",\n";
        first = false;
        return s;
    };

    // Metadata first: process name, then one label per known thread.
    os << sep()
       << "    {\"name\": \"process_name\", \"ph\": \"M\", "
          "\"pid\": 1, \"tid\": 0, \"args\": {\"name\": \"mcpat\"}}";
    for (const auto &[tid, name] : threadNames) {
        os << sep() << "    {\"name\": \"thread_name\", \"ph\": "
           << "\"M\", \"pid\": 1, \"tid\": " << tid
           << ", \"args\": {\"name\": \"" << escapeJson(name)
           << "\"}}";
    }

    for (const TraceEvent &ev : events) {
        os << sep() << "    {\"name\": \"" << escapeJson(ev.name)
           << "\", \"cat\": \"mcpat\", \"ph\": \"X\", \"pid\": 1, "
              "\"tid\": "
           << ev.tid << ", \"ts\": " << jsonNumber(ev.startNs * 1e-3)
           << ", \"dur\": " << jsonNumber(ev.durNs * 1e-3);
        if (!ev.arg.empty())
            os << ", \"args\": {\"detail\": \"" << escapeJson(ev.arg)
               << "\"}";
        os << "}";
    }

    // Counter events render as value tracks under the spans; Chrome's
    // convention nests the series value inside "args".
    for (const CounterSample &c : counters) {
        os << sep() << "    {\"name\": \"" << escapeJson(c.name)
           << "\", \"cat\": \"mcpat\", \"ph\": \"C\", \"pid\": 1, "
              "\"tid\": 0, \"ts\": "
           << jsonNumber(c.tsNs * 1e-3) << ", \"args\": {\"value\": "
           << jsonNumber(c.value) << "}}";
    }
    os << (first ? "]\n}\n" : "\n  ]\n}\n");
}

// ---------------------------------------------------------------------
// Run manifest.
// ---------------------------------------------------------------------

void
writeRunManifest(std::ostream &os, const RunInfo &info, int indent)
{
    const std::string pad(indent, ' ');
    std::vector<MetricSample> samples =
        Registry::instance().snapshot(true);

    // Derived figure: pool utilization over this run's wall clock.
    {
        double busy_s = 0.0, threads = 0.0;
        for (const auto &s : samples) {
            if (s.name == "parallel.busy")
                busy_s = s.value;
            else if (s.name == "parallel.threads")
                threads = s.value;
        }
        if (info.wallSeconds > 0.0 && threads > 0.0) {
            MetricSample util;
            util.name = "parallel.pool_utilization";
            util.kind = MetricKind::Gauge;
            util.value = busy_s / (threads * info.wallSeconds);
            samples.push_back(std::move(util));
            std::sort(samples.begin(), samples.end(),
                      [](const MetricSample &a, const MetricSample &b) {
                          return a.name < b.name;
                      });
        }
    }

    os << pad << "{\n"
       << pad << "  \"schema\": \"mcpat-run-manifest-v1\",\n"
       << pad << "  \"config\": \"" << escapeJson(info.configPath)
       << "\",\n"
       << pad << "  \"config_checksum\": \""
       << escapeJson(info.configChecksum) << "\",\n"
       << pad << "  \"threads\": " << parallel::threadCount() << ",\n"
       << pad << "  \"wall_ms\": " << jsonNumber(info.wallSeconds * 1e3)
       << ",\n"
       << pad << "  \"valid\": " << (info.valid ? "true" : "false")
       << ",\n";

    // Phases: every "span.*" timer, name prefix stripped.
    os << pad << "  \"phases\": {";
    bool first = true;
    for (const auto &s : samples) {
        if (s.kind != MetricKind::Timer ||
            s.name.rfind("span.", 0) != 0)
            continue;
        os << (first ? "\n" : ",\n") << pad << "    \""
           << escapeJson(s.name.substr(5)) << "\": {\"total_ms\": "
           << jsonNumber(s.value * 1e3) << ", \"count\": " << s.count
           << "}";
        first = false;
    }
    os << (first ? "},\n" : "\n" + pad + "  },\n");

    os << pad << "  \"counters\": {";
    first = true;
    for (const auto &s : samples) {
        if (s.kind != MetricKind::Counter)
            continue;
        os << (first ? "\n" : ",\n") << pad << "    \""
           << escapeJson(s.name) << "\": " << s.count;
        first = false;
    }
    os << (first ? "},\n" : "\n" + pad + "  },\n");

    os << pad << "  \"gauges\": {";
    first = true;
    for (const auto &s : samples) {
        if (s.kind != MetricKind::Gauge)
            continue;
        os << (first ? "\n" : ",\n") << pad << "    \""
           << escapeJson(s.name) << "\": " << jsonNumber(s.value);
        first = false;
    }
    os << (first ? "},\n" : "\n" + pad + "  },\n");

    os << pad << "  \"timers\": {";
    first = true;
    for (const auto &s : samples) {
        if (s.kind != MetricKind::Timer ||
            s.name.rfind("span.", 0) == 0)
            continue;
        os << (first ? "\n" : ",\n") << pad << "    \""
           << escapeJson(s.name) << "\": {\"total_ms\": "
           << jsonNumber(s.value * 1e3) << ", \"count\": " << s.count
           << "}";
        first = false;
    }
    os << (first ? "},\n" : "\n" + pad + "  },\n");

    os << pad << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] :
         Registry::instance().histogramSnapshots()) {
        os << (first ? "\n" : ",\n") << pad << "    \""
           << escapeJson(name) << "\": {\"count\": " << h.count
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"p50\": " << jsonNumber(h.quantile(0.50))
           << ", \"p95\": " << jsonNumber(h.quantile(0.95))
           << ", \"p99\": " << jsonNumber(h.quantile(0.99))
           << ", \"min\": " << jsonNumber(h.min)
           << ", \"max\": " << jsonNumber(h.max) << "}";
        first = false;
    }
    os << (first ? "}\n" : "\n" + pad + "  }\n");
    os << pad << "}";
}

std::string
runManifestJson(const RunInfo &info, int indent)
{
    std::ostringstream os;
    writeRunManifest(os, info, indent);
    return os.str();
}

std::string
fileChecksumHex(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (!common::readFileBytes(path, bytes))
        return "";
    return "0x" + common::toHex64(common::fnv1a64(bytes));
}

// ---------------------------------------------------------------------
// Progress meter.
// ---------------------------------------------------------------------

ProgressMeter::ProgressMeter(std::string label, std::size_t total,
                             std::ostream *os)
    : _label(std::move(label)), _total(total), _os(os),
      _startNs(nowNanos())
{
}

void
ProgressMeter::tick()
{
    std::size_t done =
        _done.fetch_add(1, std::memory_order_relaxed) + 1;
    // A resumed run can replay journaled items beyond the planned
    // total; clamp so the meter never reports >100% or a negative ETA.
    if (_total && done > _total)
        done = _total;
    if (!progressEnabled())
        return;
    const double elapsed = (nowNanos() - _startNs) * 1e-9;
    const double frac =
        _total ? static_cast<double>(done) / _total : 1.0;
    const double eta =
        (frac > 0.0 && done < _total) ? elapsed * (1.0 - frac) / frac
                                      : 0.0;
    std::ostringstream line;
    line << _label << ": " << done << "/" << _total << " ("
         << std::fixed << std::setprecision(1) << 100.0 * frac
         << "%), elapsed " << std::setprecision(1) << elapsed
         << "s, eta " << std::setprecision(1) << eta << "s\n";
    // One formatted write per line keeps concurrent ticks readable.
    if (_os)
        *_os << line.str() << std::flush;
    else
        std::fputs(line.str().c_str(), stderr);
}

} // namespace instr
} // namespace mcpat
