/**
 * @file
 * Thread-pool implementation behind parallel::parallelFor.
 */

#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.hh"
#include "common/event_log.hh"
#include "common/instrument.hh"
#include "common/strict_parse.hh"

namespace mcpat {
namespace parallel {

namespace {

/** Set while a thread is executing parallelFor work (nesting guard). */
thread_local bool t_inParallelRegion = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("MCPAT_THREADS")) {
        const int n = parseThreadCountEnv(env);
        if (n >= 1)
            return n;
        // Warn once: atoi-style silent acceptance of "8x" (as 8) or
        // "abc" (as 0 -> hardware default) hid typos entirely.
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::cerr << "mcpat: warning: ignoring MCPAT_THREADS='"
                      << env << "' (expected a positive integer); "
                         "using the hardware default\n";
            if (elog::enabled(elog::Level::Warn)) {
                elog::emit(elog::Level::Warn, "common.parallel",
                           "bad_thread_env",
                           "ignoring MCPAT_THREADS (expected a "
                           "positive integer); using the hardware "
                           "default",
                           {elog::Field::str("env_var",
                                             "MCPAT_THREADS"),
                            elog::Field::str("value", env)});
            }
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

/** 0 = unset (use the environment / hardware default). */
std::atomic<int> g_threadCount{0};

/**
 * One parallelFor invocation.  Indices are claimed with an atomic
 * counter; completion is tracked with a second counter so the
 * submitting thread can wait for the exact moment all work retired.
 */
struct Job
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    /** Workers beyond this many skip the job (honors thread count). */
    int maxHelpers = 0;
    /** Submitter's ambient cancel token, re-installed in every worker
     *  so deadlines and interrupts reach distributed work. */
    const cancel::CancelToken *cancelToken = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> helpers{0};
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr error;
};

/**
 * Persistent worker pool.  Workers sleep on a condition variable and
 * wake when a job is published; they never busy-wait between jobs.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool p;
        return p;
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &fn,
        int threads)
    {
        // One top-level job at a time keeps worker hand-off simple;
        // concurrent outer callers just serialize here.
        std::lock_guard<std::mutex> submit(_submitMutex);

        const bool instrumented = instr::enabled();
        if (instrumented) {
            auto &reg = instr::Registry::instance();
            reg.counter("parallel.jobs").add();
            reg.gauge("parallel.queue_depth_max")
                .setMax(static_cast<double>(n));
        }

        auto job = std::make_shared<Job>();
        job->n = n;
        job->fn = &fn;
        job->maxHelpers = threads - 1;
        job->cancelToken = cancel::current();

        ensureWorkers(std::min<std::size_t>(n, threads) - 1);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _job = job;
            ++_jobSeq;
        }
        _wake.notify_all();

        drain(*job);  // the submitting thread works too

        {
            // Time the submitter's wait for stragglers: the closest
            // thing this claim-based pool has to steal/imbalance cost.
            const std::uint64_t t0 =
                instrumented ? instr::nowNanos() : 0;
            std::unique_lock<std::mutex> lock(_mutex);
            _done.wait(lock, [&] { return job->done.load() == job->n; });
            _job.reset();
            if (instrumented) {
                instr::Registry::instance()
                    .timer("parallel.wait")
                    .addNanos(instr::nowNanos() - t0);
            }
        }
        if (job->error)
            std::rethrow_exception(job->error);
    }

  private:
    Pool() = default;

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _shutdown = true;
        }
        _wake.notify_all();
        for (auto &w : _workers)
            w.join();
    }

    void
    ensureWorkers(std::size_t wanted)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        while (_workers.size() < wanted) {
            const std::size_t ordinal = _workers.size();
            _workers.emplace_back([this, ordinal] {
                // Stable lane labels in trace output: pool-0, pool-1,
                // ... by spawn order, independent of raw tids.
                instr::setThreadName("pool-" +
                                     std::to_string(ordinal));
                workerLoop();
            });
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _wake.wait(lock, [&] {
                    return _shutdown || (_job && _jobSeq != seen);
                });
                if (_shutdown)
                    return;
                job = _job;
                seen = _jobSeq;
            }
            // Late workers beyond the requested thread count sit this
            // job out (the pool never shrinks, the job just ignores
            // surplus hands).
            if (job->helpers.fetch_add(1) < job->maxHelpers)
                drain(*job);
        }
    }

    /** Claim and execute indices until the job is exhausted. */
    void
    drain(Job &job)
    {
        const bool instrumented = instr::enabled();
        const std::uint64_t t0 = instrumented ? instr::nowNanos() : 0;
        // Adopt the submitter's cancel token so checkpoint() calls in
        // the loop body observe the same deadline on every thread.  On
        // the submitting thread this re-installs its own token (a
        // harmless no-op); on pool workers it replaces nullptr.
        cancel::ScopedCurrent adopt(job.cancelToken);
        t_inParallelRegion = true;
        std::size_t finished = 0;
        for (;;) {
            const std::size_t i =
                job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.n)
                break;
            if (!job.failed.load(std::memory_order_relaxed)) {
                try {
                    (*job.fn)(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(job.errorMutex);
                    if (!job.failed.exchange(true))
                        job.error = std::current_exception();
                }
            }
            ++finished;
        }
        t_inParallelRegion = false;
        if (instrumented) {
            auto &reg = instr::Registry::instance();
            reg.counter("parallel.tasks").add(finished);
            reg.timer("parallel.busy").addNanos(instr::nowNanos() - t0,
                                                finished);
        }
        if (finished &&
            job.done.fetch_add(finished) + finished == job.n) {
            // Pair the notification with the mutex so the submitter
            // cannot miss it between its predicate check and wait.
            std::lock_guard<std::mutex> lock(_mutex);
            _done.notify_all();
        }
    }

    std::mutex _submitMutex;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    std::vector<std::thread> _workers;
    std::shared_ptr<Job> _job;
    std::uint64_t _jobSeq = 0;
    bool _shutdown = false;
};

/** Publishes the effective worker count into every registry snapshot. */
[[maybe_unused]] const bool g_threads_collector_registered =
    instr::Registry::instance().addCollector([](instr::Registry &reg) {
        reg.gauge("parallel.threads")
            .set(static_cast<double>(threadCount()));
    });

} // namespace

int
parseThreadCountEnv(const char *text)
{
    if (!text)
        return 0;
    long long n = 0;
    if (!common::parseLongStrict(text, n))
        return 0;
    if (n < 1 || n > std::numeric_limits<int>::max())
        return 0;
    return static_cast<int>(n);
}

int
threadCount()
{
    const int n = g_threadCount.load(std::memory_order_relaxed);
    if (n >= 1)
        return n;
    static const int dflt = defaultThreadCount();
    return dflt;
}

void
setThreadCount(int n)
{
    g_threadCount.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

bool
inParallelRegion()
{
    return t_inParallelRegion;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    const int threads = threadCount();
    if (n == 0)
        return;
    if (n == 1 || threads <= 1 || t_inParallelRegion) {
        // Serial fallback: also taken for nested calls so inner
        // parallelism cannot deadlock on or oversubscribe the pool.
        if (instr::enabled())
            instr::Registry::instance()
                .counter("parallel.serial_tasks")
                .add(n);
        const bool outer = t_inParallelRegion;
        t_inParallelRegion = true;
        try {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
        } catch (...) {
            t_inParallelRegion = outer;
            throw;
        }
        t_inParallelRegion = outer;
        return;
    }
    Pool::instance().run(n, fn, threads);
}

} // namespace parallel
} // namespace mcpat
