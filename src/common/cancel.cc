/**
 * @file
 * Cooperative cancellation implementation.
 */

#include "common/cancel.hh"

#include <csignal>

namespace mcpat {
namespace cancel {

namespace {

/** First stop signal received; 0 = no stop requested.  The signal
 *  handlers perform exactly one lock-free store here. */
std::atomic<int> g_stopSignal{0};

thread_local const CancelToken *t_current = nullptr;

extern "C" void
stopSignalHandler(int sig)
{
    requestStop(sig);
}

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Timeout:
        return "timeout";
      case Kind::Interrupt:
        return "interrupt";
      case Kind::None:
        break;
    }
    return "none";
}

void
CancelToken::setDeadlineIn(double ms)
{
    if (ms <= 0.0) {
        _hasDeadline = false;
        _timeoutMs = 0.0;
        return;
    }
    _timeoutMs = ms;
    _deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    _hasDeadline = true;
}

Kind
CancelToken::state() const
{
    if (_cancelled.load(std::memory_order_relaxed))
        return Kind::Interrupt;
    if (_honorGlobalStop && stopRequested())
        return Kind::Interrupt;
    if (_hasDeadline && std::chrono::steady_clock::now() >= _deadline)
        return Kind::Timeout;
    if (_parent)
        return _parent->state();
    return Kind::None;
}

void
CancelToken::checkpoint() const
{
    const Kind k = state();
    if (k == Kind::None)
        return;
    if (k == Kind::Timeout) {
        // Report the deadline that actually fired: ours, or an
        // ancestor's when the trip came from the parent chain.
        const CancelToken *t = this;
        while (t && !(t->_hasDeadline &&
                      std::chrono::steady_clock::now() >= t->_deadline))
            t = t->_parent;
        const double ms = t ? t->_timeoutMs : _timeoutMs;
        throw Cancelled(Kind::Timeout,
                        "evaluation exceeded its deadline (" +
                            std::to_string(ms) + " ms)");
    }
    throw Cancelled(Kind::Interrupt, "evaluation interrupted (stop "
                                     "requested)");
}

const CancelToken *
current()
{
    return t_current;
}

ScopedCurrent::ScopedCurrent(const CancelToken *token)
    : _previous(t_current)
{
    t_current = token;
}

ScopedCurrent::~ScopedCurrent()
{
    t_current = _previous;
}

void
checkpoint()
{
    if (t_current) {
        t_current->checkpoint();
    } else if (stopRequested()) {
        throw Cancelled(Kind::Interrupt, "evaluation interrupted (stop "
                                         "requested)");
    }
}

void
requestStop(int signal)
{
    int expected = 0;
    g_stopSignal.compare_exchange_strong(expected,
                                         signal > 0 ? signal : -1,
                                         std::memory_order_relaxed);
}

bool
stopRequested()
{
    return g_stopSignal.load(std::memory_order_relaxed) != 0;
}

int
stopSignal()
{
    const int sig = g_stopSignal.load(std::memory_order_relaxed);
    return sig > 0 ? sig : 0;
}

void
clearStop()
{
    g_stopSignal.store(0, std::memory_order_relaxed);
}

void
installStopHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = stopSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking I/O too
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

} // namespace cancel
} // namespace mcpat
