/**
 * @file
 * Binary serialization and stable hashing for persistent caches.
 *
 * The persistent model cache (array/disk_cache.hh) stores solved
 * results across process lifetimes, so its byte layout must be stable
 * in ways std::hash and in-memory structs are not:
 *
 *  - ByteWriter/ByteReader encode fixed-width little-endian integers
 *    and IEEE-754 doubles (as their bit patterns), independent of host
 *    struct padding or endianness;
 *  - fnv1a64 is a fixed, documented 64-bit hash (FNV-1a) used both to
 *    name cache records on disk and to checksum their contents — the
 *    same bytes hash to the same value in every process and build;
 *  - writeFileAtomic publishes a record with the classic temp-file +
 *    rename dance, so concurrent writers race benignly (last complete
 *    record wins) and readers never observe a half-written file.
 */

#ifndef MCPAT_COMMON_SERIALIZE_HH
#define MCPAT_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcpat {
namespace common {

/** Append-only little-endian byte encoder. */
class ByteWriter
{
  public:
    void putU8(std::uint8_t v) { _bytes.push_back(v); }
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI32(std::int32_t v) { putU32(static_cast<std::uint32_t>(v)); }
    /** IEEE-754 bit pattern; -0.0 is canonicalized to +0.0. */
    void putF64(double v);

    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

  private:
    std::vector<std::uint8_t> _bytes;
};

/**
 * Sequential little-endian decoder over a byte buffer.
 *
 * Reads past the end never touch out-of-range memory: they return 0 and
 * latch a failure flag the caller checks once at the end (truncated
 * records are expected input for a disk cache, not programming errors).
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {}
    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {}

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int32_t getI32() { return static_cast<std::int32_t>(getU32()); }
    double getF64();

    std::size_t position() const { return _pos; }
    std::size_t remaining() const { return _size - _pos; }
    /** True when every read so far was in bounds. */
    bool ok() const { return _ok; }

  private:
    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    bool _ok = true;
};

/** FNV-1a 64-bit hash over a byte range (stable across processes). */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t size);

inline std::uint64_t
fnv1a64(const std::vector<std::uint8_t> &bytes)
{
    return fnv1a64(bytes.data(), bytes.size());
}

/** Fixed-width lowercase-hex rendering of a 64-bit value (16 chars). */
std::string toHex64(std::uint64_t v);

/**
 * Atomically create/replace @p path with @p bytes: write a uniquely
 * named temp file in the same directory, then rename() it into place.
 * Returns false (without throwing) on any I/O failure — callers treat
 * an unwritable cache as a slow day, not an error.
 */
bool writeFileAtomic(const std::string &path,
                     const std::vector<std::uint8_t> &bytes);

/**
 * Read a whole file into @p out.  Returns false when the file does not
 * exist or cannot be read; @p out is left empty in that case.
 */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);

} // namespace common
} // namespace mcpat

#endif // MCPAT_COMMON_SERIALIZE_HH
