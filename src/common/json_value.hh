/**
 * @file
 * Minimal JSON document parser (RFC 8259) producing a small DOM.
 *
 * The evaluation server accepts newline-delimited JSON requests; the
 * load-test client and the tests read the server's JSON responses.
 * Both need to *read* JSON, not just validate it (json_check.hh), and
 * pulling in an external dependency for a six-kind value type is not
 * worth it.  This parser is strict — the same documents json_check
 * accepts — and keeps object keys in source order so round-trip tests
 * stay deterministic.
 */

#ifndef MCPAT_COMMON_JSON_VALUE_HH
#define MCPAT_COMMON_JSON_VALUE_HH

#include <string>
#include <utility>
#include <vector>

namespace mcpat {
namespace common {

/** One parsed JSON value; a tree for arrays and objects. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Key/value pairs in source order (later duplicates shadow). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /**
     * Look up @p key in an object; nullptr when absent or when this
     * value is not an object.  The last occurrence wins, matching what
     * most real parsers do with duplicate keys.
     */
    const JsonValue *find(const std::string &key) const;

    /** The member's string value, or @p dflt when absent/not a string. */
    std::string getString(const std::string &key,
                          const std::string &dflt = std::string()) const;

    /** The member's bool value, or @p dflt when absent/not a bool. */
    bool getBool(const std::string &key, bool dflt = false) const;

    /** The member's numeric value, or @p dflt when absent/not a number. */
    double getNumber(const std::string &key, double dflt = 0.0) const;
};

/**
 * Parse one complete JSON document (with optional surrounding
 * whitespace).  Returns false — with a one-line description and byte
 * offset in @p error when non-null — on any syntax violation,
 * including trailing garbage after the value.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace common
} // namespace mcpat

#endif // MCPAT_COMMON_JSON_VALUE_HH
