/**
 * @file
 * Strict full-token scalar parsing.
 *
 * The std::stoi/std::stod family silently truncates ("64kb" parses as
 * 64) and throws context-free exceptions on garbage; std::atoi cannot
 * even distinguish 0 from failure.  These helpers parse the *entire*
 * token or report failure, reject non-finite doubles, and never throw —
 * callers attach their own context (component, key, source line) to the
 * failure.
 */

#ifndef MCPAT_COMMON_STRICT_PARSE_HH
#define MCPAT_COMMON_STRICT_PARSE_HH

#include <string>

namespace mcpat {
namespace common {

/**
 * Parse @p text as a decimal integer.  The whole token must be
 * consumed: leading/trailing whitespace, trailing junk ("64kb"), an
 * empty string, and out-of-long-long-range values all fail.  @p out is
 * untouched on failure.
 */
bool parseLongStrict(const std::string &text, long long &out);

/**
 * Parse @p text as a floating-point number.  The whole token must be
 * consumed; empty strings, trailing junk ("1e", "3.5W"), and
 * non-finite results ("inf", "nan", "1e999") all fail.  @p out is
 * untouched on failure.
 */
bool parseDoubleStrict(const std::string &text, double &out);

/**
 * Parse @p text as a boolean.  Accepted spellings: "1", "true", "yes",
 * "0", "false", "no" (lowercase).  Anything else fails; @p out is
 * untouched on failure.
 */
bool parseBoolStrict(const std::string &text, bool &out);

} // namespace common
} // namespace mcpat

#endif // MCPAT_COMMON_STRICT_PARSE_HH
