/**
 * @file
 * Lock-free log-bucketed histogram metric for the instrumentation
 * registry (common/instrument.hh).
 *
 * Counters and gauges answer "how many" and "how much right now";
 * distributions — per-request server latency, per-item batch wall
 * clock, array-optimizer candidate counts — need "how is it spread".
 * A Histogram records positive values into log-linear buckets: each
 * power-of-two octave is split into kSubBuckets equal-width slices,
 * so every bucket spans at most 1/kSubBuckets (12.5%) of its value —
 * the resolution bound quoted when a reported quantile is compared
 * against an externally measured one ("within one bucket width").
 *
 * Concurrency and determinism: record() is wait-free — one relaxed
 * fetch_add on the bucket counter plus relaxed CAS loops for sum and
 * extrema; there is no lock to convoy on, so pool workers and server
 * threads may record concurrently (TSan-covered).  Because a value's
 * bucket depends only on the value, a quiescent snapshot is a pure
 * function of the multiset of recorded values: concurrent insertion
 * in any order yields byte-identical quantiles to serial insertion.
 *
 * Quantiles use the nearest-rank convention over bucket counts and
 * report the bucket midpoint, so two histograms holding the same data
 * always agree.  An empty histogram reports NaN quantiles (and NaN
 * min/max/mean) rather than trapping — absence of data is an answer,
 * not an error.  merge() adds bucket counts and is associative and
 * commutative by construction.
 */

#ifndef MCPAT_COMMON_HISTOGRAM_HH
#define MCPAT_COMMON_HISTOGRAM_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace mcpat {
namespace instr {

/**
 * Deterministic, plain-data view of a histogram: sparse (index, count)
 * pairs plus the moment/extrema summaries.  Snapshots are what gets
 * serialized (manifests, health replies) and what merge() operates on.
 */
struct HistogramSnapshot
{
    /** Non-empty buckets, ascending by index. */
    std::vector<std::pair<int, std::uint64_t>> buckets;
    std::uint64_t count = 0;  ///< total recorded values (Σ buckets)
    double sum = 0.0;         ///< Σ values (exact, not bucketized)
    double min = 0.0;         ///< smallest recorded value (NaN if empty)
    double max = 0.0;         ///< largest recorded value (NaN if empty)

    /**
     * Nearest-rank quantile for @p p in [0, 1], reported as the
     * containing bucket's midpoint; NaN when the histogram is empty.
     */
    double quantile(double p) const;

    /** Mean of recorded values (exact sum / count); NaN when empty. */
    double mean() const;

    /** Add @p other's buckets and summaries (associative). */
    void merge(const HistogramSnapshot &other);
};

/**
 * The live, writable metric.  Values <= 0 and non-finite values land
 * in the underflow bucket 0 (NaN is dropped entirely); values beyond
 * the covered range clamp to the first/last real bucket.  The covered
 * range — 2^-35 up to 2^30, about 3e-11 to 1e9 — spans sub-microsecond
 * latencies in ms through billions-of-candidates counts.
 */
class Histogram
{
  public:
    /** Sub-buckets per power-of-two octave (bucket width = 1/8th). */
    static constexpr int kSubBuckets = 8;
    /** Smallest covered exponent: buckets start at 2^(kMinExp). */
    static constexpr int kMinExp = -35;
    /** Number of covered octaves [2^k, 2^(k+1)). */
    static constexpr int kOctaves = 65;
    /** Underflow bucket + log-linear buckets. */
    static constexpr int kBuckets = 1 + kOctaves * kSubBuckets;

    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one value (wait-free; relaxed atomics; NaN is dropped). */
    void record(double v);

    /** Total values recorded so far. */
    std::uint64_t count() const;

    /** Deterministic view of everything recorded so far. */
    HistogramSnapshot snapshot() const;

    /** Zero every bucket and summary. */
    void reset();

    /** Bucket index a value records into (pure; exposed for tests). */
    static int bucketIndex(double v);
    /** Inclusive lower bound of bucket @p idx (0 for the underflow). */
    static double bucketLowerBound(int idx);
    /** Exclusive upper bound of bucket @p idx. */
    static double bucketUpperBound(int idx);
    /** The representative value a quantile in bucket @p idx reports. */
    static double bucketMidpoint(int idx);

  private:
    std::atomic<std::uint64_t> _counts[kBuckets] = {};
    std::atomic<double> _sum{0.0};
    // Infinity sentinels make the extrema CAS loops branch-free on the
    // first record; snapshot() maps an untouched pair to NaN.
    std::atomic<double> _min{std::numeric_limits<double>::infinity()};
    std::atomic<double> _max{-std::numeric_limits<double>::infinity()};
};

} // namespace instr
} // namespace mcpat

#endif // MCPAT_COMMON_HISTOGRAM_HH
