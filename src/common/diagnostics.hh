/**
 * @file
 * Structured configuration diagnostics.
 *
 * Every problem found while loading or cross-checking a configuration
 * is recorded as a Diagnostic carrying the component id, the offending
 * key, the XML source line, and a human-readable message — instead of
 * a context-free exception from deep inside a parser.  Diagnostics are
 * collected (not thrown one at a time), so a single pass reports every
 * problem in a file.
 *
 * Severity semantics:
 *  - Error:   the configuration cannot be trusted to build the model
 *             the user intended (malformed value, out-of-range,
 *             inconsistent cross-field state).  Errors always fail the
 *             load; there is no mode that silently proceeds past them.
 *  - Warning: suspicious but recoverable (unknown key, advisory
 *             cross-field mismatch).  Strict mode escalates warnings
 *             to failures; permissive mode reports them and continues.
 */

#ifndef MCPAT_COMMON_DIAGNOSTICS_HH
#define MCPAT_COMMON_DIAGNOSTICS_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace mcpat {

/** How bad one diagnostic is (see file comment for semantics). */
enum class Severity { Warning, Error };

/** "warning" or "error". */
const char *severityName(Severity s);

/** One located problem in a configuration. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string component;  ///< component id (or type when id absent)
    std::string key;        ///< param/stat name; empty for cross-field
    std::string message;
    int line = 0;           ///< 1-based XML source line; 0 = unknown

    /** "error: component 'x', key 'y' (line 3): message". */
    std::string format() const;
};

/** A collected list of diagnostics with severity queries. */
class DiagnosticList
{
  public:
    void
    add(Severity severity, const std::string &component,
        const std::string &key, const std::string &message, int line = 0)
    {
        _items.push_back({severity, component, key, message, line});
    }

    void add(Diagnostic d) { _items.push_back(std::move(d)); }

    /** Append another list's items. */
    void
    merge(const DiagnosticList &other)
    {
        _items.insert(_items.end(), other._items.begin(),
                      other._items.end());
    }

    bool hasErrors() const;
    bool hasWarnings() const;

    /** Count of Error-severity items. */
    std::size_t errorCount() const;

    bool empty() const { return _items.empty(); }
    std::size_t size() const { return _items.size(); }

    const std::vector<Diagnostic> &items() const { return _items; }
    auto begin() const { return _items.begin(); }
    auto end() const { return _items.end(); }

    /** One formatted diagnostic per line, "mcpat: " prefixed. */
    void print(std::ostream &os) const;

    /**
     * Throw a ValidationError summarizing the Error items when any are
     * present; no-op otherwise.  @p subject names what was being
     * validated (file path, component, ...).
     */
    void throwIfErrors(const std::string &subject) const;

  private:
    std::vector<Diagnostic> _items;
};

/**
 * A ConfigError that carries the structured diagnostics it summarizes,
 * so callers (batch mode, tests) can recover per-key context instead
 * of re-parsing what().
 */
class ValidationError : public ConfigError
{
  public:
    ValidationError(const std::string &subject, DiagnosticList diags);

    const DiagnosticList &diagnostics() const { return _diags; }

  private:
    DiagnosticList _diags;
};

/** Escape a string for inclusion in a JSON document. */
std::string jsonEscapeString(const std::string &s);

/**
 * Emit a diagnostics array as JSON:
 *   [{"severity": "error", "component": "...", "key": "...",
 *     "line": 3, "message": "..."}, ...]
 */
void writeDiagnosticsJson(std::ostream &os, const DiagnosticList &diags,
                          int indent = 0);

/** Emit diagnostics as CSV rows: severity,component,key,line,message. */
void writeDiagnosticsCsv(std::ostream &os, const DiagnosticList &diags);

} // namespace mcpat

#endif // MCPAT_COMMON_DIAGNOSTICS_HH
