/**
 * @file
 * Parallel-evaluation engine: a persistent thread pool with a
 * deterministic parallelFor.
 *
 * McPAT evaluations are embarrassingly parallel at several levels (the
 * 216-candidate array-organization search, per-component chip assembly,
 * case-study design points, per-workload activity evaluation).  This
 * utility parallelizes an index range over a shared worker pool while
 * keeping results bit-identical to the serial path: every index writes
 * into its own pre-allocated slot and all reductions happen serially in
 * index order on the calling thread, so no floating-point sum is ever
 * reassociated across threads.
 *
 * Thread count resolution order:
 *   1. parallel::setThreadCount(n) (CLI flag -threads, tests);
 *   2. the MCPAT_THREADS environment variable;
 *   3. std::thread::hardware_concurrency().
 *
 * Nested parallelFor calls (e.g. an array optimization inside a
 * parallel chip build) run inline on the calling worker, so arbitrary
 * nesting is safe and never oversubscribes or deadlocks.
 */

#ifndef MCPAT_COMMON_PARALLEL_HH
#define MCPAT_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace mcpat {
namespace parallel {

/**
 * Effective worker count for subsequent parallelFor calls (>= 1).
 * 1 means fully serial execution.
 */
int threadCount();

/**
 * Override the worker count.  @p n <= 0 resets to the environment /
 * hardware default.  Callable at any time; takes effect on the next
 * parallelFor.  Worker threads are created lazily and never destroyed
 * until process exit, so raising and lowering the count is cheap.
 */
void setThreadCount(int n);

/** True when the calling thread is inside a parallelFor body. */
bool inParallelRegion();

/**
 * Parse an MCPAT_THREADS-style value.  The whole token must be a
 * positive integer ("8"); partial matches that atoi would half-accept
 * ("8x", "2.5") and zero/negative counts return 0, meaning "fall back
 * to the hardware default".  @p text may be null (unset variable).
 */
int parseThreadCountEnv(const char *text);

/**
 * Run fn(i) for every i in [0, n), distributing indices over the pool,
 * and block until all complete.  The calling thread participates.
 *
 * Guarantees:
 *  - every index runs exactly once;
 *  - exceptions thrown by @p fn are rethrown on the calling thread
 *    (the first one encountered; remaining indices are skipped);
 *  - nested calls and threadCount() == 1 degrade to a plain serial
 *    loop on the calling thread.
 *
 * Determinism contract: @p fn must only write to per-index state
 * (e.g. slot i of a pre-sized vector).  Cross-index reductions belong
 * after the call, in index order.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn);

} // namespace parallel
} // namespace mcpat

#endif // MCPAT_COMMON_PARALLEL_HH
