/**
 * @file
 * Diagnostic formatting and serialization.
 */

#include "common/diagnostics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mcpat {

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::format() const
{
    std::string out = severityName(severity);
    out += ": ";
    if (!component.empty())
        out += "component '" + component + "'";
    if (!key.empty())
        out += std::string(component.empty() ? "" : ", ") + "key '" +
               key + "'";
    if (line > 0)
        out += " (line " + std::to_string(line) + ")";
    if (!component.empty() || !key.empty() || line > 0)
        out += ": ";
    out += message;
    return out;
}

bool
DiagnosticList::hasErrors() const
{
    return errorCount() > 0;
}

bool
DiagnosticList::hasWarnings() const
{
    return std::any_of(_items.begin(), _items.end(), [](const auto &d) {
        return d.severity == Severity::Warning;
    });
}

std::size_t
DiagnosticList::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(_items.begin(), _items.end(), [](const auto &d) {
            return d.severity == Severity::Error;
        }));
}

void
DiagnosticList::print(std::ostream &os) const
{
    for (const auto &d : _items)
        os << "mcpat: " << d.format() << "\n";
}

void
DiagnosticList::throwIfErrors(const std::string &subject) const
{
    if (hasErrors())
        throw ValidationError(subject, *this);
}

namespace {

/** Exception message: subject + every error diagnostic, one per line. */
std::string
summarize(const std::string &subject, const DiagnosticList &diags)
{
    std::ostringstream os;
    const std::size_t n = diags.errorCount();
    os << subject << ": " << n << " validation error"
       << (n == 1 ? "" : "s");
    for (const auto &d : diags)
        if (d.severity == Severity::Error)
            os << "\n  " << d.format();
    return os.str();
}

} // namespace

ValidationError::ValidationError(const std::string &subject,
                                 DiagnosticList diags)
    : ConfigError(summarize(subject, diags)), _diags(std::move(diags))
{}

std::string
jsonEscapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeDiagnosticsJson(std::ostream &os, const DiagnosticList &diags,
                     int indent)
{
    const std::string pad(indent, ' ');
    if (diags.empty()) {
        os << "[]";
        return;
    }
    os << "[\n";
    const auto &items = diags.items();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const Diagnostic &d = items[i];
        os << pad << "  {\"severity\": \"" << severityName(d.severity)
           << "\", \"component\": \"" << jsonEscapeString(d.component)
           << "\", \"key\": \"" << jsonEscapeString(d.key)
           << "\", \"line\": " << d.line << ", \"message\": \""
           << jsonEscapeString(d.message) << "\"}"
           << (i + 1 < items.size() ? ",\n" : "\n");
    }
    os << pad << "]";
}

namespace {

std::string
csvEscapeField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    return out + "\"";
}

} // namespace

void
writeDiagnosticsCsv(std::ostream &os, const DiagnosticList &diags)
{
    os << "severity,component,key,line,message\n";
    for (const auto &d : diags) {
        os << severityName(d.severity) << ','
           << csvEscapeField(d.component) << ',' << csvEscapeField(d.key)
           << ',' << d.line << ',' << csvEscapeField(d.message) << '\n';
    }
}

} // namespace mcpat
