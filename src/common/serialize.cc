/**
 * @file
 * Binary serialization, FNV-1a hashing, and atomic file publication.
 */

#include "common/serialize.hh"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

namespace mcpat {
namespace common {

void
ByteWriter::putU32(std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        _bytes.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::putU64(std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        _bytes.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::putF64(double v)
{
    if (v == 0.0)
        v = 0.0;  // -0.0 compares equal to 0.0; encode them identically
    putU64(std::bit_cast<std::uint64_t>(v));
}

std::uint8_t
ByteReader::getU8()
{
    if (_pos + 1 > _size) {
        _ok = false;
        return 0;
    }
    return _data[_pos++];
}

std::uint32_t
ByteReader::getU32()
{
    if (_pos + 4 > _size) {
        _ok = false;
        _pos = _size;
        return 0;
    }
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
        v |= static_cast<std::uint32_t>(_data[_pos++]) << shift;
    return v;
}

std::uint64_t
ByteReader::getU64()
{
    if (_pos + 8 > _size) {
        _ok = false;
        _pos = _size;
        return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
        v |= static_cast<std::uint64_t>(_data[_pos++]) << shift;
    return v;
}

double
ByteReader::getF64()
{
    return std::bit_cast<double>(getU64());
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
toHex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[i] = digits[v & 0xf];
        v >>= 4;
    }
    return s;
}

bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path target(path);

    // Unique temp name in the target directory so rename() stays on one
    // filesystem (and therefore atomic).  PID + address disambiguate
    // concurrent writers of the same record.
    const fs::path tmp =
        target.parent_path() /
        (".tmp." + target.filename().string() + "." +
         toHex64((static_cast<std::uint64_t>(::getpid()) << 32) ^
                 static_cast<std::uint64_t>(
                     reinterpret_cast<std::uintptr_t>(&bytes))));

    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return false;
        f.write(reinterpret_cast<const char *>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (!f) {
            f.close();
            fs::remove(tmp, ec);
            return false;
        }
    }

    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    if (size < 0)
        return false;
    f.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(size));
    f.read(reinterpret_cast<char *>(out.data()), size);
    return static_cast<bool>(f);
}

} // namespace common
} // namespace mcpat
