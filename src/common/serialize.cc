/**
 * @file
 * Binary serialization, FNV-1a hashing, and atomic file publication.
 */

#include "common/serialize.hh"

#include <bit>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace mcpat {
namespace common {

void
ByteWriter::putU32(std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        _bytes.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::putU64(std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        _bytes.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::putF64(double v)
{
    if (v == 0.0)
        v = 0.0;  // -0.0 compares equal to 0.0; encode them identically
    putU64(std::bit_cast<std::uint64_t>(v));
}

std::uint8_t
ByteReader::getU8()
{
    if (_pos + 1 > _size) {
        _ok = false;
        return 0;
    }
    return _data[_pos++];
}

std::uint32_t
ByteReader::getU32()
{
    if (_pos + 4 > _size) {
        _ok = false;
        _pos = _size;
        return 0;
    }
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
        v |= static_cast<std::uint32_t>(_data[_pos++]) << shift;
    return v;
}

std::uint64_t
ByteReader::getU64()
{
    if (_pos + 8 > _size) {
        _ok = false;
        _pos = _size;
        return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
        v |= static_cast<std::uint64_t>(_data[_pos++]) << shift;
    return v;
}

double
ByteReader::getF64()
{
    return std::bit_cast<double>(getU64());
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
toHex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[i] = digits[v & 0xf];
        v >>= 4;
    }
    return s;
}

bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path target(path);

    // Unique temp name in the target directory so rename() stays on one
    // filesystem (and therefore atomic).  PID + address disambiguate
    // concurrent writers of the same record.
    const fs::path tmp =
        target.parent_path() /
        (".tmp." + target.filename().string() + "." +
         toHex64((static_cast<std::uint64_t>(::getpid()) << 32) ^
                 static_cast<std::uint64_t>(
                     reinterpret_cast<std::uintptr_t>(&bytes))));

    // POSIX I/O instead of ofstream: the write, the short-write check,
    // and the fsync must all be verified *before* the rename publishes
    // the record — an ENOSPC surfacing at close(), or data still
    // sitting in the page cache at crash time, must never let a
    // truncated record become visible under the final name.
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    bool ok = true;
    std::size_t off = 0;
    while (ok && off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
        } else {
            off += static_cast<std::size_t>(n);
        }
    }
    ok = ok && ::fsync(fd) == 0;
    ok = ::close(fd) == 0 && ok;
    if (!ok) {
        fs::remove(tmp, ec);
        return false;
    }

    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }

    // Durably record the rename itself: fsync the containing directory
    // so a crash right after publish cannot resurrect the old name (or
    // drop the new one).  Failure here is not fatal — the record is
    // already complete and visible; the directory entry merely isn't
    // guaranteed durable yet.
    const std::string dir = target.parent_path().empty()
        ? std::string(".")
        : target.parent_path().string();
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    if (size < 0)
        return false;
    f.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(size));
    f.read(reinterpret_cast<char *>(out.data()), size);
    return static_cast<bool>(f);
}

} // namespace common
} // namespace mcpat
