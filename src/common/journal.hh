/**
 * @file
 * Append-only, checksummed progress journal.
 *
 * Long-running drivers (the batch runner, the case-study sweep) record
 * one journal record per completed work item so a crash, OOM-kill, or
 * SIGKILL loses at most the item that was in flight.  A later run with
 * `-resume` replays the journal, skips completed items, and re-emits
 * their recorded results — producing the same outputs as an
 * uninterrupted run without re-evaluating anything already done.
 *
 * ## Format
 *
 * A text file of independent single-line records:
 *
 *     MCPATJ1 <fnv1a64-hex16-of-payload> <payload>\n
 *
 * The payload is a single-line JSON object (the writer rejects
 * embedded newlines).  Each record is self-checking: the reader
 * verifies the prefix and the checksum before trusting the payload.
 * Records are written with a single write(2) call and fsync'd, so a
 * crash can only ever truncate the *tail* of the file.  The reader
 * therefore stops at the first invalid line (truncated tail, bad
 * checksum, garbage) and returns everything before it — corruption
 * degrades to re-evaluating the affected items, never to using a
 * half-written record.
 *
 * The first record is by convention a header describing what produced
 * the journal (schema, inputs, options); readers validate it before
 * honoring any item records, so a journal from a different input list
 * or option set is ignored rather than misapplied.
 */

#ifndef MCPAT_COMMON_JOURNAL_HH
#define MCPAT_COMMON_JOURNAL_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mcpat {
namespace common {

/**
 * Append-only journal writer over a POSIX fd (O_APPEND), one fsync'd
 * record per append.  All methods are noexcept-by-contract: failures
 * return false and latch, so a full disk degrades the run to
 * journal-less (the caller warns once) instead of aborting it.
 *
 * Not internally synchronized: callers appending from multiple
 * threads serialize externally.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open @p path for appending, creating it if needed; @p truncate
     * discards any existing contents (a fresh, non-resumed run).
     * Returns false with a description in @p error on failure.
     */
    bool open(const std::string &path, bool truncate,
              std::string *error = nullptr);

    /**
     * Append one record for @p payload (a single-line string; embedded
     * newlines are rejected).  The record — prefix, checksum, payload,
     * trailing newline — is written with one write(2) and fsync'd
     * before returning, so a record that this method acknowledged
     * survives any subsequent crash.
     */
    bool append(const std::string &payload);

    void close();

    bool isOpen() const { return _fd >= 0; }

    /** Journal path as opened; empty before open(). */
    const std::string &path() const { return _path; }

  private:
    int _fd = -1;
    std::string _path;
};

/** Everything readJournal() recovered from a journal file. */
struct JournalContents
{
    /** Validated record payloads, in append order. */
    std::vector<std::string> records;

    /**
     * True when the file ended with an invalid line (truncated tail,
     * checksum mismatch, foreign garbage).  Everything in records is
     * still trustworthy; the caller simply re-evaluates whatever the
     * dropped tail covered.
     */
    bool tailCorrupt = false;

    /** Lines discarded at and after the first invalid one. */
    std::size_t droppedLines = 0;
};

/**
 * Read and validate a journal.  A missing or unreadable file returns
 * empty contents (resume from nothing); a corrupt tail returns every
 * record before the corruption.  Never throws.
 */
JournalContents readJournal(const std::string &path);

} // namespace common
} // namespace mcpat

#endif // MCPAT_COMMON_JOURNAL_HH
