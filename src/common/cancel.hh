/**
 * @file
 * Cooperative cancellation: deadlines, interrupts, and checkpoints.
 *
 * Long evaluations (a full-chip solve, a sweep, one batch item) need
 * two ways to stop early without killing the process:
 *
 *  - a **deadline**: `-eval_timeout_ms` bounds one evaluation's wall
 *    clock, so a pathological configuration cannot hang a server
 *    worker or stall a thousand-config batch;
 *  - an **interrupt**: SIGINT/SIGTERM request an orderly stop — finish
 *    nothing new, unwind what's running, flush results and journals.
 *
 * Both are carried by a CancelToken.  Code that can run long calls
 * cancel::checkpoint() at natural boundaries (per candidate batch in
 * the array-organization search, per design point in a sweep, between
 * evaluation phases); a tripped token throws Cancelled, which unwinds
 * to the evaluation core and becomes a structured diagnostic instead
 * of a dead process.
 *
 * Tokens are *ambient*: an evaluation installs its token with
 * ScopedCurrent and everything downstream — including work distributed
 * over the parallel::parallelFor pool, which re-installs the
 * submitter's token in its workers — polls it without any signature
 * changes through the model layers.
 *
 * The process-wide stop flag is the only thing the signal handlers
 * touch (a lock-free atomic store, async-signal-safe); every token
 * honors it by default so one Ctrl-C reaches all in-flight work.
 */

#ifndef MCPAT_COMMON_CANCEL_HH
#define MCPAT_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace mcpat {
namespace cancel {

/** Why a cancellation fired. */
enum class Kind
{
    None,       ///< not cancelled
    Timeout,    ///< a deadline elapsed
    Interrupt   ///< an explicit or signal-driven stop request
};

/** "timeout" or "interrupt" ("none" for Kind::None). */
const char *kindName(Kind k);

/**
 * Thrown by checkpoints when the governing token has tripped.  Derives
 * from std::runtime_error so generic catch sites degrade gracefully;
 * resilience-aware sites catch it first to report a structured
 * timeout/interrupt instead of a generic failure.
 */
class Cancelled : public std::runtime_error
{
  public:
    Cancelled(Kind kind, const std::string &what)
        : std::runtime_error(what), _kind(kind)
    {}

    Kind kind() const { return _kind; }

  private:
    Kind _kind;
};

/**
 * One cancellation scope: an optional wall-clock deadline, an explicit
 * cancel flag, an optional parent token (nested scopes), and the
 * process-wide stop flag (honored unless opted out).
 *
 * Thread safety: requestCancel() and the query methods may race freely
 * (the flag is atomic); deadline/parent configuration must happen
 * before the token is shared.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Arm a deadline @p ms from now; ms <= 0 leaves none armed. */
    void setDeadlineIn(double ms);

    /** The configured timeout in ms; 0 when no deadline is armed. */
    double timeoutMs() const { return _timeoutMs; }

    /** Trip the token explicitly (reported as Kind::Interrupt). */
    void requestCancel() { _cancelled.store(true, std::memory_order_relaxed); }

    /** Chain a parent scope; a tripped parent trips this token too. */
    void setParent(const CancelToken *parent) { _parent = parent; }

    /** Opt out of the process-wide stop flag (tests). */
    void setHonorGlobalStop(bool on) { _honorGlobalStop = on; }

    /** Why this token is tripped right now; Kind::None when it isn't. */
    Kind state() const;

    bool cancelled() const { return state() != Kind::None; }

    /** Throw Cancelled when tripped; cheap no-op otherwise. */
    void checkpoint() const;

  private:
    std::atomic<bool> _cancelled{false};
    bool _honorGlobalStop = true;
    bool _hasDeadline = false;
    double _timeoutMs = 0.0;
    std::chrono::steady_clock::time_point _deadline{};
    const CancelToken *_parent = nullptr;
};

// ---------------------------------------------------------------------
// Ambient token
// ---------------------------------------------------------------------

/** The calling thread's governing token; nullptr when none installed. */
const CancelToken *current();

/**
 * Install @p token as the calling thread's ambient token for this
 * scope (restores the previous one on destruction).  parallelFor
 * propagates the submitting thread's ambient token into its workers
 * for the duration of each job.
 */
class ScopedCurrent
{
  public:
    explicit ScopedCurrent(const CancelToken *token);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent &) = delete;
    ScopedCurrent &operator=(const ScopedCurrent &) = delete;

  private:
    const CancelToken *_previous;
};

/**
 * Checkpoint against the ambient token: throws Cancelled when the
 * current token (or the process-wide stop flag, even with no token
 * installed) has tripped.  Safe and cheap to call anywhere.
 */
void checkpoint();

// ---------------------------------------------------------------------
// Process-wide stop flag (signal handlers)
// ---------------------------------------------------------------------

/**
 * Request an orderly process-wide stop.  Async-signal-safe: performs a
 * single lock-free atomic store.  @p signal is remembered (the first
 * one wins) so the front end can exit with the conventional
 * 128+signal status.
 */
void requestStop(int signal);

/** True once requestStop() has been called (and not cleared). */
bool stopRequested();

/** The first stop signal received; 0 when none. */
int stopSignal();

/** Clear the stop flag (tests, embedded reuse). */
void clearStop();

/**
 * Install async-signal-safe SIGINT/SIGTERM handlers that call
 * requestStop(sig).  Used by the batch front end so an interrupted
 * run flushes its completed results and finalizes its journal instead
 * of dying mid-write.
 */
void installStopHandlers();

} // namespace cancel
} // namespace mcpat

#endif // MCPAT_COMMON_CANCEL_HH
