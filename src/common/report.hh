/**
 * @file
 * Hierarchical power/area/timing report tree.
 *
 * Every McPAT component (from a bitline segment up to the whole processor)
 * summarizes itself as a Report node.  Parents aggregate children, so the
 * chip-level report is a tree whose internal sums are consistent by
 * construction — a property the test suite checks.
 */

#ifndef MCPAT_COMMON_REPORT_HH
#define MCPAT_COMMON_REPORT_HH

#include <string>
#include <vector>

namespace mcpat {

/**
 * Power/area/timing summary of one architectural component.
 *
 * Units are SI: area in m^2, power in W, delay in seconds.
 */
struct Report
{
    std::string name;

    /** Silicon area, m^2 (includes per-component wiring overhead). */
    double area = 0.0;

    /** Peak dynamic power at the target clock with TDP activity, W. */
    double peakDynamic = 0.0;

    /** Runtime dynamic power from simulation statistics, W. */
    double runtimeDynamic = 0.0;

    /** Subthreshold leakage power at the report temperature, W. */
    double subthresholdLeakage = 0.0;

    /** Gate leakage power, W. */
    double gateLeakage = 0.0;

    /**
     * Subthreshold leakage under the runtime scenario, W.  Negative
     * (the default) means "same as subthresholdLeakage"; power-gated
     * components report a lower value here while TDP leakage stays
     * worst-case.
     */
    double runtimeSubthresholdLeakage = -1.0;

    /** Worst access/propagation delay through this component, s. */
    double criticalPath = 0.0;

    std::vector<Report> children;

    /** Total leakage (subthreshold + gate), W. */
    double
    leakage() const
    {
        return subthresholdLeakage + gateLeakage;
    }

    /** Peak total power (peak dynamic + leakage), W. */
    double
    peakPower() const
    {
        return peakDynamic + leakage();
    }

    /** Runtime subthreshold leakage (resolves the mirror default), W. */
    double
    runtimeSubLeak() const
    {
        return runtimeSubthresholdLeakage < 0.0
            ? subthresholdLeakage
            : runtimeSubthresholdLeakage;
    }

    /** Runtime total power (runtime dynamic + runtime leakage), W. */
    double
    runtimePower() const
    {
        return runtimeDynamic + runtimeSubLeak() + gateLeakage;
    }

    /**
     * Append a child and accumulate its numbers into this node.
     *
     * The child's critical path widens the parent's (a parent is at least
     * as slow as its slowest child); areas and powers add.
     */
    void
    addChild(Report child)
    {
        area += child.area;
        peakDynamic += child.peakDynamic;
        runtimeDynamic += child.runtimeDynamic;
        // Keep runtime leakage in mirror mode unless some node made it
        // explicit (power gating); resolve before mutating the mirror.
        if (child.runtimeSubthresholdLeakage >= 0.0 ||
            runtimeSubthresholdLeakage >= 0.0) {
            runtimeSubthresholdLeakage =
                runtimeSubLeak() + child.runtimeSubLeak();
        }
        subthresholdLeakage += child.subthresholdLeakage;
        gateLeakage += child.gateLeakage;
        if (child.criticalPath > criticalPath)
            criticalPath = child.criticalPath;
        children.push_back(std::move(child));
    }

    /**
     * Accumulate another report's totals without recording it as a child
     * (used for per-instance replication, e.g. N identical cores where
     * only one child node is kept for the breakdown).
     */
    void
    accumulate(const Report &other, double count = 1.0)
    {
        area += other.area * count;
        peakDynamic += other.peakDynamic * count;
        runtimeDynamic += other.runtimeDynamic * count;
        if (other.runtimeSubthresholdLeakage >= 0.0 ||
            runtimeSubthresholdLeakage >= 0.0) {
            runtimeSubthresholdLeakage =
                runtimeSubLeak() + other.runtimeSubLeak() * count;
        }
        subthresholdLeakage += other.subthresholdLeakage * count;
        gateLeakage += other.gateLeakage * count;
        if (other.criticalPath > criticalPath)
            criticalPath = other.criticalPath;
    }

    /**
     * Recursively scale the dynamic-power fields (peak and runtime) of
     * this node and all children.  Used for block-level design-margin
     * factors so parent/child sums stay consistent.
     */
    void
    scaleDynamic(double factor)
    {
        peakDynamic *= factor;
        runtimeDynamic *= factor;
        for (auto &c : children)
            c.scaleDynamic(factor);
    }

    /** Find a direct child by name; nullptr when absent. */
    const Report *
    child(const std::string &child_name) const
    {
        for (const auto &c : children)
            if (c.name == child_name)
                return &c;
        return nullptr;
    }
};

} // namespace mcpat

#endif // MCPAT_COMMON_REPORT_HH
