/**
 * @file
 * Recursive-descent JSON parser behind common::jsonParse.
 */

#include "common/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <string>

namespace mcpat {
namespace common {

namespace {

/** Parser cursor over the input with located-error reporting. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &what)
    {
        if (error.empty()) {
            error = what + " at byte " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("invalid literal"));
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos < text.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos;
                continue;
            }
            // Escape sequence.
            ++pos;
            if (pos >= text.size())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos + 4 > text.size())
                      return fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text[pos + i];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= h - '0';
                      else if (h >= 'a' && h <= 'f')
                          code |= h - 'a' + 10;
                      else if (h >= 'A' && h <= 'F')
                          code |= h - 'A' + 10;
                      else
                          return fail("bad \\u escape digit");
                  }
                  pos += 4;
                  // Encode the code point as UTF-8.  Surrogate pairs
                  // are passed through as the individual code units —
                  // the writers in this codebase never emit them.
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {}
        if (consume('0')) {
            // No leading zeros.
        } else if (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        } else {
            return fail("invalid number");
        }
        if (consume('.')) {
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("digit required after '.'");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("digit required in exponent");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text.substr(start, pos - start).c_str(),
                                 nullptr);
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        }
        return parseNumber(out);
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const JsonValue *found = nullptr;
    for (const auto &kv : object)
        if (kv.first == key)
            found = &kv.second;
    return found;
}

std::string
JsonValue::getString(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str : dflt;
}

bool
JsonValue::getBool(const std::string &key, bool dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean : dflt;
}

double
JsonValue::getNumber(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : dflt;
}

bool
jsonParse(const std::string &text, JsonValue &out, std::string *error)
{
    Parser p(text);
    out = JsonValue();
    if (!p.parseValue(out, 0)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing data at byte " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace common
} // namespace mcpat
