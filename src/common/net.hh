/**
 * @file
 * Minimal stream-socket helpers for the evaluation server and its
 * clients: listen/accept/connect over Unix-domain or loopback TCP
 * sockets, plus a buffered line-oriented connection wrapper.
 *
 * The server speaks newline-delimited JSON, so the only read primitive
 * a caller needs is "one full line"; writes are all-or-nothing.  Both
 * sides of the protocol (server, load bench, tests) share these
 * wrappers so framing bugs cannot diverge between them.
 *
 * Endpoint syntax (CLI -serve and the bench's -connect):
 *  - all digits       -> TCP on 127.0.0.1:<port> (port 0 picks a free
 *                        port; ServerSocket::endpointName() reports it)
 *  - anything else    -> Unix-domain socket at that filesystem path
 */

#ifndef MCPAT_COMMON_NET_HH
#define MCPAT_COMMON_NET_HH

#include <cstdint>
#include <string>

namespace mcpat {
namespace net {

/** A parsed -serve/-connect endpoint specification. */
struct Endpoint
{
    bool isUnix = true;
    std::string path;    ///< socket path when isUnix
    std::uint16_t port = 0;  ///< loopback TCP port otherwise
};

/** Parse the endpoint syntax described in the file comment. */
Endpoint parseEndpoint(const std::string &spec);

/**
 * RAII listening socket.  close() (and destruction) releases the fd
 * and unlinks a Unix socket path this object bound.
 */
class ServerSocket
{
  public:
    ServerSocket() = default;
    ~ServerSocket();
    ServerSocket(const ServerSocket &) = delete;
    ServerSocket &operator=(const ServerSocket &) = delete;

    /**
     * Bind and listen on @p ep.  A pre-existing Unix socket file at
     * the path is removed first (stale from a crashed server).
     * Returns false with a description in @p error on failure.
     */
    bool listen(const Endpoint &ep, std::string *error = nullptr);

    /**
     * Accept one client, waiting at most @p timeout_ms (-1 = forever).
     * Returns the connected fd, or -1 on timeout or when the socket
     * has been closed (poll for shutdown with a finite timeout).
     */
    int acceptClient(int timeout_ms);

    /** Human-readable bound endpoint ("port 7421" / the socket path). */
    std::string endpointName() const;

    /** Actual bound TCP port (after port-0 auto-assignment). */
    std::uint16_t boundPort() const { return _port; }

    bool listening() const { return _fd >= 0; }

    void close();

  private:
    int _fd = -1;
    bool _isUnix = true;
    std::string _path;
    std::uint16_t _port = 0;
};

/** Outcome of one readLineWait() call. */
enum class ReadStatus { Line, Timeout, Eof };

/**
 * One connected stream socket with buffered line reads.  Owns the fd;
 * movable, not copyable.
 */
class Connection
{
  public:
    explicit Connection(int fd = -1) : _fd(fd) {}
    ~Connection();
    Connection(Connection &&other) noexcept;
    Connection &operator=(Connection &&other) noexcept;
    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    bool valid() const { return _fd >= 0; }

    /**
     * Read up to and including the next '\n'; @p line receives the
     * content without the terminator.  Returns false on EOF or error
     * with nothing buffered (a final unterminated line is returned).
     */
    bool readLine(std::string &line);

    /**
     * readLine with a per-poll timeout so a server worker can notice
     * shutdown while a client holds its connection open idle.
     * @p timeout_ms < 0 blocks forever (equivalent to readLine).
     * Lines longer than kMaxLineBytes drop the connection (Eof).
     */
    ReadStatus readLineWait(std::string &line, int timeout_ms);

    /** Write the whole buffer, retrying on short writes/EINTR. */
    bool writeAll(const std::string &data);

    void close();

    /** Largest accepted request/response line (64 MiB). */
    static constexpr std::size_t kMaxLineBytes = 64ull << 20;

  private:
    int _fd = -1;
    std::string _buffer;  ///< bytes read past the last returned line
};

/**
 * Connect to a server endpoint.  Returns a valid Connection, or an
 * invalid one with a description in @p error.
 */
Connection connectTo(const Endpoint &ep, std::string *error = nullptr);

} // namespace net
} // namespace mcpat

#endif // MCPAT_COMMON_NET_HH
