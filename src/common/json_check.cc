/**
 * @file
 * Recursive-descent JSON syntax validator.
 */

#include "common/json_check.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace mcpat {
namespace common {

namespace {

/** Single-pass validator over the document text. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : _text(text) {}

    bool
    run(std::string *error)
    {
        bool ok = skipWs() && value() && (skipWs(), atEnd());
        if (!ok && _error.empty())
            fail("trailing content after JSON value");
        if (!ok && error)
            *error = _error;
        return ok;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (_error.empty()) {
            std::ostringstream os;
            os << why << " at byte " << _pos;
            _error = os.str();
        }
        return false;
    }

    bool atEnd() const { return _pos >= _text.size(); }
    char peek() const { return atEnd() ? '\0' : _text[_pos]; }

    bool
    skipWs()
    {
        while (!atEnd()) {
            const char c = _text[_pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++_pos;
        }
        return true;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return fail(std::string("expected '") + c + "'");
        ++_pos;
        return true;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (peek() != *p)
                return fail(std::string("invalid literal (expected \"") +
                            word + "\")");
            ++_pos;
        }
        return true;
    }

    bool
    value()
    {
        // Hand-rolled writers overflow on deep report trees before any
        // parser does; bound recursion the way real parsers do.
        if (++_depth > 512)
            return fail("nesting deeper than 512");
        bool ok;
        switch (peek()) {
          case '{':
            ok = object();
            break;
          case '[':
            ok = array();
            break;
          case '"':
            ok = string();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = number();
            break;
        }
        --_depth;
        return ok;
    }

    bool
    object()
    {
        if (!expect('{'))
            return false;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                return fail("object key must be a string");
            if (!string())
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            return expect('}');
        }
    }

    bool
    array()
    {
        if (!expect('['))
            return false;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            return expect(']');
        }
    }

    bool
    string()
    {
        if (!expect('"'))
            return false;
        while (!atEnd()) {
            const unsigned char c =
                static_cast<unsigned char>(_text[_pos]);
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++_pos;
                const char e = peek();
                if (e == 'u') {
                    ++_pos;
                    for (int i = 0; i < 4; ++i, ++_pos) {
                        if (!std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            return fail("bad \\u escape");
                    }
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                    e != 'f' && e != 'n' && e != 'r' && e != 't')
                    return fail("bad escape sequence");
                ++_pos;
                continue;
            }
            ++_pos;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        // number = [-] int [frac] [exp]; rejects NaN, Infinity, '+',
        // leading zeros, and bare '.' — everything RFC 8259 rejects.
        if (peek() == '-')
            ++_pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("invalid value");
        if (peek() == '0') {
            ++_pos;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == '.') {
            ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        return true;
    }

    const std::string &_text;
    std::size_t _pos = 0;
    int _depth = 0;
    std::string _error;
};

} // namespace

bool
jsonValid(const std::string &text, std::string *error)
{
    return JsonChecker(text).run(error);
}

bool
jsonFileValid(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return jsonValid(ss.str(), error);
}

} // namespace common
} // namespace mcpat
