/**
 * @file
 * Event-log implementation: level gate, sink state, record formatting.
 */

#include "common/event_log.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/instrument.hh"
#include "common/serialize.hh"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace mcpat {
namespace elog {

namespace {

/**
 * The single hot-path gate: the minimum level the sink accepts, or
 * kClosed when no sink is open.  enabled() reads only this.
 */
constexpr int kClosed = static_cast<int>(Level::Error) + 1;
std::atomic<int> g_gate{kClosed};

/** Sink state behind the gate; only touched when open/emitting. */
struct Sink
{
    std::mutex mutex;
    std::unique_ptr<std::ofstream> out;
    std::string runId;
};

Sink &
sink()
{
    static Sink *s = new Sink;  // leaked: usable during static dtors
    return *s;
}

thread_local std::string t_requestId;

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

std::int64_t
wallMillis()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

bool
parseLevel(const std::string &text, Level &out)
{
    if (text == "debug")
        out = Level::Debug;
    else if (text == "info")
        out = Level::Info;
    else if (text == "warn")
        out = Level::Warn;
    else if (text == "error")
        out = Level::Error;
    else
        return false;
    return true;
}

const char *
levelName(Level lv)
{
    switch (lv) {
      case Level::Debug:
        return "debug";
      case Level::Info:
        return "info";
      case Level::Warn:
        return "warn";
      case Level::Error:
        return "error";
    }
    return "info";
}

Field
Field::str(std::string key, std::string value)
{
    Field f;
    f.key = std::move(key);
    f.text = std::move(value);
    return f;
}

Field
Field::num(std::string key, double value)
{
    Field f;
    f.key = std::move(key);
    f.number = value;
    f.isNumber = true;
    return f;
}

bool
open(const std::string &path)
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto out = std::make_unique<std::ofstream>(
        path, std::ios::out | std::ios::trunc);
    if (!*out)
        return false;
    s.out = std::move(out);
    // Run ID: checksum of PID and wall clock — unique enough to
    // separate processes in an aggregated stream, cheap to mint.
    std::ostringstream seed;
    seed <<
#ifdef _WIN32
        _getpid()
#else
        ::getpid()
#endif
         << ":" << wallMillis();
    const std::string bytes = seed.str();
    s.runId = "0x" + common::toHex64(common::fnv1a64(
                         reinterpret_cast<const std::uint8_t *>(
                             bytes.data()),
                         bytes.size()));
    const int cur = g_gate.load(std::memory_order_relaxed);
    g_gate.store(cur == kClosed ? static_cast<int>(Level::Info) : cur,
                 std::memory_order_relaxed);
    return true;
}

void
close()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    g_gate.store(kClosed, std::memory_order_relaxed);
    if (s.out)
        s.out->flush();
    s.out.reset();
    s.runId.clear();
}

void
setLevel(Level lv)
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.out)
        g_gate.store(static_cast<int>(lv), std::memory_order_relaxed);
}

bool
enabled(Level lv)
{
    return static_cast<int>(lv) >=
           g_gate.load(std::memory_order_relaxed);
}

std::string
runId()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.runId;
}

void
emit(Level lv, const std::string &component, const std::string &event,
     const std::string &message, const std::vector<Field> &fields)
{
    if (!enabled(lv))
        return;
    // Format outside the sink lock: only the final write serializes.
    std::ostringstream line;
    line << "{\"ts_ms\": " << wallMillis() << ", \"mono_ms\": "
         << jsonNumber(instr::nowNanos() * 1e-6) << ", \"level\": \""
         << levelName(lv) << "\", \"component\": \""
         << escapeJson(component) << "\", \"event\": \""
         << escapeJson(event) << "\"";
    if (!t_requestId.empty())
        line << ", \"request\": \"" << escapeJson(t_requestId) << "\"";
    line << ", \"message\": \"" << escapeJson(message) << "\"";
    for (const Field &f : fields) {
        line << ", \"" << escapeJson(f.key) << "\": ";
        if (f.isNumber)
            line << jsonNumber(f.number);
        else
            line << "\"" << escapeJson(f.text) << "\"";
    }

    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.out)
        return;  // closed between the gate check and here
    *s.out << line.str() << ", \"run\": \"" << s.runId << "\"}\n";
    s.out->flush();  // a crash loses at most the in-flight line
}

ScopedRequestId::ScopedRequestId(const std::string &id)
    : _previous(t_requestId)
{
    t_requestId = id;
}

ScopedRequestId::~ScopedRequestId()
{
    t_requestId = _previous;
}

} // namespace elog
} // namespace mcpat
