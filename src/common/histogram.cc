/**
 * @file
 * Log-linear histogram implementation.  See histogram.hh for the
 * bucketing scheme and the determinism argument.
 */

#include "common/histogram.hh"

#include <algorithm>
#include <cmath>

namespace mcpat {
namespace instr {

namespace {

/**
 * Relaxed CAS loop applying @p pick (min or max) to an atomic double.
 * Exits early once the stored value already wins, so steady-state
 * records touch the cell with a single load.
 */
template <typename Pick>
void
atomicExtreme(std::atomic<double> &cell, double v, Pick pick)
{
    double cur = cell.load(std::memory_order_relaxed);
    while (pick(v, cur) &&
           !cell.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

int
Histogram::bucketIndex(double v)
{
    if (!(v > 0.0))
        return 0; // zero, negative, and -inf underflow; NaN filtered.
    int exp = 0;
    const double mant = std::frexp(v, &exp); // v = mant * 2^exp
    // frexp yields mant in [0.5, 1): octave k covers [2^k, 2^(k+1))
    // with k = exp - 1, split into kSubBuckets equal slices of mant.
    const int octave = (exp - 1) - kMinExp;
    if (octave < 0)
        return 1; // clamp tiny values into the first real bucket
    if (octave >= kOctaves)
        return kBuckets - 1; // clamp huge values into the last bucket
    int sub = static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(std::max(sub, 0), kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double
Histogram::bucketLowerBound(int idx)
{
    if (idx <= 0)
        return 0.0;
    const int octave = (idx - 1) / kSubBuckets;
    const int sub = (idx - 1) % kSubBuckets;
    const double base = std::ldexp(1.0, kMinExp + octave);
    return base * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double
Histogram::bucketUpperBound(int idx)
{
    if (idx <= 0)
        return bucketLowerBound(1);
    if (idx >= kBuckets - 1)
        return std::ldexp(1.0, kMinExp + kOctaves);
    return bucketLowerBound(idx + 1);
}

double
Histogram::bucketMidpoint(int idx)
{
    return 0.5 * (bucketLowerBound(idx) + bucketUpperBound(idx));
}

void
Histogram::record(double v)
{
    if (std::isnan(v))
        return;
    _counts[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    double cur = _sum.load(std::memory_order_relaxed);
    while (!_sum.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
    atomicExtreme(_min, v, [](double a, double b) { return a < b; });
    atomicExtreme(_max, v, [](double a, double b) { return a > b; });
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &c : _counts)
        total += c.load(std::memory_order_relaxed);
    return total;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t c =
            _counts[i].load(std::memory_order_relaxed);
        if (c == 0)
            continue;
        snap.buckets.emplace_back(i, c);
        snap.count += c;
    }
    const double nan = std::nan("");
    snap.sum = snap.count ? _sum.load(std::memory_order_relaxed) : 0.0;
    snap.min =
        snap.count ? _min.load(std::memory_order_relaxed) : nan;
    snap.max =
        snap.count ? _max.load(std::memory_order_relaxed) : nan;
    return snap;
}

void
Histogram::reset()
{
    for (auto &c : _counts)
        c.store(0, std::memory_order_relaxed);
    _sum.store(0.0, std::memory_order_relaxed);
    _min.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    _max.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double p) const
{
    if (count == 0)
        return std::nan("");
    p = std::min(std::max(p, 0.0), 1.0);
    // Nearest-rank: the smallest rank r (1-based) with r >= p * count.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (const auto &b : buckets) {
        seen += b.second;
        if (seen >= rank)
            return Histogram::bucketMidpoint(b.first);
    }
    return Histogram::bucketMidpoint(buckets.back().first);
}

double
HistogramSnapshot::mean() const
{
    if (count == 0)
        return std::nan("");
    return sum / static_cast<double>(count);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    std::vector<std::pair<int, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t i = 0, j = 0;
    while (i < buckets.size() || j < other.buckets.size()) {
        if (j >= other.buckets.size() ||
            (i < buckets.size() &&
             buckets[i].first < other.buckets[j].first)) {
            merged.push_back(buckets[i++]);
        } else if (i >= buckets.size() ||
                   other.buckets[j].first < buckets[i].first) {
            merged.push_back(other.buckets[j++]);
        } else {
            merged.emplace_back(buckets[i].first,
                                buckets[i].second +
                                    other.buckets[j].second);
            ++i;
            ++j;
        }
    }
    buckets = std::move(merged);
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

} // namespace instr
} // namespace mcpat
