/**
 * @file
 * POSIX implementation of the net.hh socket helpers.
 */

#include "common/net.hh"

#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mcpat {
namespace net {

namespace {

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

void
setError(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
}

} // namespace

Endpoint
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    const bool all_digits = !spec.empty() &&
        spec.find_first_not_of("0123456789") == std::string::npos;
    if (all_digits && spec.size() <= 5) {
        const unsigned long port = std::stoul(spec);
        if (port <= 65535) {
            ep.isUnix = false;
            ep.port = static_cast<std::uint16_t>(port);
            return ep;
        }
    }
    ep.isUnix = true;
    ep.path = spec;
    return ep;
}

ServerSocket::~ServerSocket()
{
    close();
}

bool
ServerSocket::listen(const Endpoint &ep, std::string *error)
{
    close();
    _isUnix = ep.isUnix;
    if (ep.isUnix) {
        sockaddr_un addr{};
        if (ep.path.size() >= sizeof(addr.sun_path)) {
            setError(error, "socket path too long: " + ep.path);
            return false;
        }
        _fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (_fd < 0) {
            setError(error, errnoString("socket"));
            return false;
        }
        ::unlink(ep.path.c_str());  // stale socket from a crashed run
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, ep.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(_fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            setError(error, errnoString(("bind " + ep.path).c_str()));
            close();
            return false;
        }
        _path = ep.path;
    } else {
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_fd < 0) {
            setError(error, errnoString("socket"));
            return false;
        }
        const int one = 1;
        ::setsockopt(_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(ep.port);
        if (::bind(_fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            setError(error, errnoString("bind"));
            close();
            return false;
        }
        socklen_t len = sizeof(addr);
        if (::getsockname(_fd, reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0)
            _port = ntohs(addr.sin_port);
    }
    if (::listen(_fd, 64) != 0) {
        setError(error, errnoString("listen"));
        close();
        return false;
    }
    return true;
}

int
ServerSocket::acceptClient(int timeout_ms)
{
    if (_fd < 0)
        return -1;
    pollfd pfd{};
    pfd.fd = _fd;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r <= 0)
        return -1;
    return ::accept(_fd, nullptr, nullptr);
}

std::string
ServerSocket::endpointName() const
{
    if (_isUnix)
        return _path;
    return "127.0.0.1:" + std::to_string(_port);
}

void
ServerSocket::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    if (_isUnix && !_path.empty()) {
        ::unlink(_path.c_str());
        _path.clear();
    }
    _port = 0;
}

Connection::~Connection()
{
    close();
}

Connection::Connection(Connection &&other) noexcept
    : _fd(other._fd), _buffer(std::move(other._buffer))
{
    other._fd = -1;
}

Connection &
Connection::operator=(Connection &&other) noexcept
{
    if (this != &other) {
        close();
        _fd = other._fd;
        _buffer = std::move(other._buffer);
        other._fd = -1;
    }
    return *this;
}

ReadStatus
Connection::readLineWait(std::string &line, int timeout_ms)
{
    for (;;) {
        const auto nl = _buffer.find('\n');
        if (nl != std::string::npos) {
            line = _buffer.substr(0, nl);
            _buffer.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        // Backstop against a peer streaming gigabytes with no newline:
        // drop the connection rather than buffer without bound.
        if (_buffer.size() > kMaxLineBytes)
            return ReadStatus::Eof;
        if (timeout_ms >= 0) {
            pollfd pfd{};
            pfd.fd = _fd;
            pfd.events = POLLIN;
            const int r = ::poll(&pfd, 1, timeout_ms);
            if (r == 0)
                return ReadStatus::Timeout;
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return ReadStatus::Eof;
            }
        }
        char chunk[4096];
        const ssize_t n = ::read(_fd, chunk, sizeof(chunk));
        if (n > 0) {
            _buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        // EOF (or error): hand back a final unterminated line once.
        if (!_buffer.empty()) {
            line.swap(_buffer);
            _buffer.clear();
            return ReadStatus::Line;
        }
        return ReadStatus::Eof;
    }
}

bool
Connection::readLine(std::string &line)
{
    return readLineWait(line, -1) == ReadStatus::Line;
}

bool
Connection::writeAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-response must
        // surface as a failed write, not a process-killing SIGPIPE
        // (the server writes to clients it does not control).
        const ssize_t n = ::send(_fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
Connection::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _buffer.clear();
}

Connection
connectTo(const Endpoint &ep, std::string *error)
{
    int fd = -1;
    if (ep.isUnix) {
        sockaddr_un addr{};
        if (ep.path.size() >= sizeof(addr.sun_path)) {
            setError(error, "socket path too long: " + ep.path);
            return Connection();
        }
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            setError(error, errnoString("socket"));
            return Connection();
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, ep.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            setError(error, errnoString(("connect " + ep.path).c_str()));
            ::close(fd);
            return Connection();
        }
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            setError(error, errnoString("socket"));
            return Connection();
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(ep.port);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            setError(error, errnoString("connect"));
            ::close(fd);
            return Connection();
        }
    }
    return Connection(fd);
}

} // namespace net
} // namespace mcpat
