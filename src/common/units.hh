/**
 * @file
 * Physical-unit helpers and constants used throughout McPAT.
 *
 * All model code works in straight SI units: meters, seconds, farads,
 * ohms, amperes, watts, joules, kelvin.  The named multipliers below
 * exist so parameter tables read like the datasheets they came from
 * (e.g. `1100 * uA / um` for an on-current density).
 */

#ifndef MCPAT_COMMON_UNITS_HH
#define MCPAT_COMMON_UNITS_HH

namespace mcpat {

// Scale prefixes.
constexpr double peta = 1e15;
constexpr double tera = 1e12;
constexpr double giga = 1e9;
constexpr double mega = 1e6;
constexpr double kilo = 1e3;
constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;
constexpr double femto = 1e-15;
constexpr double atto = 1e-18;

// Length.
constexpr double um = 1e-6;
constexpr double nm = 1e-9;
constexpr double mm = 1e-3;

// Time.
constexpr double ns = 1e-9;
constexpr double ps = 1e-12;

// Capacitance.
constexpr double fF = 1e-15;
constexpr double pF = 1e-12;

// Current.
constexpr double uA = 1e-6;
constexpr double nA = 1e-9;
constexpr double pA = 1e-12;
constexpr double mA = 1e-3;

// Energy.
constexpr double pJ = 1e-12;
constexpr double nJ = 1e-9;

// Frequency.
constexpr double MHz = 1e6;
constexpr double GHz = 1e9;

// Area.
constexpr double mm2 = 1e-6;   ///< square millimeters in m^2
constexpr double um2 = 1e-12;  ///< square micrometers in m^2

// Physical constants.
constexpr double eps0 = 8.854e-12;    ///< vacuum permittivity, F/m
constexpr double boltzmann = 1.38064852e-23;  ///< J/K
constexpr double roomTemperature = 300.0;     ///< K

} // namespace mcpat

#endif // MCPAT_COMMON_UNITS_HH
