/**
 * @file
 * Append-only checksummed journal implementation.
 */

#include "common/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/serialize.hh"

namespace mcpat {
namespace common {

namespace {

constexpr char kRecordPrefix[] = "MCPATJ1 ";
constexpr std::size_t kPrefixLen = sizeof(kRecordPrefix) - 1;
constexpr std::size_t kChecksumLen = 16;  // toHex64 output

/** write(2) the whole buffer, retrying on EINTR / partial writes. */
bool
writeFully(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

JournalWriter::~JournalWriter()
{
    close();
}

bool
JournalWriter::open(const std::string &path, bool truncate,
                    std::string *error)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot open journal '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    _fd = fd;
    _path = path;
    return true;
}

bool
JournalWriter::append(const std::string &payload)
{
    if (_fd < 0)
        return false;
    if (payload.find('\n') != std::string::npos ||
        payload.find('\r') != std::string::npos)
        return false;  // records are line-framed; refuse to corrupt

    std::string line;
    line.reserve(kPrefixLen + kChecksumLen + 2 + payload.size());
    line += kRecordPrefix;
    line += toHex64(fnv1a64(
        reinterpret_cast<const std::uint8_t *>(payload.data()),
        payload.size()));
    line += ' ';
    line += payload;
    line += '\n';

    if (!writeFully(_fd, line.data(), line.size()))
        return false;
    // One fsync per record: journal appends happen once per completed
    // work item (each worth seconds of evaluation), so durability is
    // cheap relative to what it protects.
    return ::fsync(_fd) == 0;
}

void
JournalWriter::close()
{
    if (_fd >= 0) {
        ::fsync(_fd);
        ::close(_fd);
        _fd = -1;
    }
}

JournalContents
readJournal(const std::string &path)
{
    JournalContents out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;

    std::string line;
    bool corrupt = false;
    while (std::getline(in, line)) {
        if (corrupt) {
            ++out.droppedLines;
            continue;
        }
        // Tolerate a \r\n journal copied through a CRLF filesystem.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        bool valid = line.size() >= kPrefixLen + kChecksumLen + 1 &&
                     line.compare(0, kPrefixLen, kRecordPrefix) == 0 &&
                     line[kPrefixLen + kChecksumLen] == ' ';
        if (valid) {
            const std::string stored =
                line.substr(kPrefixLen, kChecksumLen);
            const std::string payload =
                line.substr(kPrefixLen + kChecksumLen + 1);
            valid = stored ==
                toHex64(fnv1a64(reinterpret_cast<const std::uint8_t *>(
                                    payload.data()),
                                payload.size()));
            if (valid)
                out.records.push_back(payload);
        }
        if (!valid) {
            // Appends are ordered and fsync'd, so an invalid line
            // means the crash point (or foreign damage): nothing after
            // it can be trusted to be complete either.
            corrupt = true;
            out.tailCorrupt = true;
            ++out.droppedLines;
        }
    }
    // A file ending without a final newline is a truncated last
    // record; getline still yields the fragment, handled above.
    return out;
}

} // namespace common
} // namespace mcpat
