/**
 * @file
 * Error-reporting helpers, following the gem5 fatal()/panic() distinction:
 * fatal() is a user error (bad configuration), panic() is a model bug.
 */

#ifndef MCPAT_COMMON_LOGGING_HH
#define MCPAT_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcpat {

/** Thrown when a user-supplied configuration is invalid. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error("mcpat: configuration error: " + what)
    {}
};

/** Thrown when the model reaches a state that indicates an internal bug. */
class ModelError : public std::logic_error
{
  public:
    explicit ModelError(const std::string &what)
        : std::logic_error("mcpat: internal model error: " + what)
    {}
};

/**
 * Raise a ConfigError when a user-visible precondition fails.
 *
 * @param cond condition that must hold
 * @param what human-readable description of what the user got wrong
 */
inline void
fatalIf(bool cond, const std::string &what)
{
    if (cond)
        throw ConfigError(what);
}

/**
 * Raise a ModelError when an internal invariant fails.
 */
inline void
panicIf(bool cond, const std::string &what)
{
    if (cond)
        throw ModelError(what);
}

} // namespace mcpat

#endif // MCPAT_COMMON_LOGGING_HH
