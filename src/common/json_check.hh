/**
 * @file
 * Minimal strict JSON syntax checker (RFC 8259).
 *
 * The instrumentation layer emits three JSON artifacts — the report
 * tree, Chrome trace files, and run manifests — that downstream tools
 * parse with real JSON parsers.  This validator lets tests and CI
 * assert "a conforming parser will accept this" without an external
 * dependency: it checks syntax only (no schema), rejects the things
 * hand-rolled writers most often get wrong (trailing commas, bare NaN
 * or Infinity, unescaped control characters, truncated documents), and
 * reports the byte offset of the first violation.
 */

#ifndef MCPAT_COMMON_JSON_CHECK_HH
#define MCPAT_COMMON_JSON_CHECK_HH

#include <string>

namespace mcpat {
namespace common {

/**
 * True when @p text is one complete, syntactically valid JSON value
 * (with optional surrounding whitespace).  On failure, @p error (when
 * non-null) receives a one-line description with the byte offset.
 */
bool jsonValid(const std::string &text, std::string *error = nullptr);

/**
 * Validate a JSON file on disk.  Returns false (with an explanatory
 * @p error) when the file cannot be read or does not parse.
 */
bool jsonFileValid(const std::string &path, std::string *error = nullptr);

} // namespace common
} // namespace mcpat

#endif // MCPAT_COMMON_JSON_CHECK_HH
