/**
 * @file
 * Structured event log: leveled, timestamped JSON-lines records with
 * run/request correlation IDs.
 *
 * The repo's warning story so far is free-form std::cerr text — fine
 * for a human tailing one run, useless for a fleet: you cannot grep a
 * thousand server logs for "disk cache write failures on host X
 * between t1 and t2" when the message is prose.  This module gives
 * every noteworthy event one machine-parseable line:
 *
 *   {"ts_ms": 1754650000123, "mono_ms": 4821.7, "level": "warn",
 *    "component": "array.disk_cache", "event": "write_failed",
 *    "run": "0x9f3a...", "request": "req-42",
 *    "message": "cannot write array cache record",
 *    "path": "/tmp/cache"}
 *
 * Records carry two correlation IDs.  The **run** ID is minted once
 * when the sink opens (checksummed from PID and wall clock), so lines
 * from different processes interleaved in one aggregated stream stay
 * separable.  The **request** ID is a thread-local set by
 * ScopedRequestId around server request handling (echoing the client's
 * own "id" when it sent one), so every record a request produces —
 * including warnings from deep inside the array layer — is
 * attributable to it.
 *
 * Cost model, mirroring instr::enabled(): with no sink open,
 * elog::enabled(level) is one relaxed atomic load and a compare —
 * callers gate record construction on it, so the disabled path
 * allocates nothing.  Emission is independent of the instrumentation
 * master switch: `-log_out` must not change report bytes, and
 * `-trace_out` must not start emitting log records.
 *
 * Writes are mutex-serialized and flushed per line, so a crash loses
 * at most the line being written and concurrent writers never
 * interleave partial lines.
 */

#ifndef MCPAT_COMMON_EVENT_LOG_HH
#define MCPAT_COMMON_EVENT_LOG_HH

#include <string>
#include <vector>

namespace mcpat {
namespace elog {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/** Parse "debug"/"info"/"warn"/"error"; returns false on junk. */
bool parseLevel(const std::string &text, Level &out);

/** The level's lower-case wire name. */
const char *levelName(Level lv);

/** One extra key/value in a record (string or number payload). */
struct Field
{
    std::string key;
    std::string text;     ///< string payload (used when isNumber == false)
    double number = 0.0;  ///< numeric payload
    bool isNumber = false;

    static Field str(std::string key, std::string value);
    static Field num(std::string key, double value);
};

/**
 * Open the JSON-lines sink at @p path (truncating) and mint this
 * process's run ID.  Returns false (sink stays closed) if the file
 * cannot be opened.  Reopening closes the previous sink first.
 */
bool open(const std::string &path);

/** Flush and close the sink; enabled() goes false. */
void close();

/** Drop records below @p lv (default Info). */
void setLevel(Level lv);

/**
 * Would a record at @p lv be written?  One relaxed atomic load and a
 * compare; false whenever no sink is open.  Gate field construction
 * on this at every call site.
 */
bool enabled(Level lv);

/** The run correlation ID minted at open(); empty when closed. */
std::string runId();

/**
 * Emit one record.  @p component names the subsystem
 * ("array.disk_cache"), @p event is a stable machine-readable slug
 * ("write_failed"), @p message is the human sentence, @p fields carry
 * the located context (path, key, env var).  No-op when below the
 * level or closed.
 */
void emit(Level lv, const std::string &component,
          const std::string &event, const std::string &message,
          const std::vector<Field> &fields = {});

/**
 * Bind a request correlation ID to this thread for the enclosing
 * scope (server request handling); nests by restoring the previous
 * value.  Every record emitted on the thread while bound carries the
 * ID in its "request" key.
 */
class ScopedRequestId
{
  public:
    explicit ScopedRequestId(const std::string &id);
    ~ScopedRequestId();
    ScopedRequestId(const ScopedRequestId &) = delete;
    ScopedRequestId &operator=(const ScopedRequestId &) = delete;

  private:
    std::string _previous;
};

} // namespace elog
} // namespace mcpat

#endif // MCPAT_COMMON_EVENT_LOG_HH
