/**
 * @file
 * Flight recorder: a background sampler turning the metrics registry
 * into a time series.
 *
 * End-of-run manifests answer "what did this run cost in total"; a
 * long-lived server or a multi-hour batch also needs "what was it
 * doing at minute 43".  The recorder samples the registry on a fixed
 * cadence (-record_out <csv>, -record_interval_ms) and writes one CSV
 * row per sample:
 *
 *   t_ms, mem_hit_rate, disk_hit_rate, memo_evictions, pool_tasks,
 *   queue_depth, inflight, rss_mb
 *
 * Level metrics (hit rates, queue depth, in-flight, RSS) are the
 * sampled value; monotonic totals (memo evictions, pool tasks) are
 * written as deltas since the previous row, so a spike is visible as
 * a spike rather than a slope change.  Each sample also appends
 * Chrome counter events (instr::recordTraceCounter), so a -trace_out
 * written after stop() shows queue depth and hit rate as value tracks
 * aligned under the spans in Perfetto.
 *
 * Lifecycle: start() spawns the sampler thread (named "recorder" in
 * traces); stop() wakes it, takes one final sample so short runs are
 * never empty, and joins.  Both are idempotent.  The CLI stops the
 * recorder before writing -trace_out so the final counters land in
 * the trace.  When never started, the cost is zero — no thread, no
 * sampling, nothing in the trace.
 */

#ifndef MCPAT_COMMON_FLIGHT_RECORDER_HH
#define MCPAT_COMMON_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>

namespace mcpat {
namespace instr {

class FlightRecorder
{
  public:
    static FlightRecorder &instance();

    /**
     * Open @p csvPath (truncating), write the header, and start the
     * sampler at @p intervalMs (clamped to >= 10 ms).  Returns false
     * and stays idle if the file cannot be opened; returns true
     * without restarting when already running.
     */
    bool start(const std::string &csvPath, int intervalMs);

    /** Wake the sampler, take a final sample, flush, and join. */
    void stop();

    bool running() const;

    /**
     * Rows written since start().  Lets callers (the overhead bench)
     * wait out the spawn-plus-first-sample startup transient before
     * timing against the recorder's steady state.
     */
    std::uint64_t samples() const;

    /** The CSV header row (shared with tests and docs). */
    static const char *csvHeader();

  private:
    FlightRecorder() = default;
    struct Impl;
    Impl &impl();
};

} // namespace instr
} // namespace mcpat

#endif // MCPAT_COMMON_FLIGHT_RECORDER_HH
