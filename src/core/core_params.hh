/**
 * @file
 * Architectural parameters of one core.
 *
 * Covers both in-order multithreaded cores (Niagara-class) and wide
 * out-of-order cores (Alpha 21364 / Xeon class); every sizing knob the
 * paper's core models expose is here.
 */

#ifndef MCPAT_CORE_CORE_PARAMS_HH
#define MCPAT_CORE_CORE_PARAMS_HH

#include <string>

#include "array/cache_model.hh"
#include "logic/renaming_logic.hh"

namespace mcpat {
namespace core {

using tech::Technology;

/** Branch-predictor sizing. */
struct PredictorParams
{
    int btbEntries = 2048;
    int btbTargetBits = 64;       ///< tag + target per BTB entry
    int localEntries = 1024;      ///< local history/counter table
    int localBits = 10;
    int globalEntries = 4096;     ///< global 2-bit counter table
    int chooserEntries = 4096;    ///< tournament chooser table
    int rasEntries = 16;          ///< return-address stack per thread
};

/** Architectural description of one core. */
struct CoreParams
{
    std::string name = "Core";

    bool outOfOrder = true;
    bool x86 = false;
    int threads = 1;              ///< SMT / fine-grained thread count

    double clockRate = 2.0 * GHz;
    int pipelineStages = 12;
    int datapathWidth = 64;       ///< bits
    int virtualAddressBits = 64;
    int physicalAddressBits = 42;

    int fetchWidth = 4;
    int decodeWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;

    // --- Out-of-order machinery (ignored for in-order cores). ----------
    int robEntries = 128;
    int intWindowEntries = 64;
    int fpWindowEntries = 32;
    int physIntRegs = 128;
    int physFpRegs = 128;
    logic::RatStyle ratStyle = logic::RatStyle::Ram;

    int archIntRegs = 32;
    int archFpRegs = 32;

    // --- Execution resources. -------------------------------------------
    int intAlus = 4;
    int fpus = 2;
    int muls = 1;

    // --- Memory pipeline. -------------------------------------------------
    int loadQueueEntries = 32;
    int storeQueueEntries = 32;
    int itlbEntries = 64;
    int dtlbEntries = 64;

    array::CacheParams icache;
    array::CacheParams dcache;

    PredictorParams predictor;

    /** Include a branch predictor (tiny embedded cores may drop it). */
    bool hasBranchPredictor = true;
    /** Include FP hardware (Niagara-1 shares one FPU per chip). */
    bool hasFpu = true;

    /** Per-component white-space/wiring overhead on the core area. */
    double areaOverhead = 0.15;

    /**
     * Circuit design-style factor on core dynamic power: static CMOS
     * designs ~1.8; aggressive domino/dynamic-logic designs (Alpha,
     * NetBurst) switch considerably more capacitance, ~2.5-3.
     */
    double dynamicMargin = 1.8;

    /**
     * Insert sleep transistors for core-level power gating.  Costs
     * ~4% area; idle-time leakage shrinks by the gating efficiency
     * (see CoreStats::sleepFraction for the runtime knob).  TDP
     * leakage is unaffected (TDP assumes the core is awake).
     */
    bool powerGating = false;

    CoreParams();

    /** Physical-register tag width, bits. */
    int intTagBits() const;
    int fpTagBits() const;

    void validate() const;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_CORE_PARAMS_HH
