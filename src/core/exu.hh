/**
 * @file
 * Execution unit: register files, instruction scheduler (issue windows +
 * reorder buffer), functional units, and the bypass network.
 */

#ifndef MCPAT_CORE_EXU_HH
#define MCPAT_CORE_EXU_HH

#include <memory>
#include <vector>

#include "core/activity.hh"
#include "core/core_params.hh"
#include "logic/bypass.hh"
#include "logic/functional_unit.hh"
#include "logic/scheduler_logic.hh"

namespace mcpat {
namespace core {

/**
 * The execution back end of one core.
 */
class ExecutionUnit
{
  public:
    ExecutionUnit(const CoreParams &p, const Technology &t);

    Report makeReport(const CoreStats &tdp, const CoreStats &rt) const;

    double area() const;

    /** Scheduler / regfile / bypass critical path, s. */
    double criticalPath() const;

  private:
    const CoreParams &_params;
    double _frequency;

    std::unique_ptr<array::ArrayModel> _intRegfile;
    std::unique_ptr<array::ArrayModel> _fpRegfile;

    std::unique_ptr<logic::InstructionWindow> _intWindow;
    std::unique_ptr<logic::InstructionWindow> _fpWindow;
    std::unique_ptr<array::ArrayModel> _rob;

    std::unique_ptr<logic::FunctionalUnit> _alu;
    std::unique_ptr<logic::FunctionalUnit> _fpu;
    std::unique_ptr<logic::FunctionalUnit> _mul;

    std::unique_ptr<logic::BypassNetwork> _bypass;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_EXU_HH
