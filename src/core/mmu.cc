/**
 * @file
 * MMU implementation.
 */

#include "core/mmu.hh"

#include <algorithm>

namespace mcpat {
namespace core {

using array::AccessRates;
using array::ArrayModel;
using array::ArrayParams;
using array::CellType;

MemManUnit::MemManUnit(const CoreParams &p, const Technology &t)
    : _frequency(p.clockRate)
{
    const int vpn_bits = p.virtualAddressBits - 12;  // 4 KiB pages

    ArrayParams it;
    it.name = "Instruction TLB";
    it.rows = p.itlbEntries * p.threads;
    it.bits = vpn_bits;
    it.cellType = CellType::CAM;
    it.searchPorts = 1;
    it.readPorts = 1;
    it.writePorts = 1;
    it.readWritePorts = 0;
    _itlb = std::make_unique<ArrayModel>(it, t);

    ArrayParams dt = it;
    dt.name = "Data TLB";
    dt.rows = p.dtlbEntries * p.threads;
    _dtlb = std::make_unique<ArrayModel>(dt, t);
}

Report
MemManUnit::makeReport(const CoreStats &tdp, const CoreStats &rt) const
{
    Report r;
    r.name = "Memory Management Unit";

    auto itlb_rates = [](const CoreStats &s) {
        AccessRates a;
        a.searches = s.itlbAccesses;
        a.writes = s.itlbMisses;
        return a;
    };
    auto dtlb_rates = [](const CoreStats &s) {
        AccessRates a;
        a.searches = s.dtlbAccesses;
        a.writes = s.dtlbMisses;
        return a;
    };
    r.addChild(_itlb->makeReport(_frequency, itlb_rates(tdp),
                                 itlb_rates(rt)));
    r.addChild(_dtlb->makeReport(_frequency, dtlb_rates(tdp),
                                 dtlb_rates(rt)));
    return r;
}

double
MemManUnit::area() const
{
    return _itlb->area() + _dtlb->area();
}

double
MemManUnit::criticalPath() const
{
    return std::max(_itlb->accessDelay(), _dtlb->accessDelay());
}

} // namespace core
} // namespace mcpat
