/**
 * @file
 * Per-core activity statistics: the per-cycle access rates that turn
 * per-event energies into power.
 *
 * Two vectors matter: the TDP vector (near-peak sustained activity,
 * defining thermal design power) and the runtime vector produced by a
 * performance simulator for a concrete workload.
 */

#ifndef MCPAT_CORE_ACTIVITY_HH
#define MCPAT_CORE_ACTIVITY_HH

#include "array/cache_model.hh"

namespace mcpat {
namespace core {

struct CoreParams;

/**
 * Per-cycle activity rates for one core.  All fields are events per
 * core clock cycle.
 */
struct CoreStats
{
    double fetches = 0.0;        ///< instructions fetched
    double decodes = 0.0;        ///< instructions decoded
    double renames = 0.0;        ///< instructions renamed (OoO only)
    double dispatches = 0.0;     ///< window insertions (OoO only)
    double intIssues = 0.0;      ///< INT window grants
    double fpIssues = 0.0;       ///< FP window grants
    double commits = 0.0;        ///< instructions committed

    double intOps = 0.0;         ///< ALU operations
    double fpOps = 0.0;          ///< FPU operations
    double mulOps = 0.0;         ///< multiplier operations
    double branches = 0.0;       ///< branches executed
    double bypasses = 0.0;       ///< forwarded results

    double intRegReads = 0.0;
    double intRegWrites = 0.0;
    double fpRegReads = 0.0;
    double fpRegWrites = 0.0;

    double loads = 0.0;
    double stores = 0.0;

    array::CacheRates icacheRates;
    array::CacheRates dcacheRates;

    double itlbAccesses = 0.0;
    double dtlbAccesses = 0.0;
    double itlbMisses = 0.0;
    double dtlbMisses = 0.0;

    /** Pipeline-register data activity (fraction of bits toggling). */
    double pipelineActivity = 0.3;

    /** Fraction of the clock tree left running (1 = no gating). */
    double clockGating = 1.0;

    /** Fraction of runtime the core spends power-gated (needs
     *  CoreParams::powerGating). */
    double sleepFraction = 0.0;

    /**
     * The TDP activity vector for a core configuration: the sustained
     * near-peak rates McPAT uses to compose thermal design power.
     */
    static CoreStats tdp(const CoreParams &p);

    /** Scale every rate by a factor (e.g. utilization derating). */
    CoreStats scaled(double factor) const;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_ACTIVITY_HH
