/**
 * @file
 * Load/store unit implementation.
 */

#include "core/lsu.hh"

#include <algorithm>

namespace mcpat {
namespace core {

using array::AccessRates;
using array::ArrayModel;
using array::ArrayParams;
using array::CellType;

LoadStoreUnit::LoadStoreUnit(const CoreParams &p, const Technology &t)
    : _params(p), _frequency(p.clockRate)
{
    array::CacheParams dc = p.dcache;
    dc.targetCycleTime = (dc.targetCycleTime > 0.0)
        ? dc.targetCycleTime
        : 2.0 / p.clockRate;
    _dcache = std::make_unique<array::CacheModel>(dc, t);

    // Load queue: searched by store addresses (forwarding/violation
    // checks); store queue searched by load addresses (forwarding).
    ArrayParams lq;
    lq.name = "Load Queue";
    lq.rows = p.loadQueueEntries * (p.outOfOrder ? 1 : p.threads);
    lq.bits = p.physicalAddressBits + 16;
    lq.cellType = CellType::CAM;
    lq.searchPorts = 1;
    lq.readPorts = 1;
    lq.writePorts = 1;
    lq.readWritePorts = 0;
    _loadQueue = std::make_unique<ArrayModel>(lq, t);

    ArrayParams sq = lq;
    sq.name = "Store Queue";
    sq.rows = p.storeQueueEntries * (p.outOfOrder ? 1 : p.threads);
    sq.bits = p.physicalAddressBits + p.datapathWidth;
    _storeQueue = std::make_unique<ArrayModel>(sq, t);
}

Report
LoadStoreUnit::makeReport(const CoreStats &tdp, const CoreStats &rt) const
{
    Report r;
    r.name = "Load Store Unit";

    r.addChild(_dcache->makeReport(_frequency, tdp.dcacheRates,
                                   rt.dcacheRates));

    // Every load searches the store queue; every store searches the
    // load queue; entries are written at dispatch and read at commit.
    auto lq_rates = [](const CoreStats &s) {
        AccessRates a;
        a.reads = s.loads;
        a.writes = s.loads;
        a.searches = s.stores;
        return a;
    };
    auto sq_rates = [](const CoreStats &s) {
        AccessRates a;
        a.reads = s.stores;
        a.writes = s.stores;
        a.searches = s.loads;
        return a;
    };
    r.addChild(_loadQueue->makeReport(_frequency, lq_rates(tdp),
                                      lq_rates(rt)));
    r.addChild(_storeQueue->makeReport(_frequency, sq_rates(tdp),
                                       sq_rates(rt)));
    return r;
}

double
LoadStoreUnit::area() const
{
    return _dcache->area() + _loadQueue->area() + _storeQueue->area();
}

double
LoadStoreUnit::cacheArea() const
{
    return _dcache->area();
}

double
LoadStoreUnit::criticalPath() const
{
    return std::max({_dcache->hitDelay() / 2.0,
                     _loadQueue->accessDelay(),
                     _storeQueue->accessDelay()});
}

} // namespace core
} // namespace mcpat
