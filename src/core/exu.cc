/**
 * @file
 * Execution-unit implementation.
 */

#include "core/exu.hh"

#include <algorithm>
#include <cmath>

namespace mcpat {
namespace core {

using array::AccessRates;
using array::ArrayModel;
using array::ArrayParams;
using logic::FuType;

ExecutionUnit::ExecutionUnit(const CoreParams &p, const Technology &t)
    : _params(p), _frequency(p.clockRate)
{
    // --- Register files. ----------------------------------------------
    ArrayParams irf;
    irf.name = "Integer Register File";
    irf.rows = p.outOfOrder ? p.physIntRegs : p.archIntRegs * p.threads;
    irf.bits = p.datapathWidth;
    irf.readPorts = 2 * p.issueWidth;
    irf.writePorts = p.issueWidth;
    irf.readWritePorts = 0;
    irf.targetCycleTime = 1.0 / p.clockRate;
    _intRegfile = std::make_unique<ArrayModel>(irf, t);

    if (p.hasFpu) {
        ArrayParams frf = irf;
        frf.name = "FP Register File";
        frf.rows = p.outOfOrder ? p.physFpRegs : p.archFpRegs * p.threads;
        frf.readPorts = std::max(2, 2 * p.fpus);
        frf.writePorts = std::max(1, p.fpus);
        _fpRegfile = std::make_unique<ArrayModel>(frf, t);
    }

    // --- Scheduler (OoO only). -------------------------------------------
    if (p.outOfOrder) {
        const int payload_bits = 8 + 2 * p.intTagBits() + p.intTagBits();
        _intWindow = std::make_unique<logic::InstructionWindow>(
            p.intWindowEntries, p.intTagBits(), payload_bits,
            p.issueWidth, t);
        if (p.hasFpu) {
            _fpWindow = std::make_unique<logic::InstructionWindow>(
                p.fpWindowEntries, p.fpTagBits(), payload_bits,
                std::max(1, p.fpus), t);
        }

        ArrayParams rob;
        rob.name = "Reorder Buffer";
        rob.rows = p.robEntries * p.threads;
        // PC + dest tags + exception/status bits per entry.
        rob.bits = p.virtualAddressBits + p.intTagBits() + 16;
        rob.readPorts = p.commitWidth;
        rob.writePorts = p.decodeWidth;
        rob.readWritePorts = 0;
        _rob = std::make_unique<ArrayModel>(rob, t);
    }

    // --- Functional units (replication handled in the report). ----------
    _alu = std::make_unique<logic::FunctionalUnit>(FuType::IntAlu, t);
    if (p.hasFpu)
        _fpu = std::make_unique<logic::FunctionalUnit>(FuType::Fpu, t);
    if (p.muls > 0)
        _mul = std::make_unique<logic::FunctionalUnit>(FuType::Mul, t);

    // --- Bypass network spanning the execution cluster. -----------------
    double fu_area = p.intAlus * _alu->area() +
                     (p.hasFpu ? p.fpus * _fpu->area() : 0.0) +
                     (p.muls > 0 ? p.muls * _mul->area() : 0.0) +
                     _intRegfile->area() +
                     (_fpRegfile ? _fpRegfile->area() : 0.0);
    const double span = std::sqrt(fu_area) * 2.0;
    const int producers = p.intAlus + (p.hasFpu ? p.fpus : 0) +
                          std::max(0, p.muls);
    const int consumers = 2 * producers + p.issueWidth;
    _bypass = std::make_unique<logic::BypassNetwork>(
        producers, consumers, p.datapathWidth, p.intTagBits(), span, t);
}

Report
ExecutionUnit::makeReport(const CoreStats &tdp, const CoreStats &rt) const
{
    Report r;
    r.name = "Execution Unit";

    auto irf_rates = [](const CoreStats &s) {
        return AccessRates::rw(s.intRegReads, s.intRegWrites);
    };
    r.addChild(_intRegfile->makeReport(_frequency, irf_rates(tdp),
                                       irf_rates(rt)));
    if (_fpRegfile) {
        auto frf_rates = [](const CoreStats &s) {
            return AccessRates::rw(s.fpRegReads, s.fpRegWrites);
        };
        r.addChild(_fpRegfile->makeReport(_frequency, frf_rates(tdp),
                                          frf_rates(rt)));
    }

    if (_intWindow) {
        Report sched;
        sched.name = "Instruction Scheduler";
        sched.addChild(_intWindow->makeReport(
            "Int Instruction Window", _frequency, tdp.intIssues,
            rt.intIssues));
        if (_fpWindow) {
            sched.addChild(_fpWindow->makeReport(
                "FP Instruction Window", _frequency, tdp.fpIssues,
                rt.fpIssues));
        }
        auto rob_rates = [](const CoreStats &s) {
            return AccessRates::rw(s.commits, s.dispatches);
        };
        sched.addChild(_rob->makeReport(_frequency, rob_rates(tdp),
                                        rob_rates(rt)));
        r.addChild(std::move(sched));
    }

    // Functional units: one child per type, replicated counts.
    {
        Report alu = _alu->makeReport("Integer ALUs", _frequency,
                                      tdp.intOps, rt.intOps);
        alu.area *= _params.intAlus;
        alu.subthresholdLeakage *= _params.intAlus;
        alu.gateLeakage *= _params.intAlus;
        r.addChild(std::move(alu));
    }
    if (_fpu) {
        Report fpu = _fpu->makeReport("Floating Point Units", _frequency,
                                      tdp.fpOps, rt.fpOps);
        fpu.area *= _params.fpus;
        fpu.subthresholdLeakage *= _params.fpus;
        fpu.gateLeakage *= _params.fpus;
        r.addChild(std::move(fpu));
    }
    if (_mul) {
        Report mul = _mul->makeReport("Complex ALUs (Mul/Div)",
                                      _frequency, tdp.mulOps, rt.mulOps);
        mul.area *= _params.muls;
        mul.subthresholdLeakage *= _params.muls;
        mul.gateLeakage *= _params.muls;
        r.addChild(std::move(mul));
    }

    r.addChild(_bypass->makeReport(_frequency, tdp.bypasses,
                                   rt.bypasses));
    return r;
}

double
ExecutionUnit::area() const
{
    double a = _intRegfile->area() +
               (_fpRegfile ? _fpRegfile->area() : 0.0) +
               _params.intAlus * _alu->area() +
               (_fpu ? _params.fpus * _fpu->area() : 0.0) +
               (_mul ? _params.muls * _mul->area() : 0.0) +
               _bypass->area();
    if (_intWindow) {
        a += _intWindow->area() + _rob->area();
        if (_fpWindow)
            a += _fpWindow->area();
    }
    return a;
}

double
ExecutionUnit::criticalPath() const
{
    double path = std::max(_intRegfile->accessDelay(), _bypass->delay());
    if (_intWindow)
        path = std::max(path, _intWindow->delay());
    return path;
}

} // namespace core
} // namespace mcpat
