/**
 * @file
 * Instruction-fetch unit implementation.
 */

#include "core/ifu.hh"

#include <algorithm>

namespace mcpat {
namespace core {

using array::ArrayModel;
using array::ArrayParams;
using array::AccessRates;

InstFetchUnit::InstFetchUnit(const CoreParams &p, const Technology &t)
    : _params(p), _frequency(p.clockRate)
{
    array::CacheParams ic = p.icache;
    ic.targetCycleTime = (ic.targetCycleTime > 0.0)
        ? ic.targetCycleTime
        : 2.0 / p.clockRate;  // pipelined 2-cycle L1 target
    _icache = std::make_unique<array::CacheModel>(ic, t);

    if (p.hasBranchPredictor) {
        ArrayParams btb;
        btb.name = "Branch Target Buffer";
        btb.rows = p.predictor.btbEntries;
        btb.bits = p.predictor.btbTargetBits;
        btb.flavor = t.flavor();
        _btb = std::make_unique<ArrayModel>(btb, t);

        ArrayParams lp;
        lp.name = "Local Predictor";
        lp.rows = p.predictor.localEntries;
        lp.bits = p.predictor.localBits;
        _localPredictor = std::make_unique<ArrayModel>(lp, t);

        ArrayParams gp;
        gp.name = "Global Predictor";
        gp.rows = p.predictor.globalEntries;
        gp.bits = 2;
        _globalPredictor = std::make_unique<ArrayModel>(gp, t);

        ArrayParams ch;
        ch.name = "Chooser";
        ch.rows = p.predictor.chooserEntries;
        ch.bits = 2;
        _chooser = std::make_unique<ArrayModel>(ch, t);

        ArrayParams ras;
        ras.name = "Return Address Stack";
        ras.rows = std::max(4, p.predictor.rasEntries * p.threads);
        ras.bits = p.virtualAddressBits;
        _ras = std::make_unique<ArrayModel>(ras, t);
    }

    _decoder = std::make_unique<logic::InstDecoder>(
        p.decodeWidth, p.x86, p.x86 ? 8 : 7, t);

    // Fetch buffer: two fetch-width-deep stages of instruction bytes.
    const int inst_bits = p.x86 ? 120 : 32;
    _fetchBuffer = std::make_unique<logic::PipelineRegisters>(
        2, p.fetchWidth * inst_bits * std::max(1, p.threads / 2), t);
}

Report
InstFetchUnit::makeReport(const CoreStats &tdp, const CoreStats &rt) const
{
    Report r;
    r.name = "Instruction Fetch Unit";

    r.addChild(_icache->makeReport(_frequency, tdp.icacheRates,
                                   rt.icacheRates));

    if (_btb) {
        // Every fetch group probes BTB + direction predictors; branch
        // commits update them.
        auto rates = [](const CoreStats &s) {
            return AccessRates::rw(s.icacheRates.accesses() + s.branches,
                                   s.branches * 0.5);
        };
        r.addChild(_btb->makeReport(_frequency, rates(tdp), rates(rt)));

        Report bp;
        bp.name = "Branch Predictor";
        bp.addChild(_localPredictor->makeReport(_frequency, rates(tdp),
                                                rates(rt)));
        bp.addChild(_globalPredictor->makeReport(_frequency, rates(tdp),
                                                 rates(rt)));
        bp.addChild(_chooser->makeReport(_frequency, rates(tdp),
                                         rates(rt)));
        auto ras_rates = [](const CoreStats &s) {
            // Call/return traffic ~ 15% of branches.
            return AccessRates::rw(s.branches * 0.15, s.branches * 0.15);
        };
        bp.addChild(_ras->makeReport(_frequency, ras_rates(tdp),
                                     ras_rates(rt)));
        r.addChild(std::move(bp));
    }

    r.addChild(_decoder->makeReport(_frequency, tdp.decodes, rt.decodes));
    r.addChild(_fetchBuffer->makeReport(_frequency, tdp.pipelineActivity,
                                        rt.pipelineActivity));
    return r;
}

double
InstFetchUnit::area() const
{
    double a = _icache->area() + _decoder->area() + _fetchBuffer->area();
    if (_btb) {
        a += _btb->area() + _localPredictor->area() +
             _globalPredictor->area() + _chooser->area() + _ras->area();
    }
    return a;
}

double
InstFetchUnit::cacheArea() const
{
    return _icache->area();
}

double
InstFetchUnit::criticalPath() const
{
    // The predictor + BTB must resolve in a cycle; the I-cache may be
    // pipelined over two.
    double path = _decoder->delay();
    if (_btb)
        path = std::max({path, _btb->accessDelay(),
                         _globalPredictor->accessDelay()});
    path = std::max(path, _icache->hitDelay() / 2.0);
    return path;
}

} // namespace core
} // namespace mcpat
