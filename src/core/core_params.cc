/**
 * @file
 * Core-parameter defaults and validation.
 */

#include "core/core_params.hh"

#include <cmath>

#include "common/logging.hh"

namespace mcpat {
namespace core {

CoreParams::CoreParams()
{
    icache.name = "Instruction Cache";
    icache.capacityBytes = 32 * 1024;
    icache.blockBytes = 64;
    icache.assoc = 4;
    icache.mshrs = 4;
    icache.writeBackEntries = 0;
    icache.fillBufferEntries = 2;

    dcache.name = "Data Cache";
    dcache.capacityBytes = 32 * 1024;
    dcache.blockBytes = 64;
    dcache.assoc = 4;
    dcache.mshrs = 8;
    dcache.writeBackEntries = 8;
    dcache.fillBufferEntries = 4;
}

int
CoreParams::intTagBits() const
{
    const int regs = outOfOrder ? physIntRegs : archIntRegs * threads;
    return std::max(1, static_cast<int>(std::ceil(std::log2(
        static_cast<double>(regs)))));
}

int
CoreParams::fpTagBits() const
{
    const int regs = outOfOrder ? physFpRegs : archFpRegs * threads;
    return std::max(1, static_cast<int>(std::ceil(std::log2(
        static_cast<double>(regs)))));
}

void
CoreParams::validate() const
{
    fatalIf(threads < 1, name + ": thread count must be >= 1");
    fatalIf(clockRate <= 0.0, name + ": clock rate must be positive");
    fatalIf(fetchWidth < 1 || decodeWidth < 1 || issueWidth < 1 ||
                commitWidth < 1,
            name + ": pipeline widths must be >= 1");
    fatalIf(pipelineStages < 3, name + ": pipeline too short to model");
    if (outOfOrder) {
        fatalIf(robEntries < 8, name + ": ROB too small");
        fatalIf(intWindowEntries < 2, name + ": INT window too small");
        fatalIf(physIntRegs < archIntRegs,
                name + ": fewer physical than architectural INT regs");
        fatalIf(hasFpu && physFpRegs < archFpRegs,
                name + ": fewer physical than architectural FP regs");
    }
    fatalIf(intAlus < 1, name + ": at least one ALU required");
    fatalIf(loadQueueEntries < 1 || storeQueueEntries < 1,
            name + ": load/store queues must be non-empty");
    icache.validate();
    dcache.validate();
}

} // namespace core
} // namespace mcpat
