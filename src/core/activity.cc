/**
 * @file
 * TDP activity-vector construction.
 *
 * The rates mirror the way the paper composes peak power: sustained
 * high-activity operation, not the theoretical per-structure maximum
 * (which no workload reaches simultaneously).
 */

#include "core/activity.hh"

#include <algorithm>

#include "core/core_params.hh"

namespace mcpat {
namespace core {

CoreStats
CoreStats::tdp(const CoreParams &p)
{
    CoreStats s;
    const double w = p.issueWidth;
    const double util = 0.8;  // sustained fraction of peak issue
    const double ipc = w * util;

    s.fetches = std::min<double>(p.fetchWidth, ipc * 1.1);
    s.decodes = std::min<double>(p.decodeWidth, ipc);
    s.commits = std::min<double>(p.commitWidth, ipc);

    if (p.outOfOrder) {
        s.renames = s.decodes;
        s.dispatches = s.decodes;
        s.intIssues = ipc * 0.75;
        s.fpIssues = p.hasFpu ? ipc * 0.25 : 0.0;
    }

    s.intOps = std::min<double>(p.intAlus, ipc * 0.55) ;
    s.fpOps = p.hasFpu ? std::min<double>(p.fpus, ipc * 0.25) : 0.0;
    s.mulOps = std::min<double>(p.muls, ipc * 0.05);
    s.branches = ipc * 0.15;
    s.bypasses = ipc * 0.6;

    s.intRegReads = 1.6 * (s.intOps + s.mulOps);
    s.intRegWrites = 0.8 * (s.intOps + s.mulOps);
    s.fpRegReads = 1.6 * s.fpOps;
    s.fpRegWrites = 0.8 * s.fpOps;

    s.loads = ipc * 0.22;
    s.stores = ipc * 0.12;

    // Single-thread cores amortize a fetched line over ~4 sequential
    // instructions; multithreaded cores interleave threads and probe
    // the I-cache nearly every cycle.
    const double fetch_reuse = (p.threads > 1) ? 1.5 : 4.0;
    s.icacheRates.readHits = s.fetches / fetch_reuse;
    // Small L1s shared by many threads thrash.
    const double miss_rate = std::min(0.25, 0.02 * p.threads);
    s.icacheRates.readMisses = s.icacheRates.readHits * miss_rate;
    s.dcacheRates.readHits = s.loads * (1.0 - miss_rate);
    s.dcacheRates.readMisses = s.loads * miss_rate;
    s.dcacheRates.writeHits = s.stores * (1.0 - miss_rate);
    s.dcacheRates.writeMisses = s.stores * miss_rate;

    s.itlbAccesses = s.icacheRates.accesses();
    s.dtlbAccesses = s.loads + s.stores;
    s.itlbMisses = s.itlbAccesses * 0.001;
    s.dtlbMisses = s.dtlbAccesses * 0.001;

    s.pipelineActivity = 0.35;
    s.clockGating = 1.0;
    return s;
}

CoreStats
CoreStats::scaled(double f) const
{
    CoreStats s = *this;
    s.fetches *= f;
    s.decodes *= f;
    s.renames *= f;
    s.dispatches *= f;
    s.intIssues *= f;
    s.fpIssues *= f;
    s.commits *= f;
    s.intOps *= f;
    s.fpOps *= f;
    s.mulOps *= f;
    s.branches *= f;
    s.bypasses *= f;
    s.intRegReads *= f;
    s.intRegWrites *= f;
    s.fpRegReads *= f;
    s.fpRegWrites *= f;
    s.loads *= f;
    s.stores *= f;
    s.icacheRates.readHits *= f;
    s.icacheRates.readMisses *= f;
    s.icacheRates.writeHits *= f;
    s.icacheRates.writeMisses *= f;
    s.dcacheRates.readHits *= f;
    s.dcacheRates.readMisses *= f;
    s.dcacheRates.writeHits *= f;
    s.dcacheRates.writeMisses *= f;
    s.itlbAccesses *= f;
    s.dtlbAccesses *= f;
    s.itlbMisses *= f;
    s.dtlbMisses *= f;
    s.pipelineActivity = std::min(1.0, pipelineActivity * f);
    s.sleepFraction = sleepFraction;
    return s;
}

} // namespace core
} // namespace mcpat
