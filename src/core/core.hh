/**
 * @file
 * Whole-core model: assembles IFU, renaming unit, execution unit, LSU,
 * and MMU, adds pipeline registers and the per-core clock tree, and
 * rolls up power/area/timing.
 */

#ifndef MCPAT_CORE_CORE_HH
#define MCPAT_CORE_CORE_HH

#include <memory>

#include "circuit/clock_network.hh"
#include "core/exu.hh"
#include "core/ifu.hh"
#include "core/lsu.hh"
#include "core/mmu.hh"
#include "core/renaming_unit.hh"

namespace mcpat {
namespace core {

/**
 * One processor core at a technology operating point.
 */
class Core
{
  public:
    Core(CoreParams params, const Technology &t);

    const CoreParams &params() const { return _params; }
    const Technology &tech() const { return _tech; }

    /** Core area including wiring overhead, m^2. */
    double area() const { return _area; }

    /**
     * Longest single-cycle structure path in the core, s.  McPAT's
     * timing check: the core meets its clock when this fits the period.
     */
    double criticalPath() const { return _criticalPath; }

    /** Highest clock rate the critical path supports, Hz. */
    double maxFrequency() const { return 1.0 / _criticalPath; }

    /** True when the configured clock rate passes the timing check. */
    bool meetsTiming() const
    {
        return _criticalPath <= 1.0 / _params.clockRate;
    }

    /**
     * Full hierarchical report.
     *
     * @param tdp TDP activity vector (CoreStats::tdp(params) for the
     *            standard peak-power composition)
     * @param rt  runtime activity vector from a performance model
     */
    Report makeReport(const CoreStats &tdp, const CoreStats &rt) const;

    /** Convenience: report with runtime = TDP activity. */
    Report makeTdpReport() const;

  private:
    CoreParams _params;
    Technology _tech;

    std::unique_ptr<InstFetchUnit> _ifu;
    std::unique_ptr<RenamingUnit> _renaming;
    std::unique_ptr<ExecutionUnit> _exu;
    std::unique_ptr<LoadStoreUnit> _lsu;
    std::unique_ptr<MemManUnit> _mmu;
    std::unique_ptr<logic::PipelineRegisters> _pipeline;
    std::unique_ptr<circuit::ClockNetwork> _clock;

    double _area = 0.0;
    double _criticalPath = 0.0;

    // Datapath & control glue: the synthesized logic between the
    // explicitly modeled structures (operand steering, thread select,
    // pipeline control, miscellaneous datapath), scaled from the
    // modeled logic area (see core.cc for the derivation).
    double _glueGates = 0.0;
    double _glueArea = 0.0;

    /** Latch population of the core logic; its data-toggle energy is
     *  charged in the glue block, its clock pins in the clock tree. */
    double _latchCount = 0.0;

    Report glueReport(const CoreStats &tdp, const CoreStats &rt) const;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_CORE_HH
