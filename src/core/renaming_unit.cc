/**
 * @file
 * Renaming-unit implementation.
 */

#include "core/renaming_unit.hh"

#include <algorithm>

namespace mcpat {
namespace core {

using array::AccessRates;

RenamingUnit::RenamingUnit(const CoreParams &p, const Technology &t)
    : _params(p), _frequency(p.clockRate)
{
    if (p.outOfOrder) {
        _intRat = std::make_unique<logic::Rat>(
            p.archIntRegs, p.physIntRegs, p.decodeWidth, p.threads,
            p.ratStyle, t);
        _intFreeList = std::make_unique<logic::FreeList>(
            p.physIntRegs, p.decodeWidth, t);
        if (p.hasFpu) {
            _fpRat = std::make_unique<logic::Rat>(
                p.archFpRegs, p.physFpRegs, p.decodeWidth, p.threads,
                p.ratStyle, t);
            _fpFreeList = std::make_unique<logic::FreeList>(
                p.physFpRegs, p.decodeWidth, t);
        }
        _dcl = std::make_unique<logic::DependencyCheck>(
            p.decodeWidth, p.intTagBits(), t);
    } else {
        // Scoreboard: one in-flight tag per architectural register.
        array::ArrayParams sb;
        sb.name = "Scoreboard";
        sb.rows = (p.archIntRegs + (p.hasFpu ? p.archFpRegs : 0)) *
                  p.threads;
        sb.bits = 8;
        sb.readPorts = 2 * p.issueWidth;
        sb.writePorts = p.issueWidth;
        sb.readWritePorts = 0;
        _scoreboard = std::make_unique<array::ArrayModel>(sb, t);
    }
}

Report
RenamingUnit::makeReport(const CoreStats &tdp, const CoreStats &rt) const
{
    Report r;
    r.name = "Renaming Unit";

    if (_params.outOfOrder) {
        // ~75% of renames touch the INT side.
        r.addChild(_intRat->makeReport("Int RAT", _frequency,
                                       tdp.renames * 0.75,
                                       rt.renames * 0.75));
        r.addChild(_intFreeList->makeReport(_frequency,
                                            tdp.renames * 0.75,
                                            rt.renames * 0.75));
        if (_fpRat) {
            r.addChild(_fpRat->makeReport("FP RAT", _frequency,
                                          tdp.renames * 0.25,
                                          rt.renames * 0.25));
            r.addChild(_fpFreeList->makeReport(_frequency,
                                               tdp.renames * 0.25,
                                               rt.renames * 0.25));
        }
        // One dependency-check evaluation per rename group.
        const double group_w = std::max(1, _params.decodeWidth);
        r.addChild(_dcl->makeReport(_frequency, tdp.renames / group_w,
                                    rt.renames / group_w));
    } else {
        auto rates = [](const CoreStats &s) {
            return AccessRates::rw(2.0 * s.decodes, s.commits);
        };
        r.addChild(_scoreboard->makeReport(_frequency, rates(tdp),
                                           rates(rt)));
    }
    return r;
}

double
RenamingUnit::area() const
{
    if (!_params.outOfOrder)
        return _scoreboard->area();
    double a = _intRat->area() + _intFreeList->area() + _dcl->area();
    if (_fpRat)
        a += _fpRat->area() + _fpFreeList->area();
    return a;
}

double
RenamingUnit::criticalPath() const
{
    if (!_params.outOfOrder)
        return _scoreboard->accessDelay();
    return std::max(_intRat->delay(), _dcl->delay());
}

} // namespace core
} // namespace mcpat
