/**
 * @file
 * Renaming unit: INT/FP alias tables, free lists, and the intra-group
 * dependency-check logic.  In-order cores replace all of it with a small
 * scoreboard.
 */

#ifndef MCPAT_CORE_RENAMING_UNIT_HH
#define MCPAT_CORE_RENAMING_UNIT_HH

#include <memory>

#include "core/activity.hh"
#include "core/core_params.hh"
#include "logic/dependency_check.hh"
#include "logic/renaming_logic.hh"

namespace mcpat {
namespace core {

/**
 * Register renaming for an out-of-order core, or the scoreboard of an
 * in-order core.
 */
class RenamingUnit
{
  public:
    RenamingUnit(const CoreParams &p, const Technology &t);

    Report makeReport(const CoreStats &tdp, const CoreStats &rt) const;

    double area() const;

    /** Rename-stage critical path, s. */
    double criticalPath() const;

  private:
    const CoreParams &_params;
    double _frequency;

    // Out-of-order structures.
    std::unique_ptr<logic::Rat> _intRat;
    std::unique_ptr<logic::Rat> _fpRat;
    std::unique_ptr<logic::FreeList> _intFreeList;
    std::unique_ptr<logic::FreeList> _fpFreeList;
    std::unique_ptr<logic::DependencyCheck> _dcl;

    // In-order scoreboard.
    std::unique_ptr<array::ArrayModel> _scoreboard;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_RENAMING_UNIT_HH
