/**
 * @file
 * Memory-management unit: instruction and data TLBs (fully associative
 * CAMs, the standard organization at these sizes).
 */

#ifndef MCPAT_CORE_MMU_HH
#define MCPAT_CORE_MMU_HH

#include <memory>

#include "core/activity.hh"
#include "core/core_params.hh"

namespace mcpat {
namespace core {

/**
 * The TLBs of one core.
 */
class MemManUnit
{
  public:
    MemManUnit(const CoreParams &p, const Technology &t);

    Report makeReport(const CoreStats &tdp, const CoreStats &rt) const;

    double area() const;
    double criticalPath() const;

  private:
    double _frequency;
    std::unique_ptr<array::ArrayModel> _itlb;
    std::unique_ptr<array::ArrayModel> _dtlb;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_MMU_HH
