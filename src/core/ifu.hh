/**
 * @file
 * Instruction-fetch unit: L1 I-cache, branch predictor (tournament:
 * local/global/chooser + BTB + RAS), fetch buffer, and the instruction
 * decoders.
 */

#ifndef MCPAT_CORE_IFU_HH
#define MCPAT_CORE_IFU_HH

#include <memory>

#include "core/activity.hh"
#include "core/core_params.hh"
#include "logic/inst_decoder.hh"
#include "logic/pipeline_reg.hh"

namespace mcpat {
namespace core {

/**
 * The front end of one core.
 */
class InstFetchUnit
{
  public:
    InstFetchUnit(const CoreParams &p, const Technology &t);

    Report makeReport(const CoreStats &tdp, const CoreStats &rt) const;

    double area() const;
    /** Area of the I-cache alone (excluded from glue-logic scaling). */
    double cacheArea() const;
    double clockLoad() const { return _fetchBuffer->clockLoad(); }

    /** Single-cycle-limiting path in the front end, s. */
    double criticalPath() const;

  private:
    const CoreParams &_params;
    double _frequency;

    std::unique_ptr<array::CacheModel> _icache;
    std::unique_ptr<array::ArrayModel> _btb;
    std::unique_ptr<array::ArrayModel> _localPredictor;
    std::unique_ptr<array::ArrayModel> _globalPredictor;
    std::unique_ptr<array::ArrayModel> _chooser;
    std::unique_ptr<array::ArrayModel> _ras;
    std::unique_ptr<logic::InstDecoder> _decoder;
    std::unique_ptr<logic::PipelineRegisters> _fetchBuffer;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_IFU_HH
