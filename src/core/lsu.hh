/**
 * @file
 * Load/store unit: L1 D-cache and the load/store queues (address-matching
 * CAMs, the structures behind memory disambiguation).
 */

#ifndef MCPAT_CORE_LSU_HH
#define MCPAT_CORE_LSU_HH

#include <memory>

#include "core/activity.hh"
#include "core/core_params.hh"

namespace mcpat {
namespace core {

/**
 * The memory pipeline of one core.
 */
class LoadStoreUnit
{
  public:
    LoadStoreUnit(const CoreParams &p, const Technology &t);

    Report makeReport(const CoreStats &tdp, const CoreStats &rt) const;

    double area() const;

    /** Area of the D-cache alone (excluded from glue-logic scaling). */
    double cacheArea() const;

    /** D-cache/LSQ critical path, s. */
    double criticalPath() const;

  private:
    const CoreParams &_params;
    double _frequency;

    std::unique_ptr<array::CacheModel> _dcache;
    std::unique_ptr<array::ArrayModel> _loadQueue;
    std::unique_ptr<array::ArrayModel> _storeQueue;
};

} // namespace core
} // namespace mcpat

#endif // MCPAT_CORE_LSU_HH
