/**
 * @file
 * Core assembly.
 *
 * Besides the explicitly modeled structures, a real core contains a
 * comparable volume of synthesized "glue": operand steering, pipeline
 * control, thread selection, exception datapaths.  McPAT models many of
 * these structures individually; this reproduction lumps them into one
 * glue block sized from the modeled logic area (calibrated against the
 * four validation chips), keeping cache arrays out of the scaling.
 */

#include "core/core.hh"

#include <algorithm>

#include "circuit/transistor.hh"
#include "logic/functional_unit.hh"

namespace mcpat {
namespace core {

namespace {

/**
 * Parametric glue-gate count: base pipeline control, per-issue-lane
 * steering/datapath, per-thread state machines, and out-of-order
 * recovery/control.  Coefficients calibrated against the validation
 * chips (DESIGN.md section 7).
 */
double
glueGateCount(const CoreParams &p)
{
    double gates = 110000.0 + 45000.0 * p.issueWidth +
                   15000.0 * p.threads;
    if (p.outOfOrder)
        gates += 20000.0 * p.issueWidth;
    if (p.x86)
        gates *= 1.3;  // CISC cracking/exception complexity
    return gates;
}

/** Fraction of glue gates toggling per busy cycle. */
constexpr double glueActivity = 0.18;

/** Latches per NAND2-equivalent gate of core logic (clock sinks). */
constexpr double latchesPerGate = 0.18;



} // namespace

Core::Core(CoreParams params, const Technology &t)
    : _params(std::move(params)), _tech(t)
{
    _params.validate();

    _ifu = std::make_unique<InstFetchUnit>(_params, _tech);
    _renaming = std::make_unique<RenamingUnit>(_params, _tech);
    _exu = std::make_unique<ExecutionUnit>(_params, _tech);
    _lsu = std::make_unique<LoadStoreUnit>(_params, _tech);
    _mmu = std::make_unique<MemManUnit>(_params, _tech);

    // Pipeline registers: each stage boundary latches roughly
    // issue-width instructions of datapath + control state.
    const int bits_per_stage =
        _params.issueWidth * (_params.datapathWidth + 48) *
        std::max(1, _params.threads / 2);
    _pipeline = std::make_unique<logic::PipelineRegisters>(
        _params.pipelineStages, bits_per_stage, _tech);

    // --- Glue logic: parametric gate count (see glueGateCount). ---------
    const double cache_area = _ifu->cacheArea() + _lsu->cacheArea();
    const double unit_area = _ifu->area() + _renaming->area() +
                             _exu->area() + _lsu->area() + _mmu->area() +
                             _pipeline->area();
    const double logic_area = unit_area - cache_area;
    _glueGates = glueGateCount(_params);
    _glueArea = _glueGates / 0.7 * _tech.logicGateArea();

    // Area before the clock tree (the tree must span it); sleep
    // transistors for power gating add a header-device ring.
    const double gating_overhead = _params.powerGating ? 0.04 : 0.0;
    _area = (unit_area + _glueArea) *
            (1.0 + _params.areaOverhead + gating_overhead);

    // Clock sinks: explicit pipeline flops plus the latch population of
    // the core logic (including glue).
    const circuit::Dff flop(_tech);
    const double core_gates =
        0.7 * (logic_area + _glueArea) / _tech.logicGateArea();
    _latchCount = latchesPerGate * core_gates;
    const double sink_cap = _pipeline->clockLoad() +
                            _latchCount * flop.clockC();
    _clock = std::make_unique<circuit::ClockNetwork>(_area, sink_cap,
                                                     _tech);
    _area += _clock->area();

    _criticalPath = std::max({_ifu->criticalPath(),
                              _renaming->criticalPath(),
                              _exu->criticalPath(),
                              _lsu->criticalPath(),
                              _mmu->criticalPath()});
}

Report
Core::glueReport(const CoreStats &tdp, const CoreStats &rt) const
{
    const double gate_energy = circuit::logicGateEnergy(_tech);
    const circuit::Dff flop(_tech);

    // Busy fraction approximated by commit throughput vs peak.
    const double peak_ipc = std::max(1.0, 0.8 * _params.issueWidth);
    auto dynamic = [&](const CoreStats &s) {
        const double busy = std::min(1.0, s.commits / peak_ipc);
        return (glueActivity * _glueGates * gate_energy +
                s.pipelineActivity * _latchCount * flop.dataEnergy()) *
               busy * _params.clockRate;
    };

    const logic::LogicLeakage leak =
        logic::logicBlockLeakage(_glueArea, _tech);

    Report r;
    r.name = "Datapath & Control Glue";
    r.area = _glueArea;
    r.peakDynamic = dynamic(tdp);
    r.runtimeDynamic = dynamic(rt);
    r.subthresholdLeakage = leak.subthreshold;
    r.gateLeakage = leak.gate;
    return r;
}

Report
Core::makeReport(const CoreStats &tdp, const CoreStats &rt) const
{
    const double f = _params.clockRate;

    Report r;
    r.name = _params.name;
    r.addChild(_ifu->makeReport(tdp, rt));
    r.addChild(_renaming->makeReport(tdp, rt));
    r.addChild(_exu->makeReport(tdp, rt));
    r.addChild(_lsu->makeReport(tdp, rt));
    r.addChild(_mmu->makeReport(tdp, rt));
    r.addChild(_pipeline->makeReport(f, tdp.pipelineActivity,
                                     rt.pipelineActivity));
    r.addChild(glueReport(tdp, rt));
    r.addChild(_clock->makeReport(f, rt.clockGating));

    // Report the placed area (with wiring overhead), not the bare sum.
    r.area = _area;
    r.criticalPath = _criticalPath;
    r.scaleDynamic(_params.dynamicMargin);

    // Power gating: sleep transistors cut ~90% of subthreshold leakage
    // while the core is gated (gate leakage and TDP leakage remain).
    if (_params.powerGating && rt.sleepFraction > 0.0) {
        const double sleep = std::min(1.0, rt.sleepFraction);
        r.runtimeSubthresholdLeakage =
            r.subthresholdLeakage * (1.0 - 0.9 * sleep);
    }
    return r;
}

Report
Core::makeTdpReport() const
{
    const CoreStats tdp = CoreStats::tdp(_params);
    return makeReport(tdp, tdp);
}

} // namespace core
} // namespace mcpat
