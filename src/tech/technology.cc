/**
 * @file
 * Technology operating-point logic: DVFS, temperature, and density helpers.
 */

#include "tech/technology.hh"

#include <cmath>

namespace mcpat {
namespace tech {

Technology::Technology(int node_nm, DeviceFlavor flavor, double temperature_k)
    : _node(&lookupTechNode(node_nm)),
      _flavor(flavor),
      _vdd(_node->device[static_cast<int>(flavor)].vdd),
      _temperature(temperature_k)
{
    fatalIf(temperature_k < 233.0 || temperature_k > 420.0,
            "junction temperature outside the modeled 233-420 K range");
}

const DeviceParams &
Technology::device() const
{
    return _node->device[static_cast<int>(_flavor)];
}

const DeviceParams &
Technology::device(DeviceFlavor f) const
{
    return _node->device[static_cast<int>(f)];
}

void
Technology::setVdd(double vdd)
{
    fatalIf(vdd < device().vth + 0.1,
            "DVFS supply voltage too close to Vth for the delay model");
    fatalIf(vdd > device().vdd * 1.4,
            "DVFS supply voltage more than 40% above nominal");
    _vdd = vdd;
}

double
Technology::leakageScale() const
{
    // Subthreshold leakage roughly doubles every 20 K; DIBL makes Ioff
    // approximately linear in Vdd around the nominal point.
    const double temp_factor = std::pow(2.0, (_temperature - 300.0) / 20.0);
    const double vdd_factor = _vdd / device().vdd;
    return temp_factor * vdd_factor;
}

double
Technology::gateLeakageScale() const
{
    const double v = _vdd / device().vdd;
    return v * v;
}

double
Technology::delayScale() const
{
    constexpr double alpha = 1.3;
    const double vnom = device().vdd;
    const double vth = device().vth;
    const double nominal = vnom / std::pow(vnom - vth, alpha);
    const double actual = _vdd / std::pow(_vdd - vth, alpha);
    return actual / nominal;
}

double
Technology::energyScale() const
{
    const double v = _vdd / device().vdd;
    return v * v;
}

const WireParams &
Technology::wire(WireLayer layer) const
{
    return wire(layer, _projection);
}

const WireParams &
Technology::wire(WireLayer layer, WireProjection p) const
{
    return _node->wire[static_cast<int>(layer)][static_cast<int>(p)];
}

double
Technology::sramCellArea() const
{
    const double f = _node->feature;
    return _node->sramCellAreaF2 * f * f;
}

double
Technology::camCellArea() const
{
    const double f = _node->feature;
    return _node->camCellAreaF2 * f * f;
}

double
Technology::dffArea() const
{
    const double f = _node->feature;
    return _node->dffAreaF2 * f * f;
}

double
Technology::logicGateArea() const
{
    const double f = _node->feature;
    return _node->logicGateAreaF2 * f * f;
}

} // namespace tech
} // namespace mcpat
