/**
 * @file
 * Technology-level modeling: per-node device and wire parameters.
 *
 * McPAT derives its device parameters from the ITRS roadmap (via MASTAR).
 * Neither resource is available offline, so this reproduction substitutes a
 * hand-curated, internally consistent parameter table per node and device
 * flavor with the same structure and ITRS-like scaling ratios (DESIGN.md
 * section 5).  Six generations are covered: 180, 90, 65, 45, 32 and 22 nm,
 * each with the three ITRS transistor flavors:
 *
 *  - HP   (high performance): low Vth, fast, leaky — logic in server cores;
 *  - LSTP (low standby power): high Vth, slow, ~1000x less subthreshold
 *    leakage — large caches, embedded parts;
 *  - LOP  (low operating power): low Vdd, intermediate leakage.
 *
 * Wires come in three layer classes (local / intermediate / global) under
 * two ITRS projections (aggressive / conservative), exactly as in the
 * paper's interconnect discussion.
 */

#ifndef MCPAT_TECH_TECHNOLOGY_HH
#define MCPAT_TECH_TECHNOLOGY_HH

#include <array>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"

namespace mcpat {
namespace tech {

/** ITRS transistor flavor. */
enum class DeviceFlavor { HP = 0, LSTP = 1, LOP = 2 };

/** Metal layer class for signal wires. */
enum class WireLayer { Local = 0, Intermediate = 1, Global = 2 };

/** ITRS interconnect projection. */
enum class WireProjection { Aggressive = 0, Conservative = 1 };

constexpr int numDeviceFlavors = 3;
constexpr int numWireLayers = 3;
constexpr int numWireProjections = 2;

/** Smallest / largest node the tables cover (inclusive, nm);
 *  intermediate nodes are interpolated. */
constexpr int kMinTechNode = 22;
constexpr int kMaxTechNode = 180;

/**
 * Transistor parameters for one (node, flavor) pair.
 *
 * Current densities are per meter of gate width (numerically equal to
 * uA/um); capacitances are per meter of gate width.
 */
struct DeviceParams
{
    double vdd;        ///< nominal supply voltage, V
    double vth;        ///< threshold voltage, V
    double ionN;       ///< NMOS drive current density, A/m
    double ionP;       ///< PMOS drive current density, A/m
    double ioffN;      ///< NMOS subthreshold current density at 300 K, A/m
    double ioffP;      ///< PMOS subthreshold current density at 300 K, A/m
    double igate;      ///< gate-leakage current density, A/m
    double cGate;      ///< gate capacitance per width (incl. fringe), F/m
    double cJunction;  ///< source/drain junction capacitance per width, F/m
    double fo4;        ///< fanout-of-4 inverter delay at nominal Vdd, s
};

/** Electrical parameters of one wire layer under one projection. */
struct WireParams
{
    double pitch;      ///< wire pitch, m
    double width;      ///< conductor width, m
    double thickness;  ///< conductor thickness, m
    double resPerM;    ///< resistance per length, ohm/m
    double capPerM;    ///< total capacitance per length, F/m
};

/**
 * One technology generation: devices for all flavors, wires for all
 * layer/projection pairs, and layout-density constants.
 */
struct TechNode
{
    int nodeNm;        ///< feature size, nm (e.g. 65)
    double feature;    ///< feature size, m

    std::array<DeviceParams, numDeviceFlavors> device;
    std::array<std::array<WireParams, numWireProjections>, numWireLayers>
        wire;

    // Layout densities, in multiples of F^2 (feature size squared).
    double sramCellAreaF2;   ///< 6T SRAM cell
    double camCellAreaF2;    ///< CAM cell (match + storage)
    double dffAreaF2;        ///< edge-triggered flip-flop, per bit
    double logicGateAreaF2;  ///< routed NAND2-equivalent standard cell
    double sramCellAspect;   ///< SRAM cell height / width
};

/**
 * Handle to a fully resolved technology operating point:
 * node + flavor + supply voltage + junction temperature + wire projection.
 *
 * All circuit-level code consumes this class rather than the raw tables so
 * that DVFS (setVdd) and temperature are applied in exactly one place.
 */
class Technology
{
  public:
    /**
     * @param node_nm   one of 180, 90, 65, 45, 32, 22
     * @param flavor    transistor flavor for logic in this domain
     * @param temperature_k junction temperature for leakage, K
     */
    explicit Technology(int node_nm,
                        DeviceFlavor flavor = DeviceFlavor::HP,
                        double temperature_k = 360.0);

    /** Raw per-node table (all flavors). */
    const TechNode &node() const { return *_node; }

    int nodeNm() const { return _node->nodeNm; }
    double feature() const { return _node->feature; }

    DeviceFlavor flavor() const { return _flavor; }

    /** Device parameters of the selected flavor. */
    const DeviceParams &device() const;
    /** Device parameters of an explicit flavor. */
    const DeviceParams &device(DeviceFlavor f) const;

    /** Operating supply voltage (nominal unless overridden by DVFS). */
    double vdd() const { return _vdd; }

    /**
     * Override the supply voltage (DVFS).  Must stay above Vth + 0.1 V
     * so the alpha-power delay model remains valid.
     */
    void setVdd(double vdd);

    double temperature() const { return _temperature; }
    void setTemperature(double t) { _temperature = t; }

    /**
     * Subthreshold-leakage multiplier at the current temperature and Vdd
     * relative to the table reference (300 K, nominal Vdd).
     *
     * Temperature: leakage doubles roughly every 20 K.  Voltage: DIBL makes
     * Ioff approximately linear in Vdd near nominal.
     */
    double leakageScale() const;

    /** Gate-leakage multiplier: ~quadratic in Vdd, temperature-flat. */
    double gateLeakageScale() const;

    /**
     * Gate-delay multiplier at the current Vdd relative to nominal, from
     * the alpha-power law: delay ~ Vdd / (Vdd - Vth)^alpha with alpha 1.3.
     */
    double delayScale() const;

    /** FO4 delay at the current operating point, s. */
    double fo4() const { return device().fo4 * delayScale(); }

    /** Dynamic-energy multiplier: (Vdd / Vdd_nominal)^2. */
    double energyScale() const;

    WireProjection projection() const { return _projection; }
    void setProjection(WireProjection p) { _projection = p; }

    /** Wire parameters for a layer under the active projection. */
    const WireParams &wire(WireLayer layer) const;
    const WireParams &wire(WireLayer layer, WireProjection p) const;

    // Layout-density helpers (areas in m^2).
    double sramCellArea() const;
    double camCellArea() const;
    double dffArea() const;
    double logicGateArea() const;

    /** The technology nodes available in the table. */
    static const std::vector<int> &availableNodes();

  private:
    const TechNode *_node;
    DeviceFlavor _flavor;
    double _vdd;
    double _temperature;
    WireProjection _projection = WireProjection::Aggressive;
};

/**
 * Look up the raw parameter table for a node.  Table nodes (180, 90,
 * 65, 45, 32, 22) return their entries directly; any other node inside
 * [22, 180] is interpolated between its bracketing table nodes
 * (geometric interpolation in feature size for currents, capacitances,
 * and FO4; linear for voltages) with wires recomputed from the actual
 * geometry.  Throws ConfigError outside the covered range.
 */
const TechNode &lookupTechNode(int node_nm);

} // namespace tech
} // namespace mcpat

#endif // MCPAT_TECH_TECHNOLOGY_HH
