/**
 * @file
 * Wire electrical parameters derived from layer geometry.
 *
 * Wires are modeled the CACTI/McPAT way: a layer class fixes the pitch as
 * a multiple of the feature size; resistance follows from the conductor
 * cross-section with a size-effect-corrected copper resistivity; total
 * capacitance combines sidewall coupling and plate capacitance through an
 * effective dielectric constant.  The ITRS "aggressive" projection assumes
 * low-k dielectrics and thinner barriers; "conservative" keeps higher
 * resistivity and permittivity (the paper evaluates both).
 */

#include "tech/technology.hh"

#include <cmath>

namespace mcpat {
namespace tech {

namespace {

/** Pitch in multiples of F for each layer class. */
constexpr double layerPitchF[numWireLayers] = {2.5, 4.0, 8.0};

/** Aspect ratio (thickness / width) for each layer class. */
constexpr double layerAspect[numWireLayers] = {1.8, 2.0, 2.2};

/**
 * Effective copper resistivity including barrier and surface-scattering
 * size effects, which worsen as geometries shrink.
 *
 * @param width conductor width, m
 * @param conservative use the pessimistic ITRS projection
 */
double
effectiveResistivity(double width, bool conservative)
{
    constexpr double rho_bulk = 1.8e-8;   // ohm*m, bulk copper
    // Size effect: resistivity rises roughly inversely with width below
    // ~0.4 um; the conservative projection assumes thicker barriers.
    const double size_term = 1.0 + (conservative ? 0.9 : 0.5) *
        (0.10 * um) / width;
    const double barrier = conservative ? 1.25 : 1.10;
    return rho_bulk * size_term * barrier;
}

/**
 * Dielectric constant of the inter-level dielectric.  Aggressive scaling
 * introduces low-k materials below 90 nm.
 */
double
dielectricK(int node_nm, bool conservative)
{
    double k;
    if (node_nm >= 180)
        k = 3.9;       // SiO2
    else if (node_nm >= 90)
        k = 3.3;
    else if (node_nm >= 65)
        k = 2.9;
    else if (node_nm >= 45)
        k = 2.7;
    else if (node_nm >= 32)
        k = 2.5;
    else
        k = 2.3;
    if (conservative)
        k += 0.5;      // slower low-k adoption
    return k;
}

WireParams
makeWire(int node_nm, WireLayer layer, WireProjection proj)
{
    const bool conservative = (proj == WireProjection::Conservative);
    const int li = static_cast<int>(layer);

    WireParams w;
    w.pitch = layerPitchF[li] * node_nm * nm;
    w.width = 0.5 * w.pitch;
    w.thickness = layerAspect[li] * w.width;

    const double rho = effectiveResistivity(w.width, conservative);
    w.resPerM = rho / (w.width * w.thickness);

    // Capacitance per length: two sidewall components (aspect-ratio
    // scaled) plus top/bottom plate components with fringe factor 1.15.
    const double k = dielectricK(node_nm, conservative);
    w.capPerM = 2.0 * eps0 * k * (layerAspect[li] + 1.15);
    return w;
}

} // namespace

void
fillWireParams(TechNode &node)
{
    for (int layer = 0; layer < numWireLayers; ++layer) {
        for (int proj = 0; proj < numWireProjections; ++proj) {
            node.wire[layer][proj] =
                makeWire(node.nodeNm, static_cast<WireLayer>(layer),
                         static_cast<WireProjection>(proj));
        }
    }
}

} // namespace tech
} // namespace mcpat
