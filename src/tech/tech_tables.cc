/**
 * @file
 * Per-node device parameter tables.
 *
 * CALIBRATION SURFACE.  These tables are one of the two places (with
 * logic/functional_unit.cc) holding empirical constants.  Values follow
 * ITRS-era publications: drive currents rise from ~600 uA/um at 180 nm to
 * ~1500 uA/um at 22 nm (HP flavor); HP subthreshold leakage explodes from
 * ~0.5 nA/um at 180 nm to hundreds of nA/um below 90 nm, while LSTP stays
 * near tens of pA/um at the cost of ~2x slower gates; gate leakage grows
 * until high-k/metal-gate arrives (modeled at 32/22 nm); FO4 delay tracks
 * ~0.36 ps per nm of feature size for HP devices.
 */

#include "tech/technology.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

namespace mcpat {
namespace tech {

// Implemented in wire_tables.cc.
void fillWireParams(TechNode &node);

namespace {

/**
 * Build one device flavor entry.
 *
 * @param vdd   nominal supply, V
 * @param vth   threshold, V
 * @param ion_n NMOS drive density, uA/um
 * @param ioff_n NMOS subthreshold density at 300 K, nA/um
 * @param igate gate-leakage density, nA/um
 * @param cgate gate cap per width, fF/um
 * @param cjunc junction cap per width, fF/um
 * @param fo4_ps FO4 delay, ps
 */
DeviceParams
makeDevice(double vdd, double vth, double ion_n, double ioff_n,
           double igate, double cgate, double cjunc, double fo4_ps)
{
    DeviceParams d;
    d.vdd = vdd;
    d.vth = vth;
    d.ionN = ion_n * uA / um;
    d.ionP = 0.5 * d.ionN;  // PMOS mobility penalty
    d.ioffN = ioff_n * nA / um;
    d.ioffP = d.ioffN;      // similar off currents after sizing
    d.igate = igate * nA / um;
    d.cGate = cgate * fF / um;
    d.cJunction = cjunc * fF / um;
    d.fo4 = fo4_ps * ps;
    return d;
}

TechNode
makeNode(int node_nm,
         const DeviceParams &hp,
         const DeviceParams &lstp,
         const DeviceParams &lop)
{
    TechNode n;
    n.nodeNm = node_nm;
    n.feature = node_nm * nm;
    n.device = {hp, lstp, lop};

    // Layout densities are roughly constant in F^2 across generations.
    n.sramCellAreaF2 = 146.0;   // 6T cell
    n.camCellAreaF2 = 336.0;    // storage + match/search devices
    n.dffAreaF2 = 700.0;        // scan-less edge-triggered DFF
    n.logicGateAreaF2 = 560.0;  // routed NAND2-equivalent incl. overhead
    n.sramCellAspect = 0.46;    // short, wide cells (height/width)

    fillWireParams(n);
    return n;
}

/** The full table, keyed by node.  Built once, on first use. */
const std::map<int, TechNode> &
table()
{
    static const std::map<int, TechNode> nodes = [] {
        std::map<int, TechNode> t;

        // 180 nm (aluminum-era; Alpha 21364 validation target).
        t.emplace(180, makeNode(180,
            //         vdd   vth   ion   ioff   igate cgate cjunc fo4
            makeDevice(1.70, 0.42,  600,   0.5, 0.001, 1.05, 0.90, 65.0),
            makeDevice(1.80, 0.55,  300,  0.02, 0.000, 1.05, 0.90, 120.0),
            makeDevice(1.50, 0.34,  420,   0.2, 0.000, 1.05, 0.90, 85.0)));

        // 90 nm (Niagara validation target).
        t.emplace(90, makeNode(90,
            makeDevice(1.20, 0.28, 1080, 100.0,  30.0, 1.00, 0.80, 32.0),
            makeDevice(1.20, 0.50,  480,  0.03, 0.030, 1.00, 0.80, 61.0),
            makeDevice(1.00, 0.32,  720,   4.0,   4.0, 1.00, 0.80, 42.0)));

        // 65 nm (Niagara2 and Xeon Tulsa validation targets).
        t.emplace(65, makeNode(65,
            makeDevice(1.10, 0.24, 1180, 200.0,  80.0, 0.95, 0.78, 23.0),
            makeDevice(1.20, 0.52,  520,  0.03, 0.060, 0.95, 0.78, 44.0),
            makeDevice(0.90, 0.31,  790,   5.0,   8.0, 0.95, 0.78, 30.0)));

        // 45 nm.
        t.emplace(45, makeNode(45,
            makeDevice(1.00, 0.22, 1280, 220.0, 120.0, 0.90, 0.75, 16.2),
            makeDevice(1.10, 0.50,  560,  0.04, 0.090, 0.90, 0.75, 31.0),
            makeDevice(0.80, 0.29,  840,   6.0,  12.0, 0.90, 0.75, 21.0)));

        // 32 nm (high-k/metal gate cuts gate leakage).
        t.emplace(32, makeNode(32,
            makeDevice(0.90, 0.21, 1380, 280.0,  60.0, 0.85, 0.72, 11.5),
            makeDevice(1.00, 0.48,  610,  0.05, 0.045, 0.85, 0.72, 22.0),
            makeDevice(0.70, 0.27,  900,   8.0,   6.0, 0.85, 0.72, 15.0)));

        // 22 nm (the paper's case-study node).
        t.emplace(22, makeNode(22,
            makeDevice(0.80, 0.20, 1480, 320.0,  45.0, 0.80, 0.68, 8.0),
            makeDevice(0.90, 0.45,  660,  0.06, 0.034, 0.80, 0.68, 15.3),
            makeDevice(0.65, 0.25,  960,  10.0,   4.5, 0.80, 0.68, 10.4)));

        return t;
    }();
    return nodes;
}

} // namespace

namespace {

/** log-space interpolation weight of node_nm between lo and hi. */
double
logWeight(int node_nm, int lo, int hi)
{
    return (std::log(double(node_nm)) - std::log(double(lo))) /
           (std::log(double(hi)) - std::log(double(lo)));
}

DeviceParams
interpolateDevice(const DeviceParams &lo, const DeviceParams &hi,
                  double w)
{
    auto lin = [w](double a, double b) { return a + w * (b - a); };
    auto geo = [w](double a, double b) {
        if (a <= 0.0 || b <= 0.0)
            return a + w * (b - a);
        return std::exp(std::log(a) + w * (std::log(b) - std::log(a)));
    };
    DeviceParams d;
    d.vdd = lin(lo.vdd, hi.vdd);
    d.vth = lin(lo.vth, hi.vth);
    d.ionN = geo(lo.ionN, hi.ionN);
    d.ionP = geo(lo.ionP, hi.ionP);
    d.ioffN = geo(lo.ioffN, hi.ioffN);
    d.ioffP = geo(lo.ioffP, hi.ioffP);
    d.igate = geo(lo.igate, hi.igate);
    d.cGate = lin(lo.cGate, hi.cGate);
    d.cJunction = lin(lo.cJunction, hi.cJunction);
    d.fo4 = geo(lo.fo4, hi.fo4);
    return d;
}

/** Build (and cache) an interpolated node entry. */
const TechNode &
interpolatedNode(int node_nm)
{
    // Serialize cache access: Technology objects are built concurrently
    // by the parallel evaluation engine.  std::map never invalidates
    // element references, so returned references stay valid unlocked.
    static std::mutex cache_mutex;
    static std::map<int, TechNode> cache;
    std::lock_guard<std::mutex> lock(cache_mutex);
    auto it = cache.find(node_nm);
    if (it != cache.end())
        return it->second;

    // Find the bracketing table nodes (table is ascending by key).
    const auto &t = table();
    auto hi_it = t.lower_bound(node_nm);  // first key >= node_nm
    panicIf(hi_it == t.begin() || hi_it == t.end(),
            "interpolation called outside the table range");
    auto lo_it = std::prev(hi_it);

    // Interpolation runs in *feature-size* order: the smaller node is
    // the more advanced one.
    const TechNode &small = lo_it->second;
    const TechNode &big = hi_it->second;
    const double w = logWeight(node_nm, small.nodeNm, big.nodeNm);

    TechNode n;
    n.nodeNm = node_nm;
    n.feature = node_nm * nm;
    for (int f = 0; f < numDeviceFlavors; ++f)
        n.device[f] = interpolateDevice(small.device[f], big.device[f],
                                        w);
    n.sramCellAreaF2 = small.sramCellAreaF2;
    n.camCellAreaF2 = small.camCellAreaF2;
    n.dffAreaF2 = small.dffAreaF2;
    n.logicGateAreaF2 = small.logicGateAreaF2;
    n.sramCellAspect = small.sramCellAspect;
    fillWireParams(n);  // exact geometry at the actual node
    return cache.emplace(node_nm, n).first->second;
}

} // namespace

const TechNode &
lookupTechNode(int node_nm)
{
    const auto &t = table();
    auto it = t.find(node_nm);
    if (it != t.end())
        return it->second;
    fatalIf(node_nm < kMinTechNode || node_nm > kMaxTechNode,
            "technology node " + std::to_string(node_nm) +
            " nm outside the covered " + std::to_string(kMinTechNode) +
            "-" + std::to_string(kMaxTechNode) + " nm range");
    return interpolatedNode(node_nm);
}

const std::vector<int> &
Technology::availableNodes()
{
    static const std::vector<int> nodes = [] {
        std::vector<int> v;
        for (const auto &[nm_key, node] : table())
            v.push_back(nm_key);
        std::sort(v.rbegin(), v.rend());
        return v;
    }();
    return nodes;
}

} // namespace tech
} // namespace mcpat
