/**
 * @file
 * mcpat command-line front end: XML configuration in, hierarchical
 * power/area/timing report out — mirroring the original tool's usage:
 *
 *   mcpat -infile <config.xml> [-print_level N]
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "chip/processor.hh"
#include <fstream>

#include "array/array_cache.hh"
#include "chip/invariant_audit.hh"
#include "chip/report_printer.hh"
#include "common/cancel.hh"
#include "common/event_log.hh"
#include "common/flight_recorder.hh"
#include "common/instrument.hh"
#include "common/parallel.hh"
#include "chip/report_writer.hh"
#include "chip/thermal.hh"
#include "config/gem5_stats.hh"
#include "config/xml_loader.hh"
#include "chip/component_memo.hh"
#include "common/units.hh"
#include "study/batch.hh"
#include "study/server.hh"
#include "study/sweep_search.hh"

namespace {

void
usage(const char *prog)
{
    std::cerr << "Usage: " << prog
              << " -infile <config.xml> [-print_level N]"
              << " [-json <out.json>] [-csv <out.csv>]\n"
              << "       " << prog
              << " -batch <list.txt> [-batch_out <dir>]\n"
              << "       " << prog
              << " -serve <port-or-socket-path> [-serve_workers N]\n"
              << "       " << prog
              << " -sweep_search <out-dir> [-sweep_exhaustive] "
                 "[-resume]\n"
              << "  -infile      McPAT XML configuration file\n"
              << "  -batch       evaluate every config listed in "
                 "<list.txt>\n"
              << "               (one path per line, # comments) in one "
                 "process\n"
              << "  -batch_out   directory for per-config batch reports "
                 "(default\n"
              << "               mcpat_batch)\n"
              << "  -resume      batch mode: replay the progress journal "
                 "of an\n"
              << "               interrupted run "
                 "(<batch_out>/batch_journal.jsonl),\n"
              << "               skipping completed items; outputs match "
                 "an\n"
              << "               uninterrupted run\n"
              << "  -eval_timeout_ms N  wall-clock budget per "
                 "evaluation; a\n"
              << "               blown budget fails that item/request "
                 "with a\n"
              << "               structured timeout (single-shot exits "
                 "124;\n"
              << "               batch continues; server replies 504)\n"
              << "  -serve       run as a long-running evaluation "
                 "server on a\n"
              << "               loopback TCP port (all digits) or "
                 "Unix socket\n"
              << "               path; newline-delimited JSON "
                 "requests in,\n"
              << "               one-line JSON responses out (keeps "
                 "both cache\n"
              << "               tiers warm across requests)\n"
              << "  -serve_workers  concurrent request workers "
                 "(default: the\n"
              << "               -threads / MCPAT_THREADS resolution)\n"
              << "  -serve_queue admission control: connections "
                 "allowed to\n"
              << "               wait for a worker before new ones "
                 "get a 503\n"
              << "               rejection (default 32)\n"
              << "  -sweep_search  run the case-study Pareto-frontier "
                 "search\n"
              << "               over the design grid, writing "
                 "frontier.json,\n"
              << "               points.csv, and a resumable journal "
                 "to\n"
              << "               <out-dir> (-resume replays "
                 "sweep_journal.jsonl)\n"
              << "  -sweep_exhaustive  evaluate every grid point "
                 "instead of\n"
              << "               searching (the reference the search "
                 "is graded\n"
              << "               against)\n"
              << "  -sweep_work  instructions per run for the delay "
                 "figure\n"
              << "               (default 1e12)\n"
              << "  -sweep_cores total cores per design point "
                 "(default 16)\n"
              << "  -sweep_clusters    comma list of cores-per-cluster "
                 "values\n"
              << "  -sweep_l2_mib      comma list of per-core L2 "
                 "budgets, MiB\n"
              << "  -sweep_clocks_ghz  comma list of core clocks, "
                 "GHz\n"
              << "  -strict      treat validation warnings as errors "
                 "(exit\n"
              << "               nonzero; batch items with warnings "
                 "count as\n"
              << "               failed)\n"
              << "  -permissive  report validation warnings and continue "
                 "(the\n"
              << "               default; malformed values are still "
                 "fatal)\n"
              << "  -print_level hierarchy depth to print (default 3)\n"
              << "  -json        also write the report tree as JSON\n"
              << "  -csv         also write the report tree as CSV\n"
              << "  -gem5_stats  gem5 stats.txt supplying runtime "
                 "activity\n"
              << "  -thermal R   solve the leakage/temperature fixed "
                 "point\n"
              << "               for junction-to-ambient resistance R "
                 "(K/W)\n"
              << "  -threads N   worker threads for model evaluation "
                 "(default:\n"
              << "               MCPAT_THREADS env var, else hardware "
                 "concurrency)\n"
              << "  -cache_dir   persist solved array models under this "
                 "directory\n"
              << "               (also: MCPAT_CACHE_DIR env var)\n"
              << "  -cache_stats print array-optimizer cache counters "
                 "for both\n"
              << "               the in-memory and on-disk tiers\n"
              << "  -trace_out   write a Chrome trace_event JSON file "
                 "of the\n"
              << "               run's phase spans (chrome://tracing, "
                 "Perfetto)\n"
              << "  -metrics_out write the run manifest JSON (per-phase "
                 "wall\n"
              << "               clock, cache/prune/pool metrics, "
                 "config\n"
              << "               checksum)\n"
              << "  -progress    one-line stderr progress updates "
                 "during\n"
              << "               batch/sweep loops (off by default)\n"
              << "  -log_out     write a structured event log "
                 "(JSON-lines,\n"
              << "               leveled records with run/request "
                 "correlation\n"
              << "               IDs) alongside the human-readable "
                 "stderr text\n"
              << "  -log_level   minimum event-log level: debug, "
                 "info, warn,\n"
              << "               or error (default info)\n"
              << "  -record_out  flight recorder: sample the metrics "
                 "registry\n"
              << "               periodically into this CSV (cache "
                 "hit rates,\n"
              << "               queue depth, in-flight count, RSS); "
                 "the same\n"
              << "               series land in -trace_out as counter "
                 "tracks\n"
              << "  -record_interval_ms  flight-recorder sampling "
                 "period\n"
              << "               (default 500, minimum 10)\n";
}

/**
 * Wall clock and trace/manifest export shared by both CLI modes; the
 * files are written after everything else so every span has closed.
 */
struct InstrumentationOutputs
{
    std::string traceOut;
    std::string metricsOut;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    bool requested() const
    {
        return !traceOut.empty() || !metricsOut.empty();
    }

    double
    wallSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    mcpat::instr::RunInfo
    runInfo(const std::string &config, bool valid) const
    {
        mcpat::instr::RunInfo info;
        info.configPath = config;
        info.configChecksum = mcpat::instr::fileChecksumHex(config);
        info.wallSeconds = wallSeconds();
        info.valid = valid;
        return info;
    }

    /** Write -trace_out and (single-run mode) -metrics_out files. */
    void
    write(const std::string &config, bool valid,
          bool write_metrics) const
    {
        // Stop the flight recorder before serializing the trace so its
        // final sample (and counter events) land in -trace_out.
        mcpat::instr::FlightRecorder::instance().stop();
        if (!traceOut.empty()) {
            std::ofstream tf(traceOut);
            if (tf) {
                mcpat::instr::writeChromeTrace(tf);
                std::cerr << "wrote " << traceOut << "\n";
            } else {
                std::cerr << "cannot write " << traceOut << "\n";
                if (mcpat::elog::enabled(mcpat::elog::Level::Warn))
                    mcpat::elog::emit(
                        mcpat::elog::Level::Warn, "cli", "trace_write_failed",
                        "cannot open -trace_out file for writing",
                        {mcpat::elog::Field::str("path", traceOut)});
            }
        }
        if (write_metrics && !metricsOut.empty()) {
            std::ofstream mf(metricsOut);
            if (mf) {
                mcpat::instr::writeRunManifest(mf,
                                               runInfo(config, valid));
                mf << "\n";
                std::cerr << "wrote " << metricsOut << "\n";
            } else {
                std::cerr << "cannot write " << metricsOut << "\n";
                if (mcpat::elog::enabled(mcpat::elog::Level::Warn))
                    mcpat::elog::emit(
                        mcpat::elog::Level::Warn, "cli",
                        "metrics_write_failed",
                        "cannot open -metrics_out file for writing",
                        {mcpat::elog::Field::str("path", metricsOut)});
            }
        }
    }
};

/// Parse a numeric flag value, exiting with a clear error (rather than
/// an uncaught std::invalid_argument) on garbage like `-threads abc`.
double
numericArg(const char *flag, const char *value)
{
    try {
        std::size_t consumed = 0;
        const double v = std::stod(value, &consumed);
        if (consumed != std::strlen(value))
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        std::cerr << flag << " expects a number, got '" << value << "'\n";
        std::exit(1);
    }
}

/// Parse a comma-separated numeric list ("1,1.5,2"), with the same
/// fail-fast behavior as numericArg.
std::vector<double>
numericListArg(const char *flag, const char *value)
{
    std::vector<double> out;
    std::istringstream is(value);
    std::string item;
    while (std::getline(is, item, ','))
        out.push_back(numericArg(flag, item.c_str()));
    if (out.empty()) {
        std::cerr << flag << " expects a comma-separated list, got '"
                  << value << "'\n";
        std::exit(1);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string infile;
    std::string batch_list;
    std::string serve_endpoint;
    std::string sweep_dir;
    bool sweep_exhaustive = false;
    double sweep_work = 1.0e12;
    int sweep_cores = 0;
    std::vector<double> sweep_clusters;
    std::vector<double> sweep_l2_mib;
    std::vector<double> sweep_clocks_ghz;
    int serve_workers = 0;
    int serve_queue = 32;
    std::string batch_out = "mcpat_batch";
    std::string json_out;
    std::string csv_out;
    std::string gem5_stats;
    std::string cache_dir;
    double thermal_rth = 0.0;
    int print_level = 3;
    bool cache_stats = false;
    bool strict = false;
    bool resume = false;
    double eval_timeout_ms = 0.0;
    std::string log_out;
    mcpat::elog::Level log_level = mcpat::elog::Level::Info;
    std::string record_out;
    int record_interval_ms = 500;
    InstrumentationOutputs instrumentation;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-infile") == 0 && i + 1 < argc) {
            infile = argv[++i];
        } else if (std::strcmp(argv[i], "-batch") == 0 && i + 1 < argc) {
            batch_list = argv[++i];
        } else if (std::strcmp(argv[i], "-batch_out") == 0 &&
                   i + 1 < argc) {
            batch_out = argv[++i];
        } else if (std::strcmp(argv[i], "-serve") == 0 && i + 1 < argc) {
            serve_endpoint = argv[++i];
        } else if (std::strcmp(argv[i], "-sweep_search") == 0 &&
                   i + 1 < argc) {
            sweep_dir = argv[++i];
        } else if (std::strcmp(argv[i], "-sweep_exhaustive") == 0) {
            sweep_exhaustive = true;
        } else if (std::strcmp(argv[i], "-sweep_work") == 0 &&
                   i + 1 < argc) {
            sweep_work = numericArg("-sweep_work", argv[++i]);
        } else if (std::strcmp(argv[i], "-sweep_cores") == 0 &&
                   i + 1 < argc) {
            sweep_cores = static_cast<int>(
                numericArg("-sweep_cores", argv[++i]));
        } else if (std::strcmp(argv[i], "-sweep_clusters") == 0 &&
                   i + 1 < argc) {
            sweep_clusters =
                numericListArg("-sweep_clusters", argv[++i]);
        } else if (std::strcmp(argv[i], "-sweep_l2_mib") == 0 &&
                   i + 1 < argc) {
            sweep_l2_mib = numericListArg("-sweep_l2_mib", argv[++i]);
        } else if (std::strcmp(argv[i], "-sweep_clocks_ghz") == 0 &&
                   i + 1 < argc) {
            sweep_clocks_ghz =
                numericListArg("-sweep_clocks_ghz", argv[++i]);
        } else if (std::strcmp(argv[i], "-serve_workers") == 0 &&
                   i + 1 < argc) {
            serve_workers = static_cast<int>(
                numericArg("-serve_workers", argv[++i]));
        } else if (std::strcmp(argv[i], "-serve_queue") == 0 &&
                   i + 1 < argc) {
            serve_queue = static_cast<int>(
                numericArg("-serve_queue", argv[++i]));
        } else if (std::strcmp(argv[i], "-cache_dir") == 0 &&
                   i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (std::strcmp(argv[i], "-print_level") == 0 &&
                   i + 1 < argc) {
            print_level = static_cast<int>(
                numericArg("-print_level", argv[++i]));
        } else if (std::strcmp(argv[i], "-json") == 0 && i + 1 < argc) {
            json_out = argv[++i];
        } else if (std::strcmp(argv[i], "-csv") == 0 && i + 1 < argc) {
            csv_out = argv[++i];
        } else if (std::strcmp(argv[i], "-gem5_stats") == 0 &&
                   i + 1 < argc) {
            gem5_stats = argv[++i];
        } else if (std::strcmp(argv[i], "-thermal") == 0 &&
                   i + 1 < argc) {
            thermal_rth = numericArg("-thermal", argv[++i]);
        } else if (std::strcmp(argv[i], "-threads") == 0 &&
                   i + 1 < argc) {
            mcpat::parallel::setThreadCount(static_cast<int>(
                numericArg("-threads", argv[++i])));
        } else if (std::strcmp(argv[i], "-resume") == 0) {
            resume = true;
        } else if (std::strcmp(argv[i], "-eval_timeout_ms") == 0 &&
                   i + 1 < argc) {
            eval_timeout_ms = numericArg("-eval_timeout_ms", argv[++i]);
        } else if (std::strcmp(argv[i], "-strict") == 0) {
            strict = true;
        } else if (std::strcmp(argv[i], "-permissive") == 0) {
            strict = false;
        } else if (std::strcmp(argv[i], "-cache_stats") == 0) {
            cache_stats = true;
        } else if (std::strcmp(argv[i], "-trace_out") == 0 &&
                   i + 1 < argc) {
            instrumentation.traceOut = argv[++i];
        } else if (std::strcmp(argv[i], "-metrics_out") == 0 &&
                   i + 1 < argc) {
            instrumentation.metricsOut = argv[++i];
        } else if (std::strcmp(argv[i], "-log_out") == 0 &&
                   i + 1 < argc) {
            log_out = argv[++i];
        } else if (std::strcmp(argv[i], "-log_level") == 0 &&
                   i + 1 < argc) {
            if (!mcpat::elog::parseLevel(argv[++i], log_level)) {
                std::cerr << "-log_level expects debug, info, warn, or "
                             "error, got '"
                          << argv[i] << "'\n";
                return 1;
            }
        } else if (std::strcmp(argv[i], "-record_out") == 0 &&
                   i + 1 < argc) {
            record_out = argv[++i];
        } else if (std::strcmp(argv[i], "-record_interval_ms") == 0 &&
                   i + 1 < argc) {
            record_interval_ms = static_cast<int>(
                numericArg("-record_interval_ms", argv[++i]));
        } else if (std::strcmp(argv[i], "-progress") == 0) {
            mcpat::instr::setProgressEnabled(true);
        } else if (std::strcmp(argv[i], "-h") == 0 ||
                   std::strcmp(argv[i], "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown argument: " << argv[i] << "\n";
            usage(argv[0]);
            return 1;
        }
    }
    // Exactly one mode: -infile, -batch, -serve, or -sweep_search.
    const int modes = (infile.empty() ? 0 : 1) +
        (batch_list.empty() ? 0 : 1) + (serve_endpoint.empty() ? 0 : 1) +
        (sweep_dir.empty() ? 0 : 1);
    if (modes != 1) {
        usage(argv[0]);
        return 1;
    }
    if (!cache_dir.empty())
        mcpat::array::ArrayResultCache::instance().setCacheDir(cache_dir);
    // The event log is independent of the metrics master switch so
    // that -log_out alone leaves every report/manifest byte-identical.
    if (!log_out.empty()) {
        if (!mcpat::elog::open(log_out)) {
            std::cerr << "cannot write " << log_out << "\n";
            return 1;
        }
        mcpat::elog::setLevel(log_level);
    }
    if (instrumentation.requested() || !record_out.empty())
        mcpat::instr::setEnabled(true);
    if (!record_out.empty() &&
        !mcpat::instr::FlightRecorder::instance().start(
            record_out, record_interval_ms)) {
        std::cerr << "cannot write " << record_out << "\n";
        return 1;
    }

    if (!serve_endpoint.empty()) {
        mcpat::study::ServerOptions opts;
        opts.endpoint = serve_endpoint;
        opts.workers = serve_workers;
        if (serve_queue > 0)
            opts.maxQueue = static_cast<std::size_t>(serve_queue);
        opts.strictDefault = strict;
        opts.evalTimeoutMs = eval_timeout_ms;
        const int rc = mcpat::study::runServer(opts, std::cerr);
        if (cache_stats)
            mcpat::array::reportCacheStats(std::cerr);
        // Serve mode has no config file; the manifest records the
        // endpoint and whatever the registry accumulated while serving.
        instrumentation.write(serve_endpoint, rc == 0,
                              /*write_metrics=*/true);
        return rc;
    }

    if (!sweep_dir.empty()) {
        try {
            mcpat::cancel::installStopHandlers();
            std::error_code ec;
            std::filesystem::create_directories(sweep_dir, ec);

            mcpat::study::SweepSpace space =
                mcpat::study::SweepSpace::reference();
            if (sweep_cores > 0)
                space.totalCores = sweep_cores;
            if (!sweep_clusters.empty()) {
                space.clusterSizes.clear();
                for (double c : sweep_clusters)
                    space.clusterSizes.push_back(static_cast<int>(c));
            }
            if (!sweep_l2_mib.empty()) {
                space.l2BytesPerCore.clear();
                for (double m : sweep_l2_mib)
                    space.l2BytesPerCore.push_back(m * 1024 * 1024);
            }
            if (!sweep_clocks_ghz.empty()) {
                space.clockRates.clear();
                for (double g : sweep_clocks_ghz)
                    space.clockRates.push_back(g * 1.0e9);
            }

            mcpat::study::SweepSearchOptions opts;
            opts.work = sweep_work;
            opts.exhaustive = sweep_exhaustive;
            opts.journal.path = sweep_dir + "/sweep_journal.jsonl";
            opts.journal.resume = resume;
            const mcpat::study::SweepSearchResult result =
                mcpat::study::runSweepSearch(space, opts);

            mcpat::study::printSweepSearchResult(std::cout, space,
                                                 result);
            const auto memo =
                mcpat::chip::ComponentMemo::instance().stats();
            std::cout << "Component memo: " << memo.hits << " hits, "
                      << memo.misses << " misses, " << memo.entries
                      << " entries\n";

            const std::string json_path = sweep_dir + "/frontier.json";
            std::ofstream jf(json_path);
            if (!jf)
                throw mcpat::ConfigError("cannot write " + json_path);
            mcpat::study::writeSweepSearchJson(jf, space, result,
                                               sweep_work);
            std::cerr << "wrote " << json_path << "\n";

            const std::string csv_path = sweep_dir + "/points.csv";
            std::ofstream cf(csv_path);
            if (!cf)
                throw mcpat::ConfigError("cannot write " + csv_path);
            mcpat::study::writeSweepSearchCsv(cf, space, result);
            std::cerr << "wrote " << csv_path << "\n";

            if (cache_stats)
                mcpat::array::reportCacheStats(std::cerr);
            instrumentation.write(sweep_dir, /*valid=*/true,
                                  /*write_metrics=*/false);
            return 0;
        } catch (const mcpat::cancel::Cancelled &e) {
            // The journal holds every finished point; rerunning with
            // -resume replays them and continues the search.
            std::cerr << "mcpat: " << e.what()
                      << " (resume with -resume)\n";
            return e.kind() == mcpat::cancel::Kind::Timeout ? 124 : 130;
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    if (!batch_list.empty()) {
        try {
            // Orderly interruption: SIGINT/SIGTERM set the cooperative
            // stop flag (async-signal-safe), the loop flushes completed
            // results and finalizes the journal, and the exit status is
            // the conventional 128+signal so wrappers see the cause.
            mcpat::cancel::installStopHandlers();
            mcpat::study::BatchOptions opts;
            opts.outputDir = batch_out;
            opts.strict = strict;
            opts.resume = resume;
            opts.evalTimeoutMs = eval_timeout_ms;
            // Batch writes its own aggregated manifest (per-input
            // timing rows plus the registry), so hand the path down.
            opts.metricsOut = instrumentation.metricsOut;
            const mcpat::study::BatchResult res =
                mcpat::study::runBatch(batch_list, opts, std::cout);
            if (cache_stats)
                mcpat::array::reportCacheStats(std::cerr);
            if (!res.metricsPath.empty())
                std::cerr << "wrote " << res.metricsPath << "\n";
            instrumentation.write(batch_list, res.ok(),
                                  /*write_metrics=*/false);
            if (res.interruptedSignal)
                return 128 + res.interruptedSignal;
            return res.failures == 0 && !res.items.empty() ? 0 : 1;
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    // Single-shot deadline: checkpoints throughout the model layers
    // unwind to the Cancelled handler below, which exits 124 (the
    // coreutils timeout convention) instead of leaving a zombie solve.
    mcpat::cancel::CancelToken deadline;
    deadline.setDeadlineIn(eval_timeout_ms);
    mcpat::cancel::ScopedCurrent deadline_scope(&deadline);
    try {
        mcpat::config::XmlNode root;
        mcpat::config::LoadResult loaded;
        {
            MCPAT_SPAN("config_load");
            root = mcpat::config::parseXmlFile(infile);
            loaded = mcpat::config::loadSystemParams(root);
        }

        // Load-time diagnostics (surviving a non-throwing load means
        // they are all warnings) plus the cross-field consistency pass.
        {
            MCPAT_SPAN("validate");
            mcpat::DiagnosticList diags = loaded.diagnostics;
            diags.merge(loaded.system.check());
            diags.print(std::cerr);
            if (diags.hasErrors()) {
                std::cerr << "mcpat: invalid configuration: " << infile
                          << "\n";
                return 1;
            }
            if (strict && diags.hasWarnings()) {
                std::cerr << "mcpat: strict mode: " << diags.size()
                          << " warning(s) treated as errors for "
                          << infile << "\n";
                return 1;
            }
        }

        mcpat::chip::Processor proc(loaded.system);
        const mcpat::stats::ChipStats rt = gem5_stats.empty()
            ? mcpat::config::loadChipStats(root, loaded.system)
            : mcpat::config::gem5ToChipStats(
                  mcpat::config::parseGem5StatsFile(gem5_stats),
                  loaded.system);

        {
            MCPAT_SPAN("report");
            const mcpat::Report report = proc.makeReport(rt);

            // Chip-wide physical-invariant audit: surface impossible
            // figures (negative power, child sums above the parent)
            // as located diagnostics before anything is printed.
            const mcpat::DiagnosticList audit =
                mcpat::chip::auditReport(report);
            audit.print(std::cerr);
            if (strict && !audit.empty()) {
                std::cerr << "mcpat: strict mode: " << audit.size()
                          << " physical-invariant violation(s) for "
                          << infile << "\n";
                return 1;
            }

            std::cout << "McPAT (reproduction) results\n"
                      << "-----------------------------------------------"
                         "\n";
            mcpat::chip::printReport(std::cout, report, print_level);

            if (!json_out.empty()) {
                std::ofstream jf(json_out);
                if (!jf)
                    throw mcpat::ConfigError("cannot write " + json_out);
                if (mcpat::instr::enabled()) {
                    // Embed the manifest so the report is
                    // self-describing; without instrumentation flags the
                    // document stays byte-identical to previous
                    // releases.
                    const std::string manifest =
                        mcpat::instr::runManifestJson(
                            instrumentation.runInfo(infile, true), 2);
                    mcpat::chip::writeReportJson(jf, report, &manifest);
                } else {
                    mcpat::chip::writeReportJson(jf, report);
                }
                std::cerr << "wrote " << json_out << "\n";
            }
            if (!csv_out.empty()) {
                std::ofstream cf(csv_out);
                if (!cf)
                    throw mcpat::ConfigError("cannot write " + csv_out);
                mcpat::chip::writeReportCsv(cf, report);
                std::cerr << "wrote " << csv_out << "\n";
            }
            if (thermal_rth > 0.0) {
                mcpat::chip::ThermalParams env;
                env.junctionToAmbient = thermal_rth;
                const auto th =
                    mcpat::chip::solveThermal(loaded.system, env);
                std::cout
                    << "-----------------------------------------------\n"
                    << "Thermal fixed point (R = " << thermal_rth
                    << " K/W): "
                    << (th.converged ? "" : "RUNAWAY at ")
                    << th.temperature << " K, " << th.power
                    << " W (" << th.leakage << " W leakage)\n";
            }
            std::cout << "-----------------------------------------------"
                         "\n"
                      << "Core timing check: "
                      << (proc.meetsTiming() ? "PASS" : "FAIL (structure "
                         "slower than one clock; pipeline it)")
                      << "\n";
        }
        if (cache_stats)
            mcpat::array::reportCacheStats(std::cerr);
        // All spans have closed; the exported trace and manifest see
        // every phase including "report".
        instrumentation.write(infile, /*valid=*/true,
                              /*write_metrics=*/true);
        return 0;
    } catch (const mcpat::cancel::Cancelled &e) {
        std::cerr << "mcpat: " << e.what() << "\n";
        instrumentation.write(infile, /*valid=*/false,
                              /*write_metrics=*/true);
        return e.kind() == mcpat::cancel::Kind::Timeout ? 124 : 130;
    } catch (const mcpat::ValidationError &e) {
        // Per-diagnostic lines (component, key, source line), then a
        // one-line verdict for scripts grepping the tail.
        e.diagnostics().print(std::cerr);
        std::cerr << "mcpat: invalid configuration: " << infile << "\n";
        instrumentation.write(infile, /*valid=*/false,
                              /*write_metrics=*/true);
        return 1;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        instrumentation.write(infile, /*valid=*/false,
                              /*write_metrics=*/true);
        return 1;
    }
}
