/**
 * @file
 * Evaluation-server implementation: accept thread, bounded connection
 * queue, worker pool, and the newline-delimited JSON protocol.
 */

#include "study/server.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "array/array_cache.hh"
#include "common/cancel.hh"
#include "common/diagnostics.hh"
#include "common/event_log.hh"
#include "common/instrument.hh"
#include "common/json_value.hh"
#include "common/net.hh"
#include "common/parallel.hh"
#include "study/eval_core.hh"

namespace mcpat {
namespace study {

namespace {

/** Emit a JSON number, degrading non-finite values to null. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

/** Compact (single-line) diagnostics array for response embedding. */
std::string
diagnosticsOneLine(const DiagnosticList &diags)
{
    std::ostringstream os;
    os << "[";
    const auto &items = diags.items();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const Diagnostic &d = items[i];
        os << (i ? ", " : "") << "{\"severity\": \""
           << severityName(d.severity) << "\", \"component\": \""
           << jsonEscapeString(d.component) << "\", \"key\": \""
           << jsonEscapeString(d.key) << "\", \"line\": " << d.line
           << ", \"message\": \"" << jsonEscapeString(d.message)
           << "\"}";
    }
    os << "]";
    return os.str();
}

/** One located diagnostic as a compact array (malformed requests). */
std::string
requestDiagnostic(const std::string &message)
{
    DiagnosticList diags;
    diags.add(Severity::Error, "server", "request", message);
    return diagnosticsOneLine(diags);
}

/** FNV-1a over a byte string (result-cache key material). */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Result-cache key for an evaluation request: the config *bytes*
 * (re-read per request so edits to a config file invalidate its
 * entries), the source name (diagnostics and manifests embed it), and
 * the flags that change what gets rendered.  Empty when the config
 * cannot be read — such requests bypass the cache so their error
 * diagnostics reflect the current filesystem state.
 */
/** Milliseconds on the steady clock (inflight-age bookkeeping). */
std::int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
resultCacheKey(const EvalRequest &er)
{
    std::string content;
    if (!er.configXml.empty()) {
        content = er.configXml;
    } else {
        std::ifstream in(er.configPath, std::ios::binary);
        if (!in)
            return "";
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in.good() && !in.eof())
            return "";
        content = buf.str();
    }
    std::ostringstream key;
    key << std::hex << fnv1a(content) << '|' << er.configPath << '|'
        << er.strict << er.wantReportJson << er.wantReportCsv
        << er.wantManifest;
    return key.str();
}

} // namespace

struct EvalServer::Impl
{
    ServerOptions opts;
    std::ostream *log = nullptr;
    net::ServerSocket listener;

    std::thread acceptThread;
    std::thread watchdogThread;
    std::vector<std::thread> workers;

    /** An accepted connection waiting for a worker, stamped at accept
     *  time so dequeue can attribute queue wait to the first request. */
    struct PendingConn
    {
        int fd = -1;
        std::int64_t enqueuedMs = 0;
    };

    std::mutex mutex;
    std::condition_variable queueCv;
    std::condition_variable stoppedCv;
    std::deque<PendingConn> pending;  ///< awaiting a worker
    bool stopping = false;
    bool stopped = false;
    bool joined = false;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> resultHits{0};
    std::atomic<std::uint64_t> timeouts{0};

    /** Server start time (steady ms) for the health report's uptime. */
    std::int64_t startMs = 0;

    /** Latency distributions, cached once at start() so the per-
     *  request path never touches the registry's name map.  Null until
     *  start(); only recorded into when instr::enabled(). */
    instr::Histogram *requestMsHist = nullptr;
    instr::Histogram *queueWaitMsHist = nullptr;

    /**
     * Per-worker in-flight request start times (steady ms; 0 = idle),
     * written by the worker around each request and read lock-free by
     * the watchdog and the health command.
     */
    std::unique_ptr<std::atomic<std::int64_t>[]> inflightStartMs;
    std::size_t workerCount = 0;

    /** Count of busy workers and the oldest in-flight age (ms). */
    void
    inflightSnapshot(std::size_t &inflight, std::int64_t &oldest_ms)
    {
        inflight = 0;
        oldest_ms = 0;
        const std::int64_t now = steadyNowMs();
        for (std::size_t i = 0; i < workerCount; ++i) {
            const std::int64_t t0 =
                inflightStartMs[i].load(std::memory_order_relaxed);
            if (t0 > 0) {
                ++inflight;
                oldest_ms = std::max(oldest_ms, now - t0);
            }
        }
    }

    // Warmest tier: identical request -> previously rendered result.
    // Shared across all connections; FIFO eviction keeps it bounded.
    std::mutex cacheMutex;
    std::unordered_map<std::string, std::shared_ptr<const EvalResult>>
        resultCache;
    std::deque<std::string> cacheOrder;

    std::shared_ptr<const EvalResult>
    cacheLookup(const std::string &key)
    {
        if (key.empty() || !opts.maxCachedResults)
            return nullptr;
        std::lock_guard<std::mutex> lock(cacheMutex);
        const auto it = resultCache.find(key);
        return it == resultCache.end() ? nullptr : it->second;
    }

    std::size_t
    cacheSize()
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        return resultCache.size();
    }

    void
    cacheStore(const std::string &key,
               std::shared_ptr<const EvalResult> result)
    {
        if (key.empty() || !opts.maxCachedResults)
            return;
        std::lock_guard<std::mutex> lock(cacheMutex);
        if (!resultCache.emplace(key, std::move(result)).second)
            return;  // another worker raced us to it
        cacheOrder.push_back(key);
        while (resultCache.size() > opts.maxCachedResults) {
            resultCache.erase(cacheOrder.front());
            cacheOrder.pop_front();
        }
    }

    void
    logLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(logMutex);
        if (log)
            *log << "serve: " << line << "\n";
    }
    std::mutex logMutex;

    // -----------------------------------------------------------------
    // Accept loop: admission control happens here, before any worker
    // is involved, so an overloaded server's memory stays bounded by
    // maxQueue idle fds rather than growing with demand.
    // -----------------------------------------------------------------
    void
    acceptLoop()
    {
        instr::setThreadName("accept");
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (stopping)
                    break;
            }
            const int fd = listener.acceptClient(100);
            if (fd < 0)
                continue;
            bool overloaded = false;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (!stopping && pending.size() < opts.maxQueue) {
                    pending.push_back({fd, steadyNowMs()});
                } else {
                    overloaded = true;
                }
            }
            if (overloaded) {
                rejected.fetch_add(1, std::memory_order_relaxed);
                net::Connection conn(fd);
                std::ostringstream os;
                os << "{\"status\": 503, \"ok\": false, \"error\": "
                      "\"server overloaded: "
                   << opts.maxQueue
                   << " connections already queued; retry later\", "
                      "\"retry\": true}\n";
                conn.writeAll(os.str());
                logLine("rejected connection (queue full)");
                if (elog::enabled(elog::Level::Warn))
                    elog::emit(elog::Level::Warn, "study.server",
                               "connection_rejected",
                               "rejected connection (queue full)",
                               {elog::Field::num(
                                   "max_queue",
                                   static_cast<double>(
                                       opts.maxQueue))});
            } else {
                accepted.fetch_add(1, std::memory_order_relaxed);
                queueCv.notify_one();
            }
        }
        // Drain: refuse connections queued after stop with a 503 so
        // no accepted client hangs on a never-coming reply.
        std::deque<PendingConn> leftovers;
        {
            std::lock_guard<std::mutex> lock(mutex);
            leftovers.swap(pending);
        }
        for (const PendingConn &pc : leftovers) {
            net::Connection conn(pc.fd);
            conn.writeAll("{\"status\": 503, \"ok\": false, \"error\": "
                          "\"server shutting down\"}\n");
        }
        queueCv.notify_all();
    }

    // -----------------------------------------------------------------
    // Worker: serve one connection at a time, one request per line.
    // -----------------------------------------------------------------
    void
    workerLoop(std::size_t worker_index)
    {
        instr::setThreadName("serve-" + std::to_string(worker_index));
        for (;;) {
            PendingConn pc;
            {
                std::unique_lock<std::mutex> lock(mutex);
                queueCv.wait(lock, [&] {
                    return stopping || !pending.empty();
                });
                if (pending.empty())
                    return;  // stopping and drained
                pc = pending.front();
                pending.pop_front();
            }
            const std::int64_t wait_ms = steadyNowMs() - pc.enqueuedMs;
            if (instr::enabled() && queueWaitMsHist)
                queueWaitMsHist->record(
                    static_cast<double>(wait_ms));
            serveConnection(pc.fd, worker_index, wait_ms);
        }
    }

    void
    serveConnection(int fd, std::size_t worker_index,
                    std::int64_t queue_wait_ms)
    {
        net::Connection conn(fd);
        std::string line;
        bool first_request = true;
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (stopping)
                    return;
            }
            const net::ReadStatus st = conn.readLineWait(line, 200);
            if (st == net::ReadStatus::Eof)
                return;
            if (st == net::ReadStatus::Timeout)
                continue;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;  // blank keep-alive line
            inflightStartMs[worker_index].store(
                steadyNowMs(), std::memory_order_relaxed);
            const std::uint64_t t0_ns = instr::nowNanos();
            const std::string reply = handleRequest(line);
            inflightStartMs[worker_index].store(
                0, std::memory_order_relaxed);
            if (instr::enabled() && requestMsHist) {
                // End-to-end request latency as the client perceives
                // it: only the first request on a connection waited in
                // the accept queue; later ones start at their read.
                // Nanosecond timing keeps sub-millisecond commands in
                // a real bucket instead of the underflow.
                const double total_ms =
                    (instr::nowNanos() - t0_ns) * 1e-6 +
                    (first_request ? static_cast<double>(queue_wait_ms)
                                   : 0.0);
                requestMsHist->record(total_ms);
            }
            first_request = false;
            if (!conn.writeAll(reply))
                return;  // peer went away mid-reply
        }
    }

    // -----------------------------------------------------------------
    // Watchdog: cooperative deadlines do the actual unwinding; this
    // thread only *observes*, logging when a request has been in
    // flight suspiciously long (a config that dodges every checkpoint,
    // or a stuck filesystem) so operators see the hang instead of a
    // silently absent reply.
    // -----------------------------------------------------------------
    void
    watchdogLoop()
    {
        instr::setThreadName("watchdog");
        // Flag requests outliving 3x the configured deadline (or 30 s
        // when unbounded); re-warn at most every 5 s per incident.
        const std::int64_t limit_ms = opts.evalTimeoutMs > 0.0
            ? static_cast<std::int64_t>(3.0 * opts.evalTimeoutMs)
            : 30000;
        std::int64_t last_warn_ms = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                if (stoppedCv.wait_for(lock,
                                       std::chrono::milliseconds(500),
                                       [&] { return stopping; }))
                    return;
            }
            std::size_t inflight;
            std::int64_t oldest;
            inflightSnapshot(inflight, oldest);
            const std::int64_t now = steadyNowMs();
            if (oldest > limit_ms && now - last_warn_ms > 5000) {
                last_warn_ms = now;
                logLine("watchdog: a request has been in flight for " +
                        std::to_string(oldest) + " ms (limit " +
                        std::to_string(limit_ms) + " ms); " +
                        std::to_string(inflight) + " worker(s) busy");
                if (elog::enabled(elog::Level::Warn))
                    elog::emit(
                        elog::Level::Warn, "study.server",
                        "request_overdue",
                        "a request has been in flight past the "
                        "watchdog limit",
                        {elog::Field::num(
                             "inflight_ms",
                             static_cast<double>(oldest)),
                         elog::Field::num(
                             "limit_ms",
                             static_cast<double>(limit_ms)),
                         elog::Field::num(
                             "busy_workers",
                             static_cast<double>(inflight))});
            }
        }
    }

    /** Parse and dispatch one request line; returns the reply line. */
    std::string
    handleRequest(const std::string &line)
    {
        common::JsonValue req;
        std::string parse_error;
        if (!common::jsonParse(line, req, &parse_error)) {
            malformed.fetch_add(1, std::memory_order_relaxed);
            return "{\"status\": 400, \"ok\": false, \"error\": "
                   "\"malformed request: " +
                   jsonEscapeString(parse_error) +
                   "\", \"diagnostics\": " +
                   requestDiagnostic("request is not valid JSON: " +
                                     parse_error) +
                   "}\n";
        }
        if (!req.isObject()) {
            malformed.fetch_add(1, std::memory_order_relaxed);
            return "{\"status\": 400, \"ok\": false, \"error\": "
                   "\"request must be a JSON object\", "
                   "\"diagnostics\": " +
                   requestDiagnostic("request must be a JSON object") +
                   "}\n";
        }

        // Bind the client's "id" to this thread so every event-log
        // record this request produces — including warnings from deep
        // inside the model layers — carries it.
        elog::ScopedRequestId rid(req.getString("id"));

        const std::string cmd = req.getString("cmd");
        if (!cmd.empty())
            return handleCommand(cmd, req);
        return handleEval(req);
    }

    /**
     * Request-latency percentiles from the registry histogram, as a
     * JSON fragment for health/stats replies.  Empty string when
     * instrumentation is off (replies must stay byte-identical) or
     * nothing has been recorded yet.
     */
    std::string
    latencyBlock()
    {
        if (!instr::enabled() || !requestMsHist)
            return "";
        const instr::HistogramSnapshot snap = requestMsHist->snapshot();
        if (snap.count == 0)
            return "";
        std::ostringstream os;
        os << ", \"latency_ms\": {\"count\": " << snap.count
           << ", \"p50\": ";
        jsonNumber(os, snap.quantile(0.50));
        os << ", \"p95\": ";
        jsonNumber(os, snap.quantile(0.95));
        os << ", \"p99\": ";
        jsonNumber(os, snap.quantile(0.99));
        os << "}";
        return os.str();
    }

    std::string
    handleCommand(const std::string &cmd, const common::JsonValue &req)
    {
        if (cmd == "ping") {
            served.fetch_add(1, std::memory_order_relaxed);
            return "{\"status\": 200, \"ok\": true, \"pong\": true}\n";
        }
        if (cmd == "stats") {
            served.fetch_add(1, std::memory_order_relaxed);
            const array::ArrayCacheStats cache =
                array::ArrayResultCache::instance().stats();
            std::size_t depth;
            {
                std::lock_guard<std::mutex> lock(mutex);
                depth = pending.size();
            }
            std::ostringstream os;
            os << "{\"status\": 200, \"ok\": true, \"stats\": {"
               << "\"accepted\": " << accepted.load()
               << ", \"rejected\": " << rejected.load()
               << ", \"served\": " << served.load()
               << ", \"failed\": " << failed.load()
               << ", \"malformed\": " << malformed.load()
               << ", \"timeouts\": " << timeouts.load()
               << ", \"queue_depth\": " << depth
               << ", \"workers\": " << workers.size()
               << ", \"result_cache_hits\": " << resultHits.load()
               << ", \"result_cache_size\": " << cacheSize()
               << ", \"cache_memory_hits\": " << cache.hits
               << ", \"cache_memory_misses\": " << cache.misses
               << ", \"cache_disk_hits\": " << cache.diskHits
               << ", \"cache_disk_misses\": " << cache.diskMisses
               << latencyBlock() << "}}\n";
            return os.str();
        }
        if (cmd == "health") {
            served.fetch_add(1, std::memory_order_relaxed);
            std::size_t depth;
            {
                std::lock_guard<std::mutex> lock(mutex);
                depth = pending.size();
            }
            std::size_t inflight;
            std::int64_t oldest;
            inflightSnapshot(inflight, oldest);
            std::ostringstream os;
            os << "{\"status\": 200, \"ok\": true, \"health\": {"
               << "\"queue_depth\": " << depth
               << ", \"inflight\": " << inflight
               << ", \"workers\": " << workerCount
               << ", \"oldest_request_ms\": " << oldest
               << ", \"uptime_ms\": " << (steadyNowMs() - startMs)
               << ", \"timeouts\": " << timeouts.load()
               << ", \"eval_timeout_ms\": ";
            jsonNumber(os, opts.evalTimeoutMs);
            os << latencyBlock() << "}}\n";
            return os.str();
        }
        if (cmd == "sleep") {
            // Testing aid: hold this worker for N ms (bounded), so
            // overload behavior can be exercised deterministically.
            const int ms = std::min(10000, std::max(0,
                static_cast<int>(req.getNumber("ms", 100.0))));
            const auto deadline = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms);
            while (std::chrono::steady_clock::now() < deadline) {
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (stopping)
                        break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            served.fetch_add(1, std::memory_order_relaxed);
            return "{\"status\": 200, \"ok\": true, \"slept_ms\": " +
                   std::to_string(ms) + "}\n";
        }
        if (cmd == "shutdown") {
            served.fetch_add(1, std::memory_order_relaxed);
            logLine("shutdown requested");
            if (elog::enabled(elog::Level::Info))
                elog::emit(elog::Level::Info, "study.server",
                           "shutdown_requested",
                           "shutdown requested by client");
            requestStopLocked();
            return "{\"status\": 200, \"ok\": true, "
                   "\"shutting_down\": true}\n";
        }
        malformed.fetch_add(1, std::memory_order_relaxed);
        return "{\"status\": 400, \"ok\": false, \"error\": "
               "\"unknown cmd '" +
               jsonEscapeString(cmd) + "'\", \"diagnostics\": " +
               requestDiagnostic("unknown cmd '" + cmd + "'") + "}\n";
    }

    std::string
    handleEval(const common::JsonValue &req)
    {
        EvalRequest er;
        er.configPath = req.getString("config");
        er.configXml = req.getString("config_xml");
        er.strict = req.getBool("strict", opts.strictDefault);
        er.wantReportJson = req.getBool("report", true);
        er.wantReportCsv = req.getBool("csv", false);
        er.wantManifest = req.getBool("manifest", false);
        // The server's deadline is policy; a request can only tighten
        // it, never buy itself more time than the operator allowed.
        const double req_timeout = req.getNumber("timeout_ms", 0.0);
        er.timeoutMs = opts.evalTimeoutMs;
        if (req_timeout > 0.0) {
            er.timeoutMs = er.timeoutMs > 0.0
                ? std::min(er.timeoutMs, req_timeout)
                : req_timeout;
        }
        const std::string id = req.getString("id");

        if (er.configPath.empty() && er.configXml.empty()) {
            malformed.fetch_add(1, std::memory_order_relaxed);
            return "{\"status\": 400, \"ok\": false, \"error\": "
                   "\"request needs a 'config' path or 'config_xml' "
                   "text\", \"diagnostics\": " +
                   requestDiagnostic(
                       "request needs a 'config' path or "
                       "'config_xml' text") +
                   "}\n";
        }

        const std::string key = resultCacheKey(er);
        std::shared_ptr<const EvalResult> entry = cacheLookup(key);
        const bool hit = entry != nullptr;
        if (hit) {
            resultHits.fetch_add(1, std::memory_order_relaxed);
        } else {
            entry = std::make_shared<EvalResult>(evaluate(er));
            // Only successes are worth keeping: failures are cheap to
            // reproduce and their diagnostics may reflect transient
            // filesystem state.
            if (entry->ok)
                cacheStore(key, entry);
        }
        const EvalResult &result = *entry;

        // Status: 200 ok, 504 deadline exceeded, 503 unwound by server
        // shutdown, 422 invalid configuration.
        int status = 200;
        if (!result.ok)
            status = result.timedOut ? 504
                   : result.interrupted ? 503
                                        : 422;

        std::ostringstream os;
        os << "{";
        if (!id.empty())
            os << "\"id\": \"" << jsonEscapeString(id) << "\", ";
        os << "\"status\": " << status
           << ", \"ok\": " << (result.ok ? "true" : "false")
           << ", \"cached\": " << (hit ? "true" : "false");
        if (!result.ok) {
            if (result.timedOut)
                timeouts.fetch_add(1, std::memory_order_relaxed);
            else
                failed.fetch_add(1, std::memory_order_relaxed);
            os << ", \"error\": \"" << jsonEscapeString(result.error)
               << "\"";
            if (result.timedOut) {
                os << ", \"timed_out\": true, \"timeout_ms\": ";
                jsonNumber(os, er.timeoutMs);
            }
        } else {
            served.fetch_add(1, std::memory_order_relaxed);
            os << ", \"area_mm2\": ";
            jsonNumber(os, result.area * 1e6);
            os << ", \"peak_w\": ";
            jsonNumber(os, result.peakPower);
            os << ", \"runtime_w\": ";
            jsonNumber(os, result.runtimePower);
        }
        if (!result.diagnostics.empty()) {
            os << ", \"diagnostics\": "
               << diagnosticsOneLine(result.diagnostics);
        }
        os << ", \"timing_ms\": {\"load\": "
           << 1e3 * result.loadSeconds
           << ", \"assemble\": " << 1e3 * result.assembleSeconds
           << ", \"report\": " << 1e3 * result.reportSeconds
           << ", \"wall\": " << 1e3 * result.wallSeconds << "}";
        if (result.ok && !result.reportJson.empty()) {
            os << ", \"report\": \""
               << jsonEscapeString(result.reportJson) << "\"";
        }
        if (result.ok && !result.reportCsv.empty()) {
            os << ", \"csv\": \"" << jsonEscapeString(result.reportCsv)
               << "\"";
        }
        if (!result.manifestJson.empty()) {
            os << ", \"manifest\": \""
               << jsonEscapeString(result.manifestJson) << "\"";
        }
        os << "}\n";
        return os.str();
    }

    void
    requestStopLocked()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (stopping)
                return;
            stopping = true;
        }
        queueCv.notify_all();
        stoppedCv.notify_all();
    }

    /**
     * The running server, published for the queue-depth/in-flight
     * registry collector.  A mutex (not an atomic) guards it because
     * the collector dereferences the pointer: clearing it in stop()
     * must wait out a collector mid-snapshot, or the flight recorder
     * could sample a dying Impl.
     */
    static std::mutex s_activeMutex;
    static Impl *s_active;
    static void registerCollector();
};

std::mutex EvalServer::Impl::s_activeMutex;
EvalServer::Impl *EvalServer::Impl::s_active = nullptr;

void
EvalServer::Impl::registerCollector()
{
    // Registered once per process; the collector looks through
    // s_active so it follows whichever server instance is running
    // (tests start and stop many) and goes quiet between them.
    static const bool registered = [] {
        instr::Registry::instance().addCollector(
            [](instr::Registry &reg) {
                std::lock_guard<std::mutex> lock(s_activeMutex);
                Impl *im = s_active;
                if (!im)
                    return;
                std::size_t depth;
                {
                    std::lock_guard<std::mutex> qlock(im->mutex);
                    depth = im->pending.size();
                }
                std::size_t inflight;
                std::int64_t oldest;
                im->inflightSnapshot(inflight, oldest);
                reg.gauge("server.queue_depth")
                    .set(static_cast<double>(depth));
                reg.gauge("server.inflight")
                    .set(static_cast<double>(inflight));
            });
        return true;
    }();
    (void)registered;
}

EvalServer::EvalServer() : _impl(std::make_unique<Impl>()) {}

EvalServer::~EvalServer()
{
    stop();
}

bool
EvalServer::start(const ServerOptions &opts, std::ostream &log,
                  std::string *error)
{
    Impl &im = *_impl;
    im.opts = opts;
    im.log = &log;
    const net::Endpoint ep = net::parseEndpoint(opts.endpoint);
    if (!im.listener.listen(ep, error))
        return false;

    int workers = opts.workers > 0 ? opts.workers
                                   : parallel::threadCount();
    if (workers < 1)
        workers = 1;
    im.logLine("listening on " + im.listener.endpointName() + " (" +
               std::to_string(workers) + " workers, queue " +
               std::to_string(opts.maxQueue) + ")");
    if (elog::enabled(elog::Level::Info))
        elog::emit(elog::Level::Info, "study.server", "listening",
                   "evaluation server listening",
                   {elog::Field::str("endpoint",
                                     im.listener.endpointName()),
                    elog::Field::num("workers",
                                     static_cast<double>(workers)),
                    elog::Field::num(
                        "max_queue",
                        static_cast<double>(opts.maxQueue))});
    auto &registry = instr::Registry::instance();
    im.requestMsHist = &registry.histogram("server.request_ms");
    im.queueWaitMsHist = &registry.histogram("server.queue_wait_ms");
    Impl::registerCollector();
    {
        std::lock_guard<std::mutex> lock(Impl::s_activeMutex);
        Impl::s_active = &im;
    }
    im.startMs = steadyNowMs();
    im.workerCount = static_cast<std::size_t>(workers);
    im.inflightStartMs =
        std::make_unique<std::atomic<std::int64_t>[]>(im.workerCount);
    for (std::size_t i = 0; i < im.workerCount; ++i)
        im.inflightStartMs[i].store(0, std::memory_order_relaxed);
    im.acceptThread = std::thread([&im] { im.acceptLoop(); });
    im.watchdogThread = std::thread([&im] { im.watchdogLoop(); });
    im.workers.reserve(im.workerCount);
    for (std::size_t i = 0; i < im.workerCount; ++i)
        im.workers.emplace_back([&im, i] { im.workerLoop(i); });
    return true;
}

void
EvalServer::requestStop()
{
    _impl->requestStopLocked();
}

void
EvalServer::wait()
{
    Impl &im = *_impl;
    std::unique_lock<std::mutex> lock(im.mutex);
    im.stoppedCv.wait(lock, [&] { return im.stopping; });
}

bool
EvalServer::waitFor(int timeout_ms)
{
    Impl &im = *_impl;
    std::unique_lock<std::mutex> lock(im.mutex);
    return im.stoppedCv.wait_for(lock,
                                 std::chrono::milliseconds(timeout_ms),
                                 [&] { return im.stopping; });
}

void
EvalServer::stop()
{
    Impl &im = *_impl;
    im.requestStopLocked();
    bool join_here = false;
    {
        std::lock_guard<std::mutex> lock(im.mutex);
        if (!im.joined) {
            im.joined = true;
            join_here = true;
        }
    }
    if (!join_here)
        return;
    {
        // Unpublish before teardown so the registry collector can no
        // longer reach this Impl.
        std::lock_guard<std::mutex> lock(Impl::s_activeMutex);
        if (Impl::s_active == &im)
            Impl::s_active = nullptr;
    }
    if (im.acceptThread.joinable())
        im.acceptThread.join();
    if (im.watchdogThread.joinable())
        im.watchdogThread.join();
    for (auto &w : im.workers)
        if (w.joinable())
            w.join();
    im.workers.clear();
    im.listener.close();
    {
        std::lock_guard<std::mutex> lock(im.mutex);
        im.stopped = true;
    }
    im.logLine("stopped");
}

bool
EvalServer::running() const
{
    std::lock_guard<std::mutex> lock(_impl->mutex);
    return _impl->listener.listening() && !_impl->stopping;
}

std::string
EvalServer::endpointName() const
{
    return _impl->listener.endpointName();
}

std::uint16_t
EvalServer::boundPort() const
{
    return _impl->listener.boundPort();
}

ServerStats
EvalServer::stats() const
{
    ServerStats s;
    s.accepted = _impl->accepted.load(std::memory_order_relaxed);
    s.rejected = _impl->rejected.load(std::memory_order_relaxed);
    s.served = _impl->served.load(std::memory_order_relaxed);
    s.failed = _impl->failed.load(std::memory_order_relaxed);
    s.malformed = _impl->malformed.load(std::memory_order_relaxed);
    s.resultHits = _impl->resultHits.load(std::memory_order_relaxed);
    s.timeouts = _impl->timeouts.load(std::memory_order_relaxed);
    return s;
}

namespace {

/** Set by the signal handler; polled by runServer's wait loop.  A
 *  handler must not take locks or notify condition variables, so the
 *  flag is the only thing it touches. */
std::atomic<bool> g_signalStop{false};

extern "C" void
serveSignalHandler(int sig)
{
    g_signalStop.store(true, std::memory_order_relaxed);
    // Also trip the process-wide cooperative-cancel flag (one atomic
    // store, async-signal-safe) so in-flight evaluations unwind at
    // their next checkpoint instead of delaying shutdown.
    cancel::requestStop(sig);
}

} // namespace

int
runServer(const ServerOptions &opts, std::ostream &log)
{
    EvalServer server;
    std::string error;
    if (!server.start(opts, log, &error)) {
        log << "serve: cannot start: " << error << "\n";
        return 1;
    }
    g_signalStop.store(false, std::memory_order_relaxed);
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);
    while (!server.waitFor(100)) {
        if (g_signalStop.load(std::memory_order_relaxed))
            server.requestStop();
    }
    server.stop();
    const ServerStats s = server.stats();
    log << "serve: " << s.served << " served (" << s.resultHits
        << " from result cache), " << s.failed << " failed, "
        << s.malformed << " malformed, " << s.rejected
        << " rejected\n";
    return 0;
}

} // namespace study
} // namespace mcpat
