/**
 * @file
 * Reusable request-evaluation core: one configuration in, one report
 * (plus diagnostics, timing, and an optional manifest) out.
 *
 * This is the load -> validate -> assemble -> report path that used to
 * live inline in study::runBatch, factored out so every front end — the
 * single-shot CLI, the batch runner, and the `-serve` daemon — shares
 * one code path.  The core never touches the filesystem for *output*
 * (callers decide where rendered reports go) and never writes to
 * global logs; everything it learns about a request comes back in the
 * EvalResult.
 *
 * Thread safety: evaluate() may be called concurrently from multiple
 * threads.  All shared state it reaches (array memo cache, disk cache
 * tier, tech interpolation tables, instrumentation registry) is
 * internally synchronized, and the two-tier array cache is exactly
 * what makes a warm evaluation cheap — the server's whole reason to
 * exist.
 */

#ifndef MCPAT_STUDY_EVAL_CORE_HH
#define MCPAT_STUDY_EVAL_CORE_HH

#include <string>

#include "common/diagnostics.hh"
#include "common/report.hh"

namespace mcpat {
namespace study {

/** One configuration-evaluation request. */
struct EvalRequest
{
    /**
     * Path to an XML configuration file.  Exactly one of configPath /
     * configXml must be set; both (or neither) is a request error.
     */
    std::string configPath;

    /** Inline XML configuration text (server requests carry these). */
    std::string configXml;

    /** Treat validation warnings as failures (CLI -strict). */
    bool strict = false;

    /**
     * Render the report tree as the canonical JSON document
     * (EvalResult::reportJson) — byte-identical to the single-shot
     * CLI's -json output.
     */
    bool wantReportJson = true;

    /** Render the report tree as CSV (EvalResult::reportCsv). */
    bool wantReportCsv = false;

    /**
     * Build a per-request manifest (EvalResult::manifestJson): phase
     * wall clock for this request plus a snapshot of the process-wide
     * cache counters.  Schema "mcpat-eval-manifest-v1".
     */
    bool wantManifest = false;

    /**
     * Wall-clock budget for this evaluation, milliseconds; <= 0 means
     * unbounded.  A blown budget unwinds at the next cancellation
     * checkpoint and comes back as ok == false with timedOut set — the
     * process (and a server's other workers) keep running.
     */
    double timeoutMs = 0.0;
};

/** Everything one evaluation produced. */
struct EvalResult
{
    bool ok = false;
    std::string error;  ///< failure reason when !ok

    /** The request blew its timeoutMs budget (implies !ok). */
    bool timedOut = false;

    /** A process-wide stop (SIGINT/SIGTERM) unwound the evaluation. */
    bool interrupted = false;

    /** Every validation diagnostic the request produced. */
    DiagnosticList diagnostics;

    /** The full report tree (valid when ok). */
    Report report;

    /** Rendered artifacts, empty unless requested (and ok). */
    std::string reportJson;
    std::string reportCsv;
    std::string manifestJson;

    // Chip-level headline figures (valid when ok).
    double area = 0.0;          ///< m^2
    double peakPower = 0.0;     ///< W
    double runtimePower = 0.0;  ///< W

    // Per-request wall-clock breakdown, seconds.
    double loadSeconds = 0.0;      ///< parse + load + validation
    double assembleSeconds = 0.0;  ///< Processor construction (TDP incl.)
    double reportSeconds = 0.0;    ///< report generation + rendering
    double wallSeconds = 0.0;      ///< end-to-end for this request
};

/**
 * Evaluate one request.  Never throws for request-level problems: a
 * malformed or invalid configuration comes back as ok == false with
 * located diagnostics and an error string, which is what lets a bad
 * request fail *its* reply without taking down a batch or the server.
 */
EvalResult evaluate(const EvalRequest &req);

/**
 * The per-request manifest JSON for @p result (what evaluate() stores
 * in manifestJson when asked).  @p source names the config (path, or
 * "<inline>" for XML-carrying requests).
 */
std::string evalManifestJson(const EvalResult &result,
                             const std::string &source, int indent = 0);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_EVAL_CORE_HH
