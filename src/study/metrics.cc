/**
 * @file
 * Metric implementations.
 */

#include "study/metrics.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace mcpat {
namespace study {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

bool
Metrics::finite() const
{
    return std::isfinite(ed) && std::isfinite(ed2) &&
           std::isfinite(eda) && std::isfinite(ed2a);
}

Metrics
Metrics::invalid()
{
    Metrics m;
    m.ed = m.ed2 = m.eda = m.ed2a = kNaN;
    return m;
}

Metrics
computeMetrics(const RunFigures &f, std::string *why)
{
    // A degenerate workload (zero throughput, non-finite power) is a
    // data problem local to one (design, workload) pair; report it as
    // non-finite metrics, never as a process abort.
    const bool degenerate =
        !(f.delay > 0.0) || !(f.energy >= 0.0) || !(f.area >= 0.0) ||
        !std::isfinite(f.delay) || !std::isfinite(f.energy) ||
        !std::isfinite(f.area);
    if (degenerate) {
        if (why) {
            std::ostringstream os;
            os << "degenerate run figures (delay=" << f.delay
               << " s, energy=" << f.energy << " J, area=" << f.area
               << " m^2): metrics are non-finite for this point";
            *why = os.str();
        }
        return Metrics::invalid();
    }
    Metrics m;
    m.ed = f.energy * f.delay;
    m.ed2 = m.ed * f.delay;
    m.eda = m.ed * f.area;
    m.ed2a = m.ed2 * f.area;
    return m;
}

double
geomean(const std::vector<double> &values, std::string *why)
{
    // Asking for the mean of nothing is a caller bug, not bad data.
    panicIf(values.empty(), "geomean of an empty set");
    double log_sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double v = values[i];
        if (!(v > 0.0) || !std::isfinite(v)) {
            if (why) {
                std::ostringstream os;
                os << "geomean over a non-positive or non-finite value ("
                   << v << " at index " << i << ")";
                *why = os.str();
            }
            return kNaN;
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / values.size());
}

} // namespace study
} // namespace mcpat
