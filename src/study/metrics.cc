/**
 * @file
 * Metric implementations.
 */

#include "study/metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace mcpat {
namespace study {

Metrics
computeMetrics(const RunFigures &f)
{
    panicIf(f.delay <= 0.0 || f.energy < 0.0 || f.area < 0.0,
            "metrics require positive delay and non-negative energy/area");
    Metrics m;
    m.ed = f.energy * f.delay;
    m.ed2 = m.ed * f.delay;
    m.eda = m.ed * f.area;
    m.ed2a = m.ed2 * f.area;
    return m;
}

double
geomean(const std::vector<double> &values)
{
    panicIf(values.empty(), "geomean of an empty set");
    double log_sum = 0.0;
    for (double v : values) {
        panicIf(v <= 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / values.size());
}

} // namespace study
} // namespace mcpat
