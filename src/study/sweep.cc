/**
 * @file
 * Case-study sweep implementation.
 */

#include "study/sweep.hh"

#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>

#include "chip/processor.hh"
#include "common/cancel.hh"
#include "common/diagnostics.hh"
#include "common/instrument.hh"
#include "common/journal.hh"
#include "common/json_value.hh"
#include "common/parallel.hh"

namespace mcpat {
namespace study {

namespace {

core::CoreParams
makeCore(const CaseStudyConfig &cfg)
{
    core::CoreParams c;
    c.clockRate = cfg.clockRate;
    if (cfg.style == CoreStyle::InOrderMT) {
        c.name = "InOrderMT Core";
        c.outOfOrder = false;
        c.threads = 4;
        c.fetchWidth = c.decodeWidth = c.issueWidth = c.commitWidth = 2;
        c.pipelineStages = 8;
        c.intAlus = 2;
        c.fpus = 1;
        c.muls = 1;
        c.icache.capacityBytes = 16 * 1024;
        c.dcache.capacityBytes = 8 * 1024;
        c.loadQueueEntries = 8;
        c.storeQueueEntries = 8;
        c.hasBranchPredictor = false;
        c.dynamicMargin = 1.8;
    } else {
        c.name = "OoO Core";
        c.outOfOrder = true;
        c.threads = 1;
        c.fetchWidth = c.decodeWidth = c.commitWidth = 4;
        c.issueWidth = 4;
        c.pipelineStages = 12;
        c.robEntries = 128;
        c.intWindowEntries = 48;
        c.fpWindowEntries = 24;
        c.physIntRegs = 160;
        c.physFpRegs = 128;
        c.intAlus = 3;
        c.fpus = 2;
        c.muls = 1;
        c.icache.capacityBytes = 32 * 1024;
        c.dcache.capacityBytes = 32 * 1024;
        c.loadQueueEntries = 32;
        c.storeQueueEntries = 24;
        c.dynamicMargin = 1.8;
    }
    return c;
}

} // namespace

std::pair<int, int>
meshDims(int n)
{
    fatalIf(n < 1, "mesh needs at least one node");
    // Exact near-square factorizations are waste-free and keep the
    // historical shapes (8 -> 2x4, 16 -> 4x4, 64 -> 8x8).  A plain
    // largest-divisor search degenerates to a 1xN chain for primes
    // (7 -> 1x7), silently inflating hop counts and link power, so
    // instead pick the smallest grid with nx*ny >= n whose aspect
    // ratio stays within 2:1, padding with idle slots when n does not
    // factor (7 -> 2x4).
    std::pair<int, int> best{1, n};
    long best_cells = std::numeric_limits<long>::max();
    double best_aspect = std::numeric_limits<double>::max();
    for (int nx = 1; (nx - 1) * (nx - 1) < n; ++nx) {
        const int ny = (n + nx - 1) / nx;
        if (ny < nx)
            continue;  // canonical orientation: nx <= ny
        const double aspect = static_cast<double>(ny) / nx;
        if (n > 2 && aspect > 2.0)
            continue;
        const long cells = static_cast<long>(nx) * ny;
        if (cells < best_cells ||
            (cells == best_cells && aspect < best_aspect)) {
            best = {nx, ny};
            best_cells = cells;
            best_aspect = aspect;
        }
    }
    return best;
}

std::string
CaseStudyConfig::label() const
{
    const std::string style_name =
        (style == CoreStyle::InOrderMT) ? "inorder" : "ooo";
    return style_name + "-c" + std::to_string(coresPerCluster);
}

chip::SystemParams
makeCaseStudySystem(const CaseStudyConfig &cfg)
{
    fatalIf(cfg.totalCores % cfg.coresPerCluster != 0,
            "cluster size must divide the core count");

    chip::SystemParams s;
    s.name = cfg.label();
    s.nodeNm = cfg.nodeNm;
    s.numCores = cfg.totalCores;
    s.core = makeCore(cfg);

    // One L2 per cluster, sized by its share of the per-core budget;
    // banked per sharer to keep port pressure flat across clusterings.
    s.numL2 = cfg.clusters();
    s.l2.name = "L2";
    s.l2.capacityBytes = cfg.l2BytesPerCore * cfg.coresPerCluster;
    s.l2.assoc = 8;
    s.l2.banks = cfg.coresPerCluster;
    s.l2.clockRate = cfg.clockRate / 2.0;
    s.l2.directorySharers = cfg.coresPerCluster;
    s.l2.flavor = tech::DeviceFlavor::LSTP;

    s.hasNoc = true;
    const auto [nx, ny] = meshDims(cfg.clusters());
    s.noc.topology = (cfg.clusters() >= 8)
        ? uncore::NocTopology::Mesh2D
        : uncore::NocTopology::Crossbar;
    s.noc.nodesX = nx;
    s.noc.nodesY = ny;
    s.noc.flitBits = 128;
    s.noc.linkLength = 1.5 * mm;
    s.noc.clockRate = cfg.clockRate / 2.0;

    s.hasMemCtrl = true;
    s.memCtrl.channels = 4;
    s.memCtrl.dataBusBits = 64;
    s.memCtrl.busClock = 800.0 * MHz;
    s.memCtrl.dramType = uncore::DramType::DDR3;

    s.hasIo = true;
    s.io.signalPins = 300;
    s.io.ioVoltage = 1.2;
    s.io.staticPower = 1.5;

    s.whiteSpaceFraction = 0.10;
    return s;
}

DesignPointResult
evaluateDesignPoint(const CaseStudyConfig &cfg, double work)
{
    MCPAT_SPAN("sweep.design_point", cfg.label());
    cancel::checkpoint();
    DesignPointResult result;
    result.config = cfg;

    const chip::SystemParams sys = makeCaseStudySystem(cfg);
    const chip::Processor proc(sys);
    result.area = proc.area();
    result.tdp = proc.tdp();

    // Workloads are independent: evaluate each into its own slot in
    // parallel, then aggregate serially in workload order so every
    // floating-point reduction matches the serial path bit for bit.
    const auto &workloads = perf::splash2Workloads();
    result.workloads.resize(workloads.size());
    parallel::parallelFor(workloads.size(), [&](std::size_t i) {
        cancel::checkpoint();
        const perf::Workload &w = workloads[i];
        WorkloadResult wr;
        wr.workload = w.name;
        wr.performance = perf::evaluateSystem(sys, w);

        const stats::ChipStats rt =
            perf::makeRuntimeStats(sys, w, wr.performance);
        const Report rep = proc.makeReport(rt);
        wr.runtimePower = rep.runtimePower();

        wr.figures.delay = work / wr.performance.throughput;
        wr.figures.power = wr.runtimePower;
        wr.figures.energy = wr.runtimePower * wr.figures.delay;
        wr.figures.area = result.area;
        wr.metrics = computeMetrics(wr.figures);
        result.workloads[i] = std::move(wr);
    });

    std::vector<double> eds, ed2s, edas, ed2as, powers;
    double tput_sum = 0.0;
    for (const auto &wr : result.workloads) {
        tput_sum += wr.performance.throughput;
        powers.push_back(wr.runtimePower);
        eds.push_back(wr.metrics.ed);
        ed2s.push_back(wr.metrics.ed2);
        edas.push_back(wr.metrics.eda);
        ed2as.push_back(wr.metrics.ed2a);
    }

    result.meanThroughput = tput_sum / result.workloads.size();
    result.meanPower = geomean(powers);
    result.meanMetrics.ed = geomean(eds);
    result.meanMetrics.ed2 = geomean(ed2s);
    result.meanMetrics.eda = geomean(edas);
    result.meanMetrics.ed2a = geomean(ed2as);
    return result;
}

std::vector<CaseStudyConfig>
caseStudyConfigs()
{
    std::vector<CaseStudyConfig> configs;
    for (CoreStyle style :
         {CoreStyle::InOrderMT, CoreStyle::OutOfOrder}) {
        for (int cluster : {1, 2, 4, 8}) {
            CaseStudyConfig cfg;
            cfg.style = style;
            cfg.coresPerCluster = cluster;
            configs.push_back(cfg);
        }
    }
    return configs;
}

namespace {

/** Full-precision JSON number (null for non-finite). */
void
sweepJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << v;
    os << tmp.str();
}

/** One completed design point as a journal payload (aggregates only:
 *  per-workload detail is cheap to reconstruct and expensive to
 *  serialize faithfully, so resume trades it away explicitly). */
std::string
sweepItemPayload(const DesignPointResult &r, double work)
{
    std::ostringstream os;
    os << "{\"type\": \"point\", \"label\": \""
       << jsonEscapeString(r.config.label()) << "\", \"work\": ";
    sweepJsonDouble(os, work);
    os << ", \"area\": ";
    sweepJsonDouble(os, r.area);
    os << ", \"tdp\": ";
    sweepJsonDouble(os, r.tdp);
    os << ", \"mean_throughput\": ";
    sweepJsonDouble(os, r.meanThroughput);
    os << ", \"mean_power\": ";
    sweepJsonDouble(os, r.meanPower);
    os << ", \"ed\": ";
    sweepJsonDouble(os, r.meanMetrics.ed);
    os << ", \"ed2\": ";
    sweepJsonDouble(os, r.meanMetrics.ed2);
    os << ", \"eda\": ";
    sweepJsonDouble(os, r.meanMetrics.eda);
    os << ", \"ed2a\": ";
    sweepJsonDouble(os, r.meanMetrics.ed2a);
    os << "}";
    return os.str();
}

} // namespace

std::vector<DesignPointResult>
evaluateDesignPoints(const std::vector<CaseStudyConfig> &configs,
                     double work, const SweepJournalOptions &journal_opts)
{
    // Replayable aggregates from an earlier interrupted sweep, keyed
    // by design-point label.
    std::map<std::string, DesignPointResult> replay;
    if (journal_opts.resume && !journal_opts.path.empty()) {
        const common::JournalContents j =
            common::readJournal(journal_opts.path);
        bool header_ok = false;
        if (!j.records.empty()) {
            common::JsonValue hdr;
            header_ok = common::jsonParse(j.records.front(), hdr) &&
                hdr.getString("schema") == "mcpat-sweep-journal-v1" &&
                hdr.getNumber("work") == work;
        }
        if (header_ok) {
            for (std::size_t i = 1; i < j.records.size(); ++i) {
                common::JsonValue v;
                if (!common::jsonParse(j.records[i], v) ||
                    v.getString("type") != "point")
                    continue;
                DesignPointResult r;
                r.area = v.getNumber("area");
                r.tdp = v.getNumber("tdp");
                r.meanThroughput = v.getNumber("mean_throughput");
                r.meanPower = v.getNumber("mean_power");
                r.meanMetrics.ed = v.getNumber("ed");
                r.meanMetrics.ed2 = v.getNumber("ed2");
                r.meanMetrics.eda = v.getNumber("eda");
                r.meanMetrics.ed2a = v.getNumber("ed2a");
                replay[v.getString("label")] = std::move(r);
            }
        }
    }

    common::JournalWriter journal;
    std::mutex journal_mutex;
    if (!journal_opts.path.empty() &&
        journal.open(journal_opts.path, /*truncate=*/replay.empty())) {
        if (replay.empty()) {
            std::ostringstream hdr;
            hdr << "{\"schema\": \"mcpat-sweep-journal-v1\", "
                   "\"work\": ";
            sweepJsonDouble(hdr, work);
            hdr << "}";
            journal.append(hdr.str());
        }
    }

    std::vector<DesignPointResult> results(configs.size());
    instr::ProgressMeter progress("sweep", configs.size());
    parallel::parallelFor(configs.size(), [&](std::size_t i) {
        const auto rep = replay.find(configs[i].label());
        if (rep != replay.end()) {
            results[i] = rep->second;
            results[i].config = configs[i];
        } else {
            results[i] = evaluateDesignPoint(configs[i], work);
            if (journal.isOpen()) {
                // Appends interleave across worker threads; the writer
                // is not internally synchronized.
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal.append(sweepItemPayload(results[i], work));
            }
        }
        progress.tick();
    });
    return results;
}

std::vector<DesignPointResult>
runCaseStudy(double work)
{
    // Design points are independent; evaluate them in parallel into
    // ordered slots (the result vector keeps the serial sweep order).
    return evaluateDesignPoints(caseStudyConfigs(), work,
                                SweepJournalOptions{});
}

} // namespace study
} // namespace mcpat
