/**
 * @file
 * Case-study sweep implementation.
 */

#include "study/sweep.hh"

#include <atomic>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "chip/processor.hh"
#include "common/cancel.hh"
#include "common/diagnostics.hh"
#include "common/instrument.hh"
#include "common/journal.hh"
#include "common/json_value.hh"
#include "common/parallel.hh"

namespace mcpat {
namespace study {

namespace {

core::CoreParams
makeCore(const CaseStudyConfig &cfg)
{
    core::CoreParams c;
    c.clockRate = cfg.clockRate;
    if (cfg.style == CoreStyle::InOrderMT) {
        c.name = "InOrderMT Core";
        c.outOfOrder = false;
        c.threads = 4;
        c.fetchWidth = c.decodeWidth = c.issueWidth = c.commitWidth = 2;
        c.pipelineStages = 8;
        c.intAlus = 2;
        c.fpus = 1;
        c.muls = 1;
        c.icache.capacityBytes = 16 * 1024;
        c.dcache.capacityBytes = 8 * 1024;
        c.loadQueueEntries = 8;
        c.storeQueueEntries = 8;
        c.hasBranchPredictor = false;
        c.dynamicMargin = 1.8;
    } else {
        c.name = "OoO Core";
        c.outOfOrder = true;
        c.threads = 1;
        c.fetchWidth = c.decodeWidth = c.commitWidth = 4;
        c.issueWidth = 4;
        c.pipelineStages = 12;
        c.robEntries = 128;
        c.intWindowEntries = 48;
        c.fpWindowEntries = 24;
        c.physIntRegs = 160;
        c.physFpRegs = 128;
        c.intAlus = 3;
        c.fpus = 2;
        c.muls = 1;
        c.icache.capacityBytes = 32 * 1024;
        c.dcache.capacityBytes = 32 * 1024;
        c.loadQueueEntries = 32;
        c.storeQueueEntries = 24;
        c.dynamicMargin = 1.8;
    }
    return c;
}

// Sweep evaluation counters: cheap internal atomics mirrored into the
// instrumentation registry by a collector (the registry pattern every
// subsystem follows, so the hot path never pays for observation).
std::atomic<std::uint64_t> g_full_evals{0};
std::atomic<std::uint64_t> g_replayed{0};

[[maybe_unused]] const bool g_sweep_collector_registered =
    instr::Registry::instance().addCollector([](instr::Registry &reg) {
        reg.gauge("sweep.full_evals")
            .set(static_cast<double>(
                g_full_evals.load(std::memory_order_relaxed)));
        reg.gauge("sweep.replayed")
            .set(static_cast<double>(
                g_replayed.load(std::memory_order_relaxed)));
    });

/** "512K" / "1M" / "1.5M" for a byte count (label suffixes). */
std::string
bytesSuffix(double bytes)
{
    std::ostringstream os;
    if (bytes >= 1024.0 * 1024.0)
        os << bytes / (1024.0 * 1024.0) << "M";
    else
        os << bytes / 1024.0 << "K";
    return os.str();
}

/**
 * The max_digits10 round-trip representation of a double ("null" for
 * non-finite values).  Two finite doubles share a representation
 * exactly when they are equal, so *string* comparison of these is the
 * journal's value-identity test — immune to the non-finite values a
 * plain `==` on parsed numbers mishandles.
 */
std::string
roundTripRepr(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
}

/**
 * Does the journal header's "work" member match this run's value?
 * A journaled null (the serialization of a non-finite work) matches
 * exactly the non-finite case; anything absent or non-numeric never
 * matches a finite value.  The old exact `double ==` against
 * JsonValue::getNumber() silently discarded valid journals whose work
 * was non-finite (null parses as the 0.0 default) — and, worse,
 * *falsely matched* them when the new run's work really was 0.0.
 */
bool
journalWorkMatches(const common::JsonValue &hdr, double work)
{
    const common::JsonValue *v = hdr.find("work");
    if (!v)
        return false;
    if (v->isNull())
        return !std::isfinite(work);
    if (!v->isNumber())
        return false;
    return roundTripRepr(v->number) == roundTripRepr(work);
}

} // namespace

void
writeSweepJsonNumber(std::ostream &os, double v)
{
    os << roundTripRepr(v);
}

SweepEvalStats
sweepEvalStats()
{
    SweepEvalStats s;
    s.fullEvaluations = g_full_evals.load(std::memory_order_relaxed);
    s.replayed = g_replayed.load(std::memory_order_relaxed);
    return s;
}

void
resetSweepEvalStats()
{
    g_full_evals.store(0, std::memory_order_relaxed);
    g_replayed.store(0, std::memory_order_relaxed);
}

std::pair<int, int>
meshDims(int n)
{
    fatalIf(n < 1, "mesh needs at least one node");
    // Exact near-square factorizations are waste-free and keep the
    // historical shapes (8 -> 2x4, 16 -> 4x4, 64 -> 8x8).  A plain
    // largest-divisor search degenerates to a 1xN chain for primes
    // (7 -> 1x7), silently inflating hop counts and link power, so
    // instead pick the smallest grid with nx*ny >= n whose aspect
    // ratio stays within 2:1, padding with idle slots when n does not
    // factor (7 -> 2x4).
    std::pair<int, int> best{1, n};
    long best_cells = std::numeric_limits<long>::max();
    double best_aspect = std::numeric_limits<double>::max();
    for (int nx = 1; (nx - 1) * (nx - 1) < n; ++nx) {
        const int ny = (n + nx - 1) / nx;
        if (ny < nx)
            continue;  // canonical orientation: nx <= ny
        const double aspect = static_cast<double>(ny) / nx;
        if (n > 2 && aspect > 2.0)
            continue;
        const long cells = static_cast<long>(nx) * ny;
        if (cells < best_cells ||
            (cells == best_cells && aspect < best_aspect)) {
            best = {nx, ny};
            best_cells = cells;
            best_aspect = aspect;
        }
    }
    return best;
}

std::string
CaseStudyConfig::label() const
{
    const std::string style_name =
        (style == CoreStyle::InOrderMT) ? "inorder" : "ooo";
    std::string l = style_name + "-c" + std::to_string(coresPerCluster);
    // Append only the knobs that deviate from the paper's defaults:
    // the classic 8-point sweep keeps its historical names, while the
    // enlarged search space stays unambiguous to a human.
    const CaseStudyConfig defaults;
    if (totalCores != defaults.totalCores)
        l += "-n" + std::to_string(totalCores);
    if (clockRate != defaults.clockRate) {
        std::ostringstream os;
        os << clockRate / 1e9 << "GHz";
        l += "-" + os.str();
    }
    if (l2BytesPerCore != defaults.l2BytesPerCore)
        l += "-l2" + bytesSuffix(l2BytesPerCore);
    if (nodeNm != defaults.nodeNm)
        l += "-" + std::to_string(nodeNm) + "nm";
    return l;
}

std::string
CaseStudyConfig::key() const
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "node=" << nodeNm << ";clk=" << clockRate
       << ";cores=" << totalCores << ";cluster=" << coresPerCluster
       << ";style=" << static_cast<int>(style)
       << ";l2pc=" << l2BytesPerCore;
    return os.str();
}

chip::SystemParams
makeCaseStudySystem(const CaseStudyConfig &cfg)
{
    fatalIf(cfg.totalCores % cfg.coresPerCluster != 0,
            "cluster size must divide the core count");

    chip::SystemParams s;
    s.name = cfg.label();
    s.nodeNm = cfg.nodeNm;
    s.numCores = cfg.totalCores;
    s.core = makeCore(cfg);

    // One L2 per cluster, sized by its share of the per-core budget;
    // banked per sharer to keep port pressure flat across clusterings.
    s.numL2 = cfg.clusters();
    s.l2.name = "L2";
    s.l2.capacityBytes = cfg.l2BytesPerCore * cfg.coresPerCluster;
    s.l2.assoc = 8;
    s.l2.banks = cfg.coresPerCluster;
    s.l2.clockRate = cfg.clockRate / 2.0;
    s.l2.directorySharers = cfg.coresPerCluster;
    s.l2.flavor = tech::DeviceFlavor::LSTP;

    s.hasNoc = true;
    const auto [nx, ny] = meshDims(cfg.clusters());
    s.noc.topology = (cfg.clusters() >= 8)
        ? uncore::NocTopology::Mesh2D
        : uncore::NocTopology::Crossbar;
    s.noc.nodesX = nx;
    s.noc.nodesY = ny;
    s.noc.flitBits = 128;
    s.noc.linkLength = 1.5 * mm;
    s.noc.clockRate = cfg.clockRate / 2.0;

    s.hasMemCtrl = true;
    s.memCtrl.channels = 4;
    s.memCtrl.dataBusBits = 64;
    s.memCtrl.busClock = 800.0 * MHz;
    s.memCtrl.dramType = uncore::DramType::DDR3;

    s.hasIo = true;
    s.io.signalPins = 300;
    s.io.ioVoltage = 1.2;
    s.io.staticPower = 1.5;

    s.whiteSpaceFraction = 0.10;
    return s;
}

DesignPointResult
evaluateDesignPoint(const CaseStudyConfig &cfg, double work)
{
    MCPAT_SPAN("sweep.design_point", cfg.label());
    cancel::checkpoint();
    g_full_evals.fetch_add(1, std::memory_order_relaxed);
    DesignPointResult result;
    result.config = cfg;

    const chip::SystemParams sys = makeCaseStudySystem(cfg);
    const chip::Processor proc(sys);
    result.area = proc.area();
    result.tdp = proc.tdp();

    // Workloads are independent: evaluate each into its own slot in
    // parallel, then aggregate serially in workload order so every
    // floating-point reduction matches the serial path bit for bit.
    const auto &workloads = perf::splash2Workloads();
    result.workloads.resize(workloads.size());
    std::vector<std::string> metric_errors(workloads.size());
    parallel::parallelFor(workloads.size(), [&](std::size_t i) {
        cancel::checkpoint();
        const perf::Workload &w = workloads[i];
        WorkloadResult wr;
        wr.workload = w.name;
        wr.performance = perf::evaluateSystem(sys, w);

        const stats::ChipStats rt =
            perf::makeRuntimeStats(sys, w, wr.performance);
        const Report rep = proc.makeReport(rt);
        wr.runtimePower = rep.runtimePower();

        wr.figures.delay = work / wr.performance.throughput;
        wr.figures.power = wr.runtimePower;
        wr.figures.energy = wr.runtimePower * wr.figures.delay;
        wr.figures.area = result.area;
        wr.metrics = computeMetrics(wr.figures, &metric_errors[i]);
        result.workloads[i] = std::move(wr);
    });

    // A degenerate workload failed *its* metrics (NaN, serialized as
    // JSON null), not the sweep: surface it as a located diagnostic
    // naming the design point and workload, and let the NaN propagate
    // into the affected aggregates.
    for (std::size_t i = 0; i < result.workloads.size(); ++i) {
        if (!metric_errors[i].empty()) {
            result.diagnostics.add(Severity::Warning, cfg.label(),
                                   result.workloads[i].workload,
                                   metric_errors[i]);
        }
    }

    std::vector<double> eds, ed2s, edas, ed2as, powers;
    double tput_sum = 0.0;
    for (const auto &wr : result.workloads) {
        tput_sum += wr.performance.throughput;
        powers.push_back(wr.runtimePower);
        eds.push_back(wr.metrics.ed);
        ed2s.push_back(wr.metrics.ed2);
        edas.push_back(wr.metrics.eda);
        ed2as.push_back(wr.metrics.ed2a);
    }

    std::string agg_error;
    const auto aggregate = [&](const char *name,
                               const std::vector<double> &vals) {
        std::string why;
        const double g = geomean(vals, &why);
        if (!why.empty() && agg_error.empty()) {
            agg_error = why;
            result.diagnostics.add(Severity::Warning, cfg.label(), name,
                                   "aggregate is non-finite: " + why);
        }
        return g;
    };

    result.meanThroughput = tput_sum / result.workloads.size();
    result.meanPower = aggregate("mean_power", powers);
    result.meanMetrics.ed = aggregate("ed", eds);
    result.meanMetrics.ed2 = aggregate("ed2", ed2s);
    result.meanMetrics.eda = aggregate("eda", edas);
    result.meanMetrics.ed2a = aggregate("ed2a", ed2as);
    return result;
}

std::vector<CaseStudyConfig>
caseStudyConfigs()
{
    std::vector<CaseStudyConfig> configs;
    for (CoreStyle style :
         {CoreStyle::InOrderMT, CoreStyle::OutOfOrder}) {
        for (int cluster : {1, 2, 4, 8}) {
            CaseStudyConfig cfg;
            cfg.style = style;
            cfg.coresPerCluster = cluster;
            configs.push_back(cfg);
        }
    }
    return configs;
}

namespace {

/** One completed design point as a journal payload (aggregates only:
 *  per-workload detail is cheap to reconstruct and expensive to
 *  serialize faithfully, so resume trades it away explicitly). */
std::string
sweepItemPayload(const DesignPointResult &r)
{
    std::ostringstream os;
    os << "{\"type\": \"point\", \"key\": \""
       << jsonEscapeString(r.config.key()) << "\", \"label\": \""
       << jsonEscapeString(r.config.label()) << "\", \"area\": ";
    writeSweepJsonNumber(os, r.area);
    os << ", \"tdp\": ";
    writeSweepJsonNumber(os, r.tdp);
    os << ", \"mean_throughput\": ";
    writeSweepJsonNumber(os, r.meanThroughput);
    os << ", \"mean_power\": ";
    writeSweepJsonNumber(os, r.meanPower);
    os << ", \"ed\": ";
    writeSweepJsonNumber(os, r.meanMetrics.ed);
    os << ", \"ed2\": ";
    writeSweepJsonNumber(os, r.meanMetrics.ed2);
    os << ", \"eda\": ";
    writeSweepJsonNumber(os, r.meanMetrics.eda);
    os << ", \"ed2a\": ";
    writeSweepJsonNumber(os, r.meanMetrics.ed2a);
    os << "}";
    return os.str();
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

std::vector<DesignPointResult>
evaluateDesignPoints(const std::vector<CaseStudyConfig> &configs,
                     double work, const SweepJournalOptions &journal_opts)
{
    // Replayable aggregates from an earlier interrupted sweep, keyed
    // by the canonical design-point key.
    std::map<std::string, DesignPointResult> replay;
    if (journal_opts.resume && !journal_opts.path.empty()) {
        const common::JournalContents j =
            common::readJournal(journal_opts.path);
        bool header_ok = false;
        if (!j.records.empty()) {
            common::JsonValue hdr;
            header_ok = common::jsonParse(j.records.front(), hdr) &&
                hdr.getString("schema") == "mcpat-sweep-journal-v2" &&
                journalWorkMatches(hdr, work);
        }
        if (header_ok) {
            for (std::size_t i = 1; i < j.records.size(); ++i) {
                common::JsonValue v;
                if (!common::jsonParse(j.records[i], v) ||
                    v.getString("type") != "point")
                    continue;
                DesignPointResult r;
                r.aggregatesOnly = true;
                // Journaled nulls (non-finite figures) replay as NaN,
                // matching what a fresh evaluation would produce.
                r.area = v.getNumber("area", kNaN);
                r.tdp = v.getNumber("tdp", kNaN);
                r.meanThroughput = v.getNumber("mean_throughput", kNaN);
                r.meanPower = v.getNumber("mean_power", kNaN);
                r.meanMetrics.ed = v.getNumber("ed", kNaN);
                r.meanMetrics.ed2 = v.getNumber("ed2", kNaN);
                r.meanMetrics.eda = v.getNumber("eda", kNaN);
                r.meanMetrics.ed2a = v.getNumber("ed2a", kNaN);
                replay[v.getString("key")] = std::move(r);
            }
        }
    }

    common::JournalWriter journal;
    std::mutex journal_mutex;
    if (!journal_opts.path.empty() &&
        journal.open(journal_opts.path, /*truncate=*/replay.empty())) {
        if (replay.empty()) {
            std::ostringstream hdr;
            hdr << "{\"schema\": \"mcpat-sweep-journal-v2\", "
                   "\"work\": ";
            writeSweepJsonNumber(hdr, work);
            hdr << "}";
            journal.append(hdr.str());
        }
    }

    std::vector<DesignPointResult> results(configs.size());
    instr::ProgressMeter progress("sweep", configs.size());
    parallel::parallelFor(configs.size(), [&](std::size_t i) {
        const auto rep = replay.find(configs[i].key());
        if (rep != replay.end()) {
            g_replayed.fetch_add(1, std::memory_order_relaxed);
            results[i] = rep->second;
            results[i].config = configs[i];
        } else {
            const std::uint64_t t0 =
                instr::enabled() ? instr::nowNanos() : 0;
            results[i] = evaluateDesignPoint(configs[i], work);
            if (instr::enabled())
                instr::Registry::instance()
                    .histogram("sweep.point_ms")
                    .record((instr::nowNanos() - t0) * 1e-6);
            if (journal.isOpen()) {
                // Appends interleave across worker threads; the writer
                // is not internally synchronized.
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal.append(sweepItemPayload(results[i]));
            }
        }
        progress.tick();
    });
    return results;
}

std::vector<DesignPointResult>
runCaseStudy(double work)
{
    // Design points are independent; evaluate them in parallel into
    // ordered slots (the result vector keeps the serial sweep order).
    return evaluateDesignPoints(caseStudyConfigs(), work,
                                SweepJournalOptions{});
}

namespace {

/** Fixed-width numeric cell; "-" for non-finite values. */
std::string
numberCell(double v)
{
    if (!std::isfinite(v))
        return "-";
    std::ostringstream os;
    os << std::setprecision(4) << v;
    return os.str();
}

} // namespace

void
printDesignPointWorkloads(std::ostream &os, const DesignPointResult &r)
{
    if (r.aggregatesOnly) {
        // An empty section would read as "no workloads ran"; say what
        // actually happened instead.
        os << "    (per-workload detail unavailable: point replayed "
              "from the sweep journal, aggregates only)\n";
        return;
    }
    os << "    " << std::left << std::setw(12) << "workload"
       << std::right << std::setw(12) << "IPS" << std::setw(10) << "W"
       << std::setw(12) << "ED" << std::setw(12) << "ED^2"
       << std::setw(12) << "EDA" << std::setw(12) << "ED^2A" << "\n";
    for (const auto &w : r.workloads) {
        os << "    " << std::left << std::setw(12) << w.workload
           << std::right << std::setw(12)
           << numberCell(w.performance.throughput) << std::setw(10)
           << numberCell(w.runtimePower) << std::setw(12)
           << numberCell(w.metrics.ed) << std::setw(12)
           << numberCell(w.metrics.ed2) << std::setw(12)
           << numberCell(w.metrics.eda) << std::setw(12)
           << numberCell(w.metrics.ed2a) << "\n";
    }
}

} // namespace study
} // namespace mcpat
