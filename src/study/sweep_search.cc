/**
 * @file
 * Pareto-frontier search implementation.
 */

#include "study/sweep_search.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "common/diagnostics.hh"
#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace mcpat {
namespace study {

std::array<std::size_t, SweepSpace::kAxes>
SweepSpace::dims() const
{
    return {styles.size(), clusterSizes.size(), l2BytesPerCore.size(),
            clockRates.size()};
}

std::size_t
SweepSpace::size() const
{
    std::size_t n = 1;
    for (std::size_t d : dims())
        n *= d;
    return n;
}

std::array<std::size_t, SweepSpace::kAxes>
SweepSpace::coords(std::size_t flat) const
{
    const auto d = dims();
    std::array<std::size_t, kAxes> c{};
    for (std::size_t a = kAxes; a-- > 0;) {
        c[a] = flat % d[a];
        flat /= d[a];
    }
    return c;
}

std::size_t
SweepSpace::flatIndex(const std::array<std::size_t, kAxes> &c) const
{
    const auto d = dims();
    std::size_t flat = 0;
    for (std::size_t a = 0; a < kAxes; ++a)
        flat = flat * d[a] + c[a];
    return flat;
}

CaseStudyConfig
SweepSpace::at(std::size_t flat) const
{
    const auto c = coords(flat);
    CaseStudyConfig cfg;
    cfg.nodeNm = nodeNm;
    cfg.totalCores = totalCores;
    cfg.style = styles[c[0]];
    cfg.coresPerCluster = clusterSizes[c[1]];
    cfg.l2BytesPerCore = l2BytesPerCore[c[2]];
    cfg.clockRate = clockRates[c[3]];
    return cfg;
}

SweepSpace
SweepSpace::reference()
{
    SweepSpace s;
    s.totalCores = 16;
    s.styles = {CoreStyle::InOrderMT, CoreStyle::OutOfOrder};
    s.clusterSizes = {1, 2, 4, 8};
    s.l2BytesPerCore = {128.0 * 1024,       256.0 * 1024,
                        512.0 * 1024,       768.0 * 1024,
                        1.0 * 1024 * 1024,  1.5 * 1024 * 1024,
                        2.0 * 1024 * 1024,  3.0 * 1024 * 1024,
                        4.0 * 1024 * 1024};
    s.clockRates = {1.0e9, 1.25e9, 1.5e9, 1.75e9, 2.0e9, 2.25e9,
                    2.5e9, 2.75e9, 3.0e9, 3.25e9, 3.5e9, 3.75e9,
                    4.0e9, 4.25e9, 4.5e9};
    return s;
}

bool
dominates(const Metrics &a, const Metrics &b)
{
    if (!a.finite())
        return false;
    if (!b.finite())
        return true;
    const bool no_worse = a.ed <= b.ed && a.ed2 <= b.ed2 &&
                          a.eda <= b.eda && a.ed2a <= b.ed2a;
    const bool better = a.ed < b.ed || a.ed2 < b.ed2 ||
                        a.eda < b.eda || a.ed2a < b.ed2a;
    return no_worse && better;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<SweepSearchPoint> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Metrics &mi = points[i].result.meanMetrics;
        if (!mi.finite())
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i &&
                dominates(points[j].result.meanMetrics, mi);
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

namespace {

/** Unevaluated +/-1 axis-neighbors of a coordinate tuple. */
void
addNeighbors(const SweepSpace &space, std::size_t flat,
             const std::map<std::size_t, DesignPointResult> &evaluated,
             std::set<std::size_t> &out)
{
    const auto d = space.dims();
    const auto c = space.coords(flat);
    for (std::size_t a = 0; a < SweepSpace::kAxes; ++a) {
        for (int step : {-1, +1}) {
            if (step < 0 && c[a] == 0)
                continue;
            if (step > 0 && c[a] + 1 >= d[a])
                continue;
            auto n = c;
            n[a] += step;
            const std::size_t nf = space.flatIndex(n);
            if (!evaluated.count(nf))
                out.insert(nf);
        }
    }
}

std::vector<SweepSearchPoint>
toPointVector(const std::map<std::size_t, DesignPointResult> &evaluated)
{
    std::vector<SweepSearchPoint> points;
    points.reserve(evaluated.size());
    for (const auto &[flat, result] : evaluated)
        points.push_back({flat, result});
    return points;
}

} // namespace

SweepSearchResult
runSweepSearch(const SweepSpace &space, const SweepSearchOptions &opts)
{
    fatalIf(space.size() == 0,
            "sweep search needs at least one value on every axis");

    MCPAT_SPAN("sweep.search",
               opts.exhaustive ? "exhaustive" : "frontier");
    SweepSearchResult result;
    result.gridSize = space.size();
    const SweepEvalStats before = sweepEvalStats();

    // Flat index -> result, accumulated over refinement rounds.  The
    // journal accumulates in step: round 1 starts it (unless the
    // caller resumes an interrupted search), later rounds always
    // resume, so every finished point is replayable after a kill.
    std::map<std::size_t, DesignPointResult> evaluated;
    bool first_round = true;
    const auto evalBatch = [&](const std::set<std::size_t> &flats) {
        std::vector<std::size_t> order;
        std::vector<CaseStudyConfig> cfgs;
        for (std::size_t flat : flats) {
            order.push_back(flat);
            cfgs.push_back(space.at(flat));
        }
        SweepJournalOptions jo = opts.journal;
        jo.resume = opts.journal.resume || !first_round;
        first_round = false;
        const std::vector<DesignPointResult> rs =
            evaluateDesignPoints(cfgs, opts.work, jo);
        for (std::size_t i = 0; i < order.size(); ++i)
            evaluated.emplace(order[i], rs[i]);
        ++result.rounds;
    };

    if (opts.exhaustive) {
        std::set<std::size_t> all;
        for (std::size_t flat = 0; flat < space.size(); ++flat)
            all.insert(flat);
        evalBatch(all);
    } else {
        // Seeds: every grid corner plus the center, so each axis's
        // extremes and midpoint anchor the first frontier estimate.
        std::set<std::size_t> seeds;
        const auto d = space.dims();
        for (unsigned mask = 0; mask < (1u << SweepSpace::kAxes);
             ++mask) {
            std::array<std::size_t, SweepSpace::kAxes> c{};
            for (std::size_t a = 0; a < SweepSpace::kAxes; ++a)
                c[a] = (mask & (1u << a)) ? d[a] - 1 : 0;
            seeds.insert(space.flatIndex(c));
        }
        {
            std::array<std::size_t, SweepSpace::kAxes> c{};
            for (std::size_t a = 0; a < SweepSpace::kAxes; ++a)
                c[a] = d[a] / 2;
            seeds.insert(space.flatIndex(c));
        }
        evalBatch(seeds);

        // Successive refinement: evaluate the unexplored neighbors of
        // the current frontier until the frontier is interior-stable
        // (no frontier point has an unevaluated axis-neighbor).
        for (;;) {
            const std::vector<SweepSearchPoint> points =
                toPointVector(evaluated);
            std::set<std::size_t> candidates;
            for (std::size_t pos : paretoFrontier(points))
                addNeighbors(space, points[pos].index, evaluated,
                             candidates);
            if (candidates.empty())
                break;
            evalBatch(candidates);
        }
    }

    result.points = toPointVector(evaluated);
    for (std::size_t pos : paretoFrontier(result.points))
        result.frontier.push_back(result.points[pos].index);

    const SweepEvalStats after = sweepEvalStats();
    result.fullEvaluations =
        after.fullEvaluations - before.fullEvaluations;
    result.replayed = after.replayed - before.replayed;
    return result;
}

namespace {

std::string
searchCell(double v)
{
    if (!std::isfinite(v))
        return "-";
    std::ostringstream os;
    os << std::setprecision(4) << v;
    return os.str();
}

} // namespace

void
printSweepSearchResult(std::ostream &os, const SweepSpace &space,
                       const SweepSearchResult &r)
{
    const auto d = space.dims();
    os << "Pareto frontier (" << r.frontier.size() << " of "
       << r.points.size() << " evaluated points, grid " << d[0] << "x"
       << d[1] << "x" << d[2] << "x" << d[3] << " = " << r.gridSize
       << "):\n";
    os << "  " << std::left << std::setw(26) << "design point"
       << std::right << std::setw(10) << "mm^2" << std::setw(10) << "W"
       << std::setw(12) << "ED" << std::setw(12) << "ED^2"
       << std::setw(12) << "EDA" << std::setw(12) << "ED^2A" << "\n";
    std::map<std::size_t, const SweepSearchPoint *> by_index;
    for (const auto &p : r.points)
        by_index[p.index] = &p;
    for (std::size_t flat : r.frontier) {
        const SweepSearchPoint &p = *by_index.at(flat);
        const DesignPointResult &res = p.result;
        os << "  " << std::left << std::setw(26) << res.config.label()
           << std::right << std::setw(10)
           << searchCell(res.area / (mm * mm)) << std::setw(10)
           << searchCell(res.tdp) << std::setw(12)
           << searchCell(res.meanMetrics.ed) << std::setw(12)
           << searchCell(res.meanMetrics.ed2) << std::setw(12)
           << searchCell(res.meanMetrics.eda) << std::setw(12)
           << searchCell(res.meanMetrics.ed2a) << "\n";
    }
    os << "Search: " << r.fullEvaluations << " full evaluations + "
       << r.replayed << " journal replays over " << r.rounds
       << " round(s)";
    if (r.fullEvaluations > 0 && r.gridSize > 0) {
        os << " (" << std::setprecision(3)
           << static_cast<double>(r.gridSize) / r.fullEvaluations
           << "x fewer than exhaustive)";
    }
    os << "\n";
}

void
writeSweepSearchJson(std::ostream &os, const SweepSpace &space,
                     const SweepSearchResult &r, double work)
{
    const auto d = space.dims();
    os << "{\n  \"schema\": \"mcpat-sweep-search-v1\",\n  \"work\": ";
    writeSweepJsonNumber(os, work);
    os << ",\n  \"node_nm\": " << space.nodeNm
       << ",\n  \"total_cores\": " << space.totalCores
       << ",\n  \"dims\": [" << d[0] << ", " << d[1] << ", " << d[2]
       << ", " << d[3] << "]"
       << ",\n  \"grid_size\": " << r.gridSize
       << ",\n  \"full_evaluations\": " << r.fullEvaluations
       << ",\n  \"replayed\": " << r.replayed
       << ",\n  \"rounds\": " << r.rounds << ",\n  \"points\": [";
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        const SweepSearchPoint &p = r.points[i];
        const DesignPointResult &res = p.result;
        os << (i ? "," : "") << "\n    {\"index\": " << p.index
           << ", \"key\": \"" << jsonEscapeString(res.config.key())
           << "\", \"label\": \""
           << jsonEscapeString(res.config.label()) << "\", \"area\": ";
        writeSweepJsonNumber(os, res.area);
        os << ", \"tdp\": ";
        writeSweepJsonNumber(os, res.tdp);
        os << ", \"mean_throughput\": ";
        writeSweepJsonNumber(os, res.meanThroughput);
        os << ", \"mean_power\": ";
        writeSweepJsonNumber(os, res.meanPower);
        os << ", \"ed\": ";
        writeSweepJsonNumber(os, res.meanMetrics.ed);
        os << ", \"ed2\": ";
        writeSweepJsonNumber(os, res.meanMetrics.ed2);
        os << ", \"eda\": ";
        writeSweepJsonNumber(os, res.meanMetrics.eda);
        os << ", \"ed2a\": ";
        writeSweepJsonNumber(os, res.meanMetrics.ed2a);
        os << ", \"aggregates_only\": "
           << (res.aggregatesOnly ? "true" : "false") << "}";
    }
    os << "\n  ],\n  \"frontier\": [";
    for (std::size_t i = 0; i < r.frontier.size(); ++i)
        os << (i ? ", " : "") << r.frontier[i];
    os << "]\n}\n";
}

void
writeSweepSearchCsv(std::ostream &os, const SweepSpace &space,
                    const SweepSearchResult &r)
{
    (void)space;
    const std::set<std::size_t> frontier(r.frontier.begin(),
                                         r.frontier.end());
    os << "index,label,area_m2,tdp_w,mean_throughput,mean_power,"
          "ed,ed2,eda,ed2a,in_frontier\n";
    const auto cell = [&os](double v) {
        // Repo-wide CSV rule: empty field for non-finite values.
        if (std::isfinite(v)) {
            os.precision(std::numeric_limits<double>::max_digits10);
            os << v;
        }
    };
    for (const auto &p : r.points) {
        const DesignPointResult &res = p.result;
        os << p.index << "," << res.config.label() << ",";
        cell(res.area);
        os << ",";
        cell(res.tdp);
        os << ",";
        cell(res.meanThroughput);
        os << ",";
        cell(res.meanPower);
        os << ",";
        cell(res.meanMetrics.ed);
        os << ",";
        cell(res.meanMetrics.ed2);
        os << ",";
        cell(res.meanMetrics.eda);
        os << ",";
        cell(res.meanMetrics.ed2a);
        os << "," << (frontier.count(p.index) ? 1 : 0) << "\n";
    }
}

} // namespace study
} // namespace mcpat
