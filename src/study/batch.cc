/**
 * @file
 * Batch evaluation implementation: a thin loop over the shared
 * request-evaluation core (study/eval_core.hh) plus the batch-only
 * concerns — output files, sidecars, the summary CSV, and the
 * aggregated manifest.
 */

#include "study/batch.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "chip/report_writer.hh"
#include "common/instrument.hh"
#include "common/logging.hh"
#include "study/eval_core.hh"

namespace mcpat {
namespace study {

namespace fs = std::filesystem;

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Seconds between two steady-clock points. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Quote a CSV field when it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    return out + "\"";
}

/** Emit a JSON number, degrading non-finite values to null. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

/** Append @p what to the item's error field ("; "-joined). */
void
recordItemError(BatchItemResult &item, const std::string &what)
{
    if (!item.error.empty())
        item.error += "; ";
    item.error += what;
}

/**
 * Write <stem>.diagnostics.json / .csv next to the item's reports so a
 * failing input in a thousand-config batch leaves a machine-readable
 * record of *why* instead of one interleaved log line.
 *
 * A sidecar that cannot be opened or written must not silently drop
 * that record: the failure is appended to the item's diagnostics as a
 * located warning and recorded in its error field, so the summary CSV
 * and the server's batch clients still see it.
 */
void
writeDiagnosticSidecars(BatchItemResult &item, const BatchOptions &opts,
                        const fs::path &out_base)
{
    if (item.diagnostics.empty())
        return;
    if (opts.writeJson) {
        const std::string path = out_base.string() + ".diagnostics.json";
        std::ofstream jf(path);
        if (jf) {
            jf << "{\n  \"input\": \"" << jsonEscapeString(item.input)
               << "\",\n  \"valid\": " << (item.ok ? "true" : "false")
               << ",\n  \"diagnostics\": ";
            writeDiagnosticsJson(jf, item.diagnostics, 2);
            jf << "\n}\n";
            jf.flush();
        }
        if (jf) {
            item.diagnosticsJsonPath = path;
        } else {
            item.diagnostics.add(Severity::Warning, "batch",
                                 "diagnostics_json",
                                 "cannot write diagnostics sidecar '" +
                                     path + "'");
            recordItemError(item, "cannot write " + path);
        }
    }
    if (opts.writeCsv) {
        const std::string path = out_base.string() + ".diagnostics.csv";
        std::ofstream cf(path);
        if (cf) {
            writeDiagnosticsCsv(cf, item.diagnostics);
            cf.flush();
        }
        if (cf) {
            item.diagnosticsCsvPath = path;
        } else {
            item.diagnostics.add(Severity::Warning, "batch",
                                 "diagnostics_csv",
                                 "cannot write diagnostics sidecar '" +
                                     path + "'");
            recordItemError(item, "cannot write " + path);
        }
    }
}

/**
 * One row per input with headline figures and the per-input timing
 * columns — the batch-level view the per-input report files can't give.
 *
 * Failures are reported, not swallowed: an unopenable or half-written
 * summary logs a warning and lands in BatchResult::summaryError so
 * callers can distinguish "no summary requested" from "summary lost".
 */
void
writeSummaryCsv(BatchResult &result, const BatchOptions &opts,
                std::ostream &log)
{
    const std::string path =
        (fs::path(opts.outputDir) / "batch_summary.csv").string();
    std::ofstream cf(path);
    if (!cf) {
        result.summaryError = "cannot open '" + path + "'";
        log << "batch: warning: " << result.summaryError
            << "; summary not written\n";
        return;
    }
    cf << "input,name,ok,area_mm2,peak_w,runtime_w,load_ms,"
          "assemble_ms,report_ms,total_ms,error\n";
    for (const auto &item : result.items) {
        cf << csvField(item.input) << ',' << csvField(item.name) << ','
           << (item.ok ? 1 : 0) << ',';
        chip::writeCsvNumber(cf, item.area * 1e6);
        cf << ',';
        chip::writeCsvNumber(cf, item.peakPower);
        cf << ',';
        chip::writeCsvNumber(cf, item.runtimePower);
        cf << ',' << 1e3 * item.loadSeconds << ','
           << 1e3 * item.assembleSeconds << ','
           << 1e3 * item.reportSeconds << ','
           << 1e3 * item.wallSeconds << ',' << csvField(item.error)
           << '\n';
    }
    cf.flush();
    if (!cf) {
        result.summaryError = "error writing '" + path + "'";
        log << "batch: warning: " << result.summaryError
            << "; summary may be truncated\n";
        return;
    }
    result.summaryCsvPath = path;
}

/**
 * Aggregated run manifest for the whole batch: per-input outcome and
 * timing plus the full instrumentation registry ("run" section).
 */
void
writeBatchManifest(BatchResult &result, const BatchOptions &opts,
                   const std::string &listFile, std::ostream &log)
{
    std::ofstream mf(opts.metricsOut);
    if (!mf) {
        log << "batch: warning: cannot write manifest '"
            << opts.metricsOut << "'\n";
        return;
    }
    instr::RunInfo info;
    info.configPath = listFile;
    info.configChecksum = instr::fileChecksumHex(listFile);
    info.wallSeconds = result.wallSeconds;
    info.valid = result.failures == 0;

    mf << "{\n  \"schema\": \"mcpat-batch-manifest-v1\",\n"
       << "  \"items\": [";
    for (std::size_t i = 0; i < result.items.size(); ++i) {
        const BatchItemResult &item = result.items[i];
        mf << (i ? ",\n" : "\n") << "    {\"name\": \""
           << jsonEscapeString(item.name) << "\", \"input\": \""
           << jsonEscapeString(item.input) << "\", \"ok\": "
           << (item.ok ? "true" : "false") << ", \"area_mm2\": ";
        jsonNumber(mf, item.area * 1e6);
        mf << ", \"peak_w\": ";
        jsonNumber(mf, item.peakPower);
        mf << ", \"load_ms\": " << 1e3 * item.loadSeconds
           << ", \"assemble_ms\": " << 1e3 * item.assembleSeconds
           << ", \"report_ms\": " << 1e3 * item.reportSeconds
           << ", \"wall_ms\": " << 1e3 * item.wallSeconds << "}";
    }
    mf << (result.items.empty() ? "],\n" : "\n  ],\n");
    mf << "  \"run\":\n" << instr::runManifestJson(info, 2) << "\n}\n";
    result.metricsPath = opts.metricsOut;
}

/** Unique output stem for an input path within this batch. */
std::string
uniqueStem(const std::string &input, std::vector<std::string> &used)
{
    std::string stem = fs::path(input).stem().string();
    if (stem.empty())
        stem = "config";
    std::string name = stem;
    int suffix = 2;
    while (std::find(used.begin(), used.end(), name) != used.end())
        name = stem + "_" + std::to_string(suffix++);
    used.push_back(name);
    return name;
}

/** Write @p text to @p path, throwing on open or write failure. */
void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream f(path);
    fatalIf(!f, "cannot write " + path);
    f << text;
    f.flush();
    fatalIf(!f, "error writing " + path);
}

} // namespace

std::vector<std::string>
readBatchList(const std::string &listFile)
{
    std::ifstream in(listFile);
    fatalIf(!in, "cannot read batch list '" + listFile + "'");

    const fs::path base = fs::path(listFile).parent_path();
    std::vector<std::string> configs;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        fs::path p(line);
        if (p.is_relative() && !base.empty())
            p = base / p;
        configs.push_back(p.string());
    }
    fatalIf(configs.empty(),
            "batch list '" + listFile + "' names no configurations");
    return configs;
}

BatchResult
runBatch(const std::string &listFile, const BatchOptions &opts,
         std::ostream &log)
{
    const std::vector<std::string> configs = readBatchList(listFile);

    std::error_code ec;
    fs::create_directories(opts.outputDir, ec);
    fatalIf(!fs::is_directory(opts.outputDir),
            "cannot create batch output directory '" + opts.outputDir +
                "'");

    BatchResult result;
    std::vector<std::string> used_stems;
    const auto batch_t0 = std::chrono::steady_clock::now();
    instr::ProgressMeter progress("batch", configs.size());
    for (const auto &input : configs) {
        BatchItemResult item;
        item.input = input;
        item.name = uniqueStem(input, used_stems);
        const fs::path out_base = fs::path(opts.outputDir) / item.name;
        const auto item_t0 = std::chrono::steady_clock::now();
        MCPAT_SPAN("batch.item", item.name);

        EvalRequest req;
        req.configPath = input;
        req.strict = opts.strict;
        req.wantReportJson = opts.writeJson;
        req.wantReportCsv = opts.writeCsv;
        EvalResult ev = evaluate(req);

        item.diagnostics = std::move(ev.diagnostics);
        item.loadSeconds = ev.loadSeconds;
        item.assembleSeconds = ev.assembleSeconds;
        item.reportSeconds = ev.reportSeconds;
        if (ev.ok) {
            item.area = ev.area;
            item.peakPower = ev.peakPower;
            item.runtimePower = ev.runtimePower;
            for (const auto &d : item.diagnostics)
                log << input << ": " << d.format() << "\n";
            try {
                if (opts.writeJson) {
                    const std::string path = out_base.string() + ".json";
                    writeTextFile(path, ev.reportJson);
                    item.jsonPath = path;
                }
                if (opts.writeCsv) {
                    const std::string path = out_base.string() + ".csv";
                    writeTextFile(path, ev.reportCsv);
                    item.csvPath = path;
                }
                item.ok = true;
                log << "batch: " << input << ": ok, area "
                    << item.area * 1e6 << " mm^2, peak "
                    << item.peakPower << " W\n";
            } catch (const std::exception &e) {
                item.ok = false;
                item.error = e.what();
                ++result.failures;
                log << "batch: " << input << ": FAILED: " << e.what()
                    << "\n";
            }
        } else {
            item.ok = false;
            item.error = ev.error;
            ++result.failures;
            log << "batch: " << input << ": FAILED: " << ev.error
                << "\n";
        }
        item.wallSeconds = secondsSince(item_t0);
        writeDiagnosticSidecars(item, opts, out_base);
        result.items.push_back(std::move(item));
        progress.tick();
        if (!result.items.back().ok && opts.stopOnError)
            break;
    }
    result.wallSeconds = secondsSince(batch_t0);

    result.cacheStats = array::ArrayResultCache::instance().stats();
    log << "batch summary: " << result.items.size() << " configs, "
        << (result.items.size() - result.failures) << " ok, "
        << result.failures << " failed in "
        << 1e3 * result.wallSeconds << " ms\n";
    array::reportCacheStats(log);

    if (opts.writeSummaryCsv)
        writeSummaryCsv(result, opts, log);
    if (!opts.metricsOut.empty())
        writeBatchManifest(result, opts, listFile, log);
    return result;
}

} // namespace study
} // namespace mcpat
