/**
 * @file
 * Batch evaluation implementation: a thin loop over the shared
 * request-evaluation core (study/eval_core.hh) plus the batch-only
 * concerns — output files, sidecars, the summary CSV, and the
 * aggregated manifest.
 */

#include "study/batch.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "chip/report_writer.hh"
#include "common/cancel.hh"
#include "common/event_log.hh"
#include "common/instrument.hh"
#include "common/journal.hh"
#include "common/json_value.hh"
#include "common/logging.hh"
#include "study/eval_core.hh"

namespace mcpat {
namespace study {

namespace fs = std::filesystem;

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Seconds between two steady-clock points. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Quote a CSV field when it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    return out + "\"";
}

/** Emit a JSON number, degrading non-finite values to null. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

/** Append @p what to the item's error field ("; "-joined). */
void
recordItemError(BatchItemResult &item, const std::string &what)
{
    if (!item.error.empty())
        item.error += "; ";
    item.error += what;
}

/**
 * Write <stem>.diagnostics.json / .csv next to the item's reports so a
 * failing input in a thousand-config batch leaves a machine-readable
 * record of *why* instead of one interleaved log line.
 *
 * A sidecar that cannot be opened or written must not silently drop
 * that record: the failure is appended to the item's diagnostics as a
 * located warning and recorded in its error field, so the summary CSV
 * and the server's batch clients still see it.
 */
void
writeDiagnosticSidecars(BatchItemResult &item, const BatchOptions &opts,
                        const fs::path &out_base)
{
    if (item.diagnostics.empty())
        return;
    if (opts.writeJson) {
        const std::string path = out_base.string() + ".diagnostics.json";
        std::ofstream jf(path);
        if (jf) {
            jf << "{\n  \"input\": \"" << jsonEscapeString(item.input)
               << "\",\n  \"valid\": " << (item.ok ? "true" : "false")
               << ",\n  \"diagnostics\": ";
            writeDiagnosticsJson(jf, item.diagnostics, 2);
            jf << "\n}\n";
            jf.flush();
        }
        if (jf) {
            item.diagnosticsJsonPath = path;
        } else {
            item.diagnostics.add(Severity::Warning, "batch",
                                 "diagnostics_json",
                                 "cannot write diagnostics sidecar '" +
                                     path + "'");
            recordItemError(item, "cannot write " + path);
            if (elog::enabled(elog::Level::Warn))
                elog::emit(elog::Level::Warn, "study.batch",
                           "sidecar_write_failed",
                           "cannot write diagnostics sidecar",
                           {elog::Field::str("path", path),
                            elog::Field::str("input", item.input)});
        }
    }
    if (opts.writeCsv) {
        const std::string path = out_base.string() + ".diagnostics.csv";
        std::ofstream cf(path);
        if (cf) {
            writeDiagnosticsCsv(cf, item.diagnostics);
            cf.flush();
        }
        if (cf) {
            item.diagnosticsCsvPath = path;
        } else {
            item.diagnostics.add(Severity::Warning, "batch",
                                 "diagnostics_csv",
                                 "cannot write diagnostics sidecar '" +
                                     path + "'");
            recordItemError(item, "cannot write " + path);
            if (elog::enabled(elog::Level::Warn))
                elog::emit(elog::Level::Warn, "study.batch",
                           "sidecar_write_failed",
                           "cannot write diagnostics sidecar",
                           {elog::Field::str("path", path),
                            elog::Field::str("input", item.input)});
        }
    }
}

/**
 * One row per input with headline figures and the per-input timing
 * columns — the batch-level view the per-input report files can't give.
 *
 * Failures are reported, not swallowed: an unopenable or half-written
 * summary logs a warning and lands in BatchResult::summaryError so
 * callers can distinguish "no summary requested" from "summary lost".
 */
void
writeSummaryCsv(BatchResult &result, const BatchOptions &opts,
                std::ostream &log)
{
    const std::string path =
        (fs::path(opts.outputDir) / "batch_summary.csv").string();
    std::ofstream cf(path);
    if (!cf) {
        result.summaryError = "cannot open '" + path + "'";
        log << "batch: warning: " << result.summaryError
            << "; summary not written\n";
        if (elog::enabled(elog::Level::Warn))
            elog::emit(elog::Level::Warn, "study.batch",
                       "summary_open_failed",
                       "cannot open batch summary; summary not "
                       "written",
                       {elog::Field::str("path", path)});
        return;
    }
    cf << "input,name,ok,area_mm2,peak_w,runtime_w,load_ms,"
          "assemble_ms,report_ms,total_ms,error\n";
    for (const auto &item : result.items) {
        cf << csvField(item.input) << ',' << csvField(item.name) << ','
           << (item.ok ? 1 : 0) << ',';
        chip::writeCsvNumber(cf, item.area * 1e6);
        cf << ',';
        chip::writeCsvNumber(cf, item.peakPower);
        cf << ',';
        chip::writeCsvNumber(cf, item.runtimePower);
        cf << ',' << 1e3 * item.loadSeconds << ','
           << 1e3 * item.assembleSeconds << ','
           << 1e3 * item.reportSeconds << ','
           << 1e3 * item.wallSeconds << ',' << csvField(item.error)
           << '\n';
    }
    cf.flush();
    if (!cf) {
        result.summaryError = "error writing '" + path + "'";
        log << "batch: warning: " << result.summaryError
            << "; summary may be truncated\n";
        if (elog::enabled(elog::Level::Warn))
            elog::emit(elog::Level::Warn, "study.batch",
                       "summary_write_failed",
                       "error writing batch summary; summary may be "
                       "truncated",
                       {elog::Field::str("path", path)});
        return;
    }
    result.summaryCsvPath = path;
}

/**
 * Aggregated run manifest for the whole batch: per-input outcome and
 * timing plus the full instrumentation registry ("run" section).
 */
void
writeBatchManifest(BatchResult &result, const BatchOptions &opts,
                   const std::string &listFile, std::ostream &log)
{
    std::ofstream mf(opts.metricsOut);
    if (!mf) {
        log << "batch: warning: cannot write manifest '"
            << opts.metricsOut << "'\n";
        if (elog::enabled(elog::Level::Warn))
            elog::emit(elog::Level::Warn, "study.batch",
                       "manifest_write_failed",
                       "cannot write batch manifest",
                       {elog::Field::str("path", opts.metricsOut)});
        return;
    }
    instr::RunInfo info;
    info.configPath = listFile;
    info.configChecksum = instr::fileChecksumHex(listFile);
    info.wallSeconds = result.wallSeconds;
    info.valid = result.failures == 0;

    mf << "{\n  \"schema\": \"mcpat-batch-manifest-v1\",\n"
       << "  \"items\": [";
    for (std::size_t i = 0; i < result.items.size(); ++i) {
        const BatchItemResult &item = result.items[i];
        mf << (i ? ",\n" : "\n") << "    {\"name\": \""
           << jsonEscapeString(item.name) << "\", \"input\": \""
           << jsonEscapeString(item.input) << "\", \"ok\": "
           << (item.ok ? "true" : "false") << ", \"area_mm2\": ";
        jsonNumber(mf, item.area * 1e6);
        mf << ", \"peak_w\": ";
        jsonNumber(mf, item.peakPower);
        mf << ", \"load_ms\": " << 1e3 * item.loadSeconds
           << ", \"assemble_ms\": " << 1e3 * item.assembleSeconds
           << ", \"report_ms\": " << 1e3 * item.reportSeconds
           << ", \"wall_ms\": " << 1e3 * item.wallSeconds << "}";
    }
    mf << (result.items.empty() ? "],\n" : "\n  ],\n");
    mf << "  \"run\":\n" << instr::runManifestJson(info, 2) << "\n}\n";
    result.metricsPath = opts.metricsOut;
}

/** Unique output stem for an input path within this batch. */
std::string
uniqueStem(const std::string &input, std::vector<std::string> &used)
{
    std::string stem = fs::path(input).stem().string();
    if (stem.empty())
        stem = "config";
    std::string name = stem;
    int suffix = 2;
    while (std::find(used.begin(), used.end(), name) != used.end())
        name = stem + "_" + std::to_string(suffix++);
    used.push_back(name);
    return name;
}

/** Write @p text to @p path, throwing on open or write failure. */
void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream f(path);
    fatalIf(!f, "cannot write " + path);
    f << text;
    f.flush();
    fatalIf(!f, "error writing " + path);
}

// ---------------------------------------------------------------------
// Progress journal (schema "mcpat-batch-journal-v1")
// ---------------------------------------------------------------------

/**
 * Emit a double with max_digits10 significant digits so the value a
 * resumed run parses back is bit-identical to the one recorded — the
 * summary CSV's figures must not drift through the journal round trip.
 */
void
jsonFullDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << v;
    os << tmp.str();
}

/** The journal's header record: what produced it, under what options. */
std::string
journalHeaderPayload(const std::string &listFile, const BatchOptions &opts)
{
    std::ostringstream os;
    os << "{\"schema\": \"mcpat-batch-journal-v1\", \"list\": \""
       << jsonEscapeString(listFile) << "\", \"list_checksum\": \""
       << instr::fileChecksumHex(listFile) << "\", \"strict\": "
       << (opts.strict ? "true" : "false") << ", \"json\": "
       << (opts.writeJson ? "true" : "false") << ", \"csv\": "
       << (opts.writeCsv ? "true" : "false") << "}";
    return os.str();
}

/** One completed item as a single-line journal payload. */
std::string
journalItemPayload(const BatchItemResult &item)
{
    std::ostringstream os;
    os << "{\"type\": \"item\", \"name\": \""
       << jsonEscapeString(item.name) << "\", \"input\": \""
       << jsonEscapeString(item.input) << "\", \"ok\": "
       << (item.ok ? "true" : "false") << ", \"error\": \""
       << jsonEscapeString(item.error) << "\", \"area\": ";
    jsonFullDouble(os, item.area);
    os << ", \"peak_w\": ";
    jsonFullDouble(os, item.peakPower);
    os << ", \"runtime_w\": ";
    jsonFullDouble(os, item.runtimePower);
    os << ", \"load_s\": ";
    jsonFullDouble(os, item.loadSeconds);
    os << ", \"assemble_s\": ";
    jsonFullDouble(os, item.assembleSeconds);
    os << ", \"report_s\": ";
    jsonFullDouble(os, item.reportSeconds);
    os << ", \"wall_s\": ";
    jsonFullDouble(os, item.wallSeconds);
    os << ", \"diagnostics\": [";
    bool first = true;
    for (const auto &d : item.diagnostics) {
        os << (first ? "" : ", ") << "{\"severity\": \""
           << severityName(d.severity) << "\", \"component\": \""
           << jsonEscapeString(d.component) << "\", \"key\": \""
           << jsonEscapeString(d.key) << "\", \"line\": " << d.line
           << ", \"message\": \"" << jsonEscapeString(d.message)
           << "\"}";
        first = false;
    }
    os << "]}";
    return os.str();
}

/** Reconstruct an item from a journal payload; false on mismatch. */
bool
parseJournalItem(const std::string &payload, BatchItemResult &item)
{
    common::JsonValue v;
    if (!common::jsonParse(payload, v) || !v.isObject() ||
        v.getString("type") != "item")
        return false;
    item.name = v.getString("name");
    item.input = v.getString("input");
    if (item.name.empty() || item.input.empty())
        return false;
    item.ok = v.getBool("ok");
    item.error = v.getString("error");
    item.area = v.getNumber("area");
    item.peakPower = v.getNumber("peak_w");
    item.runtimePower = v.getNumber("runtime_w");
    item.loadSeconds = v.getNumber("load_s");
    item.assembleSeconds = v.getNumber("assemble_s");
    item.reportSeconds = v.getNumber("report_s");
    item.wallSeconds = v.getNumber("wall_s");
    if (const common::JsonValue *diags = v.find("diagnostics")) {
        if (!diags->isArray())
            return false;
        for (const auto &d : diags->array) {
            item.diagnostics.add(
                d.getString("severity") == "error" ? Severity::Error
                                                   : Severity::Warning,
                d.getString("component"), d.getString("key"),
                d.getString("message"),
                static_cast<int>(d.getNumber("line")));
        }
    }
    return true;
}

/**
 * Journal records completed in an earlier run, keyed by output stem
 * (the stem is a pure function of list order, so it identifies the
 * same work item across runs; the input path is re-checked at replay).
 */
std::map<std::string, BatchItemResult>
loadReplayableItems(const std::string &journalPath,
                    const std::string &listFile, const BatchOptions &opts,
                    std::ostream &log)
{
    std::map<std::string, BatchItemResult> replay;
    const common::JournalContents j = common::readJournal(journalPath);
    if (j.tailCorrupt) {
        log << "batch: warning: journal '" << journalPath
            << "' has a corrupt tail (" << j.droppedLines
            << " line(s) dropped); affected items will be "
               "re-evaluated\n";
        if (elog::enabled(elog::Level::Warn))
            elog::emit(elog::Level::Warn, "study.batch",
                       "journal_tail_corrupt",
                       "journal has a corrupt tail; affected items "
                       "will be re-evaluated",
                       {elog::Field::str("path", journalPath),
                        elog::Field::num(
                            "dropped_lines",
                            static_cast<double>(j.droppedLines))});
    }
    if (j.records.empty())
        return replay;

    common::JsonValue hdr;
    const bool header_ok = common::jsonParse(j.records.front(), hdr) &&
        hdr.getString("schema") == "mcpat-batch-journal-v1" &&
        hdr.getString("list_checksum") ==
            instr::fileChecksumHex(listFile) &&
        hdr.getBool("strict") == opts.strict &&
        hdr.getBool("json") == opts.writeJson &&
        hdr.getBool("csv") == opts.writeCsv;
    if (!header_ok) {
        log << "batch: warning: journal '" << journalPath
            << "' does not match this run (different list or options); "
               "starting fresh\n";
        if (elog::enabled(elog::Level::Warn))
            elog::emit(elog::Level::Warn, "study.batch",
                       "journal_mismatch",
                       "journal does not match this run (different "
                       "list or options); starting fresh",
                       {elog::Field::str("path", journalPath),
                        elog::Field::str("list", listFile)});
        return replay;
    }
    for (std::size_t i = 1; i < j.records.size(); ++i) {
        BatchItemResult item;
        if (parseJournalItem(j.records[i], item))
            replay[item.name] = std::move(item);  // last record wins
    }
    return replay;
}

/**
 * True when every report file the recorded item claims to have written
 * is still on disk — a replayed "ok" must not point at missing output.
 */
bool
replayOutputsPresent(const BatchItemResult &item, const BatchOptions &opts,
                     const fs::path &out_base)
{
    if (!item.ok)
        return true;  // a failed item wrote no reports to lose
    std::error_code ec;
    if (opts.writeJson &&
        !fs::is_regular_file(out_base.string() + ".json", ec))
        return false;
    if (opts.writeCsv &&
        !fs::is_regular_file(out_base.string() + ".csv", ec))
        return false;
    return true;
}

} // namespace

std::vector<std::string>
readBatchList(const std::string &listFile)
{
    std::ifstream in(listFile);
    fatalIf(!in, "cannot read batch list '" + listFile + "'");

    const fs::path base = fs::path(listFile).parent_path();
    std::vector<std::string> configs;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        fs::path p(line);
        if (p.is_relative() && !base.empty())
            p = base / p;
        configs.push_back(p.string());
    }
    fatalIf(configs.empty(),
            "batch list '" + listFile + "' names no configurations");
    return configs;
}

BatchResult
runBatch(const std::string &listFile, const BatchOptions &opts,
         std::ostream &log)
{
    const std::vector<std::string> configs = readBatchList(listFile);

    std::error_code ec;
    fs::create_directories(opts.outputDir, ec);
    fatalIf(!fs::is_directory(opts.outputDir),
            "cannot create batch output directory '" + opts.outputDir +
                "'");

    BatchResult result;

    // Progress journal: records from a matching earlier run are
    // replayed; everything else is evaluated and journaled as it
    // completes, so the *next* resume skips it.
    const std::string journal_path = opts.journalPath.empty()
        ? (fs::path(opts.outputDir) / "batch_journal.jsonl").string()
        : opts.journalPath;
    std::map<std::string, BatchItemResult> replay;
    if (opts.resume)
        replay = loadReplayableItems(journal_path, listFile, opts, log);

    common::JournalWriter journal;
    std::string journal_error;
    bool journal_warned = false;
    if (journal.open(journal_path, /*truncate=*/replay.empty(),
                     &journal_error)) {
        result.journalPath = journal_path;
        if (replay.empty() &&
            !journal.append(journalHeaderPayload(listFile, opts))) {
            journal_warned = true;
            log << "batch: warning: cannot write journal header to '"
                << journal_path << "'; resume will not be available\n";
            if (elog::enabled(elog::Level::Warn))
                elog::emit(elog::Level::Warn, "study.batch",
                           "journal_header_failed",
                           "cannot write journal header; resume will "
                           "not be available",
                           {elog::Field::str("path", journal_path)});
            journal.close();
            result.journalPath.clear();
        }
    } else {
        journal_warned = true;
        log << "batch: warning: " << journal_error
            << "; resume will not be available\n";
        if (elog::enabled(elog::Level::Warn))
            elog::emit(elog::Level::Warn, "study.batch",
                       "journal_open_failed",
                       "cannot open journal; resume will not be "
                       "available",
                       {elog::Field::str("path", journal_path),
                        elog::Field::str("error", journal_error)});
    }

    std::vector<std::string> used_stems;
    const auto batch_t0 = std::chrono::steady_clock::now();
    if (elog::enabled(elog::Level::Info))
        elog::emit(elog::Level::Info, "study.batch", "batch_start",
                   "batch evaluation starting",
                   {elog::Field::str("list", listFile),
                    elog::Field::num(
                        "configs",
                        static_cast<double>(configs.size())),
                    elog::Field::num(
                        "replayable",
                        static_cast<double>(replay.size()))});
    instr::ProgressMeter progress("batch", configs.size());
    for (const auto &input : configs) {
        if (cancel::stopRequested()) {
            result.interruptedSignal =
                cancel::stopSignal() ? cancel::stopSignal() : SIGINT;
            log << "batch: interrupted before '" << input
                << "'; flushing completed results\n";
            break;
        }

        BatchItemResult item;
        item.input = input;
        item.name = uniqueStem(input, used_stems);
        const fs::path out_base = fs::path(opts.outputDir) / item.name;
        const auto item_t0 = std::chrono::steady_clock::now();
        MCPAT_SPAN("batch.item", item.name);

        // Replay a journaled result when it names the same input and
        // its report files survived; otherwise fall through and
        // re-evaluate (the new record supersedes the old one).
        const auto rep = replay.find(item.name);
        if (rep != replay.end() && rep->second.input == input &&
            replayOutputsPresent(rep->second, opts, out_base)) {
            item = rep->second;
            if (item.ok) {
                if (opts.writeJson)
                    item.jsonPath = out_base.string() + ".json";
                if (opts.writeCsv)
                    item.csvPath = out_base.string() + ".csv";
            } else {
                ++result.failures;
            }
            writeDiagnosticSidecars(item, opts, out_base);
            ++result.resumed;
            log << "batch: " << input << ": resumed ("
                << (item.ok ? "ok" : "failed") << ")\n";
            result.items.push_back(std::move(item));
            progress.tick();
            if (!result.items.back().ok && opts.stopOnError)
                break;
            continue;
        }

        EvalRequest req;
        req.configPath = input;
        req.strict = opts.strict;
        req.wantReportJson = opts.writeJson;
        req.wantReportCsv = opts.writeCsv;
        req.timeoutMs = opts.evalTimeoutMs;
        EvalResult ev = evaluate(req);

        item.diagnostics = std::move(ev.diagnostics);
        item.loadSeconds = ev.loadSeconds;
        item.assembleSeconds = ev.assembleSeconds;
        item.reportSeconds = ev.reportSeconds;
        if (ev.ok) {
            item.area = ev.area;
            item.peakPower = ev.peakPower;
            item.runtimePower = ev.runtimePower;
            for (const auto &d : item.diagnostics)
                log << input << ": " << d.format() << "\n";
            try {
                if (opts.writeJson) {
                    const std::string path = out_base.string() + ".json";
                    writeTextFile(path, ev.reportJson);
                    item.jsonPath = path;
                }
                if (opts.writeCsv) {
                    const std::string path = out_base.string() + ".csv";
                    writeTextFile(path, ev.reportCsv);
                    item.csvPath = path;
                }
                item.ok = true;
                log << "batch: " << input << ": ok, area "
                    << item.area * 1e6 << " mm^2, peak "
                    << item.peakPower << " W\n";
            } catch (const std::exception &e) {
                item.ok = false;
                item.error = e.what();
                ++result.failures;
                log << "batch: " << input << ": FAILED: " << e.what()
                    << "\n";
            }
        } else {
            item.ok = false;
            item.error = ev.error;
            ++result.failures;
            log << "batch: " << input << ": FAILED: " << ev.error
                << "\n";
        }
        item.wallSeconds = secondsSince(item_t0);
        if (instr::enabled())
            instr::Registry::instance()
                .histogram("batch.item_ms")
                .record(item.wallSeconds * 1e3);
        writeDiagnosticSidecars(item, opts, out_base);

        if (ev.interrupted) {
            // The in-flight item was unwound by a stop request: record
            // it in this run's summary but NOT in the journal, so a
            // resume re-evaluates it from scratch.
            result.interruptedSignal =
                cancel::stopSignal() ? cancel::stopSignal() : SIGINT;
            result.items.push_back(std::move(item));
            progress.tick();
            break;
        }

        // Timeouts *are* journaled: the deadline is deterministic
        // policy, so a resume under the same options keeps the
        // recorded failure instead of burning the budget again.
        if (journal.isOpen() &&
            !journal.append(journalItemPayload(item)) &&
            !journal_warned) {
            journal_warned = true;
            log << "batch: warning: cannot append to journal '"
                << journal_path
                << "'; resume may re-evaluate recent items\n";
            if (elog::enabled(elog::Level::Warn))
                elog::emit(elog::Level::Warn, "study.batch",
                           "journal_append_failed",
                           "cannot append to journal; resume may "
                           "re-evaluate recent items",
                           {elog::Field::str("path", journal_path),
                            elog::Field::str("input", item.input)});
        }

        result.items.push_back(std::move(item));
        progress.tick();
        if (!result.items.back().ok && opts.stopOnError)
            break;
    }
    journal.close();
    result.wallSeconds = secondsSince(batch_t0);

    result.cacheStats = array::ArrayResultCache::instance().stats();
    log << "batch summary: " << result.items.size() << " configs, "
        << (result.items.size() - result.failures) << " ok, "
        << result.failures << " failed";
    if (result.resumed)
        log << " (" << result.resumed << " resumed)";
    if (result.interruptedSignal)
        log << ", interrupted by signal " << result.interruptedSignal;
    log << " in " << 1e3 * result.wallSeconds << " ms\n";
    if (elog::enabled(elog::Level::Info))
        elog::emit(elog::Level::Info, "study.batch", "batch_done",
                   "batch evaluation finished",
                   {elog::Field::num(
                        "configs",
                        static_cast<double>(result.items.size())),
                    elog::Field::num(
                        "failures",
                        static_cast<double>(result.failures)),
                    elog::Field::num(
                        "resumed",
                        static_cast<double>(result.resumed)),
                    elog::Field::num("wall_ms",
                                     1e3 * result.wallSeconds)});
    array::reportCacheStats(log);

    if (opts.writeSummaryCsv)
        writeSummaryCsv(result, opts, log);
    if (!opts.metricsOut.empty())
        writeBatchManifest(result, opts, listFile, log);
    return result;
}

} // namespace study
} // namespace mcpat
