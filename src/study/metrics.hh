/**
 * @file
 * Combined efficiency metrics for design-space exploration: the
 * energy-delay and energy-delay-area products the paper's case study
 * ranks designs by.
 */

#ifndef MCPAT_STUDY_METRICS_HH
#define MCPAT_STUDY_METRICS_HH

#include <string>
#include <vector>

namespace mcpat {
namespace study {

/** Raw figures for one (design, workload) pair. */
struct RunFigures
{
    double delay = 0.0;   ///< execution time for the fixed work, s
    double energy = 0.0;  ///< energy over that time, J
    double area = 0.0;    ///< die area, m^2
    double power = 0.0;   ///< average power, W
};

/** Combined metrics (lower is better for all). */
struct Metrics
{
    double ed = 0.0;    ///< energy x delay
    double ed2 = 0.0;   ///< energy x delay^2
    double eda = 0.0;   ///< energy x delay x area
    double ed2a = 0.0;  ///< energy x delay^2 x area

    /** All four figures are finite (degenerate inputs yield NaN). */
    bool finite() const;

    /** The all-NaN marker for a degenerate (workload, design) pair. */
    static Metrics invalid();
};

/**
 * Compute the combined metrics for one run.
 *
 * Degenerate figures — non-positive or non-finite delay, negative or
 * non-finite energy/area — come back as Metrics::invalid() (all NaN,
 * serialized as JSON null / empty CSV field per the repo-wide
 * non-finite rules) with a description in @p why when non-null.  One
 * broken workload must fail *its own* numbers, not abort a whole
 * sweep or batch process; callers attach the @p why text to a located
 * diagnostic naming the design point and workload.
 */
Metrics computeMetrics(const RunFigures &f, std::string *why = nullptr);

/**
 * Geometric mean over per-workload metric values.
 *
 * An empty set is a programmer error and still panics; a set
 * containing a non-positive or non-finite value (a degenerate workload
 * propagating through) yields NaN, with a description in @p why when
 * non-null.
 */
double geomean(const std::vector<double> &values,
               std::string *why = nullptr);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_METRICS_HH
