/**
 * @file
 * Combined efficiency metrics for design-space exploration: the
 * energy-delay and energy-delay-area products the paper's case study
 * ranks designs by.
 */

#ifndef MCPAT_STUDY_METRICS_HH
#define MCPAT_STUDY_METRICS_HH

#include <vector>

namespace mcpat {
namespace study {

/** Raw figures for one (design, workload) pair. */
struct RunFigures
{
    double delay = 0.0;   ///< execution time for the fixed work, s
    double energy = 0.0;  ///< energy over that time, J
    double area = 0.0;    ///< die area, m^2
    double power = 0.0;   ///< average power, W
};

/** Combined metrics (lower is better for all). */
struct Metrics
{
    double ed = 0.0;    ///< energy x delay
    double ed2 = 0.0;   ///< energy x delay^2
    double eda = 0.0;   ///< energy x delay x area
    double ed2a = 0.0;  ///< energy x delay^2 x area
};

/** Compute the combined metrics for one run. */
Metrics computeMetrics(const RunFigures &f);

/** Geometric mean over per-workload metric values. */
double geomean(const std::vector<double> &values);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_METRICS_HH
