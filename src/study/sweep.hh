/**
 * @file
 * The paper's 22 nm manycore case study: in-order (Niagara2-like) vs
 * out-of-order (Alpha-like) cores, with 1/2/4/8 cores per cluster
 * sharing an L2, evaluated on the SPLASH-2-like workloads for
 * throughput, power, and combined ED/ED2/EDA/ED2A metrics.
 */

#ifndef MCPAT_STUDY_SWEEP_HH
#define MCPAT_STUDY_SWEEP_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/diagnostics.hh"
#include "perf/activity_gen.hh"
#include "study/metrics.hh"

namespace mcpat {
namespace study {

/** Core microarchitecture style for the case study. */
enum class CoreStyle
{
    InOrderMT,   ///< dual-issue, 4-thread, Niagara2-like
    OutOfOrder   ///< 4-wide OoO, Alpha-like
};

/** One design point of the case study. */
struct CaseStudyConfig
{
    int nodeNm = 22;
    double clockRate = 2.5e9;
    int totalCores = 64;
    int coresPerCluster = 4;      ///< 1, 2, 4, or 8
    CoreStyle style = CoreStyle::InOrderMT;

    /** Per-core L2 allocation (cluster L2 = this x cluster size). */
    double l2BytesPerCore = 1.0 * 1024 * 1024;

    /**
     * Human-readable point name: "<style>-c<cluster>", extended with
     * core count / clock / L2 suffixes only when those knobs deviate
     * from the paper defaults (so the classic 8-point sweep keeps its
     * historical labels).
     */
    std::string label() const;

    /**
     * Canonical identity string covering *every* field at full double
     * precision.  Journals and memo tables key on this — two configs
     * share a key exactly when they describe the same design point.
     */
    std::string key() const;

    int clusters() const { return totalCores / coresPerCluster; }
};

/**
 * Grid shape for an n-node cluster mesh: the smallest nx x ny grid
 * (nx <= ny) with nx*ny >= n and aspect ratio at most 2:1.  Exact
 * factorizations stay waste-free (8 -> 2x4, 16 -> 4x4); prime and
 * awkward counts pad with idle slots instead of degenerating to a
 * 1xN chain (7 -> 2x4).
 */
std::pair<int, int> meshDims(int n);

/** Full chip description for a design point. */
chip::SystemParams makeCaseStudySystem(const CaseStudyConfig &cfg);

/** Per-workload evaluation of one design point. */
struct WorkloadResult
{
    std::string workload;
    perf::SystemPerformance performance;
    double runtimePower = 0.0;   ///< W
    RunFigures figures;
    Metrics metrics;
};

/** Aggregated evaluation of one design point. */
struct DesignPointResult
{
    CaseStudyConfig config;
    double area = 0.0;           ///< m^2
    double tdp = 0.0;            ///< W
    std::vector<WorkloadResult> workloads;

    /**
     * The per-workload vector is intentionally absent: this result was
     * replayed from a sweep journal, which records aggregates only.
     * Consumers printing per-workload sections must say so instead of
     * emitting nothing (printDesignPointWorkloads does).
     */
    bool aggregatesOnly = false;

    /**
     * Located problems found while evaluating this point — e.g. a
     * degenerate workload whose metrics came back non-finite.  The
     * point itself survives with NaN aggregates (JSON null).
     */
    DiagnosticList diagnostics;

    // Workload aggregates (arithmetic mean throughput; geometric mean
    // for ratio-like metrics, as the paper does).
    double meanThroughput = 0.0; ///< instructions/s
    double meanPower = 0.0;      ///< W
    Metrics meanMetrics;
};

/**
 * Evaluate one design point on all case-study workloads.
 *
 * Polls the ambient cancellation token (common/cancel.hh) between
 * workloads, so a deadline or stop request unwinds with
 * cancel::Cancelled instead of running the sweep to completion.
 *
 * A degenerate workload (non-positive delay, non-finite power) does
 * not throw: its metrics — and the affected aggregates — come back
 * NaN, with a located diagnostic in DesignPointResult::diagnostics.
 *
 * @param work the fixed work per run, instructions (delay = work /
 *             throughput)
 */
DesignPointResult evaluateDesignPoint(const CaseStudyConfig &cfg,
                                      double work = 1.0e12);

/** The paper's design points: both core styles x clusters {1,2,4,8}. */
std::vector<CaseStudyConfig> caseStudyConfigs();

/** Journal controls for evaluateDesignPoints(). */
struct SweepJournalOptions
{
    /** Journal file; empty disables journaling (and resume). */
    std::string path;

    /**
     * Replay design points recorded in an existing journal.  Replayed
     * points carry the journaled aggregates (area, TDP, mean
     * throughput/power/metrics) with an empty per-workload vector and
     * aggregatesOnly set; callers needing per-workload detail
     * re-evaluate.
     */
    bool resume = false;
};

/**
 * Evaluate @p configs in parallel, journaling each completed point
 * (schema "mcpat-sweep-journal-v2", keyed by CaseStudyConfig::key())
 * so an interrupted sweep resumes without redoing finished points.
 * The resume header binds the `work` value by its max_digits10
 * round-trip representation — JSON null for a non-finite work — so a
 * journal matches exactly when the value it was built with matches.
 * Results keep @p configs order.
 */
std::vector<DesignPointResult>
evaluateDesignPoints(const std::vector<CaseStudyConfig> &configs,
                     double work, const SweepJournalOptions &journal);

/** The paper's sweep: both core styles x cluster sizes {1,2,4,8}. */
std::vector<DesignPointResult> runCaseStudy(double work = 1.0e12);

/** Sweep evaluation counters (mirrored into the registry). */
struct SweepEvalStats
{
    std::uint64_t fullEvaluations = 0;  ///< evaluateDesignPoint calls
    std::uint64_t replayed = 0;         ///< points served from a journal
};

SweepEvalStats sweepEvalStats();
void resetSweepEvalStats();

/**
 * Full-precision JSON number for sweep serialization: max_digits10,
 * null for non-finite values (the repo-wide rule).
 */
void writeSweepJsonNumber(std::ostream &os, double v);

/**
 * Print one design point's per-workload rows.  A replayed
 * (aggregatesOnly) point prints an explicit note instead of a silent
 * empty section.
 */
void printDesignPointWorkloads(std::ostream &os,
                               const DesignPointResult &r);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_SWEEP_HH
