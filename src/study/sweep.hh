/**
 * @file
 * The paper's 22 nm manycore case study: in-order (Niagara2-like) vs
 * out-of-order (Alpha-like) cores, with 1/2/4/8 cores per cluster
 * sharing an L2, evaluated on the SPLASH-2-like workloads for
 * throughput, power, and combined ED/ED2/EDA/ED2A metrics.
 */

#ifndef MCPAT_STUDY_SWEEP_HH
#define MCPAT_STUDY_SWEEP_HH

#include <string>
#include <utility>
#include <vector>

#include "perf/activity_gen.hh"
#include "study/metrics.hh"

namespace mcpat {
namespace study {

/** Core microarchitecture style for the case study. */
enum class CoreStyle
{
    InOrderMT,   ///< dual-issue, 4-thread, Niagara2-like
    OutOfOrder   ///< 4-wide OoO, Alpha-like
};

/** One design point of the case study. */
struct CaseStudyConfig
{
    int nodeNm = 22;
    double clockRate = 2.5e9;
    int totalCores = 64;
    int coresPerCluster = 4;      ///< 1, 2, 4, or 8
    CoreStyle style = CoreStyle::InOrderMT;

    /** Per-core L2 allocation (cluster L2 = this x cluster size). */
    double l2BytesPerCore = 1.0 * 1024 * 1024;

    std::string label() const;
    int clusters() const { return totalCores / coresPerCluster; }
};

/**
 * Grid shape for an n-node cluster mesh: the smallest nx x ny grid
 * (nx <= ny) with nx*ny >= n and aspect ratio at most 2:1.  Exact
 * factorizations stay waste-free (8 -> 2x4, 16 -> 4x4); prime and
 * awkward counts pad with idle slots instead of degenerating to a
 * 1xN chain (7 -> 2x4).
 */
std::pair<int, int> meshDims(int n);

/** Full chip description for a design point. */
chip::SystemParams makeCaseStudySystem(const CaseStudyConfig &cfg);

/** Per-workload evaluation of one design point. */
struct WorkloadResult
{
    std::string workload;
    perf::SystemPerformance performance;
    double runtimePower = 0.0;   ///< W
    RunFigures figures;
    Metrics metrics;
};

/** Aggregated evaluation of one design point. */
struct DesignPointResult
{
    CaseStudyConfig config;
    double area = 0.0;           ///< m^2
    double tdp = 0.0;            ///< W
    std::vector<WorkloadResult> workloads;

    // Workload aggregates (arithmetic mean throughput; geometric mean
    // for ratio-like metrics, as the paper does).
    double meanThroughput = 0.0; ///< instructions/s
    double meanPower = 0.0;      ///< W
    Metrics meanMetrics;
};

/**
 * Evaluate one design point on all case-study workloads.
 *
 * Polls the ambient cancellation token (common/cancel.hh) between
 * workloads, so a deadline or stop request unwinds with
 * cancel::Cancelled instead of running the sweep to completion.
 *
 * @param work the fixed work per run, instructions (delay = work /
 *             throughput)
 */
DesignPointResult evaluateDesignPoint(const CaseStudyConfig &cfg,
                                      double work = 1.0e12);

/** The paper's design points: both core styles x clusters {1,2,4,8}. */
std::vector<CaseStudyConfig> caseStudyConfigs();

/** Journal controls for evaluateDesignPoints(). */
struct SweepJournalOptions
{
    /** Journal file; empty disables journaling (and resume). */
    std::string path;

    /**
     * Replay design points recorded in an existing journal.  Replayed
     * points carry the journaled aggregates (area, TDP, mean
     * throughput/power/metrics) with an empty per-workload vector;
     * callers needing per-workload detail re-evaluate.
     */
    bool resume = false;
};

/**
 * Evaluate @p configs in parallel, journaling each completed point
 * (schema "mcpat-sweep-journal-v1", keyed by config label) so an
 * interrupted sweep resumes without redoing finished points.  Results
 * keep @p configs order.
 */
std::vector<DesignPointResult>
evaluateDesignPoints(const std::vector<CaseStudyConfig> &configs,
                     double work, const SweepJournalOptions &journal);

/** The paper's sweep: both core styles x cluster sizes {1,2,4,8}. */
std::vector<DesignPointResult> runCaseStudy(double work = 1.0e12);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_SWEEP_HH
