/**
 * @file
 * Batch evaluation: run many XML configurations through the full model
 * in one process, amortizing the in-memory and on-disk array caches
 * across inputs.
 *
 * The CLI's `-batch <list-file>` mode is a thin wrapper around
 * runBatch(); tests drive it directly.
 */

#ifndef MCPAT_STUDY_BATCH_HH
#define MCPAT_STUDY_BATCH_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "array/array_cache.hh"
#include "common/diagnostics.hh"

namespace mcpat {
namespace study {

/** Controls for one runBatch() invocation. */
struct BatchOptions
{
    /** Directory receiving one report file set per input. */
    std::string outputDir = "mcpat_batch";

    bool writeJson = true;
    bool writeCsv = true;

    /**
     * Stop at the first failing input instead of continuing with the
     * remaining configurations.
     */
    bool stopOnError = false;

    /**
     * Treat validation warnings as failures (the CLI's -strict).
     * Validation *errors* always fail the item regardless of this
     * flag; either way the failure is isolated to that input and its
     * diagnostics land in the per-input sidecar files.
     */
    bool strict = false;

    /**
     * Write <outputDir>/batch_summary.csv: one row per input with the
     * headline figures and per-input timing columns (load, assemble,
     * report, total milliseconds).
     */
    bool writeSummaryCsv = true;

    /**
     * When non-empty, write an aggregated run manifest (JSON) here:
     * per-input timing and outcome plus the full instrumentation
     * registry (phases, cache tiers, prune efficacy, pool metrics).
     * The CLI's -metrics_out in batch mode.
     */
    std::string metricsOut;

    /**
     * Resume from the progress journal of an earlier interrupted run
     * (the CLI's -resume).  Items the journal records as completed are
     * replayed — their figures re-emitted, sidecars rewritten, report
     * files verified on disk — instead of re-evaluated, so the final
     * outputs match an uninterrupted run.  A journal whose header does
     * not match this run (different list contents or options) is
     * ignored with a warning and the batch starts fresh.
     */
    bool resume = false;

    /**
     * Wall-clock budget per input, milliseconds; <= 0 means unbounded
     * (the CLI's -eval_timeout_ms).  A blown budget fails that item
     * with a structured timeout error; the batch continues.
     */
    double evalTimeoutMs = 0.0;

    /**
     * Progress journal path; empty uses
     * <outputDir>/batch_journal.jsonl.
     */
    std::string journalPath;
};

/** Outcome of one configuration in the batch. */
struct BatchItemResult
{
    std::string input;       ///< config path as given in the list file
    std::string name;        ///< unique output stem derived from input
    bool ok = false;
    /**
     * Failure reason when !ok.  Output-file problems (an unwritable
     * diagnostics sidecar) are also recorded here even when the model
     * evaluation itself succeeded, so no write failure is silent.
     */
    std::string error;
    std::string jsonPath;    ///< written report, empty if not written
    std::string csvPath;     ///< written report, empty if not written

    /** Every validation diagnostic this input produced. */
    DiagnosticList diagnostics;
    /** Sidecar diagnostic reports (<stem>.diagnostics.{json,csv}),
     *  written whenever diagnostics is non-empty. */
    std::string diagnosticsJsonPath;
    std::string diagnosticsCsvPath;

    // Chip-level headline figures (valid when ok).
    double area = 0.0;       ///< m^2
    double peakPower = 0.0;  ///< W
    double runtimePower = 0.0;  ///< W

    // Per-input wall-clock breakdown, seconds (always recorded; two
    // clock reads per phase are noise next to a model evaluation).
    double loadSeconds = 0.0;      ///< parse + load + validation
    double assembleSeconds = 0.0;  ///< Processor construction (TDP incl.)
    double reportSeconds = 0.0;    ///< report generation + file writes
    double wallSeconds = 0.0;      ///< end-to-end for this input
};

/** Outcome of the whole batch. */
struct BatchResult
{
    std::vector<BatchItemResult> items;
    std::size_t failures = 0;

    /** Array-cache counters snapshotted after the batch completed. */
    array::ArrayCacheStats cacheStats;

    /** End-to-end batch wall clock, seconds. */
    double wallSeconds = 0.0;

    /** Written summary CSV path, empty when not written. */
    std::string summaryCsvPath;

    /**
     * Why the summary CSV is missing or suspect: set when the file
     * could not be opened or a write error was detected afterwards.
     * Empty + empty summaryCsvPath simply means "not requested";
     * callers (and the server's batch endpoint) use this to tell
     * "no summary" from "summary lost".
     */
    std::string summaryError;

    /** Written aggregated manifest path, empty when not written. */
    std::string metricsPath;

    /** Items replayed from the journal instead of re-evaluated. */
    std::size_t resumed = 0;

    /**
     * The stop signal (SIGINT/SIGTERM) that cut the batch short; 0
     * when it ran to completion.  Completed items were flushed and
     * journaled before returning; the front end exits 128+signal.
     */
    int interruptedSignal = 0;

    /** Journal path in use; empty when journaling was unavailable. */
    std::string journalPath;

    bool ok() const
    {
        return failures == 0 && interruptedSignal == 0 && !items.empty();
    }
};

/**
 * Parse a batch list file: one configuration path per line, blank
 * lines and `#` comments ignored.  Relative paths resolve against the
 * list file's directory.  Throws ConfigError when the file cannot be
 * read.
 */
std::vector<std::string> readBatchList(const std::string &listFile);

/**
 * Evaluate every configuration in @p listFile, writing per-input
 * reports into opts.outputDir (created on demand) and a human-readable
 * per-item line plus a final summary — including per-tier cache hit
 * rates — to @p log.
 *
 * A failing input is reported and counted but does not abort the batch
 * unless opts.stopOnError is set.  Only list-file level problems throw.
 * Any input that produced validation diagnostics additionally gets
 * <stem>.diagnostics.json / .csv sidecar files recording each
 * diagnostic's severity, component, key, and source line.
 */
BatchResult runBatch(const std::string &listFile, const BatchOptions &opts,
                     std::ostream &log);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_BATCH_HH
