/**
 * @file
 * Pareto-frontier design-space search over the case-study sweep.
 *
 * The paper's section 6 ranks design points by the combined
 * ED/ED2/EDA/ED2A metrics.  An exhaustive grid evaluates every point;
 * this module finds the same Pareto frontier with far fewer full-chip
 * evaluations by successive refinement: seed the grid's corners and
 * center, then repeatedly evaluate the axis-neighbors of the current
 * frontier until no frontier point has an unevaluated neighbor.  Cost
 * scales with the frontier's size, not the grid's.
 *
 * The search journals through the same "mcpat-sweep-journal-v2"
 * machinery as the exhaustive sweep (each refinement round resumes
 * from the accumulated journal), so a killed search replays finished
 * points and continues — and because replayed aggregates round-trip at
 * full precision, the resumed search takes bit-identical dominance
 * decisions.
 */

#ifndef MCPAT_STUDY_SWEEP_SEARCH_HH
#define MCPAT_STUDY_SWEEP_SEARCH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "study/sweep.hh"

namespace mcpat {
namespace study {

/**
 * A rectangular design grid: the cross product of the axis value
 * lists below at a fixed node and core count.  Flat indices follow
 * row-major order over (style, cluster, l2, clock).
 */
struct SweepSpace
{
    int nodeNm = 22;
    int totalCores = 64;
    std::vector<CoreStyle> styles;
    std::vector<int> clusterSizes;
    std::vector<double> l2BytesPerCore;  ///< per-core L2 budget, bytes
    std::vector<double> clockRates;      ///< Hz

    static constexpr std::size_t kAxes = 4;

    /** Axis sizes, in flat-index order (style, cluster, l2, clock). */
    std::array<std::size_t, kAxes> dims() const;

    /** Total grid points (product of dims). */
    std::size_t size() const;

    /** Decode a flat index into per-axis indices. */
    std::array<std::size_t, kAxes> coords(std::size_t flat) const;

    /** Flat index of a coordinate tuple. */
    std::size_t flatIndex(const std::array<std::size_t, kAxes> &c) const;

    /** The design point at a flat index. */
    CaseStudyConfig at(std::size_t flat) const;

    /**
     * The small reference space the bench and CI measure the search
     * against: big enough that exhaustive evaluation visibly hurts,
     * small enough to grade in-process.
     */
    static SweepSpace reference();
};

/** One evaluated grid point. */
struct SweepSearchPoint
{
    std::size_t index = 0;  ///< flat index into the space
    DesignPointResult result;
};

/**
 * Does @p a Pareto-dominate @p b over (ed, ed2, eda, ed2a)?  True when
 * a is no worse on every metric and strictly better on at least one.
 * A non-finite candidate never dominates anything.
 */
bool dominates(const Metrics &a, const Metrics &b);

/**
 * Positions (into @p points) of the non-dominated entries, ascending.
 * Points with any non-finite aggregate metric are excluded — a
 * degenerate point neither joins the frontier nor knocks others off.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<SweepSearchPoint> &points);

/** Knobs for runSweepSearch(). */
struct SweepSearchOptions
{
    double work = 1.0e12;   ///< instructions per run (delay = work/tput)

    /** Evaluate the whole grid instead of searching. */
    bool exhaustive = false;

    /** Journal path + resume flag, as for evaluateDesignPoints(). */
    SweepJournalOptions journal;
};

/** Outcome of a search (or exhaustive reference run). */
struct SweepSearchResult
{
    /** Every evaluated point, ascending by flat index. */
    std::vector<SweepSearchPoint> points;

    /** Flat indices of the Pareto frontier, ascending. */
    std::vector<std::size_t> frontier;

    std::size_t gridSize = 0;          ///< points in the full grid
    std::uint64_t fullEvaluations = 0; ///< evaluateDesignPoint calls made
    std::uint64_t replayed = 0;        ///< points served from the journal
    int rounds = 0;                    ///< refinement rounds (1 = seeds)
};

/**
 * Run the Pareto-frontier search (or, with opts.exhaustive, evaluate
 * the full grid) over @p space.  Deterministic for a given space and
 * work value; with a journal, interrupt/resume reproduces the same
 * frontier bit for bit.
 */
SweepSearchResult runSweepSearch(const SweepSpace &space,
                                 const SweepSearchOptions &opts);

/** Human-readable frontier table plus search/evaluation statistics. */
void printSweepSearchResult(std::ostream &os, const SweepSpace &space,
                            const SweepSearchResult &r);

/**
 * JSON document ("mcpat-sweep-search-v1"): grid shape, counters, every
 * evaluated point with aggregates, and the frontier's flat indices.
 * Numbers follow the repo-wide rule (max_digits10, null when
 * non-finite).
 */
void writeSweepSearchJson(std::ostream &os, const SweepSpace &space,
                          const SweepSearchResult &r, double work);

/** CSV of evaluated points (one row each, with an in_frontier flag). */
void writeSweepSearchCsv(std::ostream &os, const SweepSpace &space,
                         const SweepSearchResult &r);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_SWEEP_SEARCH_HH
