/**
 * @file
 * Request-evaluation core shared by the CLI, batch runner, and server.
 */

#include "study/eval_core.hh"

#include <chrono>
#include <sstream>

#include "array/array_cache.hh"
#include "chip/component_memo.hh"
#include "chip/invariant_audit.hh"
#include "chip/processor.hh"
#include "chip/report_writer.hh"
#include "common/cancel.hh"
#include "common/instrument.hh"
#include "common/serialize.hh"
#include "config/xml_loader.hh"
#include "config/xml_parser.hh"

namespace mcpat {
namespace study {

namespace {

/** Seconds between two steady-clock points. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

std::string
evalManifestJson(const EvalResult &result, const std::string &source,
                 int indent)
{
    const std::string pad(indent, ' ');
    const array::ArrayCacheStats cache =
        array::ArrayResultCache::instance().stats();
    const chip::ComponentMemoStats memo =
        chip::ComponentMemo::instance().stats();
    std::ostringstream os;
    os << pad << "{\n"
       << pad << "  \"schema\": \"mcpat-eval-manifest-v1\",\n"
       << pad << "  \"config\": \"" << jsonEscapeString(source)
       << "\",\n"
       << pad << "  \"valid\": " << (result.ok ? "true" : "false")
       << ",\n"
       << pad << "  \"phases\": {\"load_ms\": "
       << 1e3 * result.loadSeconds
       << ", \"assemble_ms\": " << 1e3 * result.assembleSeconds
       << ", \"report_ms\": " << 1e3 * result.reportSeconds
       << ", \"wall_ms\": " << 1e3 * result.wallSeconds << "},\n"
       // Process-global counters: across a server's lifetime these are
       // cumulative, so per-request deltas belong to the reader.
       << pad << "  \"cache\": {\"memory_hits\": " << cache.hits
       << ", \"memory_misses\": " << cache.misses
       << ", \"entries\": " << cache.entries
       << ", \"disk_hits\": " << cache.diskHits
       << ", \"disk_misses\": " << cache.diskMisses << "},\n"
       << pad << "  \"component_memo\": {\"hits\": " << memo.hits
       << ", \"misses\": " << memo.misses
       << ", \"entries\": " << memo.entries
       << ", \"evictions\": " << memo.evictions << "},\n"
       << pad << "  \"diagnostics\": "
       << result.diagnostics.size() << "\n"
       << pad << "}";
    return os.str();
}

EvalResult
evaluate(const EvalRequest &req)
{
    EvalResult result;
    const auto t0 = std::chrono::steady_clock::now();
    const std::string source =
        !req.configPath.empty() ? req.configPath : "<inline>";
    MCPAT_SPAN("eval.request", source);

    // Scope this request under its own token: the deadline bounds only
    // this evaluation, while the parent link keeps an enclosing scope's
    // cancellation (e.g. a sweep being interrupted) visible downstream.
    cancel::CancelToken token;
    token.setDeadlineIn(req.timeoutMs);
    token.setParent(cancel::current());
    cancel::ScopedCurrent scope(&token);

    try {
        cancel::checkpoint();
        if (req.configPath.empty() == req.configXml.empty()) {
            throw ConfigError(req.configPath.empty()
                ? "request carries neither a config path nor inline XML"
                : "request carries both a config path and inline XML");
        }

        const config::XmlNode root = req.configPath.empty()
            ? config::parseXmlString(req.configXml)
            : config::parseXmlFile(req.configPath);
        config::LoadResult loaded = config::loadSystemParams(root);
        result.diagnostics = loaded.diagnostics;
        result.diagnostics.merge(loaded.system.check());
        result.diagnostics.throwIfErrors("configuration '" + source +
                                         "'");
        if (req.strict && result.diagnostics.hasWarnings()) {
            throw ConfigError(
                "strict mode: " +
                std::to_string(result.diagnostics.size()) +
                " validation warning(s) for '" + source + "'");
        }
        result.loadSeconds = secondsSince(t0);
        cancel::checkpoint();

        const auto assemble_t0 = std::chrono::steady_clock::now();
        chip::Processor proc(loaded.system);
        const stats::ChipStats rt =
            config::loadChipStats(root, loaded.system);
        result.assembleSeconds = secondsSince(assemble_t0);
        cancel::checkpoint();

        const auto report_t0 = std::chrono::steady_clock::now();
        result.report = proc.makeReport(rt);
        result.area = result.report.area;
        result.peakPower = result.report.peakPower();
        result.runtimePower = result.report.runtimePower();

        // Post-assembly physical-invariant audit: a model bug that
        // yields negative leakage or a child outweighing its parent
        // must surface as a located diagnostic, not ship silently.
        DiagnosticList audit = chip::auditReport(result.report);
        const std::size_t violations = audit.size();
        result.diagnostics.merge(std::move(audit));
        if (req.strict && violations > 0) {
            throw ConfigError(
                "strict mode: " + std::to_string(violations) +
                " physical-invariant violation(s) for '" + source +
                "'");
        }

        if (req.wantReportJson) {
            std::ostringstream js;
            chip::writeReportJson(js, result.report);
            result.reportJson = js.str();
        }
        if (req.wantReportCsv) {
            std::ostringstream cs;
            chip::writeReportCsv(cs, result.report);
            result.reportCsv = cs.str();
        }
        result.reportSeconds = secondsSince(report_t0);
        result.ok = true;
    } catch (const cancel::Cancelled &e) {
        result.ok = false;
        result.error = e.what();
        result.timedOut = e.kind() == cancel::Kind::Timeout;
        result.interrupted = e.kind() == cancel::Kind::Interrupt;
    } catch (const ValidationError &e) {
        // Keep the per-key context: when the throw came from the
        // request's own merged list (cross-field errors) the
        // diagnostics are already present.
        if (result.diagnostics.empty())
            result.diagnostics.merge(e.diagnostics());
        result.ok = false;
        result.error = e.what();
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
    }
    result.wallSeconds = secondsSince(t0);
    if (req.wantManifest)
        result.manifestJson = evalManifestJson(result, source);
    return result;
}

} // namespace study
} // namespace mcpat
