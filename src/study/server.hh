/**
 * @file
 * Evaluation server (`mcpat -serve`): McPAT as a long-running service.
 *
 * The batch CLI pays full process startup, tech-table setup, and cold
 * array caches on every invocation.  The server keeps one process —
 * and therefore the in-memory memo cache and the on-disk cache tier —
 * warm across requests, which is what turns a multi-second cold
 * evaluation into a millisecond warm one (see bench_server_load).
 *
 * ## Protocol
 *
 * Newline-delimited JSON over a Unix-domain or loopback TCP stream
 * socket (see net::parseEndpoint for the endpoint syntax).  Each
 * request is one JSON object on one line; each response is exactly one
 * JSON line.  A connection may carry any number of requests, served in
 * order.
 *
 * Evaluation request fields:
 *  - "config":     path to an XML configuration file (server-side)
 *  - "config_xml": inline XML configuration text (exclusive with
 *                  "config")
 *  - "id":         optional string echoed verbatim in the response
 *  - "strict":     treat validation warnings as failures (defaults to
 *                  the server's -strict flag)
 *  - "report":     include the canonical JSON report document
 *                  (default true)
 *  - "csv":        include the CSV report (default false)
 *  - "manifest":   include the per-request instrumentation manifest
 *                  (default false)
 *  - "timeout_ms": wall-clock budget for this evaluation; combined
 *                  with the server's -eval_timeout_ms (the smaller of
 *                  the two wins when both are set)
 *
 * Response fields: "status" (HTTP-flavored: 200 ok, 400 malformed
 * request, 422 invalid configuration, 503 overloaded or shutting
 * down, 504 evaluation deadline exceeded), "ok", "error",
 * "diagnostics" (located, when any), headline figures ("area_mm2",
 * "peak_w", "runtime_w"), "timing_ms", and — because the canonical
 * report document is multi-line while responses must stay
 * newline-framed — the rendered artifacts are embedded as JSON
 * *strings*: "report", "csv", "manifest".  Unescaping "report" yields
 * a document byte-identical to the single-shot CLI's -json output.
 * "cached" is true when the evaluation was served verbatim from the
 * result cache (its "timing_ms" then describes the original
 * computation, not this request).
 *
 * Control commands: {"cmd": "ping"}, {"cmd": "stats"},
 * {"cmd": "health"} (liveness view: queue depth, in-flight request
 * count and oldest age, uptime, timeout counters),
 * {"cmd": "sleep", "ms": N} (testing aid), {"cmd": "shutdown"}.
 *
 * ## Admission control and isolation
 *
 * Accepted connections wait in a bounded queue for a worker; when the
 * queue is full the server replies with a structured 503 line and
 * closes the connection instead of queueing without bound.  A request
 * that fails — malformed JSON, unreadable config, validation errors —
 * fails only its own reply (collect-all-then-throw validation makes
 * bad configs non-fatal); the server keeps serving.
 */

#ifndef MCPAT_STUDY_SERVER_HH
#define MCPAT_STUDY_SERVER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace mcpat {
namespace study {

/** Controls for one server instance. */
struct ServerOptions
{
    /** Endpoint spec: all-digits = loopback TCP port, else Unix path. */
    std::string endpoint;

    /**
     * Worker threads serving connections.  0 means the PR 1 thread
     * count resolution (-threads / MCPAT_THREADS / hardware).  Each
     * worker serves one connection at a time; model evaluation inside
     * a request additionally uses the shared evaluation pool.
     */
    int workers = 0;

    /**
     * Admission control: connections allowed to wait for a worker.
     * An accept beyond this is answered with a one-line 503 JSON
     * rejection and closed immediately.
     */
    std::size_t maxQueue = 32;

    /** Default for requests that do not carry a "strict" field. */
    bool strictDefault = false;

    /**
     * Default per-evaluation wall-clock budget, milliseconds; <= 0
     * means unbounded.  A request's own "timeout_ms" can only tighten
     * it.  A blown budget unwinds cooperatively and answers that
     * request with a structured 504 — the worker and the server keep
     * serving.
     */
    double evalTimeoutMs = 0.0;

    /**
     * Warmest cache tier: completed evaluations kept verbatim, keyed
     * by config *content* checksum (plus the request's strict/artifact
     * flags), so a repeated identical request is answered without
     * re-evaluating at all.  Entries are evicted FIFO beyond this
     * count; 0 disables the tier.  Sits above the shared array memo
     * and disk caches, which still serve requests whose configs
     * differ only partially.
     */
    std::size_t maxCachedResults = 256;
};

/** Monotonic service counters (snapshot via EvalServer::stats). */
struct ServerStats
{
    std::uint64_t accepted = 0;   ///< connections handed to a worker
    std::uint64_t rejected = 0;   ///< connections refused with 503
    std::uint64_t served = 0;     ///< requests answered with status 200
    std::uint64_t failed = 0;     ///< eval requests answered with 422
    std::uint64_t malformed = 0;  ///< requests answered with 400
    std::uint64_t resultHits = 0; ///< evals served from the result cache
    std::uint64_t timeouts = 0;   ///< evals answered with 504
};

/**
 * A running evaluation server: an accept thread plus a worker pool.
 * start()/stop() make it embeddable in tests and the load bench; the
 * CLI wraps it in runServer().
 */
class EvalServer
{
  public:
    EvalServer();
    ~EvalServer();
    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    /**
     * Bind the endpoint and launch the accept/worker threads.
     * Returns false (with a description in @p error) when the
     * endpoint cannot be bound.  @p log receives one line per
     * lifecycle event (start, reject, shutdown).
     */
    bool start(const ServerOptions &opts, std::ostream &log,
               std::string *error = nullptr);

    /** Ask the server to stop; returns immediately. */
    void requestStop();

    /** Block until the server has stopped (shutdown cmd or stop()). */
    void wait();

    /**
     * Bounded wait: true once the server is stopping, false after
     * @p timeout_ms elapsed first (lets a caller poll for signals).
     */
    bool waitFor(int timeout_ms);

    /** requestStop() + wait(): idempotent, callable from any thread. */
    void stop();

    bool running() const;

    /** Bound endpoint ("127.0.0.1:7421" or the socket path). */
    std::string endpointName() const;

    /** Bound TCP port (after port-0 auto-assignment); 0 for Unix. */
    std::uint16_t boundPort() const;

    ServerStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

/**
 * CLI entry: run a server on opts.endpoint until a shutdown request
 * (or SIGINT/SIGTERM) arrives.  Returns the process exit code.
 */
int runServer(const ServerOptions &opts, std::ostream &log);

} // namespace study
} // namespace mcpat

#endif // MCPAT_STUDY_SERVER_HH
