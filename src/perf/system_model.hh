/**
 * @file
 * Multicore system performance: per-core CPI stacks composed with
 * shared-cache contention, fabric latency, memory-bandwidth limits,
 * and parallel-efficiency losses.
 */

#ifndef MCPAT_PERF_SYSTEM_MODEL_HH
#define MCPAT_PERF_SYSTEM_MODEL_HH

#include "chip/system_params.hh"
#include "perf/cpi_model.hh"

namespace mcpat {
namespace perf {

/** System-level performance result for one workload. */
struct SystemPerformance
{
    std::string workload;

    double perCoreIpc = 0.0;     ///< average, per core clock
    double aggregateIpc = 0.0;   ///< all cores, per core clock
    double throughput = 0.0;     ///< instructions per second

    CoreThroughput coreDetail;   ///< representative core's stacks

    double l2AccessesPerCycle = 0.0;  ///< per L2 instance
    double l2MissesPerCycle = 0.0;    ///< per L2 instance
    double memBandwidthDemand = 0.0;  ///< B/s before capping
    double memBandwidthUtil = 0.0;    ///< fraction of peak after capping
    double nocFlitsPerCycle = 0.0;    ///< aggregate fabric injection
    double parallelEfficiency = 1.0;

    /** True when the DRAM interface capped throughput. */
    bool bandwidthLimited = false;
};

/**
 * Evaluate a system configuration running a workload.
 *
 * The model iterates to a fixed point between throughput and shared-
 * resource contention (bank queueing, bandwidth capping).
 */
SystemPerformance evaluateSystem(const chip::SystemParams &sys,
                                 const Workload &w);

} // namespace perf
} // namespace mcpat

#endif // MCPAT_PERF_SYSTEM_MODEL_HH
