/**
 * @file
 * SPLASH-2-like workload table and miss-curve math.
 */

#include "perf/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mcpat {
namespace perf {

namespace {

constexpr double refL1 = 32.0 * 1024;
constexpr double refL2 = 1024.0 * 1024;

double
powerLawMpki(double mpki_ref, double ref, double capacity, double alpha)
{
    if (capacity <= 0.0)
        return mpki_ref * 4.0;  // degenerate: treat as tiny cache
    const double mpki = mpki_ref * std::pow(ref / capacity, alpha);
    return std::min(mpki, 250.0);  // physical cap: ~1 miss / 4 insts
}

} // namespace

double
Workload::l1dMissesPerInst(double capacity_bytes) const
{
    return powerLawMpki(l1dMpkiAt32k, refL1, capacity_bytes,
                        l1MissExponent) / 1000.0;
}

double
Workload::l1iMissesPerInst(double capacity_bytes) const
{
    return powerLawMpki(l1iMpkiAt32k, refL1, capacity_bytes,
                        l1MissExponent) / 1000.0;
}

double
Workload::l2MissesPerInst(double capacity_bytes) const
{
    return powerLawMpki(l2MpkiAt1M, refL2, capacity_bytes,
                        l2MissExponent) / 1000.0;
}

double
Workload::parallelEfficiency(int cores) const
{
    if (cores <= 1)
        return 1.0;
    const double loss_at_64 = 1.0 - parallelEfficiencyAt64;
    const double eff =
        1.0 - loss_at_64 * std::log2(static_cast<double>(cores)) / 6.0;
    return std::max(0.05, eff);
}

const std::vector<Workload> &
splash2Workloads()
{
    static const std::vector<Workload> table = [] {
        std::vector<Workload> w;

        Workload barnes;
        barnes.name = "barnes";
        barnes.fracInt = 0.38; barnes.fracFp = 0.22;
        barnes.fracMul = 0.02; barnes.fracLoad = 0.23;
        barnes.fracStore = 0.09; barnes.fracBranch = 0.06;
        barnes.branchMispredictRate = 0.02;
        barnes.ilp = 2.6;
        barnes.l1dMpkiAt32k = 5.0; barnes.l1iMpkiAt32k = 1.0;
        barnes.l2MpkiAt1M = 0.8;
        barnes.parallelEfficiencyAt64 = 0.82;
        w.push_back(barnes);

        Workload cholesky;
        cholesky.name = "cholesky";
        cholesky.fracInt = 0.34; cholesky.fracFp = 0.28;
        cholesky.fracMul = 0.03; cholesky.fracLoad = 0.22;
        cholesky.fracStore = 0.07; cholesky.fracBranch = 0.06;
        cholesky.branchMispredictRate = 0.025;
        cholesky.ilp = 2.9;
        cholesky.l1dMpkiAt32k = 11.0; cholesky.l1iMpkiAt32k = 0.8;
        cholesky.l2MpkiAt1M = 2.2;
        cholesky.parallelEfficiencyAt64 = 0.55;
        w.push_back(cholesky);

        Workload fft;
        fft.name = "fft";
        fft.fracInt = 0.30; fft.fracFp = 0.30;
        fft.fracMul = 0.04; fft.fracLoad = 0.22;
        fft.fracStore = 0.10; fft.fracBranch = 0.04;
        fft.branchMispredictRate = 0.01;
        fft.ilp = 3.2;
        fft.l1dMpkiAt32k = 16.0; fft.l1iMpkiAt32k = 0.5;
        fft.l2MpkiAt1M = 4.5; fft.l2MissExponent = 0.45;
        fft.parallelEfficiencyAt64 = 0.75;
        w.push_back(fft);

        Workload lu;
        lu.name = "lu";
        lu.fracInt = 0.33; lu.fracFp = 0.30;
        lu.fracMul = 0.03; lu.fracLoad = 0.21;
        lu.fracStore = 0.08; lu.fracBranch = 0.05;
        lu.branchMispredictRate = 0.015;
        lu.ilp = 3.0;
        lu.l1dMpkiAt32k = 7.0; lu.l1iMpkiAt32k = 0.4;
        lu.l2MpkiAt1M = 1.5;
        lu.parallelEfficiencyAt64 = 0.70;
        w.push_back(lu);

        Workload ocean;
        ocean.name = "ocean";
        ocean.fracInt = 0.28; ocean.fracFp = 0.28;
        ocean.fracMul = 0.02; ocean.fracLoad = 0.26;
        ocean.fracStore = 0.11; ocean.fracBranch = 0.05;
        ocean.branchMispredictRate = 0.02;
        ocean.ilp = 2.4;
        ocean.l1dMpkiAt32k = 28.0; ocean.l1iMpkiAt32k = 0.6;
        ocean.l2MpkiAt1M = 9.0; ocean.l2MissExponent = 0.35;
        ocean.parallelEfficiencyAt64 = 0.62;
        w.push_back(ocean);

        Workload radix;
        radix.name = "radix";
        radix.fracInt = 0.48; radix.fracFp = 0.02;
        radix.fracMul = 0.02; radix.fracLoad = 0.27;
        radix.fracStore = 0.14; radix.fracBranch = 0.07;
        radix.branchMispredictRate = 0.03;
        radix.ilp = 2.2;
        radix.l1dMpkiAt32k = 24.0; radix.l1iMpkiAt32k = 0.3;
        radix.l2MpkiAt1M = 11.0; radix.l2MissExponent = 0.3;
        radix.parallelEfficiencyAt64 = 0.68;
        w.push_back(radix);

        Workload raytrace;
        raytrace.name = "raytrace";
        raytrace.fracInt = 0.40; raytrace.fracFp = 0.18;
        raytrace.fracMul = 0.02; raytrace.fracLoad = 0.24;
        raytrace.fracStore = 0.07; raytrace.fracBranch = 0.09;
        raytrace.branchMispredictRate = 0.05;
        raytrace.ilp = 1.9;
        raytrace.l1dMpkiAt32k = 14.0; raytrace.l1iMpkiAt32k = 3.0;
        raytrace.l2MpkiAt1M = 3.5;
        raytrace.parallelEfficiencyAt64 = 0.58;
        w.push_back(raytrace);

        Workload water;
        water.name = "water";
        water.fracInt = 0.32; water.fracFp = 0.32;
        water.fracMul = 0.03; water.fracLoad = 0.20;
        water.fracStore = 0.07; water.fracBranch = 0.06;
        water.branchMispredictRate = 0.02;
        water.ilp = 2.8;
        water.l1dMpkiAt32k = 3.0; water.l1iMpkiAt32k = 0.8;
        water.l2MpkiAt1M = 0.5;
        water.parallelEfficiencyAt64 = 0.85;
        w.push_back(water);

        return w;
    }();
    return table;
}

const std::vector<Workload> &
serverWorkloads()
{
    static const std::vector<Workload> table = [] {
        std::vector<Workload> w;

        // TPC-C-like transaction processing: pointer chasing, huge
        // instruction footprint, branchy, almost no FP.
        Workload oltp;
        oltp.name = "oltp";
        oltp.fracInt = 0.42; oltp.fracFp = 0.01;
        oltp.fracMul = 0.01; oltp.fracLoad = 0.28;
        oltp.fracStore = 0.12; oltp.fracBranch = 0.16;
        oltp.branchMispredictRate = 0.08;
        oltp.ilp = 1.3;
        oltp.l1dMpkiAt32k = 35.0; oltp.l1iMpkiAt32k = 40.0;
        oltp.l2MpkiAt1M = 12.0; oltp.l2MissExponent = 0.4;
        oltp.dirtyFraction = 0.4;
        oltp.parallelEfficiencyAt64 = 0.88;  // independent transactions
        w.push_back(oltp);

        // Web serving: similar shape, slightly better locality.
        Workload web;
        web.name = "web";
        web.fracInt = 0.44; web.fracFp = 0.01;
        web.fracMul = 0.01; web.fracLoad = 0.26;
        web.fracStore = 0.13; web.fracBranch = 0.15;
        web.branchMispredictRate = 0.07;
        web.ilp = 1.4;
        web.l1dMpkiAt32k = 25.0; web.l1iMpkiAt32k = 30.0;
        web.l2MpkiAt1M = 8.0;
        web.parallelEfficiencyAt64 = 0.9;
        w.push_back(web);

        // Decision support: streaming scans, bandwidth-hungry, more
        // regular control flow.
        Workload dss;
        dss.name = "dss";
        dss.fracInt = 0.45; dss.fracFp = 0.04;
        dss.fracMul = 0.02; dss.fracLoad = 0.30;
        dss.fracStore = 0.08; dss.fracBranch = 0.11;
        dss.branchMispredictRate = 0.03;
        dss.ilp = 2.2;
        dss.l1dMpkiAt32k = 30.0; dss.l1iMpkiAt32k = 8.0;
        dss.l2MpkiAt1M = 14.0; dss.l2MissExponent = 0.25;
        dss.dirtyFraction = 0.15;
        dss.parallelEfficiencyAt64 = 0.85;
        w.push_back(dss);

        // SPECjbb-like Java middleware.
        Workload jbb;
        jbb.name = "jbb";
        jbb.fracInt = 0.43; jbb.fracFp = 0.02;
        jbb.fracMul = 0.02; jbb.fracLoad = 0.25;
        jbb.fracStore = 0.13; jbb.fracBranch = 0.15;
        jbb.branchMispredictRate = 0.06;
        jbb.ilp = 1.6;
        jbb.l1dMpkiAt32k = 22.0; jbb.l1iMpkiAt32k = 20.0;
        jbb.l2MpkiAt1M = 7.0;
        jbb.parallelEfficiencyAt64 = 0.86;
        w.push_back(jbb);

        return w;
    }();
    return table;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto &w : splash2Workloads())
        if (w.name == name)
            return w;
    for (const auto &w : serverWorkloads())
        if (w.name == name)
            return w;
    throw ConfigError("unknown workload '" + name + "'");
}

} // namespace perf
} // namespace mcpat
