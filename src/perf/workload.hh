/**
 * @file
 * Workload characterizations for the analytical performance model.
 *
 * SUBSTITUTION (DESIGN.md section 5): the paper drives its manycore
 * case study with the M5 simulator running SPLASH-2.  Offline, this
 * reproduction characterizes eight SPLASH-2-like workloads by their
 * first-order parameters — instruction mix, branch behavior, inherent
 * ILP, cache miss curves (power-law in capacity), and parallel
 * efficiency — and feeds them to an analytical CPI model.  The curves
 * follow the well-known published behavior of the suite (e.g. ocean
 * and radix are memory/bandwidth-bound, barnes and water compute-
 * bound), which is what the case study's trends depend on.
 */

#ifndef MCPAT_PERF_WORKLOAD_HH
#define MCPAT_PERF_WORKLOAD_HH

#include <string>
#include <vector>

namespace mcpat {
namespace perf {

/**
 * First-order characterization of one parallel workload.
 */
struct Workload
{
    std::string name;

    // Dynamic instruction mix (fractions of all instructions).
    double fracInt = 0.4;
    double fracFp = 0.1;
    double fracMul = 0.02;
    double fracLoad = 0.25;
    double fracStore = 0.12;
    double fracBranch = 0.11;

    /** Mispredictions per branch with a tournament predictor. */
    double branchMispredictRate = 0.04;

    /** Inherent instruction-level parallelism (issue-limit cap). */
    double ilp = 2.0;

    // Cache miss curves: MPKI at a reference capacity, scaled by
    // (ref / capacity)^exponent (power-law working sets).
    double l1dMpkiAt32k = 20.0;
    double l1iMpkiAt32k = 2.0;
    double l1MissExponent = 0.5;
    double l2MpkiAt1M = 3.0;
    double l2MissExponent = 0.6;

    /** Fraction of dirty L2 evictions (write-back traffic). */
    double dirtyFraction = 0.3;

    /**
     * Parallel efficiency at 64 cores (speedup / 64); efficiency at
     * other counts interpolates on log2 scale.
     */
    double parallelEfficiencyAt64 = 0.7;

    /** L1D misses per instruction at a given capacity (bytes). */
    double l1dMissesPerInst(double capacity_bytes) const;
    /** L1I misses per instruction at a given capacity (bytes). */
    double l1iMissesPerInst(double capacity_bytes) const;
    /** L2 misses per instruction at a given per-core capacity. */
    double l2MissesPerInst(double capacity_bytes) const;

    /** Parallel efficiency for n cores (1.0 at n = 1). */
    double parallelEfficiency(int cores) const;
};

/** The eight SPLASH-2-like workloads used by the case study. */
const std::vector<Workload> &splash2Workloads();

/**
 * Four commercial server workloads (OLTP / web / DSS / Java business
 * logic): low ILP, large instruction footprints, branchy control, and
 * heavy cache pressure — the throughput-computing profile that
 * motivated Niagara-class designs.
 */
const std::vector<Workload> &serverWorkloads();

/** Look up a workload by name in either suite (throws ConfigError
 *  when unknown). */
const Workload &findWorkload(const std::string &name);

} // namespace perf
} // namespace mcpat

#endif // MCPAT_PERF_WORKLOAD_HH
