/**
 * @file
 * CPI-stack implementation.
 */

#include "perf/cpi_model.hh"

#include <algorithm>
#include <cmath>

namespace mcpat {
namespace perf {

CoreThroughput
computeCoreThroughput(const core::CoreParams &core, const Workload &w,
                      const MemoryHierarchy &mem)
{
    CoreThroughput out;

    // --- Event rates per instruction. -----------------------------------
    out.l1dMissesPerInst =
        w.l1dMissesPerInst(core.dcache.capacityBytes) *
        (w.fracLoad + w.fracStore) / 0.37;  // normalize to mem mix
    out.l1iMissesPerInst =
        w.l1iMissesPerInst(core.icache.capacityBytes);
    out.l2MissesPerInst = std::min(
        w.l2MissesPerInst(mem.l2CapacityPerCore),
        out.l1dMissesPerInst + out.l1iMissesPerInst);

    const double l2_accesses =
        out.l1dMissesPerInst + out.l1iMissesPerInst;
    const double l2_hits = l2_accesses - out.l2MissesPerInst;

    CpiBreakdown cpi;

    // --- Base: issue-width and inherent-ILP limited. ---------------------
    // In-order issue loses slots to scheduling hazards.
    const double width_eff =
        core.outOfOrder ? 0.85 * core.issueWidth
                        : 0.65 * core.issueWidth + 0.35;
    cpi.base = 1.0 / std::min(width_eff, w.ilp);

    // --- Branch flushes. ---------------------------------------------------
    const double flush_penalty = 0.75 * core.pipelineStages;
    const double mispredict_rate = core.hasBranchPredictor
        ? w.branchMispredictRate
        : std::min(0.5, w.branchMispredictRate * 3.0);
    cpi.branch = w.fracBranch * mispredict_rate * flush_penalty;

    // --- Memory-level parallelism: how much of a stall overlaps. --------
    double mlp = 1.0;
    if (core.outOfOrder) {
        mlp = std::min({std::sqrt(core.robEntries / 8.0),
                        static_cast<double>(core.dcache.mshrs),
                        6.0});
    }

    // --- L2 and memory stalls (per instruction). -------------------------
    cpi.l2 = l2_hits * mem.l2HitCycles / mlp;
    cpi.memory = out.l2MissesPerInst * mem.memoryCycles / mlp;

    out.threadCpi = cpi;

    // --- Multithreading: threads fill each other's stall slots; the
    //     core saturates at its effective issue width. -------------------
    const double per_thread_ipc = cpi.ipc();
    const double mt_demand = core.threads * per_thread_ipc;
    out.coreIpc = std::min(mt_demand,
                           std::min(width_eff, w.ilp * 1.5));
    return out;
}

} // namespace perf
} // namespace mcpat
