/**
 * @file
 * Performance-to-activity bridge implementation.
 */

#include "perf/activity_gen.hh"

#include <algorithm>

namespace mcpat {
namespace perf {

stats::ChipStats
makeRuntimeStats(const chip::SystemParams &sys, const Workload &w,
                 const SystemPerformance &perf)
{
    stats::ChipStats s;

    const double ipc = perf.perCoreIpc;
    const auto &ct = perf.coreDetail;
    core::CoreStats &c = s.perCore;

    c.fetches = ipc * (1.0 + w.fracBranch * w.branchMispredictRate *
                                 4.0);  // wrong-path overfetch
    c.decodes = c.fetches;
    c.commits = ipc;

    if (sys.core.outOfOrder) {
        c.renames = c.decodes;
        c.dispatches = c.decodes;
        c.intIssues = ipc * (w.fracInt + w.fracMul + w.fracLoad +
                             w.fracStore + w.fracBranch);
        c.fpIssues = ipc * w.fracFp;
    }

    c.intOps = ipc * (w.fracInt + w.fracBranch);
    c.fpOps = sys.core.hasFpu ? ipc * w.fracFp : 0.0;
    c.mulOps = ipc * w.fracMul;
    c.branches = ipc * w.fracBranch;
    c.bypasses = ipc * 0.5;

    c.intRegReads = 1.6 * (c.intOps + c.mulOps + ipc * (w.fracLoad +
                                                        w.fracStore));
    c.intRegWrites = 0.8 * (c.intOps + c.mulOps + ipc * w.fracLoad);
    c.fpRegReads = 1.6 * c.fpOps;
    c.fpRegWrites = 0.8 * c.fpOps;

    c.loads = ipc * w.fracLoad;
    c.stores = ipc * w.fracStore;

    const double fetch_reuse = (sys.core.threads > 1) ? 1.5 : 4.0;
    const double if_accesses = c.fetches / fetch_reuse;
    const double ii_misses = ipc * ct.l1iMissesPerInst;
    s.perCore.icacheRates.readHits =
        std::max(0.0, if_accesses - ii_misses);
    s.perCore.icacheRates.readMisses = ii_misses;

    const double d_misses = ipc * ct.l1dMissesPerInst;
    const double d_accesses = c.loads + c.stores;
    const double d_miss_split =
        std::min(d_misses, d_accesses);
    s.perCore.dcacheRates.readHits =
        std::max(0.0, c.loads - 0.7 * d_miss_split);
    s.perCore.dcacheRates.readMisses = 0.7 * d_miss_split;
    s.perCore.dcacheRates.writeHits =
        std::max(0.0, c.stores - 0.3 * d_miss_split);
    s.perCore.dcacheRates.writeMisses = 0.3 * d_miss_split;

    c.itlbAccesses = if_accesses;
    c.dtlbAccesses = d_accesses;
    c.itlbMisses = if_accesses * 0.001;
    c.dtlbMisses = d_accesses * 0.001;

    // Pipeline data activity and clock gating track utilization.
    const double peak_ipc = 0.8 * sys.core.issueWidth;
    const double busy = std::min(1.0, ipc / peak_ipc);
    c.pipelineActivity = 0.1 + 0.25 * busy;
    c.clockGating = 0.35 + 0.65 * busy;
    if (sys.core.powerGating)
        c.sleepFraction = 0.8 * (1.0 - busy);

    // --- Shared caches. -----------------------------------------------------
    const double l2_acc = perf.l2AccessesPerCycle;
    const double l2_miss =
        std::min(perf.l2MissesPerCycle, l2_acc);
    s.l2Rates.readHits = std::max(0.0, 0.75 * l2_acc - l2_miss);
    s.l2Rates.readMisses = 0.75 * l2_miss;
    s.l2Rates.writeHits = 0.25 * l2_acc;
    s.l2Rates.writeMisses = 0.25 * l2_miss;

    if (sys.numL3 > 0) {
        const double l3_acc =
            l2_miss * sys.numL2 / std::max(1, sys.numL3);
        s.l3Rates.readHits = 0.6 * l3_acc;
        s.l3Rates.readMisses = 0.25 * l3_acc;
        s.l3Rates.writeHits = 0.1 * l3_acc;
        s.l3Rates.writeMisses = 0.05 * l3_acc;
    }

    s.nocFlitsPerCycle = perf.nocFlitsPerCycle;
    s.mcUtilization = perf.memBandwidthUtil;
    s.ioActivityScale = std::min(1.0, perf.memBandwidthUtil + 0.1);
    return s;
}

} // namespace perf
} // namespace mcpat
