/**
 * @file
 * Analytical CPI-stack model for one core running one workload.
 *
 * Captures the first-order performance effects the case study depends
 * on: issue-width/ILP limits, branch-misprediction flushes, cache-
 * hierarchy stalls with MLP-limited overlap in out-of-order cores, and
 * latency hiding from fine-grained multithreading in in-order cores.
 */

#ifndef MCPAT_PERF_CPI_MODEL_HH
#define MCPAT_PERF_CPI_MODEL_HH

#include "core/core_params.hh"
#include "perf/workload.hh"

namespace mcpat {
namespace perf {

/** Latencies/capacities of everything past the L1s, in core cycles. */
struct MemoryHierarchy
{
    double l2HitCycles = 15.0;       ///< incl. fabric traversal
    double l2CapacityPerCore = 1.0e6;///< bytes visible to one core
    double memoryCycles = 200.0;     ///< DRAM access latency
};

/** CPI decomposition of one hardware thread. */
struct CpiBreakdown
{
    double base = 0.0;     ///< issue/ILP-limited component
    double branch = 0.0;   ///< misprediction flushes
    double l2 = 0.0;       ///< L1-miss / L2-hit stalls
    double memory = 0.0;   ///< L2-miss / DRAM stalls

    double total() const { return base + branch + l2 + memory; }
    double ipc() const { return 1.0 / total(); }
};

/** Per-core throughput result. */
struct CoreThroughput
{
    CpiBreakdown threadCpi;  ///< CPI of one hardware thread
    double coreIpc = 0.0;    ///< all threads combined, per core cycle

    // Per-instruction event rates used for power activity factors.
    double l1dMissesPerInst = 0.0;
    double l1iMissesPerInst = 0.0;
    double l2MissesPerInst = 0.0;
};

/**
 * Compute a single core's throughput on a workload.
 *
 * Out-of-order cores overlap memory stalls up to their MLP (bounded by
 * ROB depth and MSHRs); multithreaded in-order cores hide thread
 * stalls behind other threads, saturating at the issue width.
 */
CoreThroughput computeCoreThroughput(const core::CoreParams &core,
                                     const Workload &w,
                                     const MemoryHierarchy &mem);

} // namespace perf
} // namespace mcpat

#endif // MCPAT_PERF_CPI_MODEL_HH
