/**
 * @file
 * Bridge from performance results to McPAT activity statistics: turns a
 * SystemPerformance (per-instruction event rates and throughput) into
 * the per-cycle ChipStats the power models consume — the "runtime
 * statistics" input of the paper's framework diagram.
 */

#ifndef MCPAT_PERF_ACTIVITY_GEN_HH
#define MCPAT_PERF_ACTIVITY_GEN_HH

#include "perf/system_model.hh"
#include "stats/activity_stats.hh"

namespace mcpat {
namespace perf {

/**
 * Build the runtime activity vector for a workload result on a system.
 */
stats::ChipStats makeRuntimeStats(const chip::SystemParams &sys,
                                  const Workload &w,
                                  const SystemPerformance &perf);

} // namespace perf
} // namespace mcpat

#endif // MCPAT_PERF_ACTIVITY_GEN_HH
