/**
 * @file
 * Multicore contention model implementation.
 */

#include "perf/system_model.hh"

#include <algorithm>
#include <cmath>

namespace mcpat {
namespace perf {

namespace {

/** DRAM access latency (controller + device + queue floor), s. */
constexpr double dramLatency = 60.0e-9;

/** Router pipeline depth per hop, fabric cycles. */
constexpr double hopCycles = 3.0;

/** Cache line size used for bandwidth accounting, bytes. */
constexpr double lineBytes = 64.0;

double
fabricHops(const chip::SystemParams &sys)
{
    if (!sys.hasNoc)
        return 0.0;
    switch (sys.noc.topology) {
      case uncore::NocTopology::Mesh2D:
        return (sys.noc.nodesX + sys.noc.nodesY) / 3.0;
      case uncore::NocTopology::Ring:
        return sys.noc.nodes() / 4.0 + 1.0;
      default:
        return 1.0;
    }
}

double
memPeakBandwidth(const chip::SystemParams &sys)
{
    if (!sys.hasMemCtrl)
        return 1e18;  // effectively unlimited
    const auto &m = sys.memCtrl;
    const double per_channel = (m.peakBandwidth > 0.0)
        ? m.peakBandwidth
        : m.busClock * 2.0 * (m.dataBusBits / 8.0);
    return per_channel * m.channels;
}

} // namespace

SystemPerformance
evaluateSystem(const chip::SystemParams &sys, const Workload &w)
{
    SystemPerformance perf;
    perf.workload = w.name;

    const double f = sys.core.clockRate;
    const int cores = sys.numCores;
    const int l2_instances = std::max(1, sys.numL2);
    const int l2_banks_total = l2_instances * std::max(1, sys.l2.banks);

    MemoryHierarchy mem;
    mem.l2CapacityPerCore = (sys.numL2 > 0)
        ? sys.l2.capacityBytes * sys.numL2 / cores
        : 0.0;
    mem.memoryCycles = dramLatency * f + 2.0 * fabricHops(sys) *
                       hopCycles;

    // L2 hit latency grows with bank capacity (longer wordlines and
    // H-trees) and with intra-cluster arbitration among sharers.
    const double l2_capacity = (sys.numL2 > 0) ? sys.l2.capacityBytes
                                               : 256.0 * 1024;
    const int sharers = std::max(1, cores / l2_instances);
    const double base_l2_hit =
        8.0 + 2.5 * std::log2(std::max(1.0, l2_capacity / (256.0 * 1024))) +
        0.6 * (sharers - 1) + 2.0 * fabricHops(sys) * hopCycles;

    // Fixed point between throughput and contention.
    double queue_factor = 1.0;
    double bw_scale = 1.0;
    CoreThroughput core_tp;
    double agg_ipc = 0.0;
    for (int iter = 0; iter < 8; ++iter) {
        mem.l2HitCycles = base_l2_hit * queue_factor;
        core_tp = computeCoreThroughput(sys.core, w, mem);

        const double par_eff = w.parallelEfficiency(cores);
        agg_ipc = core_tp.coreIpc * cores * par_eff * bw_scale;

        // Shared-cache bank queueing (M/D/1-flavored penalty).
        const double l2_accesses_per_cycle =
            agg_ipc * (core_tp.l1dMissesPerInst +
                       core_tp.l1iMissesPerInst);
        const double rho = std::min(
            0.95, l2_accesses_per_cycle / l2_banks_total);
        queue_factor = 1.0 + 0.5 * rho / (1.0 - rho);

        // Memory bandwidth cap.
        const double misses_per_sec =
            agg_ipc * f * core_tp.l2MissesPerInst;
        const double demand =
            misses_per_sec * lineBytes * (1.0 + w.dirtyFraction);
        perf.memBandwidthDemand = demand;
        const double peak = memPeakBandwidth(sys);
        const double new_scale = std::min(1.0, peak / std::max(demand,
                                                               1.0));
        // Damped update for stable convergence.
        bw_scale = 0.5 * bw_scale + 0.5 * std::min(bw_scale * new_scale /
                                                   std::max(bw_scale,
                                                            1e-9),
                                                   new_scale);
    }

    perf.coreDetail = core_tp;
    perf.parallelEfficiency = w.parallelEfficiency(cores);
    perf.aggregateIpc = agg_ipc;
    perf.perCoreIpc = agg_ipc / cores;
    perf.throughput = agg_ipc * f;
    perf.bandwidthLimited = bw_scale < 0.99;
    perf.memBandwidthUtil = std::min(
        1.0, perf.memBandwidthDemand * bw_scale /
                 memPeakBandwidth(sys));

    const double l2_accesses_per_cycle =
        agg_ipc * (core_tp.l1dMissesPerInst + core_tp.l1iMissesPerInst);
    perf.l2AccessesPerCycle = l2_accesses_per_cycle / l2_instances;
    perf.l2MissesPerCycle =
        agg_ipc * core_tp.l2MissesPerInst / l2_instances;
    perf.nocFlitsPerCycle = 2.0 * l2_accesses_per_cycle;
    return perf;
}

} // namespace perf
} // namespace mcpat
