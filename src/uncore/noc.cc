/**
 * @file
 * Interconnect-fabric implementation.
 */

#include "uncore/noc.hh"

#include <algorithm>
#include <cmath>

#include "circuit/wire.hh"

namespace mcpat {
namespace uncore {

using namespace circuit;

Noc::Noc(NocParams params, const Technology &t)
    : _params(std::move(params))
{
    fatalIf(_params.nodes() < 1, "NoC with no nodes");

    RouterParams rp = _params.router;
    rp.flitBits = _params.flitBits;
    rp.clockRate = _params.clockRate;
    switch (_params.topology) {
      case NocTopology::Mesh2D:
        rp.ports = 5;
        _numLinks = 2 * _params.nodes();  // ~2 unidirectional per node
        break;
      case NocTopology::Torus2D:
        rp.ports = 5;
        // Wraparound channels double the link count; folded-torus
        // layout doubles each hop's physical span.
        _numLinks = 4 * _params.nodes();
        break;
      case NocTopology::Ring:
        rp.ports = 3;
        _numLinks = 2 * _params.nodes();
        break;
      case NocTopology::Bus:
        rp.ports = 2;  // bus interface, no real router
        _numLinks = 1;
        break;
      case NocTopology::Crossbar:
        rp.ports = std::max(2, _params.nodes());
        _numLinks = _params.nodes();
        break;
    }
    _router = std::make_unique<Router>(rp, t);

    // Links: repeated wires, one per flit bit.  Bus/crossbar links span
    // a large fraction of the fabric rather than one hop.
    double link_len = _params.linkLength;
    if (_params.topology == NocTopology::Bus)
        link_len = _params.linkLength * _params.nodes() * 0.5;
    else if (_params.topology == NocTopology::Torus2D)
        link_len = _params.linkLength * 2.0;  // folded layout
    const double eff_len = std::max(link_len, 10.0 * um);
    if (_params.lowSwingLinks) {
        const LowSwingWire link(eff_len, tech::WireLayer::Global, t);
        _linkEnergyPerFlit =
            0.5 * _params.flitBits * link.energyPerEvent();
        _linkDelay = link.delay();
        _linkSubLeak = _numLinks * _params.flitBits *
                       link.subthresholdLeakage();
        _linkGateLeak =
            _numLinks * _params.flitBits * link.gateLeakage();
        _linkArea = _numLinks * _params.flitBits * link.area();
    } else {
        const RepeatedWire link(eff_len, tech::WireLayer::Global, t);
        _linkEnergyPerFlit =
            0.5 * _params.flitBits * link.energyPerEvent();
        _linkDelay = link.delay();
        _linkSubLeak = _numLinks * _params.flitBits *
                       link.subthresholdLeakage();
        _linkGateLeak =
            _numLinks * _params.flitBits * link.gateLeakage();
        _linkArea = _numLinks * _params.flitBits * link.area();
    }

    // Flat fabrics (bus, Niagara-style crossbar) occupy a dedicated
    // die channel: count the routing tracks of all per-node buses as
    // silicon area, unlike mesh/ring links that ride over the tiles.
    if (_params.topology == NocTopology::Bus ||
        _params.topology == NocTopology::Crossbar) {
        const double pitch =
            t.wire(tech::WireLayer::Intermediate).pitch;
        _linkArea += 2.0 * _params.nodes() * _params.flitBits * pitch *
                     link_len;
    }
}

double
Noc::energyPerFlitHop() const
{
    const bool routed = _params.topology == NocTopology::Mesh2D ||
                        _params.topology == NocTopology::Torus2D ||
                        _params.topology == NocTopology::Ring;
    const double router_e = routed || _params.topology ==
                                NocTopology::Crossbar
        ? _router->energyPerFlit()
        : _router->energyPerFlit() * 0.3;  // bus: interface only
    return router_e + _linkEnergyPerFlit;
}

double
Noc::averageHops() const
{
    switch (_params.topology) {
      case NocTopology::Mesh2D:
        return (_params.nodesX + _params.nodesY) / 3.0;
      case NocTopology::Torus2D:
        // Wraparound halves the average Manhattan distance.
        return (_params.nodesX + _params.nodesY) / 6.0 + 0.5;
      case NocTopology::Ring:
        return _params.nodes() / 4.0 + 1.0;
      case NocTopology::Bus:
      case NocTopology::Crossbar:
      default:
        return 1.0;
    }
}

double
Noc::averageLatency() const
{
    return averageHops() * (_router->delay() + _linkDelay);
}

double
Noc::area() const
{
    const int routers = (_params.topology == NocTopology::Bus ||
                         _params.topology == NocTopology::Crossbar)
        ? 1
        : _params.nodes();
    return routers * _router->area() + _linkArea;
}

Report
Noc::makeReport(double tdp_flits, double rt_flits) const
{
    const double hops = averageHops();
    const double e = energyPerFlitHop();

    Report r;
    r.name = _params.name;
    r.area = area();
    r.peakDynamic = tdp_flits * hops * e * _params.clockRate;
    r.runtimeDynamic = rt_flits * hops * e * _params.clockRate;

    const int routers = (_params.topology == NocTopology::Bus ||
                         _params.topology == NocTopology::Crossbar)
        ? 1
        : _params.nodes();
    r.subthresholdLeakage =
        routers * _router->subthresholdLeakage() + _linkSubLeak;
    r.gateLeakage = routers * _router->gateLeakage() + _linkGateLeak;
    r.criticalPath = _router->delay() + _linkDelay;
    return r;
}

} // namespace uncore
} // namespace mcpat
