/**
 * @file
 * Chip-I/O implementation.
 */

#include "uncore/chip_io.hh"

#include "common/logging.hh"

namespace mcpat {
namespace uncore {

ChipIo::ChipIo(ChipIoParams params, const Technology &t)
    : _params(std::move(params))
{
    fatalIf(_params.signalPins < 0, "negative pin count");
    (void)t;

    // Pad cells: ~0.025 mm^2 per signal pad (ESD + driver + level
    // shifting), roughly node-independent at the generations modeled.
    _area = _params.signalPins * 0.025 * mm2;

    _dynPerScale = _params.signalPins * _params.pinCap *
                   _params.ioVoltage * _params.ioVoltage *
                   _params.toggleRate * _params.busClock;
}

Report
ChipIo::makeReport(double tdp_activity_scale,
                   double rt_activity_scale) const
{
    Report r;
    r.name = _params.name;
    r.area = _area;
    r.peakDynamic = _dynPerScale * tdp_activity_scale +
                    _params.staticPower;
    r.runtimeDynamic = _dynPerScale * rt_activity_scale +
                       _params.staticPower;
    return r;
}

} // namespace uncore
} // namespace mcpat
