/**
 * @file
 * Shared-cache implementation.
 */

#include "uncore/shared_cache.hh"

#include <cmath>

#include "circuit/dff.hh"
#include "circuit/transistor.hh"
#include "logic/functional_unit.hh"

namespace mcpat {
namespace uncore {

SharedCache::SharedCache(SharedCacheParams params, const Technology &t)
    : _params(std::move(params))
{
    array::CacheParams cp;
    cp.name = _params.name;
    cp.capacityBytes = _params.capacityBytes;
    cp.blockBytes = _params.blockBytes;
    cp.assoc = _params.assoc;
    cp.banks = _params.banks;
    cp.readWritePorts = _params.ports;
    cp.sequentialAccess = true;  // large caches probe tags first
    cp.mshrs = _params.mshrs;
    cp.writeBackEntries = _params.writeBackEntries;
    cp.physicalAddressBits = _params.physicalAddressBits;
    cp.flavor = _params.flavor;
    cp.targetCycleTime = 2.0 / _params.clockRate;  // banked, pipelined

    // Directory bits ride in the tags: state + one presence bit per
    // sharer.
    cp.extraTagBits = 6 + _params.directorySharers;
    cp.ecc = _params.ecc;
    cp.dataCell = _params.dataCell;

    _cache = std::make_unique<array::CacheModel>(cp, t);

    // --- Controller: coherence/scheduling logic, ~25k gates per bank.
    const double ctrl_gates = 25000.0 * _params.banks;
    _ctrlArea = ctrl_gates * t.logicGateArea();
    const logic::LogicLeakage l = logic::logicBlockLeakage(_ctrlArea, t);
    _ctrlSubLeak = l.subthreshold;
    _ctrlGateLeak = l.gate;
    _ctrlEnergyPerAccess =
        0.15 * ctrl_gates / _params.banks * circuit::logicGateEnergy(t);

    // --- Bank clock distribution: the macro's pipeline latches and
    //     clock spine (large caches are clocked at the core rate).
    const circuit::Dff flop(t);
    const double macro_gates =
        0.25 * _cache->area() / t.logicGateArea();  // periphery share
    const double sink_cap = 0.08 * macro_gates * flop.clockC();
    _clock = std::make_unique<circuit::ClockNetwork>(
        _cache->area() + _ctrlArea, sink_cap, t);
}

Report
SharedCache::makeReport(const array::CacheRates &tdp,
                        const array::CacheRates &rt) const
{
    Report r = _cache->makeReport(_params.clockRate, tdp, rt);

    Report ctrl;
    ctrl.name = "Cache Controller";
    ctrl.area = _ctrlArea;
    ctrl.peakDynamic =
        _ctrlEnergyPerAccess * tdp.accesses() * _params.clockRate;
    ctrl.runtimeDynamic =
        _ctrlEnergyPerAccess * rt.accesses() * _params.clockRate;
    ctrl.subthresholdLeakage = _ctrlSubLeak;
    ctrl.gateLeakage = _ctrlGateLeak;
    r.addChild(std::move(ctrl));

    // Clock tree runs at full rate; runtime assumes ~60% gating when
    // the cache idles (approximated by access duty).
    const double duty =
        std::min(1.0, 0.4 + rt.accesses() / std::max(1e-9,
                                                     tdp.accesses()));
    r.addChild(_clock->makeReport(_params.clockRate, duty));
    return r;
}

} // namespace uncore
} // namespace mcpat
