/**
 * @file
 * Router implementation.
 */

#include "uncore/router.hh"

#include <cmath>

#include "circuit/elmore.hh"
#include "circuit/logical_effort.hh"
#include "circuit/wire.hh"

namespace mcpat {
namespace uncore {

using namespace circuit;
using array::ArrayModel;
using array::ArrayParams;

Router::Router(RouterParams params, const Technology &t)
    : _params(params)
{
    fatalIf(params.ports < 2, "router needs at least 2 ports");
    fatalIf(params.flitBits < 8, "flit narrower than 8 bits");

    // --- Input buffers: one SRAM FIFO per port. -------------------------
    ArrayParams buf;
    buf.name = "Input Buffer";
    buf.rows = std::max(2, params.virtualChannels * params.bufferDepth);
    buf.bits = params.flitBits;
    buf.readPorts = 1;
    buf.writePorts = 1;
    buf.readWritePorts = 0;
    _inputBuffer = std::make_unique<ArrayModel>(buf, t);

    // --- Allocators. -------------------------------------------------------
    _vcAllocator = std::make_unique<logic::Arbiter>(
        std::max(2, params.virtualChannels * (params.ports - 1)), t);
    _swAllocator = std::make_unique<logic::Arbiter>(
        std::max(2, params.ports), t);

    // --- Crossbar: flitBits wires per input crossing all outputs. -------
    // Wire length across the crossbar matrix, with one pass-gate
    // crosspoint load per output.
    const double pitch = t.wire(tech::WireLayer::Intermediate).pitch;
    const double xbar_span = params.ports * params.flitBits * pitch * 2.0;
    const Wire cross_wire(xbar_span, tech::WireLayer::Intermediate, t);
    const double wmin = minWidth(t);
    const double crosspoint_c = drainC(4.0 * wmin, t);
    const double wire_c = cross_wire.capacitance() +
                          params.ports * crosspoint_c;

    const BufferChain driver(wire_c, t);
    // In + out wires per flit bit.
    _xbarEnergyPerFlit = params.flitBits *
        (driver.energyPerEvent() + wire_c * t.vdd() * t.vdd()) * 0.5;
    _xbarDelay = driver.delay() +
        distributedLineDelay(0.0, cross_wire.resistance(), wire_c, 0.0);

    const double n_wires = 2.0 * params.ports * params.flitBits;
    _xbarSubLeak = n_wires * driver.subthresholdLeakage() +
                   params.ports * params.ports * params.flitBits *
                       circuit::subthresholdLeakage(4.0 * wmin,
                                                    4.0 * wmin, t, 0.7);
    _xbarGateLeak = n_wires * driver.gateLeakage() +
                    params.ports * params.ports * params.flitBits *
                        circuit::gateLeakage(8.0 * wmin, t);
    _xbarArea = n_wires * driver.area() +
                params.ports * params.ports * params.flitBits *
                    t.logicGateArea();
}

double
Router::energyPerFlit() const
{
    // Write into and read out of an input buffer, allocate, traverse.
    return _inputBuffer->writeEnergy() + _inputBuffer->readEnergy() +
           _vcAllocator->energyPerArb() + _swAllocator->energyPerArb() +
           _xbarEnergyPerFlit;
}

double
Router::area() const
{
    return _params.ports * _inputBuffer->area() +
           _params.ports * (_vcAllocator->area() + _swAllocator->area()) +
           _xbarArea;
}

double
Router::subthresholdLeakage() const
{
    return _params.ports * _inputBuffer->subthresholdLeakage() +
           _params.ports * (_vcAllocator->subthresholdLeakage() +
                            _swAllocator->subthresholdLeakage()) +
           _xbarSubLeak;
}

double
Router::gateLeakage() const
{
    return _params.ports * _inputBuffer->gateLeakage() +
           _params.ports * (_vcAllocator->gateLeakage() +
                            _swAllocator->gateLeakage()) +
           _xbarGateLeak;
}

double
Router::delay() const
{
    return _inputBuffer->accessDelay() +
           std::max(_vcAllocator->delay(), _swAllocator->delay()) +
           _xbarDelay;
}

Report
Router::makeReport(double tdp_flits, double rt_flits) const
{
    Report r;
    r.name = "Router";
    r.area = area();
    r.peakDynamic = energyPerFlit() * tdp_flits * _params.clockRate;
    r.runtimeDynamic = energyPerFlit() * rt_flits * _params.clockRate;
    r.subthresholdLeakage = subthresholdLeakage();
    r.gateLeakage = gateLeakage();
    r.criticalPath = delay();
    return r;
}

} // namespace uncore
} // namespace mcpat
