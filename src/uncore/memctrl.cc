/**
 * @file
 * Memory-controller implementation.
 *
 * The PHY dominates: off-chip signaling costs tens of pJ/bit (I/O
 * swing, termination, SerDes for FB-DIMM), dwarfing the on-chip
 * transaction logic.  PHY energies below follow published interface
 * figures of the DDR2/DDR3/FB-DIMM era.
 */

#include "uncore/memctrl.hh"

#include "logic/functional_unit.hh"

namespace mcpat {
namespace uncore {

namespace {

/** Pin-interface energy per transferred bit, J. */
double
phyEnergyPerBit(DramType type)
{
    switch (type) {
      case DramType::DDR2:
        return 38.0 * pJ;
      case DramType::DDR3:
        return 28.0 * pJ;
      case DramType::FbDimm:
        return 45.0 * pJ;  // serial links + AMB protocol overhead
      case DramType::Rdram:
      default:
        return 50.0 * pJ;
    }
}

/** Static bias/termination power per channel, W. */
double
phyStaticPerChannel(DramType type)
{
    switch (type) {
      case DramType::DDR2:
        return 0.25;
      case DramType::DDR3:
        return 0.20;
      case DramType::FbDimm:
        return 0.9;  // always-on SerDes lanes
      case DramType::Rdram:
      default:
        return 0.6;
    }
}

/** Data-rate multiplier on the bus clock. */
double
transfersPerClock(DramType type)
{
    (void)type;
    return 2.0;  // double-data-rate signaling on all modeled families
}

} // namespace

MemoryController::MemoryController(MemCtrlParams params,
                                   const Technology &t)
    : _params(std::move(params))
{
    fatalIf(_params.channels < 1, "memory controller needs channels");
    fatalIf(_params.dataBusBits < 8, "data bus narrower than a byte");

    const double per_channel = (_params.peakBandwidth > 0.0)
        ? _params.peakBandwidth
        : _params.busClock * transfersPerClock(_params.dramType) *
              (_params.dataBusBits / 8.0);
    _peakBandwidth = per_channel * _params.channels;

    // --- Front end: request queue + scheduler per channel. ----------------
    array::ArrayParams rq;
    rq.name = "Request Queue";
    rq.rows = _params.requestQueueEntries;
    rq.bits = _params.physicalAddressBits + 32;  // address + command
    rq.readPorts = 1;
    rq.writePorts = 1;
    rq.readWritePorts = 0;
    _requestQueue = std::make_unique<array::ArrayModel>(rq, t);
    _scheduler = std::make_unique<logic::Arbiter>(
        _params.requestQueueEntries, t);

    // --- Back end: transaction engine as synthesized logic. ---------------
    const double backend_area = 35000.0 * t.logicGateArea();
    const logic::LogicLeakage backend_leak =
        logic::logicBlockLeakage(backend_area, t);

    // --- PHY: area scales with pins; energy with bits moved.  I/O
    //     cells (drivers, ESD, DLLs) are pad-limited at ~0.04 mm^2 per
    //     interface pin — DRAM PHYs are among the largest uncore blocks.
    const int pins_per_channel = _params.dataBusBits + 40;  // addr/cmd
    const double phy_area =
        _params.channels * pins_per_channel * 0.04 * mm2;
    _phyStaticPower = _params.channels *
                      phyStaticPerChannel(_params.dramType);

    // Per-byte energy: PHY bits + a slice of queue/scheduler work per
    // 64-byte transaction.
    const double queue_e_per_txn =
        _requestQueue->readEnergy() + _requestQueue->writeEnergy() +
        _scheduler->energyPerArb();
    _energyPerByte = phyEnergyPerBit(_params.dramType) * 8.0 +
                     queue_e_per_txn / 64.0;

    _area = _params.channels *
                (_requestQueue->area() + _scheduler->area()) +
            backend_area + phy_area;
    _subLeak = _params.channels *
                   (_requestQueue->subthresholdLeakage() +
                    _scheduler->subthresholdLeakage()) +
               backend_leak.subthreshold;
    _gateLeak = _params.channels *
                    (_requestQueue->gateLeakage() +
                     _scheduler->gateLeakage()) +
                backend_leak.gate;
}

Report
MemoryController::makeReport(double tdp_utilization,
                             double rt_utilization) const
{
    fatalIf(tdp_utilization < 0.0 || tdp_utilization > 1.0 ||
                rt_utilization < 0.0 || rt_utilization > 1.0,
            "MC utilization must be within [0, 1]");
    Report r;
    r.name = _params.name;
    r.area = _area;
    r.peakDynamic = _energyPerByte * _peakBandwidth * tdp_utilization +
                    _phyStaticPower;
    r.runtimeDynamic = _energyPerByte * _peakBandwidth * rt_utilization +
                       _phyStaticPower;
    r.subthresholdLeakage = _subLeak;
    r.gateLeakage = _gateLeak;
    return r;
}

} // namespace uncore
} // namespace mcpat
