/**
 * @file
 * Coherence-directory implementation.
 */

#include "uncore/directory.hh"

#include <cmath>

namespace mcpat {
namespace uncore {

Directory::Directory(DirectoryParams params, const Technology &t)
    : _params(std::move(params))
{
    fatalIf(_params.trackedLines < 1, "directory tracks no lines");
    fatalIf(_params.sharers < 1, "directory needs at least one sharer");

    const int offset_bits = static_cast<int>(
        std::ceil(std::log2(std::max(2, _params.blockBytes))));
    const int line_addr_bits = _params.physicalAddressBits - offset_bits;

    array::ArrayParams p;
    p.name = _params.name;
    p.banks = _params.banks;
    p.flavor = _params.flavor;
    p.targetCycleTime = 2.0 / _params.clockRate;

    if (_params.style == DirectoryStyle::DuplicateTags) {
        // One CAM entry per mirrored tag: searched by line address,
        // the match vector itself is the sharer list.
        p.rows = _params.trackedLines;
        p.bits = line_addr_bits + 2;  // tag + state
        p.cellType = array::CellType::CAM;
        p.searchPorts = 1;
        p.readPorts = 1;
        p.writePorts = 1;
        p.readWritePorts = 0;
    } else {
        // Sparse full map: indexed by line address hash; each entry
        // holds a tag fragment, state, and the presence vector.
        const int index_bits = static_cast<int>(std::ceil(
            std::log2(std::max(2, _params.trackedLines))));
        p.rows = _params.trackedLines;
        p.bits = (line_addr_bits - index_bits) + 4 + _params.sharers;
    }
    _array = std::make_unique<array::ArrayModel>(p, t);
}

double
Directory::area() const
{
    return _array->area();
}

double
Directory::lookupEnergy() const
{
    return _params.style == DirectoryStyle::DuplicateTags
        ? _array->searchEnergy()
        : _array->readEnergy();
}

double
Directory::updateEnergy() const
{
    return _array->writeEnergy();
}

double
Directory::accessDelay() const
{
    return _array->accessDelay();
}

Report
Directory::makeReport(const DirectoryRates &tdp,
                      const DirectoryRates &rt) const
{
    auto dynamic = [this](const DirectoryRates &r) {
        return (r.lookups * lookupEnergy() +
                r.updates * updateEnergy()) * _params.clockRate;
    };
    Report rep;
    rep.name = _params.name;
    rep.area = area();
    rep.peakDynamic = dynamic(tdp);
    rep.runtimeDynamic = dynamic(rt);
    rep.subthresholdLeakage = _array->subthresholdLeakage();
    rep.gateLeakage = _array->gateLeakage();
    rep.criticalPath = accessDelay();
    return rep;
}

} // namespace uncore
} // namespace mcpat
