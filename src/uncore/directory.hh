/**
 * @file
 * Standalone coherence-directory model.
 *
 * Beyond the in-tag presence bits of SharedCacheParams, larger systems
 * keep a dedicated directory: either duplicate tags (a CAM searched by
 * block address, Niagara-style) or a sparse full-map directory (an
 * SRAM indexed by block address with one presence vector per tracked
 * line).  Both reduce to the array model.
 */

#ifndef MCPAT_UNCORE_DIRECTORY_HH
#define MCPAT_UNCORE_DIRECTORY_HH

#include <memory>

#include "array/array_model.hh"

namespace mcpat {
namespace uncore {

using tech::Technology;

/** Directory organization style. */
enum class DirectoryStyle
{
    DuplicateTags,  ///< CAM of all cached tags, searched per request
    SparseFullMap   ///< SRAM of presence vectors, indexed per request
};

/** Directory parameters. */
struct DirectoryParams
{
    std::string name = "Coherence Directory";
    DirectoryStyle style = DirectoryStyle::SparseFullMap;

    /** Cache lines tracked (sparse) or mirrored tags (duplicate). */
    int trackedLines = 64 * 1024;

    int sharers = 16;             ///< presence-vector width
    int physicalAddressBits = 42;
    int blockBytes = 64;
    int banks = 4;
    double clockRate = 1.0e9;
    tech::DeviceFlavor flavor = tech::DeviceFlavor::HP;
};

/** Per-cycle directory traffic. */
struct DirectoryRates
{
    double lookups = 0.0;   ///< coherence requests per cycle
    double updates = 0.0;   ///< sharer-vector writes per cycle
};

/**
 * One directory instance.
 */
class Directory
{
  public:
    Directory(DirectoryParams params, const Technology &t);

    const DirectoryParams &params() const { return _params; }

    double area() const;
    double lookupEnergy() const;
    double updateEnergy() const;
    double accessDelay() const;

    Report makeReport(const DirectoryRates &tdp,
                      const DirectoryRates &rt) const;

  private:
    DirectoryParams _params;
    std::unique_ptr<array::ArrayModel> _array;
};

} // namespace uncore
} // namespace mcpat

#endif // MCPAT_UNCORE_DIRECTORY_HH
