/**
 * @file
 * NoC router model: virtual-channel input buffers, crossbar, and the
 * VC/switch allocators, following the Orion-style decomposition the
 * paper adopts.
 */

#ifndef MCPAT_UNCORE_ROUTER_HH
#define MCPAT_UNCORE_ROUTER_HH

#include <memory>

#include "array/array_model.hh"
#include "logic/arbiter.hh"

namespace mcpat {
namespace uncore {

using tech::Technology;

/** Router microarchitecture parameters. */
struct RouterParams
{
    int ports = 5;            ///< N/S/E/W + local
    int virtualChannels = 2;  ///< VCs per port
    int bufferDepth = 4;      ///< flits per VC
    int flitBits = 128;
    double clockRate = 1.0 * GHz;
};

/**
 * One wormhole/VC router.
 */
class Router
{
  public:
    Router(RouterParams params, const Technology &t);

    const RouterParams &params() const { return _params; }

    /** Energy to move one flit through the router, J. */
    double energyPerFlit() const;

    double area() const;
    double subthresholdLeakage() const;
    double gateLeakage() const;

    /** Per-hop router latency (buffering + allocation + traversal), s. */
    double delay() const;

    /**
     * Report at @p flits_per_cycle traversal rate (TDP and runtime).
     */
    Report makeReport(double tdp_flits, double rt_flits) const;

  private:
    RouterParams _params;

    std::unique_ptr<array::ArrayModel> _inputBuffer;  ///< per port
    std::unique_ptr<logic::Arbiter> _vcAllocator;
    std::unique_ptr<logic::Arbiter> _swAllocator;

    double _xbarEnergyPerFlit = 0.0;
    double _xbarArea = 0.0;
    double _xbarSubLeak = 0.0;
    double _xbarGateLeak = 0.0;
    double _xbarDelay = 0.0;
};

} // namespace uncore
} // namespace mcpat

#endif // MCPAT_UNCORE_ROUTER_HH
