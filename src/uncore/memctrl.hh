/**
 * @file
 * Memory-controller model: front-end request machinery (queues,
 * scheduling), transaction back end, and the physical interface (PHY),
 * following the paper's three-part MC decomposition.
 */

#ifndef MCPAT_UNCORE_MEMCTRL_HH
#define MCPAT_UNCORE_MEMCTRL_HH

#include <memory>

#include "array/array_model.hh"
#include "logic/arbiter.hh"

namespace mcpat {
namespace uncore {

using tech::Technology;

/** DRAM interface family (sets PHY energy and pin counts). */
enum class DramType { DDR2, DDR3, FbDimm, Rdram };

/** Memory-controller parameters. */
struct MemCtrlParams
{
    std::string name = "Memory Controller";
    int channels = 2;
    int dataBusBits = 64;        ///< per channel
    double busClock = 400.0 * MHz;
    DramType dramType = DramType::DDR2;

    int requestQueueEntries = 32;
    int physicalAddressBits = 42;

    /** Peak bandwidth per channel, B/s (derived if 0). */
    double peakBandwidth = 0.0;
};

/**
 * One memory controller (all channels).
 */
class MemoryController
{
  public:
    MemoryController(MemCtrlParams params, const Technology &t);

    const MemCtrlParams &params() const { return _params; }

    /** Peak bandwidth across channels, B/s. */
    double peakBandwidth() const { return _peakBandwidth; }

    /** Energy to transfer one byte at the pins + transaction cost, J. */
    double energyPerByte() const { return _energyPerByte; }

    double area() const { return _area; }

    /**
     * Report at a given utilization of peak bandwidth (0..1), TDP and
     * runtime.
     */
    Report makeReport(double tdp_utilization,
                      double rt_utilization) const;

  private:
    MemCtrlParams _params;
    double _peakBandwidth = 0.0;
    double _energyPerByte = 0.0;
    double _area = 0.0;
    double _subLeak = 0.0;
    double _gateLeak = 0.0;
    double _phyStaticPower = 0.0;  ///< bias/termination, always on

    std::unique_ptr<array::ArrayModel> _requestQueue;
    std::unique_ptr<logic::Arbiter> _scheduler;
};

} // namespace uncore
} // namespace mcpat

#endif // MCPAT_UNCORE_MEMCTRL_HH
