/**
 * @file
 * Miscellaneous chip I/O: pad ring and system-interface links (PCIe /
 * coherence links / JTAG lumped together), modeled with per-pin
 * empirical energies as the paper does for chip peripherals.
 */

#ifndef MCPAT_UNCORE_CHIP_IO_HH
#define MCPAT_UNCORE_CHIP_IO_HH

#include "common/report.hh"
#include "tech/technology.hh"

namespace mcpat {
namespace uncore {

using tech::Technology;

/** Parameters of the lumped chip I/O subsystem. */
struct ChipIoParams
{
    std::string name = "Chip I/O";
    int signalPins = 200;
    double ioVoltage = 1.5;       ///< signaling supply, V
    double pinCap = 3.0 * pF;     ///< pad + package + trace load
    double toggleRate = 0.15;     ///< events per bus clock per pin
    double busClock = 400.0 * MHz;
    double staticPower = 0.5;     ///< bias/termination, W
};

/**
 * Lumped chip I/O power/area.
 */
class ChipIo
{
  public:
    ChipIo(ChipIoParams params, const Technology &t);

    double area() const { return _area; }

    Report makeReport(double tdp_activity_scale,
                      double rt_activity_scale) const;

  private:
    ChipIoParams _params;
    double _area = 0.0;
    double _dynPerScale = 0.0;  ///< W at activity scale 1
};

} // namespace uncore
} // namespace mcpat

#endif // MCPAT_UNCORE_CHIP_IO_HH
