/**
 * @file
 * Shared cache (L2/L3) model: a banked cache with coherence-directory
 * tag overhead and its controller buffers.
 */

#ifndef MCPAT_UNCORE_SHARED_CACHE_HH
#define MCPAT_UNCORE_SHARED_CACHE_HH

#include <memory>

#include "array/cache_model.hh"
#include "circuit/clock_network.hh"

namespace mcpat {
namespace uncore {

using tech::Technology;

/** Parameters of a shared cache level. */
struct SharedCacheParams
{
    std::string name = "L2";
    double capacityBytes = 2.0 * 1024 * 1024;
    int blockBytes = 64;
    int assoc = 8;
    int banks = 4;
    int ports = 1;

    /** Sharers tracked by the in-tag directory (0 = none). */
    int directorySharers = 0;

    /** Store SECDED ECC with the data (+12.5% bits), on by default. */
    bool ecc = true;

    /** Data-array cell type: SRAM (default) or dense EDRAM. */
    array::CellType dataCell = array::CellType::SRAM;

    double clockRate = 1.0 * GHz;
    tech::DeviceFlavor flavor = tech::DeviceFlavor::LSTP;

    int mshrs = 16;
    int writeBackEntries = 16;
    int physicalAddressBits = 42;
};

/**
 * One shared cache instance.
 */
class SharedCache
{
  public:
    SharedCache(SharedCacheParams params, const Technology &t);

    const SharedCacheParams &params() const { return _params; }
    const array::CacheModel &cache() const { return *_cache; }

    double area() const
    {
        return _cache->area() + _ctrlArea + _clock->area();
    }
    double hitDelay() const { return _cache->hitDelay(); }

    Report makeReport(const array::CacheRates &tdp,
                      const array::CacheRates &rt) const;

  private:
    SharedCacheParams _params;
    std::unique_ptr<array::CacheModel> _cache;

    /** Pipeline latches + clock spine of the banked macro. */
    std::unique_ptr<circuit::ClockNetwork> _clock;
    /** Controller logic (coherence engine, schedulers). */
    double _ctrlArea = 0.0;
    double _ctrlEnergyPerAccess = 0.0;
    double _ctrlSubLeak = 0.0;
    double _ctrlGateLeak = 0.0;
};

} // namespace uncore
} // namespace mcpat

#endif // MCPAT_UNCORE_SHARED_CACHE_HH
