/**
 * @file
 * On-chip interconnect fabrics: 2D mesh / ring of routers + links, a
 * shared bus, and a flat crossbar (the Niagara-style core-to-L2-bank
 * fabric).
 */

#ifndef MCPAT_UNCORE_NOC_HH
#define MCPAT_UNCORE_NOC_HH

#include <memory>

#include "uncore/router.hh"

namespace mcpat {
namespace uncore {

/** Fabric topology. */
enum class NocTopology { Mesh2D, Torus2D, Ring, Bus, Crossbar };

/** Fabric parameters. */
struct NocParams
{
    std::string name = "NoC";
    NocTopology topology = NocTopology::Mesh2D;

    int nodesX = 4;
    int nodesY = 4;

    int flitBits = 128;
    /** Per-hop physical span; 0 = derive from tile area at build time
     *  (Processor sets it to the per-tile pitch). */
    double linkLength = 1.0 * mm;
    double clockRate = 1.0 * GHz;

    /** Use low-swing differential signaling on the links (saves link
     *  energy at some latency cost). */
    bool lowSwingLinks = false;

    RouterParams router;  ///< ports auto-set from the topology

    int nodes() const { return nodesX * nodesY; }
};

/**
 * One interconnect fabric instance.
 */
class Noc
{
  public:
    Noc(NocParams params, const Technology &t);

    const NocParams &params() const { return _params; }

    /** Energy to move one flit one hop (router + link), J. */
    double energyPerFlitHop() const;

    /** Average hop count between two nodes of this topology. */
    double averageHops() const;

    /** Fabric traversal latency at average distance, s. */
    double averageLatency() const;

    double area() const;

    /**
     * Report for aggregate injection of @p flits_per_cycle (whole
     * fabric, TDP and runtime); each flit pays averageHops() hops.
     */
    Report makeReport(double tdp_flits, double rt_flits) const;

  private:
    NocParams _params;
    std::unique_ptr<Router> _router;

    double _linkEnergyPerFlit = 0.0;
    double _linkDelay = 0.0;
    double _linkSubLeak = 0.0;   ///< all links
    double _linkGateLeak = 0.0;
    double _linkArea = 0.0;
    int _numLinks = 0;
};

} // namespace uncore
} // namespace mcpat

#endif // MCPAT_UNCORE_NOC_HH
