/**
 * @file
 * Design-space sweep: the paper's headline use case — couple the
 * power/area models with the performance substrate and search a
 * manycore design space under an area budget.
 *
 * Sweeps core count x shared-L2 capacity at 32 nm, evaluates each
 * point on a memory-bound and a compute-bound workload, and prints the
 * Pareto-efficient points for throughput vs power under a 350 mm^2
 * budget.
 */

#include <cstdio>
#include <vector>

#include "chip/processor.hh"
#include "perf/activity_gen.hh"

namespace {

using namespace mcpat;

struct Point
{
    int cores;
    double l2_mb;
    double area;        // mm^2
    double tdp;         // W
    double throughput;  // BIPS (mean of the two workloads)
    double power;       // W (mean runtime)
    bool feasible;
};

chip::SystemParams
makeSystem(int cores, double l2_mb)
{
    chip::SystemParams sys;
    sys.nodeNm = 32;
    sys.numCores = cores;
    sys.core.clockRate = 2.5 * GHz;
    sys.core.issueWidth = 4;
    sys.numL2 = std::max(1, cores / 4);
    sys.l2.capacityBytes = l2_mb * 1024 * 1024 / sys.numL2;
    sys.l2.banks = 4;
    sys.l2.clockRate = sys.core.clockRate / 2.0;
    sys.l2.flavor = tech::DeviceFlavor::LSTP;
    sys.hasNoc = cores > 2;
    sys.noc.topology = (cores >= 16) ? uncore::NocTopology::Mesh2D
                                     : uncore::NocTopology::Crossbar;
    sys.noc.nodesX = (cores >= 16) ? 4 : cores;
    sys.noc.nodesY = (cores >= 16) ? cores / 16 * 4 : 1;
    sys.noc.clockRate = sys.core.clockRate / 2.0;
    sys.memCtrl.channels = 4;
    sys.memCtrl.dramType = uncore::DramType::DDR3;
    sys.memCtrl.busClock = 800.0 * MHz;
    return sys;
}

} // namespace

int
main()
{
    constexpr double area_budget = 350.0;  // mm^2

    std::printf("Design-space sweep @ 32 nm (area budget %.0f mm^2)\n",
                area_budget);
    std::printf("%6s %6s %9s %8s %12s %10s %s\n", "cores", "L2MB",
                "area", "TDP", "throughput", "power", "status");

    std::vector<Point> points;
    for (int cores : {4, 8, 16, 32}) {
        for (double l2_mb : {2.0, 4.0, 8.0, 16.0}) {
            const auto sys = makeSystem(cores, l2_mb);
            const chip::Processor proc(sys);

            Point p;
            p.cores = cores;
            p.l2_mb = l2_mb;
            p.area = proc.area() / mm2;
            p.tdp = proc.tdp();
            p.feasible = p.area <= area_budget;

            double tput = 0.0, power = 0.0;
            for (const char *name : {"ocean", "water"}) {
                const auto &w = perf::findWorkload(name);
                const auto perf_res = perf::evaluateSystem(sys, w);
                const auto rt = perf::makeRuntimeStats(sys, w, perf_res);
                tput += perf_res.throughput / 2.0;
                power += proc.makeReport(rt).runtimePower() / 2.0;
            }
            p.throughput = tput / giga;
            p.power = power;
            points.push_back(p);

            std::printf("%6d %6.0f %7.1f %8.1f %10.1f B %8.1f W %s\n",
                        p.cores, p.l2_mb, p.area, p.tdp, p.throughput,
                        p.power,
                        p.feasible ? "" : "over budget");
        }
    }

    // Pareto front: feasible points not dominated in (throughput up,
    // power down).
    std::printf("\nPareto-efficient feasible points:\n");
    for (const auto &p : points) {
        if (!p.feasible)
            continue;
        bool dominated = false;
        for (const auto &q : points) {
            if (!q.feasible || &q == &p)
                continue;
            if (q.throughput >= p.throughput && q.power <= p.power &&
                (q.throughput > p.throughput || q.power < p.power)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            std::printf("  %d cores, %.0f MB L2: %.1f BIPS @ %.1f W\n",
                        p.cores, p.l2_mb, p.throughput, p.power);
        }
    }
    return 0;
}
