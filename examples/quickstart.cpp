/**
 * @file
 * Quickstart: build a small multicore processor programmatically and
 * print its power/area/timing report.
 *
 * This is the five-minute tour of the public API:
 *   1. describe the system (SystemParams),
 *   2. build the internal chip representation (Processor),
 *   3. read TDP, area, and the hierarchical breakdown,
 *   4. feed runtime statistics for runtime power.
 */

#include <iostream>

#include "chip/processor.hh"
#include "chip/report_printer.hh"

int
main()
{
    using namespace mcpat;

    // --- 1. Describe a 4-core out-of-order chip at 45 nm. --------------
    chip::SystemParams sys;
    sys.name = "quickstart-chip";
    sys.nodeNm = 45;
    sys.numCores = 4;

    sys.core.name = "Core";
    sys.core.clockRate = 2.0 * GHz;
    sys.core.outOfOrder = true;
    sys.core.issueWidth = 4;
    sys.core.robEntries = 128;
    sys.core.icache.capacityBytes = 32 * 1024;
    sys.core.dcache.capacityBytes = 32 * 1024;

    sys.numL2 = 1;
    sys.l2.capacityBytes = 4.0 * 1024 * 1024;
    sys.l2.banks = 4;
    sys.l2.clockRate = sys.core.clockRate / 2.0;
    sys.l2.flavor = tech::DeviceFlavor::LSTP;

    sys.hasNoc = true;
    sys.noc.topology = uncore::NocTopology::Crossbar;
    sys.noc.nodesX = 5;  // 4 cores + L2
    sys.noc.nodesY = 1;
    sys.noc.clockRate = sys.core.clockRate / 2.0;

    sys.memCtrl.channels = 2;
    sys.memCtrl.dramType = uncore::DramType::DDR3;

    // --- 2. Build.  The constructor runs every array-organization
    //        optimization and the timing checks. -----------------------
    chip::Processor proc(sys);

    // --- 3. Chip-level answers. -----------------------------------------
    std::cout << "Die area : " << proc.area() / mm2 << " mm^2\n"
              << "TDP      : " << proc.tdp() << " W\n"
              << "Core timing check ("
              << sys.core.clockRate / GHz << " GHz): "
              << (proc.meetsTiming() ? "PASS" : "FAIL") << "\n\n";

    // --- 4. Hierarchical breakdown (2 levels). ---------------------------
    chip::printReport(std::cout, proc.tdpReport(), 1);

    // --- 5. Runtime power at 60% of TDP activity. ------------------------
    stats::ChipStats rt = stats::ChipStats::tdp(sys);
    rt.perCore = rt.perCore.scaled(0.6);
    const Report r = proc.makeReport(rt);
    std::cout << "\nRuntime power at 60% core activity: "
              << r.runtimePower() << " W (TDP " << proc.tdp()
              << " W)\n";
    return 0;
}
