/**
 * @file
 * Heterogeneous-chip example: a big.LITTLE-style 32 nm SoC with two
 * wide out-of-order cores plus four multithreaded in-order cores, one
 * shared L2, and per-group runtime scenarios (big cores power-gated
 * while the little cores carry a background load, and vice versa).
 */

#include <iostream>

#include "chip/processor.hh"
#include "chip/report_printer.hh"

int
main()
{
    using namespace mcpat;

    chip::SystemParams sys;
    sys.name = "bigLITTLE-soc";
    sys.nodeNm = 32;

    // --- Big cores: 4-wide OoO with power gating. ----------------------
    chip::CoreGroup big;
    big.count = 2;
    big.core.name = "Big Core";
    big.core.clockRate = 2.2 * GHz;
    big.core.issueWidth = 4;
    big.core.robEntries = 128;
    big.core.powerGating = true;

    // --- Little cores: dual-issue in-order, 2 threads. ------------------
    chip::CoreGroup little;
    little.count = 4;
    little.core.name = "Little Core";
    little.core.outOfOrder = false;
    little.core.threads = 2;
    little.core.fetchWidth = little.core.decodeWidth = 2;
    little.core.issueWidth = little.core.commitWidth = 2;
    little.core.intAlus = 2;
    little.core.fpus = 1;
    little.core.pipelineStages = 8;
    little.core.clockRate = 1.2 * GHz;
    little.core.icache.capacityBytes = 16 * 1024;
    little.core.dcache.capacityBytes = 16 * 1024;
    little.core.powerGating = true;

    sys.coreGroups = {big, little};

    sys.numL2 = 1;
    sys.l2.capacityBytes = 2.0 * 1024 * 1024;
    sys.l2.banks = 2;
    sys.l2.clockRate = 1.1 * GHz;
    sys.l2.flavor = tech::DeviceFlavor::LSTP;

    sys.hasNoc = true;
    sys.noc.topology = uncore::NocTopology::Crossbar;
    sys.noc.nodesX = 7;  // 6 cores + L2
    sys.noc.nodesY = 1;
    sys.noc.clockRate = 1.1 * GHz;

    sys.memCtrl.channels = 2;
    sys.memCtrl.dramType = uncore::DramType::DDR3;

    chip::Processor proc(sys);
    std::cout << "big.LITTLE SoC @ 32 nm: " << proc.area() / mm2
              << " mm^2, TDP " << proc.tdp() << " W\n\n";
    chip::printReport(std::cout, proc.tdpReport(), 2);

    // --- Scenario: background load on the little cores, big cores
    //     power-gated 95% of the time. ----------------------------------
    stats::ChipStats rt = stats::ChipStats::tdp(sys);
    core::CoreStats big_idle = rt.perGroup[0].scaled(0.05);
    big_idle.sleepFraction = 0.95;
    big_idle.clockGating = 0.1;
    core::CoreStats little_busy = rt.perGroup[1].scaled(0.7);
    rt.perGroup = {big_idle, little_busy};
    rt.mcUtilization = 0.15;
    rt.nocFlitsPerCycle *= 0.3;

    const Report low = proc.makeReport(rt);
    std::cout << "\nBackground-load scenario (big cores gated 95%): "
              << low.runtimePower() << " W vs TDP " << proc.tdp()
              << " W\n";

    // --- Scenario: burst on the big cores, little cores gated. ----------
    core::CoreStats big_busy = stats::ChipStats::tdp(sys).perGroup[0];
    core::CoreStats little_idle =
        stats::ChipStats::tdp(sys).perGroup[1].scaled(0.05);
    little_idle.sleepFraction = 0.95;
    little_idle.clockGating = 0.1;
    rt.perGroup = {big_busy, little_idle};
    rt.mcUtilization = 0.5;

    const Report burst = proc.makeReport(rt);
    std::cout << "Burst scenario (little cores gated 95%):        "
              << burst.runtimePower() << " W\n";
    return 0;
}
