/**
 * @file
 * XML workflow example: the library-level equivalent of the `mcpat`
 * CLI.  Loads the bundled Niagara configuration, prints the report,
 * and shows how to inspect pieces of the tree programmatically.
 */

#include <fstream>
#include <iostream>

#include "chip/processor.hh"
#include "chip/report_printer.hh"
#include "config/xml_loader.hh"

namespace {

std::string
findConfig(const std::string &name)
{
    for (const std::string prefix :
         {"configs/", "../configs/", "../../configs/"}) {
        const std::string path = prefix + name;
        if (std::ifstream(path).good())
            return path;
    }
    throw mcpat::ConfigError("cannot find configs/" + name);
}

} // namespace

int
main()
{
    using namespace mcpat;

    const auto loaded = config::loadSystemParamsFromFile(
        findConfig("niagara.xml"));
    for (const auto &w : loaded.warnings)
        std::cerr << "warning: " << w << "\n";

    chip::Processor proc(loaded.system);

    std::cout << "Loaded " << loaded.system.name << ": "
              << loaded.system.numCores << " cores @ "
              << loaded.system.core.clockRate / GHz << " GHz, "
              << loaded.system.nodeNm << " nm\n\n";

    chip::printReport(std::cout, proc.tdpReport(), 1);

    // Programmatic navigation of the tree.
    const Report &top = proc.tdpReport();
    if (const Report *cores = top.child("Total Cores (8 cores)")) {
        std::cout << "\nCores consume "
                  << 100.0 * cores->peakPower() / top.peakPower()
                  << "% of chip TDP and "
                  << 100.0 * cores->area / top.area
                  << "% of its area.\n";
    }
    return 0;
}
