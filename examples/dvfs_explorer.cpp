/**
 * @file
 * DVFS explorer: the framework's voltage/frequency scaling support.
 *
 * Sweeps the supply voltage of one 45 nm core, finds the highest clock
 * the timing check allows at each voltage, and prints the resulting
 * power/performance curve with the energy-per-cycle minimum — the
 * classic DVFS result that energy efficiency peaks well below nominal
 * voltage while leakage sets the floor.
 */

#include <cstdio>

#include "core/core.hh"

int
main()
{
    using namespace mcpat;

    std::printf("DVFS sweep: 4-wide OoO core @ 45 nm (nominal 1.0 V)\n");
    std::printf("%6s %10s %10s %10s %10s %14s\n", "Vdd", "max clk",
                "dynamic", "leakage", "total", "energy/cycle");

    double best_epc = 1e9;
    double best_vdd = 0.0;

    for (double vdd = 0.6; vdd <= 1.101; vdd += 0.05) {
        tech::Technology t(45, tech::DeviceFlavor::HP, 360.0);
        t.setVdd(vdd);

        core::CoreParams p;
        // Provisional clock; replaced by the timing-derived maximum.
        p.clockRate = 1.0 * GHz;
        core::Core probe(p, t);
        const double fmax = probe.maxFrequency();

        p.clockRate = fmax;
        core::Core c(p, t);
        const Report r = c.makeTdpReport();

        const double total = r.peakPower();
        const double epc = total / fmax;
        if (epc < best_epc) {
            best_epc = epc;
            best_vdd = vdd;
        }

        std::printf("%5.2fV %8.2fGHz %8.2f W %8.2f W %8.2f W %11.1f pJ\n",
                    vdd, fmax / GHz, r.peakDynamic, r.leakage(), total,
                    epc / pJ);
    }

    std::printf("\nMinimum energy per cycle at Vdd = %.2f V "
                "(%.1f pJ/cycle):\nbelow it, leakage and the slower "
                "clock dominate; above it, CV^2 does.\n",
                best_vdd, best_epc / pJ);
    return 0;
}
