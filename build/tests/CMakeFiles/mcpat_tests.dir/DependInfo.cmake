
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_array.cc" "tests/CMakeFiles/mcpat_tests.dir/test_array.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_array.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/mcpat_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_chip.cc" "tests/CMakeFiles/mcpat_tests.dir/test_chip.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_chip.cc.o.d"
  "/root/repo/tests/test_circuit.cc" "tests/CMakeFiles/mcpat_tests.dir/test_circuit.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_circuit.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/mcpat_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/mcpat_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/mcpat_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_logic.cc" "tests/CMakeFiles/mcpat_tests.dir/test_logic.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_logic.cc.o.d"
  "/root/repo/tests/test_misc_output.cc" "tests/CMakeFiles/mcpat_tests.dir/test_misc_output.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_misc_output.cc.o.d"
  "/root/repo/tests/test_perf.cc" "tests/CMakeFiles/mcpat_tests.dir/test_perf.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_perf.cc.o.d"
  "/root/repo/tests/test_random_property.cc" "tests/CMakeFiles/mcpat_tests.dir/test_random_property.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_random_property.cc.o.d"
  "/root/repo/tests/test_study.cc" "tests/CMakeFiles/mcpat_tests.dir/test_study.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_study.cc.o.d"
  "/root/repo/tests/test_tech.cc" "tests/CMakeFiles/mcpat_tests.dir/test_tech.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_tech.cc.o.d"
  "/root/repo/tests/test_thermal_stats.cc" "tests/CMakeFiles/mcpat_tests.dir/test_thermal_stats.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_thermal_stats.cc.o.d"
  "/root/repo/tests/test_uncore.cc" "tests/CMakeFiles/mcpat_tests.dir/test_uncore.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_uncore.cc.o.d"
  "/root/repo/tests/test_uncore_ext.cc" "tests/CMakeFiles/mcpat_tests.dir/test_uncore_ext.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_uncore_ext.cc.o.d"
  "/root/repo/tests/test_validation.cc" "tests/CMakeFiles/mcpat_tests.dir/test_validation.cc.o" "gcc" "tests/CMakeFiles/mcpat_tests.dir/test_validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_study.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
