# Empty compiler generated dependencies file for mcpat_tests.
# This may be replaced when dependencies are built.
