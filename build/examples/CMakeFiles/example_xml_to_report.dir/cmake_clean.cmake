file(REMOVE_RECURSE
  "CMakeFiles/example_xml_to_report.dir/xml_to_report.cpp.o"
  "CMakeFiles/example_xml_to_report.dir/xml_to_report.cpp.o.d"
  "example_xml_to_report"
  "example_xml_to_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xml_to_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
