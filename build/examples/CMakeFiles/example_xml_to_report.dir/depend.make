# Empty dependencies file for example_xml_to_report.
# This may be replaced when dependencies are built.
