file(REMOVE_RECURSE
  "CMakeFiles/example_design_space_sweep.dir/design_space_sweep.cpp.o"
  "CMakeFiles/example_design_space_sweep.dir/design_space_sweep.cpp.o.d"
  "example_design_space_sweep"
  "example_design_space_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_space_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
