# Empty compiler generated dependencies file for example_dvfs_explorer.
# This may be replaced when dependencies are built.
