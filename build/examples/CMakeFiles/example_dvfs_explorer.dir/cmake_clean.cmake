file(REMOVE_RECURSE
  "CMakeFiles/example_dvfs_explorer.dir/dvfs_explorer.cpp.o"
  "CMakeFiles/example_dvfs_explorer.dir/dvfs_explorer.cpp.o.d"
  "example_dvfs_explorer"
  "example_dvfs_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dvfs_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
