file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_chip.dir/heterogeneous_chip.cpp.o"
  "CMakeFiles/example_heterogeneous_chip.dir/heterogeneous_chip.cpp.o.d"
  "example_heterogeneous_chip"
  "example_heterogeneous_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
