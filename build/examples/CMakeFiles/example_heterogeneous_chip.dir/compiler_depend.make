# Empty compiler generated dependencies file for example_heterogeneous_chip.
# This may be replaced when dependencies are built.
