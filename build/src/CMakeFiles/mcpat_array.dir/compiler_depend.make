# Empty compiler generated dependencies file for mcpat_array.
# This may be replaced when dependencies are built.
