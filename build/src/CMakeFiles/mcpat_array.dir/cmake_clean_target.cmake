file(REMOVE_RECURSE
  "libmcpat_array.a"
)
