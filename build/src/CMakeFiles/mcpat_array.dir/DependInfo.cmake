
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/array_model.cc" "src/CMakeFiles/mcpat_array.dir/array/array_model.cc.o" "gcc" "src/CMakeFiles/mcpat_array.dir/array/array_model.cc.o.d"
  "/root/repo/src/array/array_params.cc" "src/CMakeFiles/mcpat_array.dir/array/array_params.cc.o" "gcc" "src/CMakeFiles/mcpat_array.dir/array/array_params.cc.o.d"
  "/root/repo/src/array/cache_model.cc" "src/CMakeFiles/mcpat_array.dir/array/cache_model.cc.o" "gcc" "src/CMakeFiles/mcpat_array.dir/array/cache_model.cc.o.d"
  "/root/repo/src/array/cam.cc" "src/CMakeFiles/mcpat_array.dir/array/cam.cc.o" "gcc" "src/CMakeFiles/mcpat_array.dir/array/cam.cc.o.d"
  "/root/repo/src/array/decoder.cc" "src/CMakeFiles/mcpat_array.dir/array/decoder.cc.o" "gcc" "src/CMakeFiles/mcpat_array.dir/array/decoder.cc.o.d"
  "/root/repo/src/array/mat.cc" "src/CMakeFiles/mcpat_array.dir/array/mat.cc.o" "gcc" "src/CMakeFiles/mcpat_array.dir/array/mat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
