file(REMOVE_RECURSE
  "CMakeFiles/mcpat_array.dir/array/array_model.cc.o"
  "CMakeFiles/mcpat_array.dir/array/array_model.cc.o.d"
  "CMakeFiles/mcpat_array.dir/array/array_params.cc.o"
  "CMakeFiles/mcpat_array.dir/array/array_params.cc.o.d"
  "CMakeFiles/mcpat_array.dir/array/cache_model.cc.o"
  "CMakeFiles/mcpat_array.dir/array/cache_model.cc.o.d"
  "CMakeFiles/mcpat_array.dir/array/cam.cc.o"
  "CMakeFiles/mcpat_array.dir/array/cam.cc.o.d"
  "CMakeFiles/mcpat_array.dir/array/decoder.cc.o"
  "CMakeFiles/mcpat_array.dir/array/decoder.cc.o.d"
  "CMakeFiles/mcpat_array.dir/array/mat.cc.o"
  "CMakeFiles/mcpat_array.dir/array/mat.cc.o.d"
  "libmcpat_array.a"
  "libmcpat_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
