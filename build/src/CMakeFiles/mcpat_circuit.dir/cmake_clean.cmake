file(REMOVE_RECURSE
  "CMakeFiles/mcpat_circuit.dir/circuit/clock_network.cc.o"
  "CMakeFiles/mcpat_circuit.dir/circuit/clock_network.cc.o.d"
  "CMakeFiles/mcpat_circuit.dir/circuit/dff.cc.o"
  "CMakeFiles/mcpat_circuit.dir/circuit/dff.cc.o.d"
  "CMakeFiles/mcpat_circuit.dir/circuit/elmore.cc.o"
  "CMakeFiles/mcpat_circuit.dir/circuit/elmore.cc.o.d"
  "CMakeFiles/mcpat_circuit.dir/circuit/logical_effort.cc.o"
  "CMakeFiles/mcpat_circuit.dir/circuit/logical_effort.cc.o.d"
  "CMakeFiles/mcpat_circuit.dir/circuit/transistor.cc.o"
  "CMakeFiles/mcpat_circuit.dir/circuit/transistor.cc.o.d"
  "CMakeFiles/mcpat_circuit.dir/circuit/wire.cc.o"
  "CMakeFiles/mcpat_circuit.dir/circuit/wire.cc.o.d"
  "libmcpat_circuit.a"
  "libmcpat_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
