file(REMOVE_RECURSE
  "libmcpat_circuit.a"
)
