# Empty dependencies file for mcpat_circuit.
# This may be replaced when dependencies are built.
