
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/clock_network.cc" "src/CMakeFiles/mcpat_circuit.dir/circuit/clock_network.cc.o" "gcc" "src/CMakeFiles/mcpat_circuit.dir/circuit/clock_network.cc.o.d"
  "/root/repo/src/circuit/dff.cc" "src/CMakeFiles/mcpat_circuit.dir/circuit/dff.cc.o" "gcc" "src/CMakeFiles/mcpat_circuit.dir/circuit/dff.cc.o.d"
  "/root/repo/src/circuit/elmore.cc" "src/CMakeFiles/mcpat_circuit.dir/circuit/elmore.cc.o" "gcc" "src/CMakeFiles/mcpat_circuit.dir/circuit/elmore.cc.o.d"
  "/root/repo/src/circuit/logical_effort.cc" "src/CMakeFiles/mcpat_circuit.dir/circuit/logical_effort.cc.o" "gcc" "src/CMakeFiles/mcpat_circuit.dir/circuit/logical_effort.cc.o.d"
  "/root/repo/src/circuit/transistor.cc" "src/CMakeFiles/mcpat_circuit.dir/circuit/transistor.cc.o" "gcc" "src/CMakeFiles/mcpat_circuit.dir/circuit/transistor.cc.o.d"
  "/root/repo/src/circuit/wire.cc" "src/CMakeFiles/mcpat_circuit.dir/circuit/wire.cc.o" "gcc" "src/CMakeFiles/mcpat_circuit.dir/circuit/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
