# Empty compiler generated dependencies file for mcpat_perf.
# This may be replaced when dependencies are built.
