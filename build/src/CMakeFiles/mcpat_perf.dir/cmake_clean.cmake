file(REMOVE_RECURSE
  "CMakeFiles/mcpat_perf.dir/perf/activity_gen.cc.o"
  "CMakeFiles/mcpat_perf.dir/perf/activity_gen.cc.o.d"
  "CMakeFiles/mcpat_perf.dir/perf/cpi_model.cc.o"
  "CMakeFiles/mcpat_perf.dir/perf/cpi_model.cc.o.d"
  "CMakeFiles/mcpat_perf.dir/perf/system_model.cc.o"
  "CMakeFiles/mcpat_perf.dir/perf/system_model.cc.o.d"
  "CMakeFiles/mcpat_perf.dir/perf/workload.cc.o"
  "CMakeFiles/mcpat_perf.dir/perf/workload.cc.o.d"
  "libmcpat_perf.a"
  "libmcpat_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
