file(REMOVE_RECURSE
  "libmcpat_perf.a"
)
