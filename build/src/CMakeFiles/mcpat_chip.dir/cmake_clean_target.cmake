file(REMOVE_RECURSE
  "libmcpat_chip.a"
)
