file(REMOVE_RECURSE
  "CMakeFiles/mcpat_chip.dir/chip/processor.cc.o"
  "CMakeFiles/mcpat_chip.dir/chip/processor.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/chip/report_printer.cc.o"
  "CMakeFiles/mcpat_chip.dir/chip/report_printer.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/chip/report_writer.cc.o"
  "CMakeFiles/mcpat_chip.dir/chip/report_writer.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/chip/thermal.cc.o"
  "CMakeFiles/mcpat_chip.dir/chip/thermal.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/config/gem5_stats.cc.o"
  "CMakeFiles/mcpat_chip.dir/config/gem5_stats.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/config/xml_loader.cc.o"
  "CMakeFiles/mcpat_chip.dir/config/xml_loader.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/config/xml_parser.cc.o"
  "CMakeFiles/mcpat_chip.dir/config/xml_parser.cc.o.d"
  "CMakeFiles/mcpat_chip.dir/stats/activity_stats.cc.o"
  "CMakeFiles/mcpat_chip.dir/stats/activity_stats.cc.o.d"
  "libmcpat_chip.a"
  "libmcpat_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
