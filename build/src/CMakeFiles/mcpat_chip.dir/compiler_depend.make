# Empty compiler generated dependencies file for mcpat_chip.
# This may be replaced when dependencies are built.
