
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/processor.cc" "src/CMakeFiles/mcpat_chip.dir/chip/processor.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/chip/processor.cc.o.d"
  "/root/repo/src/chip/report_printer.cc" "src/CMakeFiles/mcpat_chip.dir/chip/report_printer.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/chip/report_printer.cc.o.d"
  "/root/repo/src/chip/report_writer.cc" "src/CMakeFiles/mcpat_chip.dir/chip/report_writer.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/chip/report_writer.cc.o.d"
  "/root/repo/src/chip/thermal.cc" "src/CMakeFiles/mcpat_chip.dir/chip/thermal.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/chip/thermal.cc.o.d"
  "/root/repo/src/config/gem5_stats.cc" "src/CMakeFiles/mcpat_chip.dir/config/gem5_stats.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/config/gem5_stats.cc.o.d"
  "/root/repo/src/config/xml_loader.cc" "src/CMakeFiles/mcpat_chip.dir/config/xml_loader.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/config/xml_loader.cc.o.d"
  "/root/repo/src/config/xml_parser.cc" "src/CMakeFiles/mcpat_chip.dir/config/xml_parser.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/config/xml_parser.cc.o.d"
  "/root/repo/src/stats/activity_stats.cc" "src/CMakeFiles/mcpat_chip.dir/stats/activity_stats.cc.o" "gcc" "src/CMakeFiles/mcpat_chip.dir/stats/activity_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
