# Empty dependencies file for mcpat_cli.
# This may be replaced when dependencies are built.
