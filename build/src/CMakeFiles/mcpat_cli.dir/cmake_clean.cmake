file(REMOVE_RECURSE
  "CMakeFiles/mcpat_cli.dir/cli/main.cc.o"
  "CMakeFiles/mcpat_cli.dir/cli/main.cc.o.d"
  "mcpat"
  "mcpat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
