# Empty dependencies file for mcpat_uncore.
# This may be replaced when dependencies are built.
