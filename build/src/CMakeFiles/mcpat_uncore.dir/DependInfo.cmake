
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uncore/chip_io.cc" "src/CMakeFiles/mcpat_uncore.dir/uncore/chip_io.cc.o" "gcc" "src/CMakeFiles/mcpat_uncore.dir/uncore/chip_io.cc.o.d"
  "/root/repo/src/uncore/directory.cc" "src/CMakeFiles/mcpat_uncore.dir/uncore/directory.cc.o" "gcc" "src/CMakeFiles/mcpat_uncore.dir/uncore/directory.cc.o.d"
  "/root/repo/src/uncore/memctrl.cc" "src/CMakeFiles/mcpat_uncore.dir/uncore/memctrl.cc.o" "gcc" "src/CMakeFiles/mcpat_uncore.dir/uncore/memctrl.cc.o.d"
  "/root/repo/src/uncore/noc.cc" "src/CMakeFiles/mcpat_uncore.dir/uncore/noc.cc.o" "gcc" "src/CMakeFiles/mcpat_uncore.dir/uncore/noc.cc.o.d"
  "/root/repo/src/uncore/router.cc" "src/CMakeFiles/mcpat_uncore.dir/uncore/router.cc.o" "gcc" "src/CMakeFiles/mcpat_uncore.dir/uncore/router.cc.o.d"
  "/root/repo/src/uncore/shared_cache.cc" "src/CMakeFiles/mcpat_uncore.dir/uncore/shared_cache.cc.o" "gcc" "src/CMakeFiles/mcpat_uncore.dir/uncore/shared_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
