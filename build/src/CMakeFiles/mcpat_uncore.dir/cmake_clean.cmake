file(REMOVE_RECURSE
  "CMakeFiles/mcpat_uncore.dir/uncore/chip_io.cc.o"
  "CMakeFiles/mcpat_uncore.dir/uncore/chip_io.cc.o.d"
  "CMakeFiles/mcpat_uncore.dir/uncore/directory.cc.o"
  "CMakeFiles/mcpat_uncore.dir/uncore/directory.cc.o.d"
  "CMakeFiles/mcpat_uncore.dir/uncore/memctrl.cc.o"
  "CMakeFiles/mcpat_uncore.dir/uncore/memctrl.cc.o.d"
  "CMakeFiles/mcpat_uncore.dir/uncore/noc.cc.o"
  "CMakeFiles/mcpat_uncore.dir/uncore/noc.cc.o.d"
  "CMakeFiles/mcpat_uncore.dir/uncore/router.cc.o"
  "CMakeFiles/mcpat_uncore.dir/uncore/router.cc.o.d"
  "CMakeFiles/mcpat_uncore.dir/uncore/shared_cache.cc.o"
  "CMakeFiles/mcpat_uncore.dir/uncore/shared_cache.cc.o.d"
  "libmcpat_uncore.a"
  "libmcpat_uncore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_uncore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
