file(REMOVE_RECURSE
  "libmcpat_uncore.a"
)
