file(REMOVE_RECURSE
  "libmcpat_tech.a"
)
