file(REMOVE_RECURSE
  "CMakeFiles/mcpat_tech.dir/tech/tech_tables.cc.o"
  "CMakeFiles/mcpat_tech.dir/tech/tech_tables.cc.o.d"
  "CMakeFiles/mcpat_tech.dir/tech/technology.cc.o"
  "CMakeFiles/mcpat_tech.dir/tech/technology.cc.o.d"
  "CMakeFiles/mcpat_tech.dir/tech/wire_tables.cc.o"
  "CMakeFiles/mcpat_tech.dir/tech/wire_tables.cc.o.d"
  "libmcpat_tech.a"
  "libmcpat_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
