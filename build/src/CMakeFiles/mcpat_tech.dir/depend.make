# Empty dependencies file for mcpat_tech.
# This may be replaced when dependencies are built.
