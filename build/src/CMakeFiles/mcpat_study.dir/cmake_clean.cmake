file(REMOVE_RECURSE
  "CMakeFiles/mcpat_study.dir/study/metrics.cc.o"
  "CMakeFiles/mcpat_study.dir/study/metrics.cc.o.d"
  "CMakeFiles/mcpat_study.dir/study/sweep.cc.o"
  "CMakeFiles/mcpat_study.dir/study/sweep.cc.o.d"
  "libmcpat_study.a"
  "libmcpat_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
