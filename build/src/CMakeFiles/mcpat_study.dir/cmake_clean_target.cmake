file(REMOVE_RECURSE
  "libmcpat_study.a"
)
