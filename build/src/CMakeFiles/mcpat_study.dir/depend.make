# Empty dependencies file for mcpat_study.
# This may be replaced when dependencies are built.
