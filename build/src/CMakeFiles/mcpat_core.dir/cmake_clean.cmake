file(REMOVE_RECURSE
  "CMakeFiles/mcpat_core.dir/core/activity.cc.o"
  "CMakeFiles/mcpat_core.dir/core/activity.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/core.cc.o"
  "CMakeFiles/mcpat_core.dir/core/core.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/core_params.cc.o"
  "CMakeFiles/mcpat_core.dir/core/core_params.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/exu.cc.o"
  "CMakeFiles/mcpat_core.dir/core/exu.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/ifu.cc.o"
  "CMakeFiles/mcpat_core.dir/core/ifu.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/lsu.cc.o"
  "CMakeFiles/mcpat_core.dir/core/lsu.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/mmu.cc.o"
  "CMakeFiles/mcpat_core.dir/core/mmu.cc.o.d"
  "CMakeFiles/mcpat_core.dir/core/renaming_unit.cc.o"
  "CMakeFiles/mcpat_core.dir/core/renaming_unit.cc.o.d"
  "libmcpat_core.a"
  "libmcpat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
