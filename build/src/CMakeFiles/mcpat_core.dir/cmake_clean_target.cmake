file(REMOVE_RECURSE
  "libmcpat_core.a"
)
