
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activity.cc" "src/CMakeFiles/mcpat_core.dir/core/activity.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/activity.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/mcpat_core.dir/core/core.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/core.cc.o.d"
  "/root/repo/src/core/core_params.cc" "src/CMakeFiles/mcpat_core.dir/core/core_params.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/core_params.cc.o.d"
  "/root/repo/src/core/exu.cc" "src/CMakeFiles/mcpat_core.dir/core/exu.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/exu.cc.o.d"
  "/root/repo/src/core/ifu.cc" "src/CMakeFiles/mcpat_core.dir/core/ifu.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/ifu.cc.o.d"
  "/root/repo/src/core/lsu.cc" "src/CMakeFiles/mcpat_core.dir/core/lsu.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/lsu.cc.o.d"
  "/root/repo/src/core/mmu.cc" "src/CMakeFiles/mcpat_core.dir/core/mmu.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/mmu.cc.o.d"
  "/root/repo/src/core/renaming_unit.cc" "src/CMakeFiles/mcpat_core.dir/core/renaming_unit.cc.o" "gcc" "src/CMakeFiles/mcpat_core.dir/core/renaming_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
