# Empty compiler generated dependencies file for mcpat_core.
# This may be replaced when dependencies are built.
