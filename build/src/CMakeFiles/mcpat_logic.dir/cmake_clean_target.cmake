file(REMOVE_RECURSE
  "libmcpat_logic.a"
)
