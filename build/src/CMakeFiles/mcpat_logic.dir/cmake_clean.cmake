file(REMOVE_RECURSE
  "CMakeFiles/mcpat_logic.dir/logic/arbiter.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/arbiter.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/bypass.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/bypass.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/dependency_check.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/dependency_check.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/functional_unit.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/functional_unit.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/inst_decoder.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/inst_decoder.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/pipeline_reg.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/pipeline_reg.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/renaming_logic.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/renaming_logic.cc.o.d"
  "CMakeFiles/mcpat_logic.dir/logic/scheduler_logic.cc.o"
  "CMakeFiles/mcpat_logic.dir/logic/scheduler_logic.cc.o.d"
  "libmcpat_logic.a"
  "libmcpat_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
