# Empty compiler generated dependencies file for mcpat_logic.
# This may be replaced when dependencies are built.
