
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/arbiter.cc" "src/CMakeFiles/mcpat_logic.dir/logic/arbiter.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/arbiter.cc.o.d"
  "/root/repo/src/logic/bypass.cc" "src/CMakeFiles/mcpat_logic.dir/logic/bypass.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/bypass.cc.o.d"
  "/root/repo/src/logic/dependency_check.cc" "src/CMakeFiles/mcpat_logic.dir/logic/dependency_check.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/dependency_check.cc.o.d"
  "/root/repo/src/logic/functional_unit.cc" "src/CMakeFiles/mcpat_logic.dir/logic/functional_unit.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/functional_unit.cc.o.d"
  "/root/repo/src/logic/inst_decoder.cc" "src/CMakeFiles/mcpat_logic.dir/logic/inst_decoder.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/inst_decoder.cc.o.d"
  "/root/repo/src/logic/pipeline_reg.cc" "src/CMakeFiles/mcpat_logic.dir/logic/pipeline_reg.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/pipeline_reg.cc.o.d"
  "/root/repo/src/logic/renaming_logic.cc" "src/CMakeFiles/mcpat_logic.dir/logic/renaming_logic.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/renaming_logic.cc.o.d"
  "/root/repo/src/logic/scheduler_logic.cc" "src/CMakeFiles/mcpat_logic.dir/logic/scheduler_logic.cc.o" "gcc" "src/CMakeFiles/mcpat_logic.dir/logic/scheduler_logic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcpat_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
