file(REMOVE_RECURSE
  "CMakeFiles/bench_model_speed.dir/bench_model_speed.cc.o"
  "CMakeFiles/bench_model_speed.dir/bench_model_speed.cc.o.d"
  "bench_model_speed"
  "bench_model_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
