file(REMOVE_RECURSE
  "CMakeFiles/bench_validate_niagara2.dir/bench_validate_niagara2.cc.o"
  "CMakeFiles/bench_validate_niagara2.dir/bench_validate_niagara2.cc.o.d"
  "bench_validate_niagara2"
  "bench_validate_niagara2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate_niagara2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
