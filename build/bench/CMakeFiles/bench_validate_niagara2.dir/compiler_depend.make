# Empty compiler generated dependencies file for bench_validate_niagara2.
# This may be replaced when dependencies are built.
