file(REMOVE_RECURSE
  "CMakeFiles/mcpat_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/mcpat_bench_util.dir/bench_util.cc.o.d"
  "libmcpat_bench_util.a"
  "libmcpat_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpat_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
