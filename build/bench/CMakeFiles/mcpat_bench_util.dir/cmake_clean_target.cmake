file(REMOVE_RECURSE
  "libmcpat_bench_util.a"
)
