# Empty compiler generated dependencies file for mcpat_bench_util.
# This may be replaced when dependencies are built.
