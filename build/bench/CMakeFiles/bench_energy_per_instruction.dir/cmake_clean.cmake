file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_per_instruction.dir/bench_energy_per_instruction.cc.o"
  "CMakeFiles/bench_energy_per_instruction.dir/bench_energy_per_instruction.cc.o.d"
  "bench_energy_per_instruction"
  "bench_energy_per_instruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_per_instruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
