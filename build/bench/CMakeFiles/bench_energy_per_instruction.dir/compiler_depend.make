# Empty compiler generated dependencies file for bench_energy_per_instruction.
# This may be replaced when dependencies are built.
