file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study_metrics.dir/bench_case_study_metrics.cc.o"
  "CMakeFiles/bench_case_study_metrics.dir/bench_case_study_metrics.cc.o.d"
  "bench_case_study_metrics"
  "bench_case_study_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
