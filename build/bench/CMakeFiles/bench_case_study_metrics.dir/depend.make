# Empty dependencies file for bench_case_study_metrics.
# This may be replaced when dependencies are built.
