file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clock.dir/bench_ablation_clock.cc.o"
  "CMakeFiles/bench_ablation_clock.dir/bench_ablation_clock.cc.o.d"
  "bench_ablation_clock"
  "bench_ablation_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
