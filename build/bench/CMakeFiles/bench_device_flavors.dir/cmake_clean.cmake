file(REMOVE_RECURSE
  "CMakeFiles/bench_device_flavors.dir/bench_device_flavors.cc.o"
  "CMakeFiles/bench_device_flavors.dir/bench_device_flavors.cc.o.d"
  "bench_device_flavors"
  "bench_device_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
