# Empty dependencies file for bench_device_flavors.
# This may be replaced when dependencies are built.
