file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs_scaling.dir/bench_dvfs_scaling.cc.o"
  "CMakeFiles/bench_dvfs_scaling.dir/bench_dvfs_scaling.cc.o.d"
  "bench_dvfs_scaling"
  "bench_dvfs_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
