# Empty dependencies file for bench_dvfs_scaling.
# This may be replaced when dependencies are built.
