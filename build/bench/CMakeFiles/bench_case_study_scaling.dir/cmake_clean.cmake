file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study_scaling.dir/bench_case_study_scaling.cc.o"
  "CMakeFiles/bench_case_study_scaling.dir/bench_case_study_scaling.cc.o.d"
  "bench_case_study_scaling"
  "bench_case_study_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
