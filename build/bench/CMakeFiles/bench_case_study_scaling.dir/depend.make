# Empty dependencies file for bench_case_study_scaling.
# This may be replaced when dependencies are built.
