file(REMOVE_RECURSE
  "CMakeFiles/bench_sram_vs_edram.dir/bench_sram_vs_edram.cc.o"
  "CMakeFiles/bench_sram_vs_edram.dir/bench_sram_vs_edram.cc.o.d"
  "bench_sram_vs_edram"
  "bench_sram_vs_edram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sram_vs_edram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
