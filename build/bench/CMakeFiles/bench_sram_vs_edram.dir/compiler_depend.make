# Empty compiler generated dependencies file for bench_sram_vs_edram.
# This may be replaced when dependencies are built.
