file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study_power.dir/bench_case_study_power.cc.o"
  "CMakeFiles/bench_case_study_power.dir/bench_case_study_power.cc.o.d"
  "bench_case_study_power"
  "bench_case_study_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
