# Empty dependencies file for bench_case_study_power.
# This may be replaced when dependencies are built.
