# Empty compiler generated dependencies file for bench_targets_table.
# This may be replaced when dependencies are built.
