file(REMOVE_RECURSE
  "CMakeFiles/bench_targets_table.dir/bench_targets_table.cc.o"
  "CMakeFiles/bench_targets_table.dir/bench_targets_table.cc.o.d"
  "bench_targets_table"
  "bench_targets_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_targets_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
