# Empty dependencies file for bench_case_study_perf.
# This may be replaced when dependencies are built.
