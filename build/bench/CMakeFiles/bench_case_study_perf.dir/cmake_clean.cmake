file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study_perf.dir/bench_case_study_perf.cc.o"
  "CMakeFiles/bench_case_study_perf.dir/bench_case_study_perf.cc.o.d"
  "bench_case_study_perf"
  "bench_case_study_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
