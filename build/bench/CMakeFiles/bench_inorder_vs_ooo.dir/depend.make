# Empty dependencies file for bench_inorder_vs_ooo.
# This may be replaced when dependencies are built.
