file(REMOVE_RECURSE
  "CMakeFiles/bench_inorder_vs_ooo.dir/bench_inorder_vs_ooo.cc.o"
  "CMakeFiles/bench_inorder_vs_ooo.dir/bench_inorder_vs_ooo.cc.o.d"
  "bench_inorder_vs_ooo"
  "bench_inorder_vs_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inorder_vs_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
