# Empty dependencies file for bench_validate_niagara.
# This may be replaced when dependencies are built.
