file(REMOVE_RECURSE
  "CMakeFiles/bench_validate_niagara.dir/bench_validate_niagara.cc.o"
  "CMakeFiles/bench_validate_niagara.dir/bench_validate_niagara.cc.o.d"
  "bench_validate_niagara"
  "bench_validate_niagara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate_niagara.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
