
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_margin.cc" "bench/CMakeFiles/bench_ablation_margin.dir/bench_ablation_margin.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_margin.dir/bench_ablation_margin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mcpat_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_study.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcpat_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
