file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_margin.dir/bench_ablation_margin.cc.o"
  "CMakeFiles/bench_ablation_margin.dir/bench_ablation_margin.cc.o.d"
  "bench_ablation_margin"
  "bench_ablation_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
