# Empty dependencies file for bench_ablation_margin.
# This may be replaced when dependencies are built.
