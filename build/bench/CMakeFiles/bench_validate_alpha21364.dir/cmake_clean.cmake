file(REMOVE_RECURSE
  "CMakeFiles/bench_validate_alpha21364.dir/bench_validate_alpha21364.cc.o"
  "CMakeFiles/bench_validate_alpha21364.dir/bench_validate_alpha21364.cc.o.d"
  "bench_validate_alpha21364"
  "bench_validate_alpha21364.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate_alpha21364.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
