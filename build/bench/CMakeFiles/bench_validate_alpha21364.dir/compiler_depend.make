# Empty compiler generated dependencies file for bench_validate_alpha21364.
# This may be replaced when dependencies are built.
