# Empty dependencies file for bench_validate_xeon_tulsa.
# This may be replaced when dependencies are built.
