file(REMOVE_RECURSE
  "CMakeFiles/bench_validate_xeon_tulsa.dir/bench_validate_xeon_tulsa.cc.o"
  "CMakeFiles/bench_validate_xeon_tulsa.dir/bench_validate_xeon_tulsa.cc.o.d"
  "bench_validate_xeon_tulsa"
  "bench_validate_xeon_tulsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate_xeon_tulsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
