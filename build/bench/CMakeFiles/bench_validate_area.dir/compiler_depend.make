# Empty compiler generated dependencies file for bench_validate_area.
# This may be replaced when dependencies are built.
