file(REMOVE_RECURSE
  "CMakeFiles/bench_validate_area.dir/bench_validate_area.cc.o"
  "CMakeFiles/bench_validate_area.dir/bench_validate_area.cc.o.d"
  "bench_validate_area"
  "bench_validate_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
