file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_repeaters.dir/bench_ablation_repeaters.cc.o"
  "CMakeFiles/bench_ablation_repeaters.dir/bench_ablation_repeaters.cc.o.d"
  "bench_ablation_repeaters"
  "bench_ablation_repeaters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_repeaters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
