# Empty compiler generated dependencies file for bench_ablation_repeaters.
# This may be replaced when dependencies are built.
