file(REMOVE_RECURSE
  "CMakeFiles/bench_commercial_workloads.dir/bench_commercial_workloads.cc.o"
  "CMakeFiles/bench_commercial_workloads.dir/bench_commercial_workloads.cc.o.d"
  "bench_commercial_workloads"
  "bench_commercial_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commercial_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
