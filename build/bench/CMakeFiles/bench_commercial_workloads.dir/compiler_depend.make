# Empty compiler generated dependencies file for bench_commercial_workloads.
# This may be replaced when dependencies are built.
