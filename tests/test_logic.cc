/**
 * @file
 * Regular-logic model tests: functional units, decoders, dependency
 * check, arbiters, renaming structures, instruction windows, bypass
 * networks, and pipeline registers.
 */

#include <gtest/gtest.h>

#include "logic/arbiter.hh"
#include "logic/bypass.hh"
#include "logic/dependency_check.hh"
#include "logic/functional_unit.hh"
#include "logic/inst_decoder.hh"
#include "logic/pipeline_reg.hh"
#include "logic/renaming_logic.hh"
#include "logic/scheduler_logic.hh"

using namespace mcpat;
using namespace mcpat::logic;
using tech::Technology;

namespace {
const Technology &
tech65()
{
    static const Technology t(65);
    return t;
}
} // namespace

TEST(FunctionalUnit, EnergyAndAreaOrdering)
{
    const FunctionalUnit alu(FuType::IntAlu, tech65());
    const FunctionalUnit mul(FuType::Mul, tech65());
    const FunctionalUnit fpu(FuType::Fpu, tech65());
    EXPECT_LT(alu.energyPerOp(), mul.energyPerOp());
    EXPECT_LT(mul.energyPerOp(), fpu.energyPerOp());
    EXPECT_LT(alu.area(), mul.area());
    EXPECT_LT(mul.area(), fpu.area());
    EXPECT_LT(alu.latency(), fpu.latency());
}

TEST(FunctionalUnit, TechnologyScaling)
{
    const Technology t90(90);
    const Technology t22(22);
    const FunctionalUnit f90(FuType::Fpu, t90);
    const FunctionalUnit f22(FuType::Fpu, t22);
    // Area ~ F^2, energy ~ F * Vdd^2.
    EXPECT_NEAR(f90.area() / f22.area(), (90.0 * 90) / (22.0 * 22),
                1e-6);
    EXPECT_GT(f90.energyPerOp(), 2.0 * f22.energyPerOp());
}

TEST(FunctionalUnit, ReportArithmetic)
{
    const FunctionalUnit alu(FuType::IntAlu, tech65());
    const Report r = alu.makeReport("ALU", 2.0 * GHz, 0.8, 0.4);
    EXPECT_NEAR(r.peakDynamic, alu.energyPerOp() * 0.8 * 2.0 * GHz,
                1e-12);
    EXPECT_NEAR(r.runtimeDynamic, r.peakDynamic / 2.0, 1e-12);
}

TEST(LogicLeakage, ProportionalToArea)
{
    const auto l1 = logicBlockLeakage(1.0 * mm2, tech65());
    const auto l2 = logicBlockLeakage(2.0 * mm2, tech65());
    EXPECT_NEAR(l2.subthreshold, 2.0 * l1.subthreshold, 1e-9);
    EXPECT_NEAR(l2.gate, 2.0 * l1.gate, 1e-9);
}

TEST(InstDecoder, CiscCostsMoreThanRisc)
{
    const InstDecoder risc(4, false, 7, tech65());
    const InstDecoder cisc(4, true, 8, tech65());
    EXPECT_GT(cisc.area(), 2.0 * risc.area());  // + microcode ROM
    EXPECT_GT(cisc.energyPerInst(), risc.energyPerInst());
    EXPECT_GT(cisc.delay(), risc.delay());
}

TEST(InstDecoder, WidthScalesArea)
{
    const InstDecoder w1(1, false, 7, tech65());
    const InstDecoder w4(4, false, 7, tech65());
    EXPECT_NEAR(w4.area() / w1.area(), 4.0, 1e-6);
}

TEST(InstDecoder, BadParamsRejected)
{
    EXPECT_THROW(InstDecoder(0, false, 7, tech65()), ConfigError);
    EXPECT_THROW(InstDecoder(2, false, 2, tech65()), ConfigError);
}

TEST(DependencyCheck, GrowsQuadraticallyWithWidth)
{
    const DependencyCheck w2(2, 8, tech65());
    const DependencyCheck w8(8, 8, tech65());
    // width*(width-1) comparators: 8 wide has 28x the pairs of 2 wide.
    EXPECT_GT(w8.area() / w2.area(), 8.0);
    EXPECT_GT(w8.energyPerGroup(), w2.energyPerGroup());
}

TEST(DependencyCheck, SingleInstructionGroupIsCheap)
{
    const DependencyCheck w1(1, 8, tech65());
    EXPECT_GT(w1.area(), 0.0);  // still has mux gates
    const DependencyCheck w4(4, 8, tech65());
    EXPECT_LT(w1.area(), w4.area());
}

TEST(Arbiter, CostsGrowWithRequestors)
{
    const Arbiter a4(4, tech65());
    const Arbiter a16(16, tech65());
    EXPECT_GT(a16.area(), a4.area());
    EXPECT_GT(a16.energyPerArb(), a4.energyPerArb());
    EXPECT_GT(a16.delay(), a4.delay());
}

TEST(Arbiter, DelayLogarithmic)
{
    const Arbiter a4(4, tech65());
    const Arbiter a64(64, tech65());
    // 16x requestors should cost ~2x delay (log growth), not 16x.
    EXPECT_LT(a64.delay(), 3.0 * a4.delay());
}

TEST(Rat, CamCostsMoreSearchThanRamRead)
{
    const Rat ram(32, 128, 4, 1, RatStyle::Ram, tech65());
    const Rat cam(32, 128, 4, 1, RatStyle::Cam, tech65());
    EXPECT_GT(cam.energyPerRename(), ram.energyPerRename());
}

TEST(Rat, ThreadsReplicateRamTable)
{
    const Rat one(32, 128, 4, 1, RatStyle::Ram, tech65());
    const Rat four(32, 128, 4, 4, RatStyle::Ram, tech65());
    EXPECT_GT(four.area(), 2.0 * one.area());
}

TEST(Rat, InvalidSizesRejected)
{
    EXPECT_THROW(Rat(64, 32, 4, 1, RatStyle::Ram, tech65()),
                 ConfigError);
}

TEST(FreeList, Physical)
{
    const FreeList fl(128, 4, tech65());
    EXPECT_GT(fl.area(), 0.0);
    EXPECT_GT(fl.energyPerAlloc(), 0.0);
    EXPECT_THROW(FreeList(1, 4, tech65()), ConfigError);
}

TEST(InstructionWindow, WakeupScalesWithEntries)
{
    const InstructionWindow small(16, 8, 40, 4, tech65());
    const InstructionWindow big(128, 8, 40, 4, tech65());
    EXPECT_GT(big.wakeupEnergy(), 2.0 * small.wakeupEnergy());
    EXPECT_GT(big.area(), small.area());
    EXPECT_GT(big.delay(), small.delay());
}

TEST(InstructionWindow, EnergiesPositive)
{
    const InstructionWindow w(64, 8, 48, 4, tech65());
    EXPECT_GT(w.wakeupEnergy(), 0.0);
    EXPECT_GT(w.issueEnergy(), 0.0);
    EXPECT_GT(w.dispatchEnergy(), 0.0);
    EXPECT_GT(w.subthresholdLeakage(), 0.0);
}

TEST(SelectionLogic, DelayGrowsSlowly)
{
    const SelectionLogic s16(16, 4, tech65());
    const SelectionLogic s256(256, 4, tech65());
    EXPECT_GT(s256.delay(), s16.delay());
    EXPECT_LT(s256.delay(), 4.0 * s16.delay());
    EXPECT_GT(s256.area(), s16.area());
}

TEST(BypassNetwork, EnergyGrowsWithSpanAndWidth)
{
    const BypassNetwork narrow(4, 10, 64, 8, 1.0 * mm, tech65());
    const BypassNetwork wide(4, 10, 128, 8, 1.0 * mm, tech65());
    const BypassNetwork longer(4, 10, 64, 8, 3.0 * mm, tech65());
    EXPECT_GT(wide.energyPerBypass(), narrow.energyPerBypass());
    EXPECT_GT(longer.energyPerBypass(), narrow.energyPerBypass());
    EXPECT_GT(longer.delay(), narrow.delay());
}

TEST(BypassNetwork, LeakageScalesWithProducers)
{
    const BypassNetwork few(2, 8, 64, 8, 1.0 * mm, tech65());
    const BypassNetwork many(8, 8, 64, 8, 1.0 * mm, tech65());
    EXPECT_GT(many.subthresholdLeakage(),
              2.0 * few.subthresholdLeakage());
}

TEST(PipelineRegisters, LinearInStagesAndBits)
{
    const PipelineRegisters a(8, 256, tech65());
    const PipelineRegisters b(16, 256, tech65());
    const PipelineRegisters c(8, 512, tech65());
    EXPECT_NEAR(b.area() / a.area(), 2.0, 1e-9);
    EXPECT_NEAR(c.clockLoad() / a.clockLoad(), 2.0, 1e-9);
    EXPECT_EQ(a.totalBits(), 8 * 256);
}

TEST(PipelineRegisters, ActivityScalesDataEnergy)
{
    const PipelineRegisters p(8, 256, tech65());
    EXPECT_NEAR(p.energyPerCycle(0.4), 2.0 * p.energyPerCycle(0.2),
                1e-15);
    EXPECT_DOUBLE_EQ(p.energyPerCycle(0.0), 0.0);
}

/** Property sweep: instruction windows across sizes and widths. */
class WindowSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(WindowSweep, Physical)
{
    const auto [entries, width] = GetParam();
    const InstructionWindow w(entries, 8, 48, width, tech65());
    EXPECT_GT(w.area(), 0.0);
    EXPECT_GT(w.wakeupEnergy(), 0.0);
    EXPECT_GT(w.delay(), 0.0);
    EXPECT_LT(w.delay(), 10.0 * ns);
}

INSTANTIATE_TEST_SUITE_P(
    EntriesAndWidths, WindowSweep,
    ::testing::Combine(::testing::Values(8, 32, 64, 128),
                       ::testing::Values(1, 2, 4, 8)));
