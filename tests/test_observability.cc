/**
 * @file
 * Time-series observability tests: histogram bucketing and quantile
 * determinism (concurrent == serial, TSan-covered), snapshot merge
 * associativity, empty-histogram NaN semantics, registry and manifest
 * integration, the structured event log (record shape, level filter,
 * correlation IDs, strict JSON), the flight recorder CSV and its
 * Chrome counter/metadata events, and the progress-meter clamp.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/event_log.hh"
#include "common/flight_recorder.hh"
#include "common/histogram.hh"
#include "common/instrument.hh"
#include "common/json_check.hh"
#include "common/parallel.hh"

using namespace mcpat;

namespace {

/** Force instrumentation on/off and restore a clean "off" state. */
struct InstrumentGuard
{
    explicit InstrumentGuard(bool on)
    {
        instr::setEnabled(on);
        instr::Registry::instance().reset();
        instr::clearTrace();
    }
    ~InstrumentGuard()
    {
        instr::setEnabled(false);
        instr::Registry::instance().reset();
        instr::clearTrace();
    }
};

/** Close the event log and delete its file when the test ends. */
struct EventLogGuard
{
    std::string path;
    explicit EventLogGuard(std::string p) : path(std::move(p)) {}
    ~EventLogGuard()
    {
        elog::close();
        std::remove(path.c_str());
    }
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

/** The deterministic multiset used by the concurrent == serial test. */
double
sampleValue(std::size_t i)
{
    // Spread across several octaves, with repeats.
    return 0.125 * static_cast<double>(1 + (i * 37) % 997);
}

} // namespace

// ---------------------------------------------------------------------
// Histogram bucketing.
// ---------------------------------------------------------------------

TEST(Histogram, BucketIndexIsMonotoneAndSelfConsistent)
{
    int prev = 0;
    for (double v : {1e-12, 1e-9, 0.001, 0.5, 1.0, 1.5, 2.0, 3.0, 10.0,
                     1000.0, 1e6, 1e9, 1e12}) {
        const int idx = instr::Histogram::bucketIndex(v);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, instr::Histogram::kBuckets);
        EXPECT_GE(idx, prev) << "non-monotone at v=" << v;
        prev = idx;
        // In-range values land inside their reported bucket bounds
        // (out-of-range values clamp to the first/last real bucket).
        if (idx > 0 && idx < instr::Histogram::kBuckets - 1 &&
            v >= instr::Histogram::bucketLowerBound(1)) {
            EXPECT_GE(v, instr::Histogram::bucketLowerBound(idx));
            EXPECT_LT(v, instr::Histogram::bucketUpperBound(idx));
        }
    }
}

TEST(Histogram, BucketWidthWithinRelativeBound)
{
    // Every real bucket spans at most 1/kSubBuckets of its low edge —
    // the "within one bucket width" resolution quoted for quantiles.
    for (int idx = 1; idx < instr::Histogram::kBuckets - 1; ++idx) {
        const double lo = instr::Histogram::bucketLowerBound(idx);
        const double hi = instr::Histogram::bucketUpperBound(idx);
        ASSERT_GT(hi, lo);
        EXPECT_LE((hi - lo) / lo,
                  1.0 / instr::Histogram::kSubBuckets + 1e-12)
            << "bucket " << idx;
        const double mid = instr::Histogram::bucketMidpoint(idx);
        EXPECT_GE(mid, lo);
        EXPECT_LE(mid, hi);
    }
}

TEST(Histogram, NonPositiveUnderflowsAndNaNIsDropped)
{
    instr::Histogram h;
    h.record(0.0);
    h.record(-1.0);
    h.record(std::nan(""));
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);  // NaN dropped entirely
    ASSERT_EQ(snap.buckets.size(), 1u);
    EXPECT_EQ(snap.buckets[0].first, 0);  // underflow bucket
    EXPECT_EQ(snap.buckets[0].second, 2u);
}

TEST(Histogram, ExtremeValuesClampToRangeEnds)
{
    instr::Histogram h;
    h.record(1e300);
    h.record(1e-300);
    const auto snap = h.snapshot();
    ASSERT_EQ(snap.buckets.size(), 2u);
    EXPECT_EQ(snap.buckets[0].first, 1);
    EXPECT_EQ(snap.buckets[1].first, instr::Histogram::kBuckets - 1);
    EXPECT_EQ(snap.min, 1e-300);
    EXPECT_EQ(snap.max, 1e300);
}

// ---------------------------------------------------------------------
// Determinism: concurrent == serial.
// ---------------------------------------------------------------------

TEST(Histogram, ConcurrentRecordMatchesSerialQuantiles)
{
    constexpr std::size_t kValues = 20000;

    instr::Histogram serial;
    for (std::size_t i = 0; i < kValues; ++i)
        serial.record(sampleValue(i));

    instr::Histogram concurrent;
    parallel::parallelFor(kValues, [&](std::size_t i) {
        concurrent.record(sampleValue(i));
    });

    const auto a = serial.snapshot();
    const auto b = concurrent.snapshot();
    ASSERT_EQ(a.count, b.count);
    ASSERT_EQ(a.buckets, b.buckets);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    // Bucketized quantiles are exactly equal regardless of insertion
    // order; the exact sum differs only by FP addition order.
    for (double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0})
        EXPECT_EQ(a.quantile(p), b.quantile(p)) << "p=" << p;
    EXPECT_NEAR(a.sum, b.sum, 1e-6 * std::abs(a.sum));
}

TEST(Histogram, QuantilesMatchNearestRankWithinBucketWidth)
{
    instr::Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    const auto snap = h.snapshot();
    ASSERT_EQ(snap.count, 100u);
    // Nearest-rank p50 of 1..100 is 50; the midpoint answer must be
    // within one bucket width (12.5%) of it.
    EXPECT_NEAR(snap.quantile(0.50), 50.0, 50.0 / 8.0 + 1e-9);
    EXPECT_NEAR(snap.quantile(0.99), 99.0, 99.0 / 8.0 + 1e-9);
    EXPECT_NEAR(snap.mean(), 50.5, 1e-9);
    EXPECT_EQ(snap.min, 1.0);
    EXPECT_EQ(snap.max, 100.0);
}

TEST(Histogram, EmptySnapshotsAreNaNNotPanics)
{
    instr::Histogram h;
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_TRUE(snap.buckets.empty());
    EXPECT_TRUE(std::isnan(snap.quantile(0.5)));
    EXPECT_TRUE(std::isnan(snap.quantile(0.0)));
    EXPECT_TRUE(std::isnan(snap.quantile(1.0)));
    EXPECT_TRUE(std::isnan(snap.mean()));
    EXPECT_TRUE(std::isnan(snap.min));
    EXPECT_TRUE(std::isnan(snap.max));
}

TEST(Histogram, MergeIsAssociativeAndCommutative)
{
    instr::Histogram ha, hb, hc;
    for (int i = 0; i < 50; ++i)
        ha.record(0.5 + i);
    for (int i = 0; i < 70; ++i)
        hb.record(1000.0 + i);
    for (int i = 0; i < 30; ++i)
        hc.record(1e-6 * (1 + i));

    const auto a = ha.snapshot(), b = hb.snapshot(), c = hc.snapshot();

    auto ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);
    auto bc = b;
    bc.merge(c);
    auto a_bc = a;
    a_bc.merge(bc);
    auto cba = c;
    cba.merge(b);
    cba.merge(a);

    for (const auto *m : {&a_bc, &cba}) {
        EXPECT_EQ(ab_c.buckets, m->buckets);
        EXPECT_EQ(ab_c.count, m->count);
        EXPECT_EQ(ab_c.min, m->min);
        EXPECT_EQ(ab_c.max, m->max);
        EXPECT_NEAR(ab_c.sum, m->sum, 1e-9 * std::abs(ab_c.sum));
    }
    // Merging an empty snapshot is the identity.
    auto viaEmpty = instr::HistogramSnapshot{};
    viaEmpty.merge(a);
    EXPECT_EQ(viaEmpty.buckets, a.buckets);
    EXPECT_EQ(viaEmpty.min, a.min);
    EXPECT_EQ(viaEmpty.max, a.max);
}

// ---------------------------------------------------------------------
// Registry and manifest integration.
// ---------------------------------------------------------------------

TEST(HistogramRegistry, StableReferencesAndSortedSnapshots)
{
    InstrumentGuard guard(true);
    auto &reg = instr::Registry::instance();
    instr::Histogram &h1 = reg.histogram("t.hist");
    instr::Histogram &h2 = reg.histogram("t.hist");
    EXPECT_EQ(&h1, &h2);
    h1.record(2.0);
    h2.record(4.0);
    reg.histogram("t.a_first").record(1.0);

    const auto snaps = reg.histogramSnapshots();
    ASSERT_GE(snaps.size(), 2u);
    EXPECT_TRUE(std::is_sorted(
        snaps.begin(), snaps.end(), [](const auto &x, const auto &y) {
            return x.first < y.first;
        }));
    for (const auto &[name, snap] : snaps)
        if (name == "t.hist")
            EXPECT_EQ(snap.count, 2u);

    reg.reset();
    EXPECT_EQ(reg.histogram("t.hist").count(), 0u);
}

TEST(HistogramRegistry, ManifestCarriesHistogramsBlock)
{
    InstrumentGuard guard(true);
    auto &reg = instr::Registry::instance();
    for (int i = 1; i <= 10; ++i)
        reg.histogram("t.latency_ms").record(static_cast<double>(i));

    instr::RunInfo info;
    info.configPath = "x.xml";
    info.wallSeconds = 0.1;
    info.valid = true;
    const std::string text = instr::runManifestJson(info);
    std::string error;
    ASSERT_TRUE(common::jsonValid(text, &error)) << error << "\n" << text;
    for (const char *key :
         {"\"histograms\"", "\"t.latency_ms\"", "\"count\": 10",
          "\"mean\"", "\"p50\"", "\"p95\"", "\"p99\"", "\"min\"",
          "\"max\""}) {
        EXPECT_NE(text.find(key), std::string::npos)
            << "missing " << key << " in:\n" << text;
    }
}

// ---------------------------------------------------------------------
// Structured event log.
// ---------------------------------------------------------------------

TEST(EventLog, RecordsAreStrictJsonWithExpectedShape)
{
    const std::string path = "elog_shape.tmp.jsonl";
    EventLogGuard guard(path);
    ASSERT_TRUE(elog::open(path));
    EXPECT_FALSE(elog::runId().empty());

    elog::emit(elog::Level::Warn, "test.component", "something_failed",
               "a \"quoted\" message\twith escapes",
               {elog::Field::str("path", "/tmp/x"),
                elog::Field::num("attempts", 3)});
    elog::close();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    std::string error;
    ASSERT_TRUE(common::jsonValid(lines[0], &error))
        << error << "\n" << lines[0];
    for (const char *key :
         {"\"ts_ms\"", "\"mono_ms\"", "\"level\": \"warn\"",
          "\"component\": \"test.component\"",
          "\"event\": \"something_failed\"", "\"message\"",
          "\"path\": \"/tmp/x\"", "\"attempts\": 3", "\"run\": \"0x"}) {
        EXPECT_NE(lines[0].find(key), std::string::npos)
            << "missing " << key << " in: " << lines[0];
    }
}

TEST(EventLog, LevelFilterDropsBelowThreshold)
{
    const std::string path = "elog_level.tmp.jsonl";
    EventLogGuard guard(path);
    ASSERT_TRUE(elog::open(path));
    elog::setLevel(elog::Level::Warn);

    EXPECT_FALSE(elog::enabled(elog::Level::Debug));
    EXPECT_FALSE(elog::enabled(elog::Level::Info));
    EXPECT_TRUE(elog::enabled(elog::Level::Warn));
    EXPECT_TRUE(elog::enabled(elog::Level::Error));

    elog::emit(elog::Level::Info, "test", "dropped", "below level");
    elog::emit(elog::Level::Error, "test", "kept", "at level");
    elog::close();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"kept\""), std::string::npos);
}

TEST(EventLog, ClosedSinkDisablesEverything)
{
    elog::close();
    EXPECT_FALSE(elog::enabled(elog::Level::Error));
    EXPECT_TRUE(elog::runId().empty());
    // Emitting while closed must be a harmless no-op.
    elog::emit(elog::Level::Error, "test", "nowhere", "dropped");
}

TEST(EventLog, RequestIdsCorrelateAndNest)
{
    const std::string path = "elog_req.tmp.jsonl";
    EventLogGuard guard(path);
    ASSERT_TRUE(elog::open(path));

    elog::emit(elog::Level::Info, "test", "outside", "no request");
    {
        elog::ScopedRequestId outer("req-1");
        elog::emit(elog::Level::Info, "test", "outer", "m");
        {
            elog::ScopedRequestId inner("req-2");
            elog::emit(elog::Level::Info, "test", "inner", "m");
        }
        elog::emit(elog::Level::Info, "test", "outer_again", "m");
    }
    elog::emit(elog::Level::Info, "test", "after", "m");
    elog::close();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0].find("\"request\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"request\": \"req-1\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"request\": \"req-2\""), std::string::npos);
    EXPECT_NE(lines[3].find("\"request\": \"req-1\""), std::string::npos);
    EXPECT_EQ(lines[4].find("\"request\""), std::string::npos);
    // All five carry the same run ID.
    const std::size_t at = lines[0].find("\"run\": \"");
    ASSERT_NE(at, std::string::npos);
    const std::string run = lines[0].substr(at, 8 + 2 + 16 + 1);
    for (const auto &line : lines)
        EXPECT_NE(line.find(run), std::string::npos) << line;
}

TEST(EventLog, ConcurrentEmitsNeverInterleaveLines)
{
    const std::string path = "elog_mt.tmp.jsonl";
    EventLogGuard guard(path);
    ASSERT_TRUE(elog::open(path));
    constexpr std::size_t kEmits = 500;
    parallel::parallelFor(kEmits, [](std::size_t i) {
        elog::emit(elog::Level::Info, "test.mt", "tick", "m",
                   {elog::Field::num("i", static_cast<double>(i))});
    });
    elog::close();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), kEmits);
    std::string error;
    for (const auto &line : lines)
        ASSERT_TRUE(common::jsonValid(line, &error))
            << error << "\n" << line;
}

TEST(EventLog, ParseLevelRoundTripsAndRejectsJunk)
{
    elog::Level lv;
    ASSERT_TRUE(elog::parseLevel("debug", lv));
    EXPECT_EQ(lv, elog::Level::Debug);
    ASSERT_TRUE(elog::parseLevel("error", lv));
    EXPECT_EQ(lv, elog::Level::Error);
    EXPECT_FALSE(elog::parseLevel("verbose", lv));
    EXPECT_FALSE(elog::parseLevel("", lv));
    EXPECT_STREQ(elog::levelName(elog::Level::Warn), "warn");
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

TEST(FlightRecorder, WritesCsvRowsAndTraceCounters)
{
    InstrumentGuard guard(true);
    auto &reg = instr::Registry::instance();
    reg.gauge("cache.memory.hit_rate").set(0.75);
    reg.counter("component_memo.evictions").add(5);

    const std::string path = "recorder.tmp.csv";
    auto &rec = instr::FlightRecorder::instance();
    ASSERT_TRUE(rec.start(path, 10));
    EXPECT_TRUE(rec.running());
    // start() is idempotent while running.
    EXPECT_TRUE(rec.start(path, 10));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    rec.stop();
    EXPECT_FALSE(rec.running());
    rec.stop();  // idempotent

    const auto lines = readLines(path);
    std::remove(path.c_str());
    ASSERT_GE(lines.size(), 2u);  // header + at least one sample
    EXPECT_EQ(lines[0], instr::FlightRecorder::csvHeader());
    const std::size_t cols =
        1 + std::count(lines[0].begin(), lines[0].end(), ',');
    for (std::size_t i = 1; i < lines.size(); ++i) {
        EXPECT_EQ(1 + std::count(lines[i].begin(), lines[i].end(), ','),
                  static_cast<long>(cols))
            << "row " << i << ": " << lines[i];
    }

    // The same samples surface as Chrome counter events, after the
    // metadata events, in a trace that is still strict JSON.
    std::ostringstream os;
    instr::writeChromeTrace(os);
    const std::string trace = os.str();
    std::string error;
    ASSERT_TRUE(common::jsonValid(trace, &error)) << error;
    EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"mem_hit_rate\""), std::string::npos);
    EXPECT_NE(trace.find("\"args\": {\"value\""), std::string::npos);
    // The sampler thread announced its name.
    EXPECT_NE(trace.find("\"recorder\""), std::string::npos);
}

TEST(FlightRecorder, StartFailsCleanlyOnUnwritablePath)
{
    InstrumentGuard guard(true);
    auto &rec = instr::FlightRecorder::instance();
    EXPECT_FALSE(rec.start("no/such/dir/recorder.csv", 10));
    EXPECT_FALSE(rec.running());
}

TEST(TraceMetadata, ThreadNamesAppearInTrace)
{
    InstrumentGuard guard(true);
    std::thread t([] {
        instr::setThreadName("test-worker");
        MCPAT_SPAN("t.named_thread_span");
    });
    t.join();
    std::ostringstream os;
    instr::writeChromeTrace(os);
    const std::string trace = os.str();
    std::string error;
    ASSERT_TRUE(common::jsonValid(trace, &error)) << error;
    EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"test-worker\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Progress meter clamp.
// ---------------------------------------------------------------------

TEST(ProgressMeter, OverTickingClampsToTotal)
{
    InstrumentGuard guard(false);
    instr::setProgressEnabled(true);
    std::ostringstream os;
    instr::ProgressMeter meter("clamp", 3, &os);
    for (int i = 0; i < 5; ++i)
        meter.tick();
    instr::setProgressEnabled(false);

    EXPECT_EQ(meter.completed(), 3u);
    const std::string out = os.str();
    // Replayed items beyond the plan must never report >100% or a
    // negative ETA.
    EXPECT_NE(out.find("3/3 (100.0%)"), std::string::npos) << out;
    EXPECT_EQ(out.find("4/3"), std::string::npos) << out;
    EXPECT_EQ(out.find("5/3"), std::string::npos) << out;
    EXPECT_EQ(out.find("eta -"), std::string::npos) << out;
    EXPECT_EQ(out.find("(133"), std::string::npos) << out;
}

TEST(ProgressMeter, ConcurrentOverTickingStaysClamped)
{
    InstrumentGuard guard(false);
    constexpr std::size_t kTotal = 200;
    instr::ProgressMeter meter("mt-clamp", kTotal);
    // Twice as many ticks as planned, concurrently (a resumed batch
    // replaying journaled items does exactly this).
    parallel::parallelFor(2 * kTotal, [&](std::size_t) { meter.tick(); });
    EXPECT_EQ(meter.completed(), kTotal);
}
