/**
 * @file
 * Circuit-primitive tests: transistor R/C helpers, logical-effort
 * buffer chains, Elmore delay (against hand-computed references),
 * wires with repeater insertion, flip-flops, and the clock network.
 */

#include <gtest/gtest.h>

#include "circuit/clock_network.hh"
#include "circuit/dff.hh"
#include "circuit/elmore.hh"
#include "circuit/logical_effort.hh"
#include "circuit/wire.hh"

using namespace mcpat;
using namespace mcpat::circuit;
using tech::Technology;
using tech::WireLayer;

namespace {
const Technology &
tech65()
{
    static const Technology t(65);
    return t;
}
} // namespace

TEST(Transistor, CapsLinearInWidth)
{
    const auto &t = tech65();
    const double w = minWidth(t);
    EXPECT_NEAR(gateC(2.0 * w, t), 2.0 * gateC(w, t), 1e-21);
    EXPECT_NEAR(drainC(3.0 * w, t), 3.0 * drainC(w, t), 1e-21);
}

TEST(Transistor, ResistanceInverseInWidth)
{
    const auto &t = tech65();
    const double w = minWidth(t);
    EXPECT_NEAR(onResistanceN(2.0 * w, t), 0.5 * onResistanceN(w, t),
                1.0);
    EXPECT_GT(onResistanceP(w, t), onResistanceN(w, t) * 0.9);
}

TEST(Transistor, InverterBalanced)
{
    const auto &t = tech65();
    const Inverter inv(minWidth(t), t);
    EXPECT_DOUBLE_EQ(inv.wp, 2.0 * inv.wn);
    EXPECT_GT(inv.inputC(t), 0.0);
    EXPECT_GT(inv.selfC(t), 0.0);
    EXPECT_GT(inv.outputRes(t), 0.0);
}

TEST(Transistor, ComputedFo4MatchesTableWithinFactor)
{
    // The resEffFactor calibration should place a computed FO4 within
    // ~40% of the table's entry at every node.
    for (int node : Technology::availableNodes()) {
        const Technology t(node);
        const Inverter inv(minWidth(t), t);
        const double fo4 = rcDelayFactor * inv.outputRes(t) *
                           (inv.selfC(t) + 4.0 * inv.inputC(t));
        EXPECT_NEAR(fo4 / t.device().fo4, 1.0, 0.4) << "node " << node;
    }
}

TEST(Transistor, LeakagePositiveAndStackDerated)
{
    const auto &t = tech65();
    const double w = minWidth(t);
    const double flat = subthresholdLeakage(w, w, t, 1.0);
    const double stacked = subthresholdLeakage(w, w, t, 0.6);
    EXPECT_GT(flat, 0.0);
    EXPECT_NEAR(stacked / flat, 0.6, 1e-9);
}

TEST(Transistor, AverageNetCapDominatedByWire)
{
    const auto &t = tech65();
    const double wmin = minWidth(t);
    // The net model must charge clearly more than the bare gate load.
    EXPECT_GT(averageNetCap(t), 3.0 * gateC(2.0 * wmin, t));
    EXPECT_GT(logicGateEnergy(t), 0.0);
}

TEST(BufferChain, SingleStageForSmallLoad)
{
    const auto &t = tech65();
    const Inverter unit(minWidth(t), t);
    const BufferChain c(2.0 * unit.inputC(t), t);
    EXPECT_LE(c.numStages(), 2);
}

TEST(BufferChain, StageCountGrowsLogarithmically)
{
    const auto &t = tech65();
    const Inverter unit(minWidth(t), t);
    const BufferChain small(10.0 * unit.inputC(t), t);
    const BufferChain big(1000.0 * unit.inputC(t), t);
    EXPECT_GT(big.numStages(), small.numStages());
    EXPECT_LE(big.numStages(), small.numStages() + 4);
}

TEST(BufferChain, DelayMonotonicInLoad)
{
    const auto &t = tech65();
    double prev = 0.0;
    for (double load_ff : {1.0, 10.0, 100.0, 1000.0}) {
        const BufferChain c(load_ff * fF, t);
        EXPECT_GT(c.delay(), prev);
        prev = c.delay();
    }
}

TEST(BufferChain, EnergyAtLeastLoadEnergy)
{
    const auto &t = tech65();
    const double load = 200.0 * fF;
    const BufferChain c(load, t);
    EXPECT_GE(c.energyPerEvent(), load * t.vdd() * t.vdd());
}

TEST(BufferChain, MinStagesRespected)
{
    const auto &t = tech65();
    const BufferChain c(1.0 * fF, t, 0.0, 3);
    EXPECT_GE(c.numStages(), 3);
}

TEST(Elmore, HandComputedLadder)
{
    // Driver 1k into two segments (1k, 1fF at the far node each) +
    // 1 fF load.  Elmore by hand: the driver and the first segment
    // each charge all 3 fF downstream of them (segment caps sit at
    // the far node), the second charges its node + load (2 fF).
    const std::vector<RcSegment> segs = {{1000.0, 1.0 * fF},
                                         {1000.0, 1.0 * fF}};
    const double d = elmoreLadderDelay(1000.0, segs, 1.0 * fF);
    const double expected =
        rcDelayFactor * (1000.0 * 3e-15 + 1000.0 * 3e-15 +
                         1000.0 * 2e-15);
    EXPECT_NEAR(d, expected, expected * 1e-9);
}

TEST(Elmore, DistributedLineLimits)
{
    // With no wire, reduces to lumped RC.
    const double d = distributedLineDelay(1000.0, 0.0, 0.0, 2.0 * fF);
    EXPECT_NEAR(d, rcDelayFactor * 1000.0 * 2e-15, 1e-18);
    // Wire-only delay uses the 0.38 distributed factor.
    const double dw = distributedLineDelay(0.0, 1000.0, 2.0 * fF, 0.0);
    EXPECT_NEAR(dw, 0.38 * 1000.0 * 2e-15, 1e-18);
}

TEST(Elmore, TreeMatchesLadder)
{
    // A degenerate tree (chain) must match the ladder formula.
    RcTree tree(0.0);
    const auto n1 = tree.addNode(0, 1000.0, 1.0 * fF);
    const auto n2 = tree.addNode(n1, 1000.0, 1.0 * fF);
    tree.addCap(n2, 1.0 * fF);
    const std::vector<RcSegment> segs = {{1000.0, 1.0 * fF},
                                         {1000.0, 1.0 * fF}};
    EXPECT_NEAR(tree.delayTo(n2, 500.0),
                elmoreLadderDelay(500.0, segs, 1.0 * fF), 1e-18);
}

TEST(Elmore, BranchOffPathCountsOnlyForSharedResistance)
{
    RcTree tree(0.0);
    const auto trunk = tree.addNode(0, 1000.0, 1.0 * fF);
    const auto sink = tree.addNode(trunk, 1000.0, 1.0 * fF);
    const auto branch = tree.addNode(trunk, 1000.0, 4.0 * fF);
    (void)branch;
    // Branch cap is charged through the trunk resistance but not the
    // sink's own segment.
    const double d = tree.delayTo(sink, 0.0);
    const double expected = rcDelayFactor *
        (1000.0 * (1e-15 + 1e-15 + 4e-15) + 1000.0 * 1e-15);
    EXPECT_NEAR(d, expected, expected * 1e-9);
}

TEST(Elmore, TotalCap)
{
    RcTree tree(1.0 * fF);
    tree.addNode(0, 100.0, 2.0 * fF);
    EXPECT_NEAR(tree.totalCap(), 3.0 * fF, 1e-21);
}

TEST(Wire, RcProportionalToLength)
{
    const auto &t = tech65();
    const Wire w1(1.0 * mm, WireLayer::Global, t);
    const Wire w2(2.0 * mm, WireLayer::Global, t);
    EXPECT_NEAR(w2.resistance(), 2.0 * w1.resistance(), 1e-6);
    EXPECT_NEAR(w2.capacitance(), 2.0 * w1.capacitance(), 1e-20);
}

TEST(RepeatedWire, DelayLinearInLength)
{
    const auto &t = tech65();
    const RepeatedWire w1(2.0 * mm, WireLayer::Global, t);
    const RepeatedWire w4(8.0 * mm, WireLayer::Global, t);
    EXPECT_NEAR(w4.delay() / w1.delay(), 4.0, 0.5);
}

TEST(RepeatedWire, BeatsUnrepeatedForLongWires)
{
    const auto &t = tech65();
    const double len = 5.0 * mm;
    const RepeatedWire rep(len, WireLayer::Global, t);
    const Wire flat(len, WireLayer::Global, t);
    const Inverter drv(8.0 * minWidth(t), t);
    EXPECT_LT(rep.delay(),
              flat.unrepeatedDelay(drv.outputRes(t), drv.inputC(t)));
}

TEST(RepeatedWire, DeratingTradesDelayForEnergy)
{
    const auto &t = tech65();
    const RepeatedWire full(4.0 * mm, WireLayer::Global, t, 1.0);
    const RepeatedWire derated(4.0 * mm, WireLayer::Global, t, 0.5);
    EXPECT_GT(derated.delay(), full.delay());
    EXPECT_LT(derated.energyPerEvent(), full.energyPerEvent());
    EXPECT_LT(derated.subthresholdLeakage(),
              full.subthresholdLeakage());
}

TEST(RepeatedWire, InvalidDeratingRejected)
{
    const auto &t = tech65();
    EXPECT_THROW(RepeatedWire(1.0 * mm, WireLayer::Global, t, 0.0),
                 ModelError);
    EXPECT_THROW(RepeatedWire(1.0 * mm, WireLayer::Global, t, 1.5),
                 ModelError);
}

TEST(LowSwingWire, SavesEnergyOverFullSwing)
{
    const auto &t = tech65();
    const double len = 5.0 * mm;
    const LowSwingWire low(len, WireLayer::Global, t);
    const RepeatedWire full(len, WireLayer::Global, t);
    EXPECT_LT(low.energyPerEvent(), full.energyPerEvent());
}

TEST(Dff, EnergiesAndAreaPositive)
{
    const auto &t = tech65();
    const Dff d(t);
    EXPECT_GT(d.inputC(), 0.0);
    EXPECT_GT(d.clockC(), 0.0);
    EXPECT_GT(d.dataEnergy(), 0.0);
    EXPECT_GT(d.clockEnergyPerCycle(), 0.0);
    EXPECT_DOUBLE_EQ(d.area(), t.dffArea());
}

TEST(DffBank, LinearInBits)
{
    const auto &t = tech65();
    const DffBank b1(64, t);
    const DffBank b2(128, t);
    EXPECT_NEAR(b2.area(), 2.0 * b1.area(), 1e-15);
    EXPECT_NEAR(b2.clockLoad(), 2.0 * b1.clockLoad(), 1e-20);
    EXPECT_NEAR(b2.energyPerCycle(0.3), 2.0 * b1.energyPerCycle(0.3),
                1e-18);
}

TEST(DffBank, ClockEnergyEvenWhenDataIdle)
{
    const auto &t = tech65();
    const DffBank b(64, t);
    EXPECT_GT(b.energyPerCycle(0.0), 0.0);
    EXPECT_GT(b.energyPerCycle(0.5), b.energyPerCycle(0.0));
}

TEST(ClockNetwork, EnergyGrowsWithArea)
{
    const auto &t = tech65();
    const ClockNetwork small(4.0 * mm2, 10.0 * pF, t);
    const ClockNetwork big(100.0 * mm2, 10.0 * pF, t);
    EXPECT_GT(big.energyPerCycle(), small.energyPerCycle());
    EXPECT_GT(big.wireLength(), small.wireLength());
}

TEST(ClockNetwork, SinkCapAddsEnergy)
{
    const auto &t = tech65();
    const ClockNetwork light(10.0 * mm2, 1.0 * pF, t);
    const ClockNetwork heavy(10.0 * mm2, 100.0 * pF, t);
    EXPECT_GT(heavy.energyPerCycle(), light.energyPerCycle());
}

TEST(ClockNetwork, CoarserGridCheaper)
{
    const auto &t = tech65();
    const ClockNetwork dense(10.0 * mm2, 10.0 * pF, t, 20.0 * um);
    const ClockNetwork sparse(10.0 * mm2, 10.0 * pF, t, 80.0 * um);
    EXPECT_GT(dense.energyPerCycle(), sparse.energyPerCycle());
}

TEST(ClockNetwork, ReportScalesWithFrequencyAndGating)
{
    const auto &t = tech65();
    const ClockNetwork net(10.0 * mm2, 10.0 * pF, t);
    const Report r1 = net.makeReport(1.0 * GHz);
    const Report r2 = net.makeReport(2.0 * GHz);
    EXPECT_NEAR(r2.peakDynamic, 2.0 * r1.peakDynamic, 1e-9);
    const Report gated = net.makeReport(1.0 * GHz, 0.5);
    EXPECT_NEAR(gated.runtimeDynamic, 0.5 * r1.runtimeDynamic, 1e-12);
    EXPECT_DOUBLE_EQ(gated.peakDynamic, r1.peakDynamic);
}

/** Property sweep: repeated wires behave physically on all layers and
 *  lengths. */
class RepeatedWireSweep
    : public ::testing::TestWithParam<std::tuple<double, WireLayer>>
{};

TEST_P(RepeatedWireSweep, PhysicalResults)
{
    const auto [len_mm, layer] = GetParam();
    const auto &t = tech65();
    const RepeatedWire w(len_mm * mm, layer, t);
    EXPECT_GT(w.delay(), 0.0);
    EXPECT_GT(w.energyPerEvent(), 0.0);
    EXPECT_GT(w.subthresholdLeakage(), 0.0);
    EXPECT_GE(w.numRepeaters(), 1);
    // Sub-30 ps/mm on any layer would beat speed of light in silicon
    // interconnect practice; sanity-band the per-length delay.
    const double d_per_mm = w.delay() / (len_mm);
    EXPECT_GT(d_per_mm, 20.0 * ps);
    EXPECT_LT(d_per_mm, 2000.0 * ps);
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndLayers, RepeatedWireSweep,
    ::testing::Combine(::testing::Values(0.25, 1.0, 4.0, 16.0),
                       ::testing::Values(WireLayer::Local,
                                         WireLayer::Intermediate,
                                         WireLayer::Global)));
