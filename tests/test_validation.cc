/**
 * @file
 * Validation regression tests: pin the modeled TDP and die area of the
 * four published processors inside the paper-grade error bands
 * (DESIGN.md section 7), so model edits cannot silently break the
 * calibration.  The XML files under configs/ are the single source of
 * truth for the validation configurations.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "chip/processor.hh"
#include "config/xml_loader.hh"

using namespace mcpat;

namespace {

struct Published
{
    const char *file;
    double tdp;    ///< W
    double area;   ///< mm^2
};

std::string
findConfig(const std::string &name)
{
    for (const std::string prefix :
         {"configs/", "../configs/", "../../configs/"}) {
        const std::string path = prefix + name;
        if (std::ifstream(path).good())
            return path;
    }
    throw ConfigError("cannot find configs/" + name +
                      " (run tests from the repo root or build tree)");
}

chip::Processor
build(const char *file)
{
    auto loaded =
        config::loadSystemParamsFromFile(findConfig(file));
    EXPECT_TRUE(loaded.warnings.empty()) << file;
    return chip::Processor(loaded.system);
}

/** Paper-grade validation bands. */
constexpr double tdpBand = 0.25;
constexpr double areaBand = 0.25;

class ValidationTest : public ::testing::TestWithParam<Published>
{};

} // namespace

TEST_P(ValidationTest, TdpWithinBand)
{
    const Published pub = GetParam();
    const chip::Processor p = build(pub.file);
    const double err = (p.tdp() - pub.tdp) / pub.tdp;
    EXPECT_LT(std::abs(err), tdpBand)
        << pub.file << ": modeled " << p.tdp() << " W vs published "
        << pub.tdp << " W";
}

TEST_P(ValidationTest, AreaWithinBand)
{
    const Published pub = GetParam();
    const chip::Processor p = build(pub.file);
    const double area = p.area() / mm2;
    const double err = (area - pub.area) / pub.area;
    EXPECT_LT(std::abs(err), areaBand)
        << pub.file << ": modeled " << area << " mm2 vs published "
        << pub.area << " mm2";
}

TEST_P(ValidationTest, LeakageFractionPlausible)
{
    const Published pub = GetParam();
    const chip::Processor p = build(pub.file);
    const Report &r = p.tdpReport();
    const double leak_frac = r.leakage() / p.tdp();
    EXPECT_GT(leak_frac, 0.0005) << pub.file;  // 180 nm leaks ~0.1%
    EXPECT_LT(leak_frac, 0.45) << pub.file;
}

TEST_P(ValidationTest, CoresDominateButDontMonopolize)
{
    const Published pub = GetParam();
    const chip::Processor p = build(pub.file);
    const Report &r = p.tdpReport();
    // Find the cores block without assuming the exact core count text.
    const Report *cores = nullptr;
    for (const auto &c : r.children)
        if (c.name.rfind("Total Cores", 0) == 0)
            cores = &c;
    ASSERT_NE(cores, nullptr) << pub.file;
    const double frac = cores->peakPower() / p.tdp();
    EXPECT_GT(frac, 0.25) << pub.file;
    EXPECT_LT(frac, 0.95) << pub.file;
}

INSTANTIATE_TEST_SUITE_P(
    PublishedChips, ValidationTest,
    ::testing::Values(Published{"niagara.xml", 63.0, 378.0},
                      Published{"niagara2.xml", 84.0, 342.0},
                      Published{"alpha21364.xml", 125.0, 397.0},
                      Published{"xeon_tulsa.xml", 150.0, 435.0}));

TEST(ValidationShape, PublishedPowerOrderingPreserved)
{
    // The paper's four chips order 63 < 84 < 125 < 150; the model must
    // reproduce that ordering.
    const double niagara = build("niagara.xml").tdp();
    const double niagara2 = build("niagara2.xml").tdp();
    const double alpha = build("alpha21364.xml").tdp();
    const double tulsa = build("xeon_tulsa.xml").tdp();
    EXPECT_LT(niagara, niagara2);
    EXPECT_LT(niagara2, alpha);
    EXPECT_LT(alpha, tulsa);
}

TEST(ValidationShape, HotterProcessDeeperPipelineBurnsMoreClock)
{
    // Tulsa (31-stage, 3.4 GHz) must spend far more of its core power
    // in the clock network than Niagara (6-stage, 1.2 GHz).
    auto clock_fraction = [](const char *file) {
        const chip::Processor p = build(file);
        const Report *cores = nullptr;
        for (const auto &c : p.tdpReport().children)
            if (c.name.rfind("Total Cores", 0) == 0)
                cores = &c;
        const Report &core = cores->children.front();
        const Report *clk = core.child("Clock Network");
        return clk->peakDynamic / core.peakDynamic;
    };
    EXPECT_GT(clock_fraction("xeon_tulsa.xml"),
              clock_fraction("niagara.xml"));
}

TEST(ValidationShape, LeakageWorstOnHotLeakyNodes)
{
    // 65 nm HP (Tulsa) must leak a far larger fraction than 180 nm
    // (Alpha), where leakage was still negligible.
    auto leak_fraction = [](const char *file) {
        const chip::Processor p = build(file);
        return p.tdpReport().leakage() / p.tdp();
    };
    EXPECT_GT(leak_fraction("xeon_tulsa.xml"),
              5.0 * leak_fraction("alpha21364.xml"));
}
