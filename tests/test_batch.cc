/**
 * @file
 * Batch-evaluation tests: list-file parsing, per-input JSON/CSV report
 * round-trips, failure isolation, and the interaction with the
 * persistent cache — a second batch pass over the same configs must be
 * served from disk and produce byte-identical reports.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "array/array_cache.hh"
#include "chip/component_memo.hh"
#include "common/logging.hh"
#include "study/batch.hh"

using namespace mcpat;
namespace fs = std::filesystem;

namespace {

std::string
findConfig(const std::string &name)
{
    for (const std::string prefix :
         {"configs/", "../configs/", "../../configs/"}) {
        std::ifstream f(prefix + name);
        if (f.good())
            return fs::absolute(prefix + name).string();
    }
    throw ConfigError("cannot find configs/" + name);
}

fs::path
scratchDir(const std::string &tag)
{
    static int counter = 0;
    const fs::path dir = fs::temp_directory_path() /
        ("mcpat_batch_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
writeList(const fs::path &dir, const std::vector<std::string> &lines)
{
    const std::string path = (dir / "list.txt").string();
    std::ofstream out(path);
    for (const auto &l : lines)
        out << l << "\n";
    return path;
}

} // namespace

TEST(BatchList, ParsesCommentsBlanksAndRelativePaths)
{
    const fs::path dir = scratchDir("list");
    std::ofstream(dir / "a.xml") << "<x/>";
    const std::string list = writeList(dir,
        {"# leading comment", "", "a.xml  # trailing comment",
         "  /abs/b.xml  ", "\t"});
    const auto configs = study::readBatchList(list);
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0], (dir / "a.xml").string());
    EXPECT_EQ(configs[1], "/abs/b.xml");
    fs::remove_all(dir);
}

TEST(BatchList, MissingOrEmptyListThrows)
{
    EXPECT_THROW(study::readBatchList("/nonexistent/list.txt"),
                 ConfigError);
    const fs::path dir = scratchDir("emptylist");
    const std::string list = writeList(dir, {"# only comments", ""});
    EXPECT_THROW(study::readBatchList(list), ConfigError);
    fs::remove_all(dir);
}

TEST(Batch, WritesOneJsonAndCsvReportPerInput)
{
    const fs::path dir = scratchDir("reports");
    const std::string list = writeList(dir,
        {findConfig("niagara.xml"), findConfig("alpha21364.xml")});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);

    EXPECT_TRUE(res.ok());
    ASSERT_EQ(res.items.size(), 2u);
    for (const auto &item : res.items) {
        EXPECT_TRUE(item.ok) << item.input << ": " << item.error;
        EXPECT_GT(item.area, 0.0);
        EXPECT_GT(item.peakPower, 0.0);

        // JSON report: parseable shape with the chip node present.
        const std::string json = slurp(item.jsonPath);
        EXPECT_EQ(json.front(), '{') << item.jsonPath;
        EXPECT_NE(json.find("\"name\""), std::string::npos);
        EXPECT_NE(json.find("\"area"), std::string::npos);

        // CSV report: header plus at least one data row.
        const std::string csv = slurp(item.csvPath);
        EXPECT_EQ(csv.rfind("path,area_mm2,", 0), 0u) << item.csvPath;
        EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 1);
    }
    // Distinct inputs produced distinct report stems.
    EXPECT_NE(res.items[0].jsonPath, res.items[1].jsonPath);

    const std::string summary = log.str();
    EXPECT_NE(summary.find("batch summary: 2 configs, 2 ok"),
              std::string::npos)
        << summary;
    EXPECT_NE(summary.find("hit rate"), std::string::npos) << summary;
    fs::remove_all(dir);
}

TEST(Batch, DuplicateStemsGetUniqueOutputs)
{
    const fs::path dir = scratchDir("dupes");
    const std::string cfg = findConfig("niagara.xml");
    const std::string list = writeList(dir, {cfg, cfg});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    opts.writeCsv = false;
    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);
    ASSERT_EQ(res.items.size(), 2u);
    EXPECT_TRUE(res.ok());
    EXPECT_NE(res.items[0].jsonPath, res.items[1].jsonPath);
    // Identical configs in one process must produce identical bytes.
    EXPECT_EQ(slurp(res.items[0].jsonPath), slurp(res.items[1].jsonPath));
    fs::remove_all(dir);
}

TEST(Batch, FailingInputIsIsolatedAndCounted)
{
    const fs::path dir = scratchDir("failure");
    std::ofstream(dir / "broken.xml") << "this is not xml";
    const std::string list = writeList(dir,
        {(dir / "broken.xml").string(), findConfig("niagara.xml"),
         (dir / "missing.xml").string()});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);

    ASSERT_EQ(res.items.size(), 3u);
    EXPECT_EQ(res.failures, 2u);
    EXPECT_FALSE(res.ok());
    EXPECT_FALSE(res.items[0].ok);
    EXPECT_FALSE(res.items[0].error.empty());
    EXPECT_TRUE(res.items[1].ok);
    EXPECT_FALSE(res.items[2].ok);
    EXPECT_NE(log.str().find("FAILED"), std::string::npos);
    fs::remove_all(dir);
}

TEST(Batch, SecondPassHitsDiskAndReproducesBytes)
{
    const fs::path dir = scratchDir("twopasses");
    const std::string list = writeList(dir,
        {findConfig("niagara.xml"), findConfig("niagara2.xml")});

    auto &cache = array::ArrayResultCache::instance();
    const bool was_enabled = cache.enabled();
    cache.clear();
    cache.setEnabled(true);
    cache.setCacheDir((dir / "cache").string());
    chip::ComponentMemo::instance().clear();

    study::BatchOptions opts;
    opts.outputDir = (dir / "out1").string();
    opts.writeCsv = true;
    std::ostringstream log1;
    const auto pass1 = study::runBatch(list, opts, log1);
    ASSERT_TRUE(pass1.ok()) << log1.str();
    EXPECT_EQ(pass1.cacheStats.diskHits, 0u);
    EXPECT_GT(pass1.cacheStats.diskMisses, 0u);

    // Fresh process simulation: drop every in-memory tier — the
    // component memo above the arrays and the array memory cache —
    // and keep only the disk.
    cache.setCacheDir((dir / "cache").string());  // zero disk counters
    cache.clear();
    chip::ComponentMemo::instance().clear();

    opts.outputDir = (dir / "out2").string();
    std::ostringstream log2;
    const auto pass2 = study::runBatch(list, opts, log2);
    ASSERT_TRUE(pass2.ok()) << log2.str();
    EXPECT_GT(pass2.cacheStats.diskHits, 0u);
    EXPECT_EQ(pass2.cacheStats.diskCorrupt, 0u);

    ASSERT_EQ(pass1.items.size(), pass2.items.size());
    for (std::size_t i = 0; i < pass1.items.size(); ++i) {
        EXPECT_EQ(slurp(pass1.items[i].jsonPath),
                  slurp(pass2.items[i].jsonPath))
            << pass1.items[i].input;
        EXPECT_EQ(slurp(pass1.items[i].csvPath),
                  slurp(pass2.items[i].csvPath))
            << pass1.items[i].input;
        EXPECT_EQ(pass1.items[i].area, pass2.items[i].area);
        EXPECT_EQ(pass1.items[i].peakPower, pass2.items[i].peakPower);
    }

    cache.setCacheDir("");
    cache.setEnabled(was_enabled);
    cache.clear();
    fs::remove_all(dir);
}

namespace {

/**
 * A copy of niagara.xml with an unknown param injected, so the load
 * produces a Warning diagnostic (and therefore sidecar files) while
 * the model still evaluates.
 */
std::string
writeWarningConfig(const fs::path &dir)
{
    const std::string src = findConfig("niagara.xml");
    std::string text = slurp(src);
    const std::string anchor = "<param name=\"technology_node\"";
    const auto pos = text.find(anchor);
    EXPECT_NE(pos, std::string::npos);
    text.insert(pos,
                "<param name=\"definitely_unknown_param\" "
                "value=\"1\"/>\n  ");
    const std::string path = (dir / "warned.xml").string();
    std::ofstream(path) << text;
    return path;
}

} // namespace

TEST(Batch, SidecarWriteFailureIsRecordedNotSilent)
{
    const fs::path dir = scratchDir("sidecar_fail");
    const std::string list = writeList(dir, {writeWarningConfig(dir)});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    // Block both sidecar paths: an ofstream cannot open a path that
    // is already a directory, which is how we force the failure even
    // when running as root (chmod is a no-op for root).
    fs::create_directories(fs::path(opts.outputDir) /
                           "warned.diagnostics.json");
    fs::create_directories(fs::path(opts.outputDir) /
                           "warned.diagnostics.csv");

    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);
    ASSERT_EQ(res.items.size(), 1u);
    const auto &item = res.items[0];

    // The evaluation itself succeeded; the lost sidecars are recorded
    // in the error field and as located warning diagnostics instead
    // of disappearing.
    EXPECT_TRUE(item.ok) << item.error;
    EXPECT_NE(item.error.find("cannot write"), std::string::npos)
        << item.error;
    EXPECT_TRUE(item.diagnosticsJsonPath.empty());
    EXPECT_TRUE(item.diagnosticsCsvPath.empty());
    bool json_warned = false, csv_warned = false;
    for (const auto &d : item.diagnostics) {
        if (d.component == "batch" && d.key == "diagnostics_json")
            json_warned = true;
        if (d.component == "batch" && d.key == "diagnostics_csv")
            csv_warned = true;
    }
    EXPECT_TRUE(json_warned);
    EXPECT_TRUE(csv_warned);

    // The summary CSV row carries the failure too.
    const std::string summary = slurp(res.summaryCsvPath);
    EXPECT_NE(summary.find("cannot write"), std::string::npos)
        << summary;
    fs::remove_all(dir);
}

TEST(Batch, SidecarsWrittenOnSuccessStillWork)
{
    const fs::path dir = scratchDir("sidecar_ok");
    const std::string list = writeList(dir, {writeWarningConfig(dir)});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);
    ASSERT_EQ(res.items.size(), 1u);
    EXPECT_TRUE(res.items[0].ok);
    EXPECT_TRUE(res.items[0].error.empty()) << res.items[0].error;
    EXPECT_FALSE(res.items[0].diagnosticsJsonPath.empty());
    EXPECT_FALSE(res.items[0].diagnosticsCsvPath.empty());
    fs::remove_all(dir);
}

TEST(Batch, SummaryCsvFailureIsFlaggedAndWarned)
{
    const fs::path dir = scratchDir("summary_fail");
    const std::string list = writeList(dir, {findConfig("niagara.xml")});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    // A directory squatting on the summary path forces the open to
    // fail.
    fs::create_directories(fs::path(opts.outputDir) /
                           "batch_summary.csv");

    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);
    EXPECT_TRUE(res.summaryCsvPath.empty());
    EXPECT_FALSE(res.summaryError.empty());
    EXPECT_NE(res.summaryError.find("batch_summary.csv"),
              std::string::npos) << res.summaryError;
    EXPECT_NE(log.str().find("warning"), std::string::npos)
        << log.str();
    // The failure is about the summary only; the batch itself is fine.
    EXPECT_TRUE(res.ok());
    fs::remove_all(dir);
}

TEST(Batch, SummaryCsvSuccessSetsPathAndNoError)
{
    const fs::path dir = scratchDir("summary_ok");
    const std::string list = writeList(dir, {findConfig("niagara.xml")});

    study::BatchOptions opts;
    opts.outputDir = (dir / "out").string();
    std::ostringstream log;
    const auto res = study::runBatch(list, opts, log);
    EXPECT_FALSE(res.summaryCsvPath.empty());
    EXPECT_TRUE(res.summaryError.empty()) << res.summaryError;
    EXPECT_NE(slurp(res.summaryCsvPath).find("input,name,ok"),
              std::string::npos);
    fs::remove_all(dir);
}
