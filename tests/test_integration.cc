/**
 * @file
 * Cross-module integration tests: XML config -> processor -> report
 * for every bundled configuration, performance model -> runtime power,
 * and whole-tree consistency invariants.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <functional>

#include "chip/processor.hh"
#include "config/xml_loader.hh"
#include "perf/activity_gen.hh"
#include "study/sweep.hh"

using namespace mcpat;

namespace {

std::string
findConfig(const std::string &name)
{
    for (const std::string prefix :
         {"configs/", "../configs/", "../../configs/"}) {
        const std::string path = prefix + name;
        if (std::ifstream(path).good())
            return path;
    }
    throw ConfigError("cannot find configs/" + name);
}

/** Recursively verify parent totals cover their children. */
void
checkTreeConsistency(const Report &r)
{
    if (r.children.empty())
        return;
    double dyn = 0.0, sub = 0.0, gate = 0.0, area = 0.0;
    for (const auto &c : r.children) {
        dyn += c.peakDynamic;
        sub += c.subthresholdLeakage;
        gate += c.gateLeakage;
        area += c.area;
        checkTreeConsistency(c);
    }
    const double tol = 1e-6;
    // Parents may add their own overhead (white space, wiring) but can
    // never report less than the sum of their parts.
    EXPECT_GE(r.peakDynamic, dyn * (1.0 - tol)) << r.name;
    EXPECT_GE(r.subthresholdLeakage, sub * (1.0 - tol)) << r.name;
    EXPECT_GE(r.gateLeakage, gate * (1.0 - tol)) << r.name;
    EXPECT_GE(r.area, area * (1.0 - tol)) << r.name;
}

class ConfigIntegrationTest
    : public ::testing::TestWithParam<const char *>
{};

} // namespace

TEST_P(ConfigIntegrationTest, LoadsBuildsAndReports)
{
    const auto loaded =
        config::loadSystemParamsFromFile(findConfig(GetParam()));
    EXPECT_TRUE(loaded.warnings.empty());

    const chip::Processor proc(loaded.system);
    EXPECT_GT(proc.tdp(), 10.0);
    EXPECT_LT(proc.tdp(), 400.0);
    EXPECT_GT(proc.area() / mm2, 50.0);
    EXPECT_LT(proc.area() / mm2, 800.0);
}

TEST_P(ConfigIntegrationTest, ReportTreeConsistent)
{
    const auto loaded =
        config::loadSystemParamsFromFile(findConfig(GetParam()));
    const chip::Processor proc(loaded.system);
    checkTreeConsistency(proc.tdpReport());
}

TEST_P(ConfigIntegrationTest, ScaledStatsScaleRuntimePower)
{
    const auto loaded =
        config::loadSystemParamsFromFile(findConfig(GetParam()));
    const chip::Processor proc(loaded.system);

    stats::ChipStats low = stats::ChipStats::tdp(loaded.system);
    low.perCore = low.perCore.scaled(0.2);
    low.perCore.clockGating = 0.4;
    low.mcUtilization *= 0.2;
    low.nocFlitsPerCycle *= 0.2;

    const Report full = proc.makeReport(
        stats::ChipStats::tdp(loaded.system));
    const Report idle = proc.makeReport(low);
    EXPECT_LT(idle.runtimeDynamic, full.runtimeDynamic);
    // Leakage is activity-independent.
    EXPECT_NEAR(idle.leakage(), full.leakage(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigIntegrationTest,
                         ::testing::Values("niagara.xml",
                                           "niagara2.xml",
                                           "alpha21364.xml",
                                           "xeon_tulsa.xml"));

TEST(Integration, PerfToChipPowerPipeline)
{
    // The full paper workflow: architecture -> performance simulation
    // -> activity stats -> runtime power, for one case-study point.
    study::CaseStudyConfig cfg;
    cfg.totalCores = 16;
    const auto sys = study::makeCaseStudySystem(cfg);
    const chip::Processor proc(sys);

    const auto &heavy = perf::findWorkload("ocean");
    const auto &light = perf::findWorkload("water");
    const auto p_heavy = perf::evaluateSystem(sys, heavy);
    const auto p_light = perf::evaluateSystem(sys, light);

    const Report r_heavy = proc.makeReport(
        perf::makeRuntimeStats(sys, heavy, p_heavy));
    const Report r_light = proc.makeReport(
        perf::makeRuntimeStats(sys, light, p_light));

    // water executes more instructions/s (compute-bound, high IPC)...
    EXPECT_GT(p_light.throughput, p_heavy.throughput);
    // ...and both land between idle leakage and TDP.
    for (const Report *r : {&r_heavy, &r_light}) {
        EXPECT_GT(r->runtimePower(), r->leakage());
        EXPECT_LT(r->runtimePower(), proc.tdp() * 1.05);
    }
}

TEST(Integration, DvfsReducesChipPower)
{
    auto loaded =
        config::loadSystemParamsFromFile(findConfig("niagara.xml"));
    const chip::Processor nominal(loaded.system);

    auto scaled = loaded.system;
    scaled.vdd = 1.0;  // below the 1.2 V nominal
    scaled.core.clockRate *= 0.8;
    const chip::Processor slow(scaled);

    EXPECT_LT(slow.tdp(), nominal.tdp());
}

TEST(Integration, ConservativeWiresSlowTheCore)
{
    auto loaded =
        config::loadSystemParamsFromFile(findConfig("niagara.xml"));
    const chip::Processor agg(loaded.system);

    auto cons = loaded.system;
    cons.projection = tech::WireProjection::Conservative;
    const chip::Processor con(cons);

    EXPECT_LT(con.core().maxFrequency(), agg.core().maxFrequency());
}

TEST(Integration, TemperatureRaisesLeakageOnly)
{
    auto loaded =
        config::loadSystemParamsFromFile(findConfig("niagara2.xml"));
    auto cool_sys = loaded.system;
    cool_sys.temperature = 320.0;
    const chip::Processor hot(loaded.system);   // 360 K
    const chip::Processor cool(cool_sys);
    EXPECT_GT(hot.tdpReport().subthresholdLeakage,
              2.0 * cool.tdpReport().subthresholdLeakage);
    EXPECT_NEAR(hot.tdpReport().peakDynamic,
                cool.tdpReport().peakDynamic,
                hot.tdpReport().peakDynamic * 0.01);
}
