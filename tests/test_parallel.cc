/**
 * @file
 * Parallel evaluation engine tests: parallelFor semantics, serial vs
 * parallel bit-identical chip reports, array-cache memoization, the
 * mesh-shape fallback for prime cluster counts, and the eDRAM
 * restore-energy clamp.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <vector>

#include "array/array_cache.hh"
#include "array/array_model.hh"
#include "chip/processor.hh"
#include "common/parallel.hh"
#include "config/xml_loader.hh"
#include "study/sweep.hh"

using namespace mcpat;

namespace {

std::string
findConfig(const std::string &name)
{
    for (const std::string prefix :
         {"configs/", "../configs/", "../../configs/"}) {
        std::ifstream f(prefix + name);
        if (f.good())
            return prefix + name;
    }
    throw ConfigError("cannot find configs/" + name);
}

/** RAII guard: pin the thread count, restore the default afterwards. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(int n) { parallel::setThreadCount(n); }
    ~ThreadCountGuard() { parallel::setThreadCount(0); }
};

/** RAII guard: force the array cache on/off, restore + clear after. */
struct CacheGuard
{
    explicit CacheGuard(bool on)
        : previous(array::ArrayResultCache::instance().enabled())
    {
        array::ArrayResultCache::instance().clear();
        array::ArrayResultCache::instance().setEnabled(on);
    }
    ~CacheGuard()
    {
        array::ArrayResultCache::instance().setEnabled(previous);
        array::ArrayResultCache::instance().clear();
    }
    bool previous;
};

/** Recursively require two report trees to match bit for bit. */
void
expectBitIdentical(const Report &a, const Report &b,
                   const std::string &path = "")
{
    const std::string here = path + "/" + a.name;
    EXPECT_EQ(a.name, b.name) << here;
    EXPECT_EQ(a.area, b.area) << here;
    EXPECT_EQ(a.peakDynamic, b.peakDynamic) << here;
    EXPECT_EQ(a.runtimeDynamic, b.runtimeDynamic) << here;
    EXPECT_EQ(a.subthresholdLeakage, b.subthresholdLeakage) << here;
    EXPECT_EQ(a.gateLeakage, b.gateLeakage) << here;
    EXPECT_EQ(a.runtimeSubthresholdLeakage,
              b.runtimeSubthresholdLeakage)
        << here;
    EXPECT_EQ(a.criticalPath, b.criticalPath) << here;
    ASSERT_EQ(a.children.size(), b.children.size()) << here;
    for (std::size_t i = 0; i < a.children.size(); ++i)
        expectBitIdentical(a.children[i], b.children[i], here);
}

} // namespace

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadCountGuard tc(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    parallel::parallelFor(n, [&](std::size_t i) { counts[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelFor, HandlesEmptyAndSingleRanges)
{
    ThreadCountGuard tc(4);
    parallel::parallelFor(0, [](std::size_t) { FAIL(); });
    int runs = 0;
    parallel::parallelFor(1, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 1);
}

TEST(ParallelFor, PropagatesExceptions)
{
    ThreadCountGuard tc(4);
    EXPECT_THROW(parallel::parallelFor(
                     64,
                     [](std::size_t i) {
                         if (i == 13)
                             throw ConfigError("boom");
                     }),
                 ConfigError);
    // The pool must stay usable after a failed job.
    std::atomic<int> total{0};
    parallel::parallelFor(8, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 8);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    ThreadCountGuard tc(4);
    EXPECT_FALSE(parallel::inParallelRegion());
    std::vector<std::atomic<int>> counts(16 * 16);
    parallel::parallelFor(16, [&](std::size_t outer) {
        EXPECT_TRUE(parallel::inParallelRegion());
        parallel::parallelFor(16, [&](std::size_t inner) {
            counts[outer * 16 + inner]++;
        });
    });
    EXPECT_FALSE(parallel::inParallelRegion());
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, ThreadCountOverride)
{
    parallel::setThreadCount(3);
    EXPECT_EQ(parallel::threadCount(), 3);
    parallel::setThreadCount(0);
    EXPECT_GE(parallel::threadCount(), 1);
}

TEST(Determinism, NiagaraSerialVsParallelBitIdentical)
{
    const auto loaded =
        config::loadSystemParamsFromFile(findConfig("niagara.xml"));

    Report serial, parallel_rep;
    {
        ThreadCountGuard tc(1);
        CacheGuard cache(false);
        serial = chip::Processor(loaded.system).tdpReport();
    }
    {
        ThreadCountGuard tc(4);
        CacheGuard cache(true);
        parallel_rep = chip::Processor(loaded.system).tdpReport();
    }
    expectBitIdentical(serial, parallel_rep);
}

TEST(Determinism, CaseStudyDesignPointBitIdentical)
{
    study::CaseStudyConfig cfg;
    cfg.totalCores = 16;  // 22 nm case-study shape, sized for test speed

    study::DesignPointResult serial, parallel_res;
    {
        ThreadCountGuard tc(1);
        CacheGuard cache(false);
        serial = study::evaluateDesignPoint(cfg);
    }
    {
        ThreadCountGuard tc(4);
        CacheGuard cache(true);
        parallel_res = study::evaluateDesignPoint(cfg);
    }

    EXPECT_EQ(serial.area, parallel_res.area);
    EXPECT_EQ(serial.tdp, parallel_res.tdp);
    EXPECT_EQ(serial.meanThroughput, parallel_res.meanThroughput);
    EXPECT_EQ(serial.meanPower, parallel_res.meanPower);
    EXPECT_EQ(serial.meanMetrics.ed, parallel_res.meanMetrics.ed);
    EXPECT_EQ(serial.meanMetrics.ed2, parallel_res.meanMetrics.ed2);
    EXPECT_EQ(serial.meanMetrics.eda, parallel_res.meanMetrics.eda);
    EXPECT_EQ(serial.meanMetrics.ed2a, parallel_res.meanMetrics.ed2a);
    ASSERT_EQ(serial.workloads.size(), parallel_res.workloads.size());
    for (std::size_t i = 0; i < serial.workloads.size(); ++i) {
        const auto &a = serial.workloads[i];
        const auto &b = parallel_res.workloads[i];
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.runtimePower, b.runtimePower) << a.workload;
        EXPECT_EQ(a.performance.throughput, b.performance.throughput)
            << a.workload;
        EXPECT_EQ(a.metrics.ed2a, b.metrics.ed2a) << a.workload;
    }
}

TEST(ArrayCache, HomogeneousManycoreHitsAndIdenticalResults)
{
    study::CaseStudyConfig cfg;
    cfg.totalCores = 16;
    const chip::SystemParams sys = study::makeCaseStudySystem(cfg);

    Report cached, uncached;
    array::ArrayCacheStats stats;
    {
        CacheGuard cache(true);
        // Two identical chips: the second must be served mostly from
        // the memo table.
        chip::Processor first(sys);
        cached = chip::Processor(sys).tdpReport();
        stats = array::ArrayResultCache::instance().stats();
    }
    {
        CacheGuard cache(false);
        uncached = chip::Processor(sys).tdpReport();
        const auto off = array::ArrayResultCache::instance().stats();
        EXPECT_EQ(off.hits + off.misses + off.entries, 0u);
    }

    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    // Concurrent first solves of one key may both count as misses, so
    // the table can only be at most miss-sized.
    EXPECT_LE(stats.entries, stats.misses);
    expectBitIdentical(cached, uncached);
}

TEST(ArrayCache, RepeatedSolveHitsAndMatches)
{
    const tech::Technology t(45);
    array::ArrayParams p;
    p.name = "first copy";
    p.sizeBytes = 64.0 * 1024;
    p.blockWidthBits = 256;
    p.banks = 2;

    CacheGuard cache(true);
    const array::ArrayModel fresh(p, t);
    p.name = "second copy";  // display name must not affect the key
    const array::ArrayModel memo(p, t);
    const auto stats = array::ArrayResultCache::instance().stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);

    EXPECT_EQ(fresh.readEnergy(), memo.readEnergy());
    EXPECT_EQ(fresh.area(), memo.area());
    EXPECT_EQ(fresh.accessDelay(), memo.accessDelay());
    EXPECT_EQ(fresh.result().org.ndwl, memo.result().org.ndwl);
    EXPECT_EQ(fresh.result().org.ndbl, memo.result().org.ndbl);
}

TEST(MeshDims, ExactFactorizationsKeepHistoricalShapes)
{
    EXPECT_EQ(study::meshDims(1), (std::pair<int, int>{1, 1}));
    EXPECT_EQ(study::meshDims(2), (std::pair<int, int>{1, 2}));
    EXPECT_EQ(study::meshDims(4), (std::pair<int, int>{2, 2}));
    EXPECT_EQ(study::meshDims(8), (std::pair<int, int>{2, 4}));
    EXPECT_EQ(study::meshDims(16), (std::pair<int, int>{4, 4}));
    EXPECT_EQ(study::meshDims(32), (std::pair<int, int>{4, 8}));
    EXPECT_EQ(study::meshDims(64), (std::pair<int, int>{8, 8}));
}

TEST(MeshDims, PrimeCountsPadInsteadOfChaining)
{
    for (int n : {3, 5, 7, 11, 13, 17, 19, 23, 61}) {
        const auto [nx, ny] = study::meshDims(n);
        EXPECT_GE(nx * ny, n) << n;
        EXPECT_LE(nx, ny) << n;
        EXPECT_LE(ny, 2 * nx) << "degenerate chain for n=" << n;
        EXPECT_LT(nx * ny - n, n) << "over-padded grid for n=" << n;
    }
    EXPECT_EQ(study::meshDims(7), (std::pair<int, int>{2, 4}));
}

TEST(MeshDims, PrimeClusterChipBuildsWithoutFatal)
{
    study::CaseStudyConfig cfg;
    cfg.totalCores = 7;  // 7 clusters of 1: prime
    cfg.coresPerCluster = 1;
    const chip::SystemParams sys = study::makeCaseStudySystem(cfg);
    EXPECT_GE(sys.noc.nodesX * sys.noc.nodesY, 7);
    EXPECT_LE(sys.noc.nodesY, 2 * sys.noc.nodesX);
    const chip::Processor proc(sys);
    EXPECT_GT(proc.tdp(), 0.0);
}

TEST(EdramRestore, ReadEnergyNeverNegativeAcrossSweep)
{
    // Sweep eDRAM arrays from tiny (where the unclamped restore term
    // sub.writeEnergy(cols) - sub.readEnergy(0) could go negative and
    // refund energy) up to the bench_sram_vs_edram L3 slice.
    const tech::Technology t(32, tech::DeviceFlavor::HP, 360.0);
    for (double kb : {4.0, 8.0, 16.0, 64.0, 256.0, 1024.0, 2048.0}) {
        array::ArrayParams p;
        p.name = "edram sweep";
        p.sizeBytes = kb * 1024;
        p.blockWidthBits = 512;
        p.cellType = array::CellType::EDRAM;
        p.flavor = tech::DeviceFlavor::LSTP;
        const array::ArrayModel m(p, t);
        EXPECT_GE(m.readEnergy(), 0.0) << kb << " KB";
        EXPECT_GT(m.result().refreshPower, 0.0) << kb << " KB";
    }
}
