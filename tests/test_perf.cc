/**
 * @file
 * Performance-substrate tests: workload characterizations, the CPI
 * model's first-order behaviors, the multicore contention model, and
 * the activity bridge.
 */

#include <gtest/gtest.h>

#include "chip/processor.hh"
#include "perf/activity_gen.hh"
#include "study/sweep.hh"

using namespace mcpat;
using namespace mcpat::perf;

namespace {

core::CoreParams
oooCore()
{
    core::CoreParams p;
    p.clockRate = 2.0 * GHz;
    return p;
}

MemoryHierarchy
defaultMem()
{
    MemoryHierarchy m;
    m.l2CapacityPerCore = 1.0e6;
    m.memoryCycles = 200.0;
    return m;
}

} // namespace

TEST(Workloads, EightEntries)
{
    EXPECT_EQ(splash2Workloads().size(), 8u);
    EXPECT_NO_THROW(findWorkload("ocean"));
    EXPECT_THROW(findWorkload("nonexistent"), ConfigError);
}

TEST(Workloads, MixSumsToOne)
{
    for (const auto &w : splash2Workloads()) {
        const double sum = w.fracInt + w.fracFp + w.fracMul +
                           w.fracLoad + w.fracStore + w.fracBranch;
        EXPECT_NEAR(sum, 1.0, 0.02) << w.name;
    }
}

TEST(Workloads, MissCurvesDecreaseWithCapacity)
{
    for (const auto &w : splash2Workloads()) {
        EXPECT_GT(w.l1dMissesPerInst(8 * 1024),
                  w.l1dMissesPerInst(64 * 1024))
            << w.name;
        EXPECT_GT(w.l2MissesPerInst(256 * 1024),
                  w.l2MissesPerInst(4 * 1024 * 1024))
            << w.name;
    }
}

TEST(Workloads, MissRateCapped)
{
    const auto &w = findWorkload("ocean");
    EXPECT_LE(w.l1dMissesPerInst(16.0), 0.25);  // degenerate capacity
}

TEST(Workloads, ParallelEfficiencyBounds)
{
    for (const auto &w : splash2Workloads()) {
        EXPECT_DOUBLE_EQ(w.parallelEfficiency(1), 1.0);
        EXPECT_NEAR(w.parallelEfficiency(64),
                    w.parallelEfficiencyAt64, 1e-9);
        EXPECT_GT(w.parallelEfficiency(256), 0.0);
        EXPECT_LT(w.parallelEfficiency(16), 1.0);
    }
}

TEST(CpiModel, IpcBoundedByIssueWidth)
{
    for (const auto &w : splash2Workloads()) {
        const auto r =
            computeCoreThroughput(oooCore(), w, defaultMem());
        EXPECT_LE(r.coreIpc, oooCore().issueWidth);
        EXPECT_GT(r.coreIpc, 0.0);
    }
}

TEST(CpiModel, BiggerCachesHelp)
{
    core::CoreParams small = oooCore();
    small.dcache.capacityBytes = 8 * 1024;
    core::CoreParams big = oooCore();
    big.dcache.capacityBytes = 64 * 1024;
    const auto &w = findWorkload("ocean");
    const auto rs = computeCoreThroughput(small, w, defaultMem());
    const auto rb = computeCoreThroughput(big, w, defaultMem());
    EXPECT_GT(rb.coreIpc, rs.coreIpc);
    EXPECT_GT(rs.l1dMissesPerInst, rb.l1dMissesPerInst);
}

TEST(CpiModel, MemoryLatencyHurts)
{
    MemoryHierarchy fast = defaultMem();
    MemoryHierarchy slow = defaultMem();
    slow.memoryCycles = 800.0;
    const auto &w = findWorkload("radix");
    const auto rf = computeCoreThroughput(oooCore(), w, fast);
    const auto rs = computeCoreThroughput(oooCore(), w, slow);
    EXPECT_GT(rf.coreIpc, rs.coreIpc);
}

TEST(CpiModel, OooOverlapsMemoryStalls)
{
    core::CoreParams ooo = oooCore();
    core::CoreParams inorder = oooCore();
    inorder.outOfOrder = false;
    const auto &w = findWorkload("ocean");
    const auto ro = computeCoreThroughput(ooo, w, defaultMem());
    const auto ri = computeCoreThroughput(inorder, w, defaultMem());
    EXPECT_GT(ro.coreIpc, ri.coreIpc);
    EXPECT_LT(ro.threadCpi.memory, ri.threadCpi.memory);
}

TEST(CpiModel, MultithreadingHidesStalls)
{
    core::CoreParams one = oooCore();
    one.outOfOrder = false;
    one.threads = 1;
    core::CoreParams four = one;
    four.threads = 4;
    const auto &w = findWorkload("ocean");
    const auto r1 = computeCoreThroughput(one, w, defaultMem());
    const auto r4 = computeCoreThroughput(four, w, defaultMem());
    EXPECT_GT(r4.coreIpc, 1.5 * r1.coreIpc);
}

TEST(CpiModel, BranchyWorkloadsSufferWithDeepPipes)
{
    core::CoreParams shallow = oooCore();
    shallow.pipelineStages = 8;
    core::CoreParams deep = oooCore();
    deep.pipelineStages = 30;
    const auto &w = findWorkload("raytrace");
    const auto rs = computeCoreThroughput(shallow, w, defaultMem());
    const auto rd = computeCoreThroughput(deep, w, defaultMem());
    EXPECT_GT(rs.coreIpc, rd.coreIpc);
    EXPECT_GT(rd.threadCpi.branch, rs.threadCpi.branch);
}

TEST(SystemModel, ThroughputGrowsSublinearlyWithCores)
{
    study::CaseStudyConfig cfg;
    cfg.style = study::CoreStyle::OutOfOrder;
    cfg.coresPerCluster = 4;

    cfg.totalCores = 16;
    const auto sys16 = study::makeCaseStudySystem(cfg);
    cfg.totalCores = 64;
    const auto sys64 = study::makeCaseStudySystem(cfg);

    const auto &w = findWorkload("barnes");
    const auto p16 = evaluateSystem(sys16, w);
    const auto p64 = evaluateSystem(sys64, w);
    EXPECT_GT(p64.throughput, 1.5 * p16.throughput);
    EXPECT_LT(p64.throughput, 4.0 * p16.throughput);
}

TEST(SystemModel, BandwidthCapsMemoryBoundWorkloads)
{
    study::CaseStudyConfig cfg;
    cfg.totalCores = 64;
    auto sys = study::makeCaseStudySystem(cfg);
    sys.memCtrl.channels = 1;  // starve the chip
    sys.memCtrl.busClock = 200.0 * MHz;
    const auto p = evaluateSystem(sys, findWorkload("ocean"));
    EXPECT_TRUE(p.bandwidthLimited);
    EXPECT_GT(p.memBandwidthUtil, 0.9);
}

TEST(SystemModel, ComputeBoundWorkloadsNotCapped)
{
    study::CaseStudyConfig cfg;
    const auto sys = study::makeCaseStudySystem(cfg);
    const auto p = evaluateSystem(sys, findWorkload("water"));
    EXPECT_FALSE(p.bandwidthLimited);
}

TEST(SystemModel, OutputsConsistent)
{
    study::CaseStudyConfig cfg;
    const auto sys = study::makeCaseStudySystem(cfg);
    const auto p = evaluateSystem(sys, findWorkload("fft"));
    EXPECT_NEAR(p.aggregateIpc, p.perCoreIpc * sys.numCores, 1e-9);
    EXPECT_NEAR(p.throughput, p.aggregateIpc * sys.core.clockRate,
                1.0);
    EXPECT_GE(p.l2AccessesPerCycle, p.l2MissesPerCycle);
    EXPECT_GT(p.nocFlitsPerCycle, 0.0);
}

TEST(ActivityGen, RatesNonNegativeAndConsistent)
{
    study::CaseStudyConfig cfg;
    const auto sys = study::makeCaseStudySystem(cfg);
    for (const auto &w : splash2Workloads()) {
        const auto p = evaluateSystem(sys, w);
        const auto s = makeRuntimeStats(sys, w, p);
        const auto &c = s.perCore;
        EXPECT_GE(c.fetches, c.commits) << w.name;
        EXPECT_GE(c.loads, 0.0);
        EXPECT_GE(c.dcacheRates.readHits, 0.0) << w.name;
        EXPECT_GE(c.icacheRates.readMisses, 0.0);
        EXPECT_LE(c.clockGating, 1.0);
        EXPECT_GE(c.clockGating, 0.3);
        EXPECT_GE(s.mcUtilization, 0.0);
        EXPECT_LE(s.mcUtilization, 1.0);
    }
}

TEST(ActivityGen, RuntimePowerBelowTdp)
{
    study::CaseStudyConfig cfg;
    const auto sys = study::makeCaseStudySystem(cfg);
    const chip::Processor proc(sys);
    for (const char *name : {"water", "ocean"}) {
        const auto &w = findWorkload(name);
        const auto p = evaluateSystem(sys, w);
        const auto rt = makeRuntimeStats(sys, w, p);
        const Report r = proc.makeReport(rt);
        EXPECT_LT(r.runtimePower(), proc.tdp() * 1.05) << name;
        EXPECT_GT(r.runtimePower(), r.leakage()) << name;
    }
}

/** Property sweep: the CPI model behaves on every workload x style. */
class CpiWorkloadSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{};

TEST_P(CpiWorkloadSweep, Physical)
{
    const auto [wi, ooo] = GetParam();
    core::CoreParams p = oooCore();
    p.outOfOrder = ooo;
    const auto &w = splash2Workloads()[wi];
    const auto r = computeCoreThroughput(p, w, defaultMem());
    EXPECT_GT(r.threadCpi.total(), 0.2);
    EXPECT_LT(r.threadCpi.total(), 50.0);
    EXPECT_GE(r.threadCpi.branch, 0.0);
    EXPECT_GE(r.threadCpi.memory, 0.0);
    EXPECT_GT(r.coreIpc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CpiWorkloadSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Bool()));
