/**
 * @file
 * Tests for the thermal-feedback solver and the simulator-counter
 * (<stat>) interface of the XML loader.
 */

#include <gtest/gtest.h>

#include "chip/processor.hh"
#include "chip/thermal.hh"
#include "config/xml_loader.hh"

using namespace mcpat;

namespace {

chip::SystemParams
leakyChip()
{
    chip::SystemParams sys;
    sys.nodeNm = 65;
    sys.numCores = 2;
    sys.core.clockRate = 3.0 * GHz;
    sys.core.pipelineStages = 24;
    sys.numL2 = 1;
    sys.l2.capacityBytes = 2.0 * 1024 * 1024;
    sys.l2.flavor = tech::DeviceFlavor::HP;  // deliberately leaky
    return sys;
}

} // namespace

TEST(Thermal, ConvergesWithGoodCooling)
{
    chip::ThermalParams env;
    env.junctionToAmbient = 0.2;
    const auto r = chip::solveThermal(leakyChip(), env);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.temperature, env.ambient);
    EXPECT_LT(r.temperature, 419.0);
    EXPECT_GT(r.power, 0.0);
    EXPECT_GT(r.leakage, 0.0);
}

TEST(Thermal, WorseCoolingRunsHotter)
{
    chip::ThermalParams good;
    good.junctionToAmbient = 0.15;
    chip::ThermalParams bad;
    bad.junctionToAmbient = 0.45;
    const auto rg = chip::solveThermal(leakyChip(), good);
    const auto rb = chip::solveThermal(leakyChip(), bad);
    EXPECT_GT(rb.temperature, rg.temperature);
    EXPECT_GT(rb.leakage, rg.leakage);
    EXPECT_GT(rb.power, rg.power);
}

TEST(Thermal, RunawayDetected)
{
    chip::ThermalParams oven;
    oven.junctionToAmbient = 3.0;  // essentially no heatsink
    const auto r = chip::solveThermal(leakyChip(), oven);
    EXPECT_FALSE(r.converged);
    EXPECT_NEAR(r.temperature, 419.0, 3.0);
}

TEST(Thermal, SelfConsistency)
{
    chip::ThermalParams env;
    env.junctionToAmbient = 0.25;
    const auto r = chip::solveThermal(leakyChip(), env);
    ASSERT_TRUE(r.converged);
    // At the fixed point, ambient + R * P must reproduce T.
    EXPECT_NEAR(env.ambient + env.junctionToAmbient * r.power,
                r.temperature, 3.0 * env.toleranceK);
}

TEST(Thermal, BadEnvironmentRejected)
{
    chip::ThermalParams env;
    env.junctionToAmbient = 0.0;
    EXPECT_THROW(chip::solveThermal(leakyChip(), env), ConfigError);
    env.junctionToAmbient = 0.3;
    env.ambient = 100.0;
    EXPECT_THROW(chip::solveThermal(leakyChip(), env), ConfigError);
}

// ---------------------------------------------------------------------
// Simulator-counter stats
// ---------------------------------------------------------------------

namespace {

const char *statsConfig = R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
  <param name="core_count" value="2"/>
  <component id="sys.core" type="Core">
    <param name="clock_rate_mhz" value="2000"/>
    <stat name="total_cycles" value="1000000"/>
    <stat name="committed_instructions" value="1500000"/>
    <stat name="int_instructions" value="700000"/>
    <stat name="fp_instructions" value="200000"/>
    <stat name="branch_instructions" value="150000"/>
    <stat name="loads" value="300000"/>
    <stat name="stores" value="150000"/>
    <stat name="icache_accesses" value="400000"/>
    <stat name="icache_misses" value="4000"/>
    <stat name="dcache_accesses" value="450000"/>
    <stat name="dcache_misses" value="22500"/>
  </component>
  <component id="sys.l2" type="L2">
    <param name="count" value="1"/>
    <param name="size_kb" value="1024"/>
    <stat name="read_accesses" value="20000"/>
    <stat name="read_misses" value="5000"/>
    <stat name="write_accesses" value="8000"/>
    <stat name="write_misses" value="1000"/>
  </component>
</component>
)";

} // namespace

TEST(StatCounters, CoreRatesFromCounters)
{
    const auto root = config::parseXmlString(statsConfig);
    const auto loaded = config::loadSystemParams(root);
    const auto s = config::loadChipStats(root, loaded.system);

    EXPECT_NEAR(s.perCore.commits, 1.5, 1e-9);
    EXPECT_NEAR(s.perCore.intOps, 0.7, 1e-9);
    EXPECT_NEAR(s.perCore.fpOps, 0.2, 1e-9);
    EXPECT_NEAR(s.perCore.branches, 0.15, 1e-9);
    EXPECT_NEAR(s.perCore.loads, 0.3, 1e-9);
    EXPECT_NEAR(s.perCore.stores, 0.15, 1e-9);
    EXPECT_NEAR(s.perCore.icacheRates.readMisses, 0.004, 1e-9);
    EXPECT_NEAR(s.perCore.icacheRates.readHits, 0.396, 1e-9);
    EXPECT_NEAR(s.perCore.dcacheRates.misses(), 0.0225, 1e-9);
}

TEST(StatCounters, CacheRatesFromCounters)
{
    const auto root = config::parseXmlString(statsConfig);
    const auto loaded = config::loadSystemParams(root);
    const auto s = config::loadChipStats(root, loaded.system);
    EXPECT_NEAR(s.l2Rates.readMisses, 0.005, 1e-9);
    EXPECT_NEAR(s.l2Rates.readHits, 0.015, 1e-9);
    EXPECT_NEAR(s.l2Rates.writeHits, 0.007, 1e-9);
    EXPECT_NEAR(s.l2Rates.writeMisses, 0.001, 1e-9);
}

TEST(StatCounters, MissingCountersKeepTdpDefaults)
{
    const char *cfg = R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
  <param name="core_count" value="1"/>
  <component id="sys.core" type="Core">
    <param name="clock_rate_mhz" value="2000"/>
  </component>
</component>
)";
    const auto root = config::parseXmlString(cfg);
    const auto loaded = config::loadSystemParams(root);
    const auto from_xml = config::loadChipStats(root, loaded.system);
    const auto tdp = stats::ChipStats::tdp(loaded.system);
    EXPECT_DOUBLE_EQ(from_xml.perCore.commits, tdp.perCore.commits);
    EXPECT_DOUBLE_EQ(from_xml.l2Rates.readHits, tdp.l2Rates.readHits);
}

TEST(StatCounters, CountersComposeWithActivityScale)
{
    std::string cfg(statsConfig);
    cfg.insert(cfg.rfind("</component>"),
               "  <stat name=\"activity_scale\" value=\"0.5\"/>\n");
    const auto root = config::parseXmlString(cfg);
    const auto loaded = config::loadSystemParams(root);
    const auto s = config::loadChipStats(root, loaded.system);
    EXPECT_NEAR(s.perCore.commits, 0.75, 1e-9);
}

TEST(StatCounters, InvalidCountersRejected)
{
    const char *bad_cycles = R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
  <param name="core_count" value="1"/>
  <component id="sys.core" type="Core">
    <param name="clock_rate_mhz" value="2000"/>
    <stat name="total_cycles" value="0"/>
  </component>
</component>
)";
    const auto root = config::parseXmlString(bad_cycles);
    const auto loaded = config::loadSystemParams(root);
    EXPECT_THROW(config::loadChipStats(root, loaded.system),
                 ConfigError);
}

TEST(StatCounters, RuntimePowerRespondsToCounters)
{
    const auto root = config::parseXmlString(statsConfig);
    const auto loaded = config::loadSystemParams(root);
    const chip::Processor proc(loaded.system);

    const auto from_xml = config::loadChipStats(root, loaded.system);
    const Report r = proc.makeReport(from_xml);
    EXPECT_GT(r.runtimeDynamic, 0.0);
    EXPECT_LT(r.runtimeDynamic, proc.tdpReport().peakDynamic * 1.2);
}
