/**
 * @file
 * Chip-assembly and configuration tests: processor construction,
 * report structure, XML parsing, and the XML-to-parameters loader.
 */

#include <gtest/gtest.h>

#include "chip/processor.hh"
#include "config/xml_loader.hh"

using namespace mcpat;
using namespace mcpat::chip;
using namespace mcpat::config;

namespace {

SystemParams
smallSystem()
{
    SystemParams s;
    s.nodeNm = 45;
    s.numCores = 2;
    s.core.clockRate = 2.0 * GHz;
    s.numL2 = 1;
    s.l2.capacityBytes = 1024.0 * 1024;
    s.l2.clockRate = 1.0 * GHz;
    return s;
}

} // namespace

TEST(Processor, ConstructsAndReports)
{
    const Processor p(smallSystem());
    EXPECT_GT(p.area(), 5.0 * mm2);
    EXPECT_GT(p.tdp(), 1.0);
    const Report &r = p.tdpReport();
    EXPECT_NE(r.child("Total Cores (2 cores)"), nullptr);
    EXPECT_NE(r.child("Total L2s (1 instances)"), nullptr);
    EXPECT_NE(r.child("Memory Controller"), nullptr);
    EXPECT_NE(r.child("Decap + Power Grid"), nullptr);
    EXPECT_NE(r.child("Pad Ring"), nullptr);
}

TEST(Processor, TdpIsPeakPlusLeakage)
{
    const Processor p(smallSystem());
    const Report &r = p.tdpReport();
    EXPECT_NEAR(p.tdp(), r.peakDynamic + r.leakage(), 1e-9);
}

TEST(Processor, CoreCountScalesCoreBlock)
{
    SystemParams two = smallSystem();
    SystemParams eight = smallSystem();
    eight.numCores = 8;
    const Processor p2(two);
    const Processor p8(eight);
    const double c2 =
        p2.tdpReport().child("Total Cores (2 cores)")->peakDynamic;
    const double c8 =
        p8.tdpReport().child("Total Cores (8 cores)")->peakDynamic;
    EXPECT_NEAR(c8 / c2, 4.0, 0.01);
    EXPECT_GT(p8.area(), p2.area());
}

TEST(Processor, WhiteSpaceGrowsArea)
{
    SystemParams tight = smallSystem();
    tight.whiteSpaceFraction = 0.0;
    SystemParams loose = smallSystem();
    loose.whiteSpaceFraction = 0.3;
    const Processor pt(tight);
    const Processor pl(loose);
    EXPECT_NEAR(pl.area() / pt.area(), 1.3, 0.01);
}

TEST(Processor, RuntimeBelowTdpForScaledActivity)
{
    const SystemParams sys = smallSystem();
    const Processor p(sys);
    stats::ChipStats rt = stats::ChipStats::tdp(sys);
    rt.perCore = rt.perCore.scaled(0.3);
    rt.mcUtilization *= 0.3;
    rt.nocFlitsPerCycle *= 0.3;
    const Report r = p.makeReport(rt);
    EXPECT_LT(r.runtimeDynamic, r.peakDynamic);
}

TEST(Processor, Validation)
{
    SystemParams s = smallSystem();
    s.numCores = 0;
    EXPECT_THROW(Processor{s}, ConfigError);
    s = smallSystem();
    s.whiteSpaceFraction = 0.9;
    EXPECT_THROW(Processor{s}, ConfigError);
}

TEST(ChipStats, TdpPopulatesUncore)
{
    const SystemParams sys = smallSystem();
    const auto s = stats::ChipStats::tdp(sys);
    EXPECT_GT(s.l2Rates.accesses(), 0.0);
    EXPECT_GT(s.nocFlitsPerCycle, 0.0);
    EXPECT_GT(s.mcUtilization, 0.0);
    EXPECT_LE(s.mcUtilization, 1.0);
}

// ---------------------------------------------------------------------
// XML parser
// ---------------------------------------------------------------------

TEST(XmlParser, AttributesAndNesting)
{
    const XmlNode root = parseXmlString(
        "<?xml version=\"1.0\"?>\n"
        "<!-- comment -->\n"
        "<a x=\"1\" y='two'>\n"
        "  <b z=\"3\"/>\n"
        "  <b z=\"4\"><c/></b>\n"
        "</a>\n");
    EXPECT_EQ(root.tag, "a");
    EXPECT_EQ(root.attr("x"), "1");
    EXPECT_EQ(root.attr("y"), "two");
    EXPECT_TRUE(root.hasAttr("x"));
    EXPECT_FALSE(root.hasAttr("q"));
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.childrenNamed("b").size(), 2u);
    EXPECT_EQ(root.firstChild("b")->attr("z"), "3");
    EXPECT_EQ(root.children[1].children.size(), 1u);
}

TEST(XmlParser, IgnoresTextContent)
{
    const XmlNode root =
        parseXmlString("<a>hello <b/> world</a>");
    EXPECT_EQ(root.children.size(), 1u);
}

TEST(XmlParser, MalformedInputRejected)
{
    EXPECT_THROW(parseXmlString(""), ConfigError);
    EXPECT_THROW(parseXmlString("<a><b></a></b>"), ConfigError);
    EXPECT_THROW(parseXmlString("<a x=1/>"), ConfigError);
    EXPECT_THROW(parseXmlString("<a"), ConfigError);
    EXPECT_THROW(parseXmlString("<a><b></a>"), ConfigError);
    EXPECT_THROW(parseXmlFile("/nonexistent/file.xml"), ConfigError);
}

// ---------------------------------------------------------------------
// XML loader
// ---------------------------------------------------------------------

namespace {

const char *minimalConfig = R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
  <param name="core_count" value="4"/>
  <component id="sys.core" type="Core">
    <param name="clock_rate_mhz" value="2500"/>
    <param name="issue_width" value="6"/>
    <param name="out_of_order" value="true"/>
  </component>
  <component id="sys.l2" type="L2">
    <param name="count" value="2"/>
    <param name="size_kb" value="2048"/>
  </component>
</component>
)";

} // namespace

TEST(XmlLoader, MinimalConfigRoundTrip)
{
    const auto loaded = loadSystemParams(parseXmlString(minimalConfig));
    EXPECT_TRUE(loaded.warnings.empty());
    const auto &s = loaded.system;
    EXPECT_EQ(s.nodeNm, 45);
    EXPECT_EQ(s.numCores, 4);
    EXPECT_NEAR(s.core.clockRate, 2.5 * GHz, 1.0);
    EXPECT_EQ(s.core.issueWidth, 6);
    EXPECT_TRUE(s.core.outOfOrder);
    EXPECT_EQ(s.numL2, 2);
    EXPECT_NEAR(s.l2.capacityBytes, 2048.0 * 1024, 1.0);
}

TEST(XmlLoader, UnknownParamWarns)
{
    const char *cfg = R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
  <param name="core_count" value="1"/>
  <param name="not_a_real_param" value="7"/>
  <component id="sys.core" type="Core">
    <param name="clock_rate_mhz" value="2000"/>
  </component>
</component>
)";
    const auto loaded = loadSystemParams(parseXmlString(cfg));
    ASSERT_EQ(loaded.warnings.size(), 1u);
    EXPECT_NE(loaded.warnings[0].find("not_a_real_param"),
              std::string::npos);
    // The structured form carries component/key/line context.
    ASSERT_EQ(loaded.diagnostics.size(), 1u);
    const auto &d = *loaded.diagnostics.begin();
    EXPECT_EQ(d.severity, Severity::Warning);
    EXPECT_EQ(d.component, "sys");
    EXPECT_EQ(d.key, "not_a_real_param");
    EXPECT_EQ(d.line, 5);
}

TEST(XmlLoader, MissingCoreRejected)
{
    const char *cfg = R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
</component>
)";
    EXPECT_THROW(loadSystemParams(parseXmlString(cfg)), ConfigError);
}

TEST(XmlLoader, WrongRootRejected)
{
    EXPECT_THROW(loadSystemParams(parseXmlString("<foo/>")),
                 ConfigError);
}

TEST(XmlLoader, BadEnumValuesRejected)
{
    const char *cfg = R"(
<component id="sys" type="System">
  <param name="device_type" value="XYZ"/>
  <component id="sys.core" type="Core"/>
</component>
)";
    EXPECT_THROW(loadSystemParams(parseXmlString(cfg)), ConfigError);
}

TEST(XmlLoader, StatActivityScale)
{
    const XmlNode root = parseXmlString(R"(
<component id="sys" type="System">
  <param name="technology_node" value="45"/>
  <param name="core_count" value="1"/>
  <component id="sys.core" type="Core">
    <param name="clock_rate_mhz" value="2000"/>
  </component>
  <stat name="activity_scale" value="0.5"/>
</component>
)");
    const auto loaded = loadSystemParams(root);
    const auto full = stats::ChipStats::tdp(loaded.system);
    const auto scaled = loadChipStats(root, loaded.system);
    EXPECT_NEAR(scaled.perCore.intOps, 0.5 * full.perCore.intOps,
                1e-12);
    EXPECT_NEAR(scaled.mcUtilization, 0.5 * full.mcUtilization, 1e-12);
}

TEST(XmlLoader, LoadedConfigBuildsProcessor)
{
    const auto loaded = loadSystemParams(parseXmlString(minimalConfig));
    const Processor p(loaded.system);
    EXPECT_GT(p.tdp(), 0.0);
}
