/**
 * @file
 * Branch-and-bound pruning tests.  The pruner's contract is absolute:
 * it must select bit-identical winners to the exhaustive organization
 * search for every array — the lower bounds are provable floors and
 * candidates are only discarded when they can affect neither the
 * normalizers nor the constrained selection.  These tests sweep array
 * shapes, cell types, banking, timing targets, and every shipped chip
 * config to hold it to that.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "array/array_cache.hh"
#include "array/array_model.hh"
#include "chip/processor.hh"
#include "config/xml_loader.hh"

using namespace mcpat;

namespace {

std::string
findConfigDir()
{
    for (const std::string prefix :
         {"configs", "../configs", "../../configs"}) {
        if (std::filesystem::is_directory(prefix))
            return prefix;
    }
    throw ConfigError("cannot find configs/");
}

/** RAII guard: force pruning on/off, restore the prior setting. */
struct PruneGuard
{
    explicit PruneGuard(bool on)
        : previous(array::optimizerPruning())
    {
        array::setOptimizerPruning(on);
    }
    ~PruneGuard() { array::setOptimizerPruning(previous); }
    bool previous;
};

/** RAII guard: disable both cache tiers so every solve is real. */
struct NoCacheGuard
{
    NoCacheGuard() : previous(array::ArrayResultCache::instance().enabled())
    {
        array::ArrayResultCache::instance().clear();
        array::ArrayResultCache::instance().setEnabled(false);
    }
    ~NoCacheGuard()
    {
        array::ArrayResultCache::instance().setEnabled(previous);
        array::ArrayResultCache::instance().clear();
    }
    bool previous;
};

void
expectIdenticalSolutions(const array::ArrayParams &p,
                         const tech::Technology &t,
                         const std::string &what)
{
    NoCacheGuard no_cache;
    array::ArrayResult exhaustive, pruned;
    bool timing_ex = false, timing_pr = false;
    {
        PruneGuard guard(false);
        const array::ArrayModel m(p, t);
        exhaustive = m.result();
        timing_ex = m.meetsTiming();
    }
    {
        PruneGuard guard(true);
        const array::ArrayModel m(p, t);
        pruned = m.result();
        timing_pr = m.meetsTiming();
    }
    EXPECT_EQ(exhaustive.org.ndwl, pruned.org.ndwl) << what;
    EXPECT_EQ(exhaustive.org.ndbl, pruned.org.ndbl) << what;
    EXPECT_EQ(exhaustive.org.nspd, pruned.org.nspd) << what;
    EXPECT_EQ(exhaustive.area, pruned.area) << what;
    EXPECT_EQ(exhaustive.accessDelay, pruned.accessDelay) << what;
    EXPECT_EQ(exhaustive.cycleTime, pruned.cycleTime) << what;
    EXPECT_EQ(exhaustive.readEnergy, pruned.readEnergy) << what;
    EXPECT_EQ(exhaustive.writeEnergy, pruned.writeEnergy) << what;
    EXPECT_EQ(exhaustive.searchEnergy, pruned.searchEnergy) << what;
    EXPECT_EQ(exhaustive.subthresholdLeakage,
              pruned.subthresholdLeakage)
        << what;
    EXPECT_EQ(exhaustive.gateLeakage, pruned.gateLeakage) << what;
    EXPECT_EQ(exhaustive.refreshPower, pruned.refreshPower) << what;
    EXPECT_EQ(exhaustive.height, pruned.height) << what;
    EXPECT_EQ(exhaustive.width, pruned.width) << what;
    EXPECT_EQ(timing_ex, timing_pr) << what;
}

/** Recursively require two report trees to match bit for bit. */
void
expectBitIdentical(const Report &a, const Report &b,
                   const std::string &path = "")
{
    const std::string here = path + "/" + a.name;
    EXPECT_EQ(a.name, b.name) << here;
    EXPECT_EQ(a.area, b.area) << here;
    EXPECT_EQ(a.peakDynamic, b.peakDynamic) << here;
    EXPECT_EQ(a.runtimeDynamic, b.runtimeDynamic) << here;
    EXPECT_EQ(a.subthresholdLeakage, b.subthresholdLeakage) << here;
    EXPECT_EQ(a.gateLeakage, b.gateLeakage) << here;
    EXPECT_EQ(a.criticalPath, b.criticalPath) << here;
    ASSERT_EQ(a.children.size(), b.children.size()) << here;
    for (std::size_t i = 0; i < a.children.size(); ++i)
        expectBitIdentical(a.children[i], b.children[i], here);
}

} // namespace

TEST(Prune, ToggleIsObservable)
{
    PruneGuard outer(true);
    EXPECT_TRUE(array::optimizerPruning());
    array::setOptimizerPruning(false);
    EXPECT_FALSE(array::optimizerPruning());
    array::setOptimizerPruning(true);
    EXPECT_TRUE(array::optimizerPruning());
}

TEST(Prune, WinnerIdenticalAcrossArrayShapes)
{
    const tech::Technology t65(65);
    const tech::Technology t22(22, tech::DeviceFlavor::LOP, 340.0);

    std::vector<std::pair<std::string, array::ArrayParams>> cases;
    cases.reserve(8);
    {
        array::ArrayParams p;
        p.sizeBytes = 32.0 * 1024;
        p.blockWidthBits = 256;
        cases.emplace_back("32KB cache-like", p);
    }
    {
        array::ArrayParams p;
        p.sizeBytes = 2.0 * 1024 * 1024;
        p.blockWidthBits = 512;
        p.banks = 4;
        cases.emplace_back("2MB banked L2", p);
    }
    {
        array::ArrayParams p;
        p.rows = 128;
        p.bits = 64;
        p.readPorts = 4;
        p.writePorts = 2;
        p.readWritePorts = 0;
        cases.emplace_back("multiported regfile", p);
    }
    {
        array::ArrayParams p;
        p.rows = 64;
        p.bits = 52;
        p.cellType = array::CellType::CAM;
        p.searchPorts = 2;
        cases.emplace_back("TLB CAM", p);
    }
    {
        array::ArrayParams p;
        p.sizeBytes = 1024.0 * 1024;
        p.blockWidthBits = 512;
        p.cellType = array::CellType::EDRAM;
        p.flavor = tech::DeviceFlavor::LSTP;
        cases.emplace_back("1MB eDRAM", p);
    }
    {
        array::ArrayParams p;
        p.rows = 32;
        p.bits = 128;
        p.cellType = array::CellType::DFF;
        cases.emplace_back("DFF buffer", p);
    }
    {
        array::ArrayParams p;
        p.sizeBytes = 64.0 * 1024;
        p.blockWidthBits = 256;
        p.targetCycleTime = 0.3e-9;  // tight: constrained pass matters
        cases.emplace_back("timing-constrained", p);
    }
    {
        array::ArrayParams p;
        p.sizeBytes = 64.0 * 1024;
        p.blockWidthBits = 256;
        p.targetCycleTime = 1.0e-12;  // impossible: fallback passes
        cases.emplace_back("timing-infeasible", p);
    }

    for (auto &[what, p] : cases) {
        p.name = what;
        expectIdenticalSolutions(p, t65, what + " @65nm");
        expectIdenticalSolutions(p, t22, what + " @22nm LOP");
    }
}

TEST(Prune, SearchStatsCountEvaluationsAndPrunes)
{
    NoCacheGuard no_cache;
    const tech::Technology t(45);
    array::ArrayParams p;
    p.name = "stats probe";
    p.sizeBytes = 512.0 * 1024;
    p.blockWidthBits = 512;
    p.banks = 2;

    array::resetOptimizerSearchStats();
    {
        PruneGuard guard(false);
        const array::ArrayModel m(p, t);
    }
    const auto exhaustive = array::optimizerSearchStats();
    EXPECT_GT(exhaustive.evaluated, 0u);
    EXPECT_EQ(exhaustive.pruned, 0u);

    array::resetOptimizerSearchStats();
    {
        PruneGuard guard(true);
        const array::ArrayModel m(p, t);
    }
    const auto pruned = array::optimizerSearchStats();
    EXPECT_GT(pruned.pruned, 0u)
        << "bound never fired on a structure it should prune";
    // Every feasible candidate is either evaluated or pruned.
    EXPECT_EQ(pruned.evaluated + pruned.pruned, exhaustive.evaluated);
    EXPECT_LT(pruned.evaluated, exhaustive.evaluated);
}

TEST(Prune, EveryShippedConfigBitIdentical)
{
    const std::string dir = findConfigDir();
    std::vector<std::string> configs;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".xml")
            configs.push_back(e.path().string());
    std::sort(configs.begin(), configs.end());
    ASSERT_FALSE(configs.empty());

    for (const auto &path : configs) {
        const auto loaded = config::loadSystemParamsFromFile(path);
        NoCacheGuard no_cache;
        Report exhaustive, pruned;
        {
            PruneGuard guard(false);
            exhaustive = chip::Processor(loaded.system).tdpReport();
        }
        {
            PruneGuard guard(true);
            pruned = chip::Processor(loaded.system).tdpReport();
        }
        expectBitIdentical(exhaustive, pruned, path);
    }
}
