/**
 * @file
 * Tests for the extension features: eDRAM arrays, heterogeneous core
 * groups, power gating, and the JSON/CSV report writers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "chip/processor.hh"
#include "chip/report_writer.hh"
#include "uncore/shared_cache.hh"

using namespace mcpat;

namespace {

const tech::Technology &
tech32()
{
    static const tech::Technology t(32, tech::DeviceFlavor::HP, 360.0);
    return t;
}

array::ArrayParams
edramArray(array::CellType cell)
{
    array::ArrayParams p;
    p.name = "llc-slice";
    p.rows = 16384;
    p.bits = 512;
    p.banks = 2;
    p.cellType = cell;
    p.flavor = tech::DeviceFlavor::LSTP;
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// eDRAM
// ---------------------------------------------------------------------

TEST(Edram, DenserThanSram)
{
    const array::ArrayModel sram(edramArray(array::CellType::SRAM),
                                 tech32());
    const array::ArrayModel edram(edramArray(array::CellType::EDRAM),
                                  tech32());
    EXPECT_LT(edram.area(), 0.6 * sram.area());
}

TEST(Edram, LeaksLessThanSram)
{
    const array::ArrayModel sram(edramArray(array::CellType::SRAM),
                                 tech32());
    const array::ArrayModel edram(edramArray(array::CellType::EDRAM),
                                  tech32());
    EXPECT_LT(edram.subthresholdLeakage(),
              sram.subthresholdLeakage());
}

TEST(Edram, HasRefreshPowerSramDoesNot)
{
    const array::ArrayModel sram(edramArray(array::CellType::SRAM),
                                 tech32());
    const array::ArrayModel edram(edramArray(array::CellType::EDRAM),
                                  tech32());
    EXPECT_DOUBLE_EQ(sram.result().refreshPower, 0.0);
    EXPECT_GT(edram.result().refreshPower, 0.0);
}

TEST(Edram, RefreshGrowsWithTemperature)
{
    const tech::Technology cool(32, tech::DeviceFlavor::HP, 330.0);
    const tech::Technology hot(32, tech::DeviceFlavor::HP, 370.0);
    const array::ArrayModel mc(edramArray(array::CellType::EDRAM),
                               cool);
    const array::ArrayModel mh(edramArray(array::CellType::EDRAM),
                               hot);
    // Retention halves every 10 K: 40 K apart => ~16x refresh power
    // (modulo organization differences).
    EXPECT_GT(mh.result().refreshPower,
              4.0 * mc.result().refreshPower);
}

TEST(Edram, RefreshRidesInReports)
{
    const array::ArrayModel m(edramArray(array::CellType::EDRAM),
                              tech32());
    const Report idle = m.makeReport(2.0 * GHz, {}, {});
    EXPECT_NEAR(idle.peakDynamic, m.result().refreshPower, 1e-12);
    EXPECT_NEAR(idle.runtimeDynamic, m.result().refreshPower, 1e-12);
}

TEST(Edram, DestructiveReadCostsRestore)
{
    const array::ArrayModel sram(edramArray(array::CellType::SRAM),
                                 tech32());
    const array::ArrayModel edram(edramArray(array::CellType::EDRAM),
                                  tech32());
    // Despite smaller bitline capacitance, the mandatory restore keeps
    // eDRAM read energy from collapsing far below SRAM's.
    EXPECT_GT(edram.readEnergy(), 0.3 * sram.readEnergy());
}

TEST(Edram, SharedCacheCellTypeSelectable)
{
    uncore::SharedCacheParams p;
    p.capacityBytes = 8.0 * 1024 * 1024;
    p.dataCell = array::CellType::EDRAM;
    const uncore::SharedCache c(p, tech32());
    EXPECT_GT(c.cache().dataArray().result().refreshPower, 0.0);
}

// ---------------------------------------------------------------------
// Heterogeneous core groups
// ---------------------------------------------------------------------

namespace {

chip::SystemParams
bigLittle()
{
    chip::SystemParams sys;
    sys.nodeNm = 32;
    chip::CoreGroup big;
    big.count = 2;
    big.core.name = "Big";
    big.core.clockRate = 2.0 * GHz;
    chip::CoreGroup little;
    little.count = 4;
    little.core.name = "Little";
    little.core.outOfOrder = false;
    little.core.threads = 2;
    little.core.fetchWidth = little.core.decodeWidth = 1;
    little.core.issueWidth = little.core.commitWidth = 1;
    little.core.intAlus = 1;
    little.core.pipelineStages = 6;
    little.core.clockRate = 1.0 * GHz;
    sys.coreGroups = {big, little};
    sys.numL2 = 1;
    sys.l2.capacityBytes = 1024.0 * 1024;
    return sys;
}

} // namespace

TEST(Heterogeneous, GroupResolution)
{
    const auto sys = bigLittle();
    EXPECT_EQ(sys.totalCores(), 6);
    EXPECT_EQ(sys.resolvedCoreGroups().size(), 2u);

    chip::SystemParams homo;
    homo.numCores = 8;
    EXPECT_EQ(homo.totalCores(), 8);
    EXPECT_EQ(homo.resolvedCoreGroups().size(), 1u);
    EXPECT_EQ(homo.resolvedCoreGroups()[0].count, 8);
}

TEST(Heterogeneous, BuildsWithBothGroupsReported)
{
    const chip::Processor p(bigLittle());
    const Report &r = p.tdpReport();
    const Report *cores = r.child("Total Cores (6 cores)");
    ASSERT_NE(cores, nullptr);
    ASSERT_EQ(cores->children.size(), 2u);
    EXPECT_EQ(cores->children[0].name, "Big (x2)");
    EXPECT_EQ(cores->children[1].name, "Little (x4)");
    // Per-core, the big cores must outweigh the little ones.
    EXPECT_GT(cores->children[0].peakDynamic / 2.0,
              cores->children[1].peakDynamic / 4.0);
}

TEST(Heterogeneous, GroupTotalsAccumulateByCount)
{
    const chip::Processor p(bigLittle());
    const Report *cores = p.tdpReport().child("Total Cores (6 cores)");
    ASSERT_NE(cores, nullptr);
    const double expect = 2.0 * cores->children[0].peakDynamic / 2.0 +
                          4.0 * cores->children[1].peakDynamic / 4.0;
    // children store one instance scaled to the group: child[g] holds
    // the single-core report, accumulate() multiplied by count.
    EXPECT_NEAR(cores->peakDynamic,
                2.0 * cores->children[0].peakDynamic +
                    4.0 * cores->children[1].peakDynamic,
                cores->peakDynamic * 1e-9);
    (void)expect;
}

TEST(Heterogeneous, PerGroupRuntimeStats)
{
    const auto sys = bigLittle();
    const chip::Processor p(sys);
    auto rt = stats::ChipStats::tdp(sys);
    ASSERT_EQ(rt.perGroup.size(), 2u);
    rt.perGroup[0] = rt.perGroup[0].scaled(0.1);  // big cores idle
    const Report r = p.makeReport(rt);
    EXPECT_LT(r.runtimeDynamic, p.tdpReport().runtimeDynamic);
}

TEST(Heterogeneous, EmptyGroupRejected)
{
    auto sys = bigLittle();
    sys.coreGroups[1].count = 0;
    EXPECT_THROW(chip::Processor{sys}, ConfigError);
}

// ---------------------------------------------------------------------
// Power gating
// ---------------------------------------------------------------------

TEST(PowerGating, CutsRuntimeLeakageNotTdp)
{
    core::CoreParams p;
    p.powerGating = true;
    const tech::Technology t(45);
    const core::Core c(p, t);

    core::CoreStats tdp = core::CoreStats::tdp(p);
    core::CoreStats idle = tdp.scaled(0.05);
    idle.sleepFraction = 1.0;

    const Report r = c.makeReport(tdp, idle);
    EXPECT_NEAR(r.runtimeSubLeak(), 0.1 * r.subthresholdLeakage,
                r.subthresholdLeakage * 0.01);
    EXPECT_LT(r.runtimePower(), r.peakPower());
}

TEST(PowerGating, NoEffectWithoutHardware)
{
    core::CoreParams p;  // powerGating = false
    const tech::Technology t(45);
    const core::Core c(p, t);
    core::CoreStats idle = core::CoreStats::tdp(p).scaled(0.05);
    idle.sleepFraction = 1.0;
    const Report r = c.makeReport(core::CoreStats::tdp(p), idle);
    EXPECT_DOUBLE_EQ(r.runtimeSubLeak(), r.subthresholdLeakage);
}

TEST(PowerGating, SleepTransistorsCostArea)
{
    core::CoreParams plain;
    core::CoreParams gated;
    gated.powerGating = true;
    const tech::Technology t(45);
    const core::Core cp(plain, t);
    const core::Core cg(gated, t);
    EXPECT_GT(cg.area(), cp.area() * 1.02);
}

TEST(PowerGating, ReportTreeCarriesRuntimeLeakage)
{
    Report parent;
    Report gated;
    gated.subthresholdLeakage = 10.0;
    gated.runtimeSubthresholdLeakage = 2.0;
    Report plain;
    plain.subthresholdLeakage = 5.0;
    parent.addChild(gated);
    parent.addChild(plain);
    EXPECT_DOUBLE_EQ(parent.subthresholdLeakage, 15.0);
    EXPECT_DOUBLE_EQ(parent.runtimeSubLeak(), 7.0);
}

// ---------------------------------------------------------------------
// JSON / CSV writers
// ---------------------------------------------------------------------

namespace {

Report
sampleReport()
{
    Report r;
    r.name = "chip \"x\"";
    r.area = 2.0 * mm2;
    r.peakDynamic = 3.0;
    Report c;
    c.name = "core";
    c.area = 1.0 * mm2;
    c.peakDynamic = 1.5;
    r.addChild(std::move(c));
    return r;
}

} // namespace

TEST(ReportWriter, JsonEscaping)
{
    EXPECT_EQ(chip::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ReportWriter, JsonStructure)
{
    std::ostringstream os;
    chip::writeReportJson(os, sampleReport());
    const std::string s = os.str();
    EXPECT_NE(s.find("\"name\": \"chip \\\"x\\\"\""),
              std::string::npos);
    EXPECT_NE(s.find("\"children\": ["), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"core\""), std::string::npos);
    // Balanced braces/brackets.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(std::count(s.begin(), s.end(), '['),
              std::count(s.begin(), s.end(), ']'));
}

TEST(ReportWriter, CsvRowsAndHeader)
{
    std::ostringstream os;
    chip::writeReportCsv(os, sampleReport());
    const std::string s = os.str();
    // Header + 2 rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
    EXPECT_NE(s.find("path,area_mm2"), std::string::npos);
    // The quoted name must be CSV-escaped; the child path inherits
    // the parent's quoted name, so the whole cell stays quoted.
    EXPECT_NE(s.find("\"chip \"\"x\"\"\","), std::string::npos);
    EXPECT_NE(s.find("/core\""), std::string::npos);
}

TEST(ReportWriter, FullChipJsonParsesStructurally)
{
    chip::SystemParams sys;
    sys.nodeNm = 45;
    sys.numCores = 1;
    const chip::Processor p(sys);
    std::ostringstream os;
    chip::writeReportJson(os, p.tdpReport());
    const std::string s = os.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_GT(std::count(s.begin(), s.end(), '{'), 10);
}
