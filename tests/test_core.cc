/**
 * @file
 * Core-level tests: construction of in-order and out-of-order cores,
 * report-tree consistency, architectural scaling behavior, timing
 * checks, and TDP activity sanity.
 */

#include <gtest/gtest.h>

#include "core/core.hh"

using namespace mcpat;
using namespace mcpat::core;
using tech::Technology;

namespace {

const Technology &
tech45()
{
    static const Technology t(45);
    return t;
}

CoreParams
oooCore()
{
    CoreParams p;
    p.clockRate = 2.0 * GHz;
    return p;
}

CoreParams
inorderCore()
{
    CoreParams p;
    p.outOfOrder = false;
    p.threads = 4;
    p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 1;
    p.intAlus = 1;
    p.fpus = 1;
    p.muls = 1;
    p.pipelineStages = 6;
    p.clockRate = 1.5 * GHz;
    return p;
}

/** Sum a report's children for one field. */
double
childSum(const Report &r, double Report::*field)
{
    double s = 0.0;
    for (const auto &c : r.children)
        s += c.*field;
    return s;
}

} // namespace

TEST(CoreParams, Validation)
{
    CoreParams p = oooCore();
    p.threads = 0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = oooCore();
    p.physIntRegs = 8;  // fewer than architectural
    EXPECT_THROW(p.validate(), ConfigError);

    p = oooCore();
    p.intAlus = 0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = oooCore();
    p.pipelineStages = 1;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(CoreParams, TagBits)
{
    CoreParams p = oooCore();
    p.physIntRegs = 128;
    EXPECT_EQ(p.intTagBits(), 7);
    p.outOfOrder = false;
    p.archIntRegs = 32;
    p.threads = 4;
    EXPECT_EQ(p.intTagBits(), 7);  // 128 thread-replicated registers
}

TEST(Core, OooConstructs)
{
    const Core c(oooCore(), tech45());
    EXPECT_GT(c.area(), 1.0 * mm2);
    EXPECT_LT(c.area(), 100.0 * mm2);
    EXPECT_GT(c.maxFrequency(), 0.5 * GHz);
}

TEST(Core, InOrderSmallerThanOoo)
{
    const Core ooo(oooCore(), tech45());
    CoreParams in_p = inorderCore();
    in_p.clockRate = 2.0 * GHz;
    const Core inorder(in_p, tech45());
    EXPECT_LT(inorder.area(), ooo.area());
    EXPECT_LT(inorder.makeTdpReport().peakDynamic,
              ooo.makeTdpReport().peakDynamic);
}

TEST(Core, ReportDynamicSumsConsistent)
{
    const Core c(oooCore(), tech45());
    const Report r = c.makeTdpReport();
    EXPECT_NEAR(childSum(r, &Report::peakDynamic), r.peakDynamic,
                r.peakDynamic * 1e-9);
    EXPECT_NEAR(childSum(r, &Report::subthresholdLeakage),
                r.subthresholdLeakage, r.subthresholdLeakage * 1e-9);
}

TEST(Core, PlacedAreaExceedsComponentSum)
{
    const Core c(oooCore(), tech45());
    const Report r = c.makeTdpReport();
    // The core's reported area includes wiring overhead on top of the
    // unit sum.
    EXPECT_GE(r.area, childSum(r, &Report::area) * 0.99);
}

TEST(Core, ExpectedUnitsPresent)
{
    const Core c(oooCore(), tech45());
    const Report r = c.makeTdpReport();
    EXPECT_NE(r.child("Instruction Fetch Unit"), nullptr);
    EXPECT_NE(r.child("Renaming Unit"), nullptr);
    EXPECT_NE(r.child("Execution Unit"), nullptr);
    EXPECT_NE(r.child("Load Store Unit"), nullptr);
    EXPECT_NE(r.child("Memory Management Unit"), nullptr);
    EXPECT_NE(r.child("Clock Network"), nullptr);
    EXPECT_NE(r.child("Datapath & Control Glue"), nullptr);
}

TEST(Core, InOrderHasScoreboardNotRat)
{
    const Core c(inorderCore(), tech45());
    const Report r = c.makeTdpReport();
    const Report *ren = r.child("Renaming Unit");
    ASSERT_NE(ren, nullptr);
    EXPECT_NE(ren->child("Scoreboard"), nullptr);
    EXPECT_EQ(ren->child("Int RAT"), nullptr);
}

TEST(Core, OooHasSchedulerStructures)
{
    const Core c(oooCore(), tech45());
    const Report r = c.makeTdpReport();
    const Report *exu = r.child("Execution Unit");
    ASSERT_NE(exu, nullptr);
    const Report *sched = exu->child("Instruction Scheduler");
    ASSERT_NE(sched, nullptr);
    EXPECT_NE(sched->child("Int Instruction Window"), nullptr);
    EXPECT_NE(sched->child("Reorder Buffer"), nullptr);
}

TEST(Core, WiderIssueCostsAreaAndPower)
{
    CoreParams narrow = oooCore();
    narrow.issueWidth = 2;
    narrow.intAlus = 2;
    CoreParams wide = oooCore();
    wide.issueWidth = 8;
    wide.intAlus = 6;
    wide.fetchWidth = wide.decodeWidth = wide.commitWidth = 8;
    const Core cn(narrow, tech45());
    const Core cw(wide, tech45());
    EXPECT_GT(cw.area(), cn.area());
    EXPECT_GT(cw.makeTdpReport().peakDynamic,
              cn.makeTdpReport().peakDynamic);
}

TEST(Core, ThreadsCostArea)
{
    CoreParams one = inorderCore();
    one.threads = 1;
    CoreParams eight = inorderCore();
    eight.threads = 8;
    const Core c1(one, tech45());
    const Core c8(eight, tech45());
    EXPECT_GT(c8.area(), c1.area());
}

TEST(Core, BiggerRobSlowsScheduler)
{
    CoreParams small = oooCore();
    small.intWindowEntries = 16;
    CoreParams big = oooCore();
    big.intWindowEntries = 128;
    const Core cs(small, tech45());
    const Core cb(big, tech45());
    EXPECT_LE(cb.maxFrequency(), cs.maxFrequency() * 1.001);
}

TEST(Core, DynamicMarginScalesAllDynamic)
{
    CoreParams base = oooCore();
    base.dynamicMargin = 1.8;
    CoreParams hot = oooCore();
    hot.dynamicMargin = 2.7;
    const Core cb(base, tech45());
    const Core ch(hot, tech45());
    const Report rb = cb.makeTdpReport();
    const Report rh = ch.makeTdpReport();
    EXPECT_NEAR(rh.peakDynamic / rb.peakDynamic, 1.5, 1e-6);
    // Leakage is not affected by the design-style margin.
    EXPECT_NEAR(rh.subthresholdLeakage, rb.subthresholdLeakage, 1e-9);
}

TEST(Core, TimingCheckReflectsClock)
{
    CoreParams slow = oooCore();
    slow.clockRate = 0.2 * GHz;
    const Core cs(slow, tech45());
    EXPECT_TRUE(cs.meetsTiming());

    CoreParams fast = oooCore();
    fast.clockRate = 50.0 * GHz;  // beyond any 45 nm design
    const Core cf(fast, tech45());
    EXPECT_FALSE(cf.meetsTiming());
}

TEST(Core, TechnologyScalingShrinksCore)
{
    const Technology t90(90);
    const Technology t22(22);
    const Core c90(oooCore(), t90);
    const Core c22(oooCore(), t22);
    EXPECT_GT(c90.area(), 4.0 * c22.area());
}

TEST(CoreStats, TdpRatesWithinWidths)
{
    const CoreParams p = oooCore();
    const CoreStats s = CoreStats::tdp(p);
    EXPECT_LE(s.fetches, p.fetchWidth + 1e-9);
    EXPECT_LE(s.decodes, p.decodeWidth + 1e-9);
    EXPECT_LE(s.commits, p.commitWidth + 1e-9);
    EXPECT_LE(s.intOps, p.intAlus + 1e-9);
    EXPECT_LE(s.fpOps, p.fpus + 1e-9);
    EXPECT_GT(s.loads, 0.0);
    EXPECT_GT(s.icacheRates.accesses(), 0.0);
}

TEST(CoreStats, ScalingIsLinear)
{
    const CoreStats s = CoreStats::tdp(oooCore());
    const CoreStats half = s.scaled(0.5);
    EXPECT_NEAR(half.intOps, 0.5 * s.intOps, 1e-12);
    EXPECT_NEAR(half.dcacheRates.readHits,
                0.5 * s.dcacheRates.readHits, 1e-12);
}

TEST(CoreStats, InOrderCoreHasNoRenameActivity)
{
    const CoreStats s = CoreStats::tdp(inorderCore());
    EXPECT_DOUBLE_EQ(s.renames, 0.0);
    EXPECT_DOUBLE_EQ(s.dispatches, 0.0);
}

/** Property sweep over issue widths: monotone area and power. */
class CoreWidthSweep : public ::testing::TestWithParam<int>
{};

TEST_P(CoreWidthSweep, PhysicalAndBounded)
{
    CoreParams p = oooCore();
    p.issueWidth = GetParam();
    p.fetchWidth = p.decodeWidth = p.commitWidth =
        std::min(GetParam(), 8);
    p.intAlus = std::max(1, GetParam() - 1);
    const Core c(p, tech45());
    const Report r = c.makeTdpReport();
    EXPECT_GT(r.peakDynamic, 0.1);
    EXPECT_LT(r.peakDynamic, 100.0);
    EXPECT_GT(c.area(), 1.0 * mm2);
    EXPECT_LT(c.area(), 200.0 * mm2);
}

INSTANTIATE_TEST_SUITE_P(Widths, CoreWidthSweep,
                         ::testing::Values(1, 2, 4, 6, 8));
