/**
 * @file
 * Delta-evaluation and Pareto-frontier search tests: the component
 * memo's sharing correctness (memo on vs off is bit-identical) and
 * hit accounting, grid indexing, dominance relations, and the
 * search's frontier-identity contract against the exhaustive grid.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unistd.h>

#include "chip/component_memo.hh"
#include "chip/processor.hh"
#include "chip/report_writer.hh"
#include "study/sweep_search.hh"

using namespace mcpat;
using namespace mcpat::study;
namespace fs = std::filesystem;

namespace {

/** A small grid that keeps search tests fast. */
SweepSpace
tinySpace()
{
    SweepSpace s;
    s.totalCores = 4;
    s.styles = {CoreStyle::InOrderMT, CoreStyle::OutOfOrder};
    s.clusterSizes = {1, 2, 4};
    s.l2BytesPerCore = {512.0 * 1024, 1.0 * 1024 * 1024,
                        2.0 * 1024 * 1024};
    s.clockRates = {1.5e9, 2.5e9, 3.5e9};
    return s;
}

Metrics
metricsOf(double ed, double ed2, double eda, double ed2a)
{
    Metrics m;
    m.ed = ed;
    m.ed2 = ed2;
    m.eda = eda;
    m.ed2a = ed2a;
    return m;
}

} // namespace

TEST(SweepSpace, FlatIndexRoundTrips)
{
    const SweepSpace s = tinySpace();
    EXPECT_EQ(s.size(), 2u * 3u * 3u * 3u);
    for (std::size_t flat = 0; flat < s.size(); ++flat)
        EXPECT_EQ(s.flatIndex(s.coords(flat)), flat);

    // at() must honor the axis values, and keys must be unique across
    // the grid (the journal and memo both depend on that).
    std::set<std::string> keys;
    for (std::size_t flat = 0; flat < s.size(); ++flat)
        keys.insert(s.at(flat).key());
    EXPECT_EQ(keys.size(), s.size());

    const CaseStudyConfig last = s.at(s.size() - 1);
    EXPECT_EQ(last.style, CoreStyle::OutOfOrder);
    EXPECT_EQ(last.coresPerCluster, 4);
    EXPECT_DOUBLE_EQ(last.l2BytesPerCore, 2.0 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(last.clockRate, 3.5e9);
}

TEST(SweepSearch, DominanceRelations)
{
    const Metrics a = metricsOf(1, 1, 1, 1);
    const Metrics b = metricsOf(2, 2, 2, 2);
    const Metrics mixed = metricsOf(0.5, 3, 1, 1);
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, a));  // equal: not strictly better
    EXPECT_FALSE(dominates(a, mixed));
    EXPECT_FALSE(dominates(mixed, a));

    const Metrics bad = Metrics::invalid();
    EXPECT_FALSE(dominates(bad, b));  // non-finite never dominates
    EXPECT_TRUE(dominates(a, bad));
}

TEST(SweepSearch, ParetoFrontierExcludesDominatedAndNonFinite)
{
    std::vector<SweepSearchPoint> pts(4);
    pts[0].index = 0;
    pts[0].result.meanMetrics = metricsOf(1, 4, 1, 4);
    pts[1].index = 1;
    pts[1].result.meanMetrics = metricsOf(4, 1, 4, 1);
    pts[2].index = 2;
    pts[2].result.meanMetrics = metricsOf(5, 5, 5, 5);  // dominated
    pts[3].index = 3;
    pts[3].result.meanMetrics = Metrics::invalid();     // degenerate
    const auto frontier = paretoFrontier(pts);
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1}));
}

TEST(SweepSearch, FrontierIdenticalToExhaustiveGrid)
{
    const SweepSpace space = tinySpace();
    SweepSearchOptions opts;

    opts.exhaustive = true;
    const SweepSearchResult grid = runSweepSearch(space, opts);
    EXPECT_EQ(grid.points.size(), space.size());
    EXPECT_FALSE(grid.frontier.empty());

    opts.exhaustive = false;
    const SweepSearchResult searched = runSweepSearch(space, opts);
    EXPECT_LT(searched.points.size(), space.size());
    EXPECT_EQ(searched.frontier, grid.frontier);

    // Every point the search evaluated matches the grid's bit for bit
    // (delta evaluation must not change any number).
    std::map<std::size_t, const SweepSearchPoint *> by_index;
    for (const auto &p : grid.points)
        by_index[p.index] = &p;
    for (const auto &p : searched.points) {
        const Metrics &a = p.result.meanMetrics;
        const Metrics &b = by_index.at(p.index)->result.meanMetrics;
        EXPECT_EQ(a.ed, b.ed);
        EXPECT_EQ(a.ed2, b.ed2);
        EXPECT_EQ(a.eda, b.eda);
        EXPECT_EQ(a.ed2a, b.ed2a);
    }
}

TEST(SweepSearch, JournaledSearchResumesWithoutReevaluation)
{
    const fs::path dir = fs::temp_directory_path() /
        ("mcpat_sweep_search_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);

    const SweepSpace space = tinySpace();
    SweepSearchOptions opts;
    opts.journal.path = (dir / "sweep_journal.jsonl").string();

    const SweepSearchResult first = runSweepSearch(space, opts);
    EXPECT_GT(first.fullEvaluations, 0u);

    // Resuming the identical search replays every point: zero full
    // evaluations, same frontier, same rounds.
    opts.journal.resume = true;
    const SweepSearchResult second = runSweepSearch(space, opts);
    EXPECT_EQ(second.fullEvaluations, 0u);
    EXPECT_EQ(second.replayed,
              static_cast<std::uint64_t>(first.points.size()));
    EXPECT_EQ(second.frontier, first.frontier);
    EXPECT_EQ(second.rounds, first.rounds);
    fs::remove_all(dir);
}

TEST(SweepSearch, WritersEmitFrontierAndFlags)
{
    const SweepSpace space = tinySpace();
    SweepSearchOptions opts;
    opts.exhaustive = false;
    const SweepSearchResult r = runSweepSearch(space, opts);

    std::ostringstream json;
    writeSweepSearchJson(json, space, r, opts.work);
    EXPECT_NE(json.str().find("\"mcpat-sweep-search-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"frontier\": ["), std::string::npos);

    std::ostringstream csv;
    writeSweepSearchCsv(csv, space, r);
    EXPECT_NE(csv.str().find("in_frontier"), std::string::npos);
    // At least one frontier row and one non-frontier row.
    EXPECT_NE(csv.str().find(",1\n"), std::string::npos);
    EXPECT_NE(csv.str().find(",0\n"), std::string::npos);
}

TEST(ComponentMemo, SharesComponentsAcrossProcessorsBitIdentically)
{
    chip::ComponentMemo &memo = chip::ComponentMemo::instance();
    if (!memo.enabled())
        GTEST_SKIP() << "component memo disabled via env";

    CaseStudyConfig cfg;
    cfg.totalCores = 4;
    cfg.coresPerCluster = 2;
    const chip::SystemParams sys = makeCaseStudySystem(cfg);

    memo.clear();
    const auto cold = memo.stats();
    const chip::Processor first(sys);
    const auto after_first = memo.stats();
    EXPECT_GT(after_first.misses, cold.misses);

    // Same params again: every component comes from the memo.
    const chip::Processor second(sys);
    const auto after_second = memo.stats();
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_EQ(after_second.misses, after_first.misses);

    // A different L2 reuses the core side but rebuilds the cache.
    CaseStudyConfig bigger = cfg;
    bigger.l2BytesPerCore = 2.0 * 1024 * 1024;
    const chip::Processor third(makeCaseStudySystem(bigger));
    const auto after_third = memo.stats();
    EXPECT_GT(after_third.hits, after_second.hits);
    EXPECT_GT(after_third.misses, after_second.misses);

    // Memoized sharing must not change a single reported number:
    // compare a full JSON report against a memo-off build.
    const stats::ChipStats rt;
    std::ostringstream with_memo;
    chip::writeReportJson(with_memo, first.makeReport(rt));

    memo.setEnabled(false);
    const chip::Processor isolated(sys);
    std::ostringstream without_memo;
    chip::writeReportJson(without_memo, isolated.makeReport(rt));
    memo.setEnabled(true);

    EXPECT_EQ(with_memo.str(), without_memo.str());
}

TEST(SweepDiagnostics, DegenerateWorkYieldsLocatedDiagnostics)
{
    // A non-finite work value poisons every per-workload delay; the
    // evaluation must survive with NaN aggregates and name the design
    // point and workloads in located diagnostics instead of aborting.
    CaseStudyConfig cfg;
    cfg.totalCores = 4;
    cfg.coresPerCluster = 4;
    const DesignPointResult r = evaluateDesignPoint(
        cfg, std::numeric_limits<double>::quiet_NaN());
    EXPECT_FALSE(r.diagnostics.empty());
    EXPECT_FALSE(r.diagnostics.hasErrors());  // warnings, not errors
    EXPECT_TRUE(std::isnan(r.meanMetrics.ed));
    bool located = false;
    for (const auto &d : r.diagnostics)
        located = located || d.component == cfg.label();
    EXPECT_TRUE(located);
    EXPECT_GT(r.area, 0.0);  // physical figures are still real
}
